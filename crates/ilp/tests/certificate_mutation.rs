//! Certificate mutation harness: no corrupted proof may survive the
//! exact-arithmetic audit.
//!
//! Each test class builds a model whose verdict is known by construction,
//! solves it in proof-logging mode, verifies the pristine certificate,
//! then corrupts exactly **one** field — a dual value, a Farkas
//! coefficient, a leaf bound, a branch decision, an incumbent entry or a
//! presolve action — and asserts `fpva_ilp::certify` rejects the mutant.
//! Every mutation is chosen to be *mathematically* invalidating (not just
//! syntactically odd): the perturbations `δ ∈ [0.5, 3]` are orders of
//! magnitude above every audit tolerance, zeroed Farkas coordinates leave
//! the remaining aggregate satisfiable inside the box, and sign flips
//! land on the forbidden side of the row's dual cone. A mutant that
//! certifies anyway is a soundness hole in the checker.
//!
//! Four status classes are exercised: LP optimal, LP infeasible (Farkas),
//! MILP optimal (branching tree + presolve actions + incumbent) and MILP
//! infeasible (tree-wide infeasibility proof).

use fpva_ilp::certify::{LeafCert, MilpCertificate, PresolveAction};
use fpva_ilp::simplex::{LpCertificate, LpStatus};
use fpva_ilp::{certify_lp, certify_outcome, MilpOptions, MilpSolver, Model, Sense, SolveStatus};
use proptest::prelude::*;

/// Mutation magnitudes are drawn as integer hundredths in `[0.50, 3.00)`
/// — far above every tolerance in the checker (`1e-6`-scale feasibility,
/// `1e-4`-scale bound consistency).
fn delta_from(raw: u32) -> f64 {
    f64::from(raw) / 100.0
}

fn certified() -> MilpSolver {
    MilpSolver::with_options(MilpOptions {
        certificate: true,
        ..MilpOptions::default()
    })
}

// ---------------------------------------------------------------------------
// Class 1: LP optimal — minimize Σ cᵢxᵢ subject to xᵢ ≥ bᵢ, x ∈ [0, 100].
// The optimum is x = b with duals y = c exactly, so the Lagrangian bound
// has zero slack: every dual or primal perturbation of δ ≥ 0.5 provably
// breaks a check (weak bound, row violation, objective mismatch or dual
// sign).
// ---------------------------------------------------------------------------

fn lp_optimal_instance(c: &[i32], b: &[i32]) -> (Model, Vec<f64>, Vec<f64>, LpCertificate) {
    let mut m = Model::new(Sense::Minimize);
    let mut obj = fpva_ilp::LinExpr::new();
    for (i, (&ci, &bi)) in c.iter().zip(b).enumerate() {
        let x = m.continuous_var(format!("x{i}"), 0.0, 100.0);
        m.add_geq(fpva_ilp::LinExpr::from(x), f64::from(bi));
        obj.add_term(x, f64::from(ci));
    }
    m.set_objective(obj);
    let (lp, lower, upper) = m.to_sparse_lp();
    let mut engine = lp.engine();
    engine.set_certify(true);
    let (sol, _) = engine.solve(&lower, &upper, None, None);
    assert_eq!(sol.status, LpStatus::Optimal);
    let cert = engine.take_certificate().expect("certificate emitted");
    certify_lp(&m, &lower, &upper, &cert).expect("pristine certificate verifies");
    (m, lower, upper, cert)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lp_optimal_mutants_rejected(
        c in collection::vec(1i32..6, 1usize..5),
        b_raw in collection::vec(1i32..11, 1usize..5),
        site in 0usize..1_000_000,
        delta_raw in 50u32..300,
        up in any::<bool>(),
    ) {
        let delta = delta_from(delta_raw);
        let n = c.len().min(b_raw.len());
        let (c, b) = (&c[..n], &b_raw[..n]);
        let (m, lower, upper, cert) = lp_optimal_instance(c, b);
        let LpCertificate::Optimal { mut duals, mut x, mut objective } = cert else {
            panic!("optimal LP must emit an Optimal certificate");
        };
        let signed = if up { delta } else { -delta };
        // Sites: each dual, each primal entry, the claimed objective.
        let k = site % (duals.len() + x.len() + 1);
        if k < duals.len() {
            duals[k] += signed;
        } else if k < duals.len() + x.len() {
            x[k - duals.len()] += signed;
        } else {
            objective += signed;
        }
        let mutant = LpCertificate::Optimal { duals, x, objective };
        prop_assert!(
            certify_lp(&m, &lower, &upper, &mutant).is_err(),
            "mutated LP-optimal certificate (site {k}, {signed:+}) was accepted"
        );
    }
}

// ---------------------------------------------------------------------------
// Class 2: LP infeasible — x ≥ b together with x ≤ b − 1 inside the box
// [0, b + 10]. Zeroing any Farkas coordinate leaves a single row that is
// satisfiable in the box; flipping one lands on the forbidden side of
// the row's dual cone.
// ---------------------------------------------------------------------------

fn lp_infeasible_instance(b: i32) -> (Model, Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut m = Model::new(Sense::Minimize);
    let x = m.continuous_var("x", 0.0, f64::from(b) + 10.0);
    m.add_geq(fpva_ilp::LinExpr::from(x), f64::from(b));
    m.add_leq(fpva_ilp::LinExpr::from(x), f64::from(b) - 1.0);
    m.set_objective(fpva_ilp::LinExpr::from(x));
    let (lp, lower, upper) = m.to_sparse_lp();
    let mut engine = lp.engine();
    engine.set_certify(true);
    let (sol, _) = engine.solve(&lower, &upper, None, None);
    assert_eq!(sol.status, LpStatus::Infeasible);
    let Some(LpCertificate::Infeasible { farkas }) = engine.take_certificate() else {
        panic!("infeasible LP must emit a Farkas certificate");
    };
    certify_lp(
        &m,
        &lower,
        &upper,
        &LpCertificate::Infeasible {
            farkas: farkas.clone(),
        },
    )
    .expect("pristine Farkas ray verifies");
    (m, lower, upper, farkas)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lp_infeasible_mutants_rejected(
        b in 1i32..11,
        site in 0usize..1_000_000,
        flip in any::<bool>(),
    ) {
        let (m, lower, upper, farkas) = lp_infeasible_instance(b);
        let live: Vec<usize> = (0..farkas.len()).filter(|&i| farkas[i] != 0.0).collect();
        prop_assert!(!live.is_empty(), "Farkas ray must touch at least one row");
        let k = live[site % live.len()];
        let mut mutant = farkas;
        mutant[k] = if flip { -mutant[k] } else { 0.0 };
        prop_assert!(
            certify_lp(&m, &lower, &upper, &LpCertificate::Infeasible { farkas: mutant }).is_err(),
            "mutated Farkas ray (row {k}, flip={flip}) was accepted"
        );
    }
}

// ---------------------------------------------------------------------------
// Classes 3 and 4: MILP.
// ---------------------------------------------------------------------------

/// One guaranteed-invalidating corruption of a [`MilpCertificate`].
#[derive(Debug, Clone, Copy, PartialEq)]
enum Site {
    /// Push a leaf dual onto the forbidden side of a `≤` row's cone
    /// (`y > 0`): rejected as a dual-sign violation.
    DualForbidden(usize, usize),
    /// Move a leaf dual *within* the valid cone: the exact Lagrangian
    /// bound drifts off the recorded leaf bound/objective, rejected by
    /// the strong-duality consistency check.
    DualValid(usize, usize),
    /// Perturb the recorded bound of a pruned leaf or the recorded
    /// objective of an integral leaf.
    LeafBound(usize),
    /// Zero one live coordinate of a leaf's Farkas ray.
    FarkasZero(usize, usize),
    /// Flip one live coordinate of a leaf's Farkas ray.
    FarkasFlip(usize, usize),
    /// Make a branch's recorded floor fractional.
    BranchFloor(usize),
    /// Perturb one entry of the reduced-space incumbent.
    Incumbent(usize),
    /// Perturb a presolve `Fix` value out of its (tight) bounds.
    FixValue(usize),
    /// Zero a presolve `Substitute` coefficient.
    SubstituteCoeff(usize),
    /// Claim the proof is incomplete.
    Complete,
    /// Drop the incumbent from an optimality proof.
    DropIncumbent,
    /// Strip a leaf's proof artifact entirely.
    DropLeaf(usize),
}

/// Enumerates every applicable mutation site of `cert`. `leq_rows` marks
/// rows whose valid dual cone is `y ≤ 0` (the only row kind the MILP
/// fixtures below use), so dual mutations know which direction is
/// forbidden.
fn milp_sites(cert: &MilpCertificate, optimal: bool) -> Vec<Site> {
    let mut sites = vec![Site::Complete];
    if optimal {
        sites.push(Site::DropIncumbent);
    }
    if let Some(inc) = &cert.incumbent_reduced {
        sites.extend((0..inc.len()).map(Site::Incumbent));
    }
    if let Some(p) = &cert.presolve {
        for (i, a) in p.actions.iter().enumerate() {
            match a {
                PresolveAction::Fix { .. } => sites.push(Site::FixValue(i)),
                PresolveAction::Substitute { .. } => sites.push(Site::SubstituteCoeff(i)),
            }
        }
    }
    for (n, node) in cert.tree.iter().enumerate() {
        if node.branch.is_some() {
            sites.push(Site::BranchFloor(n));
        }
        match &node.leaf {
            Some(LeafCert::Bound { duals, .. } | LeafCert::Integral { duals, .. }) => {
                sites.push(Site::DropLeaf(n));
                sites.push(Site::LeafBound(n));
                sites.extend(
                    (0..duals.len())
                        .flat_map(|r| [Site::DualForbidden(n, r), Site::DualValid(n, r)]),
                );
            }
            Some(LeafCert::Infeasible { farkas }) => {
                sites.push(Site::DropLeaf(n));
                for (r, &y) in farkas.iter().enumerate() {
                    if y != 0.0 {
                        sites.push(Site::FarkasZero(n, r));
                        sites.push(Site::FarkasFlip(n, r));
                    }
                }
            }
            _ => {}
        }
    }
    sites
}

/// Applies `site` to `cert`. `delta ∈ [0.5, 3]` scales every numeric
/// perturbation.
fn apply(cert: &mut MilpCertificate, site: Site, delta: f64) {
    match site {
        Site::Complete => cert.complete = false,
        Site::DropIncumbent => cert.incumbent_reduced = None,
        Site::Incumbent(i) => {
            cert.incumbent_reduced.as_mut().expect("site exists")[i] += delta;
        }
        Site::FixValue(i) => {
            let p = cert.presolve.as_mut().expect("site exists");
            let PresolveAction::Fix { value, .. } = &mut p.actions[i] else {
                panic!("site enumerated a Fix action");
            };
            *value += delta;
        }
        Site::SubstituteCoeff(i) => {
            let p = cert.presolve.as_mut().expect("site exists");
            let PresolveAction::Substitute { coeff, .. } = &mut p.actions[i] else {
                panic!("site enumerated a Substitute action");
            };
            *coeff = 0.0;
        }
        Site::BranchFloor(n) => {
            let b = cert.tree[n].branch.as_mut().expect("site exists");
            b.1 += 0.5;
        }
        Site::DropLeaf(n) => cert.tree[n].leaf = None,
        Site::LeafBound(n) => match cert.tree[n].leaf.as_mut().expect("site exists") {
            LeafCert::Bound { bound, .. } => *bound += delta,
            LeafCert::Integral { objective, .. } => *objective += delta,
            _ => panic!("site enumerated a bounded leaf"),
        },
        Site::DualForbidden(n, r) | Site::DualValid(n, r) => {
            // The fixtures only use `≤` rows, whose dual cone is y ≤ 0:
            // +δ leaves the cone, −δ stays inside it but detaches the
            // exact bound from the recorded one.
            let signed = if matches!(site, Site::DualForbidden(..)) {
                delta
            } else {
                -delta
            };
            match cert.tree[n].leaf.as_mut().expect("site exists") {
                LeafCert::Bound { duals, .. } | LeafCert::Integral { duals, .. } => {
                    duals[r] += signed;
                }
                _ => panic!("site enumerated a dual-bearing leaf"),
            }
        }
        Site::FarkasZero(n, r) | Site::FarkasFlip(n, r) => {
            let LeafCert::Infeasible { farkas } = cert.tree[n].leaf.as_mut().expect("site exists")
            else {
                panic!("site enumerated a Farkas leaf");
            };
            farkas[r] = if matches!(site, Site::FarkasFlip(..)) {
                -farkas[r]
            } else {
                0.0
            };
        }
    }
}

/// MILP optimal fixture: maximize x + y + 3z with 2x + 2y ≤ 3 over
/// binaries and z ∈ [1, 1] integer. The relaxation is fractional (real
/// branching), z is presolved away (a guaranteed `Fix` action) and the
/// `≤` row keeps every leaf dual in the `y ≤ 0` cone.
fn milp_optimal_fixture() -> (Model, fpva_ilp::MilpOutcome) {
    let mut m = Model::new(Sense::Maximize);
    let x = m.binary_var("x");
    let y = m.binary_var("y");
    let z = m.integer_var("z", 1.0, 1.0);
    m.add_leq(2.0 * x + 2.0 * y, 3.0);
    m.set_objective(x + y + 3.0 * z);
    let out = certified().solve(&m).expect("solve succeeds");
    assert_eq!(out.status, SolveStatus::Optimal);
    certify_outcome(&m, &out).expect("pristine certificate verifies");
    (m, out)
}

/// MILP infeasible fixture: x + y ≥ 3 over binaries (box maximum is 2).
/// Presolve certifies this outright; certificate mode re-proves it with
/// a tree on the original model whose leaves carry Farkas rays.
fn milp_infeasible_fixture() -> (Model, fpva_ilp::MilpOutcome) {
    let mut m = Model::new(Sense::Minimize);
    let x = m.binary_var("x");
    let y = m.binary_var("y");
    m.add_geq(x + y, 3.0);
    m.set_objective(x + y);
    let out = certified().solve(&m).expect("solve succeeds");
    assert_eq!(out.status, SolveStatus::Infeasible);
    certify_outcome(&m, &out).expect("pristine certificate verifies");
    (m, out)
}

#[test]
fn milp_fixtures_cover_all_mutation_kinds() {
    // The harness is only as strong as the sites the fixtures expose:
    // pin down that duals, leaf bounds, branch floors, an incumbent, a
    // presolve Fix action and Farkas rays all actually occur.
    let (_, out) = milp_optimal_fixture();
    let sites = milp_sites(out.certificate.as_ref().unwrap(), true);
    assert!(
        sites.iter().any(|s| matches!(s, Site::DualValid(..))),
        "{sites:?}"
    );
    assert!(
        sites.iter().any(|s| matches!(s, Site::LeafBound(_))),
        "{sites:?}"
    );
    assert!(
        sites.iter().any(|s| matches!(s, Site::BranchFloor(_))),
        "{sites:?}"
    );
    assert!(
        sites.iter().any(|s| matches!(s, Site::Incumbent(_))),
        "{sites:?}"
    );
    assert!(
        sites.iter().any(|s| matches!(s, Site::FixValue(_))),
        "{sites:?}"
    );

    let (_, out) = milp_infeasible_fixture();
    let sites = milp_sites(out.certificate.as_ref().unwrap(), false);
    assert!(
        sites.iter().any(|s| matches!(s, Site::FarkasZero(..))),
        "{sites:?}"
    );
    assert!(
        sites.iter().any(|s| matches!(s, Site::FarkasFlip(..))),
        "{sites:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn milp_optimal_mutants_rejected(
        site in 0usize..1_000_000,
        delta_raw in 50u32..300,
    ) {
        let delta = delta_from(delta_raw);
        let (m, mut out) = milp_optimal_fixture();
        let cert = out.certificate.as_mut().expect("certificate recorded");
        let sites = milp_sites(cert, true);
        let chosen = sites[site % sites.len()];
        apply(cert, chosen, delta);
        prop_assert!(
            certify_outcome(&m, &out).is_err(),
            "mutated MILP-optimal certificate ({chosen:?}, δ={delta}) was accepted"
        );
    }

    #[test]
    fn milp_infeasible_mutants_rejected(
        site in 0usize..1_000_000,
        delta_raw in 50u32..300,
    ) {
        let delta = delta_from(delta_raw);
        let (m, mut out) = milp_infeasible_fixture();
        let cert = out.certificate.as_mut().expect("certificate recorded");
        let sites = milp_sites(cert, false);
        let chosen = sites[site % sites.len()];
        apply(cert, chosen, delta);
        prop_assert!(
            certify_outcome(&m, &out).is_err(),
            "mutated MILP-infeasible certificate ({chosen:?}, δ={delta}) was accepted"
        );
    }
}
