//! Differential test harness: the sparse revised simplex
//! ([`fpva_ilp::simplex`]) against the dense two-phase tableau oracle
//! ([`fpva_ilp::dense`]).
//!
//! Random sparse LPs are generated **by status class** — the witness
//! construction guarantees the class, so a disagreement is always a
//! solver bug, never an ambiguous instance:
//!
//! * **feasible** — a witness point `x0` inside the (finite) variable
//!   box; every row's rhs is set from `a·x0` with non-negative slack, so
//!   `x0` is feasible and finiteness of all bounds makes the LP bounded;
//! * **degenerate** — the feasible construction with every slack forced
//!   to zero *and* every row duplicated, so the optimum sits on a
//!   heavily tied vertex (ratio-test ties, redundant rows);
//! * **infeasible** — the feasible construction plus the contradictory
//!   row `x_j ≥ ub_j + 1` (which also crosses the two solvers' different
//!   bound handling: rows in the oracle, native bounds in the revised
//!   simplex);
//! * **unbounded** — the feasible construction plus a cost −1 ray
//!   variable `z ∈ [0, ∞)` that appears (with +1) only in `≥` rows, so
//!   `(x0, z → ∞)` stays feasible while the objective dives.
//!
//! Both solvers must agree on the status, and on the objective within
//! `1e-6` when optimal; the revised simplex's primal point is
//! additionally checked feasible against rows and bounds.

use fpva_ilp::dense;
use fpva_ilp::fixtures;
use fpva_ilp::simplex::{self, LpProblem, LpRow, LpStatus, SparseLp};
use fpva_ilp::{
    presolve, ConstraintOp, LinExpr, MilpSolver, Model, PresolveOutcome, Sense, SolveStatus,
};
use proptest::prelude::*;

/// Objective agreement tolerance between the two solvers.
const OBJ_TOL: f64 = 1e-6;

/// Per-variable raw draw: (witness value, lower slack below the witness,
/// upper headroom above it, objective coefficient ×2).
type VarRaw = (i32, i32, i32, i32);
/// Per-row raw draw: sparse support as (unreduced index, coefficient),
/// an operator selector, and a non-negative slack.
type RowRaw = (Vec<(usize, i32)>, u8, i32);
/// One full instance draw: variable count, per-variable data (oversized,
/// truncated to the count), row data, and a spare index used by the
/// infeasible class.
type InstanceRaw = (usize, Vec<VarRaw>, Vec<RowRaw>, usize);

fn arb_instance() -> impl Strategy<Value = InstanceRaw> {
    (
        2usize..9,
        collection::vec((0i32..7, 0i32..4, 0i32..6, -5i32..6), 9..10),
        collection::vec(
            (
                collection::vec((0usize..64, -4i32..5), 1..4),
                0u8..3,
                0i32..5,
            ),
            1..7,
        ),
        0usize..64,
    )
}

/// Builds a guaranteed-feasible, guaranteed-bounded LP around the witness
/// point. With `tight` every row holds with equality at the witness; with
/// `duplicate` every row is emitted twice (redundancy + ratio-test ties).
fn build_feasible(raw: &InstanceRaw, tight: bool, duplicate: bool) -> LpProblem {
    let (n, ref vars, ref rows, _) = *raw;
    let x0: Vec<f64> = vars[..n].iter().map(|v| f64::from(v.0)).collect();
    let lower: Vec<f64> = vars[..n]
        .iter()
        .zip(&x0)
        .map(|(v, x)| x - f64::from(v.1))
        .collect();
    let upper: Vec<f64> = vars[..n]
        .iter()
        .zip(&x0)
        .map(|(v, x)| x + f64::from(v.2))
        .collect();
    let objective: Vec<f64> = vars[..n].iter().map(|v| f64::from(v.3) * 0.5).collect();
    let mut out_rows = Vec::new();
    for (support, op_sel, slack) in rows {
        let coeffs: Vec<(usize, f64)> = support
            .iter()
            .map(|&(j, a)| (j % n, f64::from(a)))
            .collect();
        let ax0: f64 = coeffs.iter().map(|&(j, a)| a * x0[j]).sum();
        let slack = if tight { 0.0 } else { f64::from(*slack) };
        let (op, rhs) = match op_sel % 3 {
            0 => (ConstraintOp::Leq, ax0 + slack),
            1 => (ConstraintOp::Geq, ax0 - slack),
            _ => (ConstraintOp::Eq, ax0),
        };
        let row = LpRow { coeffs, op, rhs };
        if duplicate {
            out_rows.push(row.clone());
        }
        out_rows.push(row);
    }
    LpProblem {
        objective,
        rows: out_rows,
        lower,
        upper,
    }
}

/// The feasible problem plus the contradictory row `x_j ≥ ub_j + 1`.
fn build_infeasible(raw: &InstanceRaw) -> LpProblem {
    let mut p = build_feasible(raw, false, false);
    let j = raw.3 % raw.0;
    p.rows.push(LpRow {
        coeffs: vec![(j, 1.0)],
        op: ConstraintOp::Geq,
        rhs: p.upper[j] + 1.0,
    });
    p
}

/// The feasible problem plus a cost −1 ray variable `z ∈ [0, ∞)` with a
/// +1 entry in every `≥` row (and none elsewhere): `(x0, z → ∞)` stays
/// feasible while the objective is unbounded below.
fn build_unbounded(raw: &InstanceRaw) -> LpProblem {
    let mut p = build_feasible(raw, false, false);
    let z = p.objective.len();
    for row in &mut p.rows {
        if row.op == ConstraintOp::Geq {
            row.coeffs.push((z, 1.0));
        }
    }
    p.objective.push(-1.0);
    p.lower.push(0.0);
    p.upper.push(f64::INFINITY);
    p
}

/// The feasible problem extended for the dual-vs-dense oracle checks: a
/// ray variable `z ∈ [0, 6]` (cost −1) with a +1 entry in every `≥` row,
/// and a probe variable `w ∈ [0, 2]` (cost +1) constrained by `w ≥ 1` in
/// its own row and appearing nowhere else. The base LP stays feasible
/// and bounded, so a cold solve yields an optimal warm basis; a *single
/// bound change* then steers the child's status class: `upper[w] = 0`
/// contradicts `w ≥ 1` (infeasible), `upper[z] = ∞` frees the ray
/// (unbounded), and clamping any original variable onto the witness
/// keeps the child optimal. Returns `(problem, w, z)`.
fn build_dual_base(raw: &InstanceRaw, tight: bool, duplicate: bool) -> (LpProblem, usize, usize) {
    let mut p = build_feasible(raw, tight, duplicate);
    let z = p.objective.len();
    for row in &mut p.rows {
        if row.op == ConstraintOp::Geq {
            row.coeffs.push((z, 1.0));
        }
    }
    p.objective.push(-1.0);
    p.lower.push(0.0);
    p.upper.push(6.0);
    let w = p.objective.len();
    p.rows.push(LpRow {
        coeffs: vec![(w, 1.0)],
        op: ConstraintOp::Geq,
        rhs: 1.0,
    });
    p.objective.push(1.0);
    p.lower.push(0.0);
    p.upper.push(2.0);
    (p, w, z)
}

/// One dual-vs-dense oracle check: warm re-solve the engine under the
/// child bounds (single bound change from the base) against a cold dense
/// solve of the identical child problem.
fn check_dual_child(
    engine: &mut simplex::SimplexEngine<'_>,
    basis: &simplex::Basis,
    p: &LpProblem,
    lower: &[f64],
    upper: &[f64],
    what: &str,
) -> Result<(), TestCaseError> {
    let child = LpProblem {
        objective: p.objective.clone(),
        rows: p.rows.clone(),
        lower: lower.to_vec(),
        upper: upper.to_vec(),
    };
    let oracle = dense::solve(&child);
    let (sol, _) = engine.solve(lower, upper, None, Some(basis));
    prop_assert_eq!(
        sol.status,
        oracle.status,
        "{}: engine {:?} vs oracle {:?}",
        what,
        sol.status,
        oracle.status
    );
    if sol.status == LpStatus::Optimal {
        prop_assert!(
            (sol.objective - oracle.objective).abs() <= OBJ_TOL,
            "{}: engine {} vs oracle {}",
            what,
            sol.objective,
            oracle.objective
        );
        let viol = primal_violation(&child, &sol.x);
        prop_assert!(
            viol <= OBJ_TOL,
            "{what}: warm point violates the child by {viol}"
        );
    }
    Ok(())
}

/// Worst violation of `x` against the rows and bounds of `p`.
fn primal_violation(p: &LpProblem, x: &[f64]) -> f64 {
    let mut worst = 0.0f64;
    for (l, (u, v)) in p.lower.iter().zip(p.upper.iter().zip(x)) {
        worst = worst.max(l - v).max(v - u);
    }
    for row in &p.rows {
        let ax: f64 = row.coeffs.iter().map(|&(j, a)| a * x[j]).sum();
        let gap = match row.op {
            ConstraintOp::Leq => ax - row.rhs,
            ConstraintOp::Geq => row.rhs - ax,
            ConstraintOp::Eq => (ax - row.rhs).abs(),
        };
        worst = worst.max(gap);
    }
    worst
}

/// Mirrors `p` as a minimisation [`Model`]; `integer[j]` (when present)
/// upgrades variable `j` to an integer. All instance constructions above
/// use integral witnesses and bounds, so integrality never breaks the
/// guaranteed status class.
fn model_from_problem(p: &LpProblem, integer: &[bool]) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let ids: Vec<_> = p
        .lower
        .iter()
        .zip(&p.upper)
        .enumerate()
        .map(|(j, (&l, &u))| {
            if integer.get(j).copied().unwrap_or(false) {
                m.integer_var(format!("x{j}"), l, u)
            } else {
                m.continuous_var(format!("x{j}"), l, u)
            }
        })
        .collect();
    let mut obj = LinExpr::new();
    for (j, &c) in p.objective.iter().enumerate() {
        obj.add_term(ids[j], c);
    }
    m.set_objective(obj);
    for row in &p.rows {
        let mut e = LinExpr::new();
        for &(j, a) in &row.coeffs {
            e.add_term(ids[j], a);
        }
        m.add_constraint(e, row.op, row.rhs);
    }
    m
}

/// Every other variable integer, rotated by the instance's spare index, so
/// the mask varies across cases but is deterministic per instance.
fn integer_mask(raw: &InstanceRaw) -> Vec<bool> {
    (0..raw.0).map(|j| (j + raw.3).is_multiple_of(2)).collect()
}

/// Solves the same [`Model`] with presolve on and off; the two runs must
/// agree on the status, agree on the objective within [`OBJ_TOL`] when
/// optimal, and the presolved (postsolve-restored) point must satisfy the
/// original rows and bounds.
fn check_presolve_agreement(p: &LpProblem, integer: &[bool]) -> Result<(), TestCaseError> {
    let m = model_from_problem(p, integer);
    let with = MilpSolver::new().presolve(true).solve(&m).unwrap();
    let without = MilpSolver::new().presolve(false).solve(&m).unwrap();
    prop_assert_eq!(
        with.status,
        without.status,
        "presolve changed the verdict on {:?}",
        p
    );
    if with.status == SolveStatus::Optimal {
        let a = with.best.expect("optimal outcome carries a solution");
        let b = without.best.expect("optimal outcome carries a solution");
        prop_assert!(
            (a.objective - b.objective).abs() <= OBJ_TOL,
            "objectives diverge: presolved {} vs raw {} on {:?}",
            a.objective,
            b.objective,
            p
        );
        let viol = primal_violation(p, a.values());
        prop_assert!(
            viol <= OBJ_TOL,
            "restored point violates the model by {viol}"
        );
        for (j, &is_int) in integer.iter().enumerate() {
            if is_int {
                let v = a.values()[j];
                prop_assert!(
                    (v - v.round()).abs() <= OBJ_TOL,
                    "restored x{j}={v} is fractional"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn feasible_lps_agree(raw in arb_instance()) {
        let p = build_feasible(&raw, false, false);
        let d = dense::solve(&p);
        let s = simplex::solve(&p);
        prop_assert_eq!(d.status, LpStatus::Optimal, "oracle on a feasible bounded LP: {:?}", d.status);
        prop_assert_eq!(s.status, LpStatus::Optimal, "revised simplex on a feasible bounded LP: {:?}", s.status);
        prop_assert!(
            (d.objective - s.objective).abs() <= OBJ_TOL,
            "objectives diverge: dense {} vs sparse {} on {:?}",
            d.objective, s.objective, p
        );
        let viol = primal_violation(&p, &s.x);
        prop_assert!(viol <= OBJ_TOL, "sparse point violates the LP by {viol}");
    }

    #[test]
    fn degenerate_lps_agree(raw in arb_instance()) {
        // Every row tight at the witness and duplicated: the optimum sits
        // on a redundantly-described vertex, the classic breeding ground
        // for ratio-test ties and cycling.
        let p = build_feasible(&raw, true, true);
        let d = dense::solve(&p);
        let s = simplex::solve(&p);
        prop_assert_eq!(d.status, LpStatus::Optimal, "oracle on a degenerate LP: {:?}", d.status);
        prop_assert_eq!(s.status, LpStatus::Optimal, "revised simplex on a degenerate LP: {:?}", s.status);
        prop_assert!(
            (d.objective - s.objective).abs() <= OBJ_TOL,
            "objectives diverge: dense {} vs sparse {} on {:?}",
            d.objective, s.objective, p
        );
        let viol = primal_violation(&p, &s.x);
        prop_assert!(viol <= OBJ_TOL, "sparse point violates the LP by {viol}");
    }

    #[test]
    fn infeasible_lps_agree(raw in arb_instance()) {
        let p = build_infeasible(&raw);
        let d = dense::solve(&p);
        let s = simplex::solve(&p);
        prop_assert_eq!(d.status, LpStatus::Infeasible, "oracle: {:?}", d.status);
        prop_assert_eq!(s.status, LpStatus::Infeasible, "revised simplex: {:?}", s.status);
    }

    #[test]
    fn unbounded_lps_agree(raw in arb_instance()) {
        let p = build_unbounded(&raw);
        let d = dense::solve(&p);
        let s = simplex::solve(&p);
        prop_assert_eq!(d.status, LpStatus::Unbounded, "oracle: {:?}", d.status);
        prop_assert_eq!(s.status, LpStatus::Unbounded, "revised simplex: {:?}", s.status);
    }

    // ---- dual-vs-dense oracle: a warm re-solve after a single bound
    // change (the branch-and-bound child pattern, which takes the dual
    // simplex path whenever the parent basis stays dual feasible) must
    // agree with a cold dense solve of the same child, across all four
    // status classes ----

    #[test]
    fn dual_resolve_after_one_bound_change_agrees_with_dense(raw in arb_instance()) {
        let (p, w, z) = build_dual_base(&raw, false, false);
        let prepared = SparseLp::from_problem(&p);
        let mut engine = prepared.engine();
        let (root, basis) = engine.solve(&p.lower, &p.upper, None, None);
        prop_assert_eq!(root.status, LpStatus::Optimal, "dual base must be optimal: {:?}", root.status);
        let basis = basis.expect("optimal solve returns a basis");

        // Optimal child: clamp one original variable onto the witness.
        let j = raw.3 % raw.0;
        let mut upper = p.upper.clone();
        upper[j] = f64::from(raw.1[j].0);
        check_dual_child(&mut engine, &basis, &p, &p.lower, &upper, "optimal child")?;

        // Infeasible child: upper[w] = 0 contradicts the row w >= 1.
        let mut upper = p.upper.clone();
        upper[w] = 0.0;
        check_dual_child(&mut engine, &basis, &p, &p.lower, &upper, "infeasible child")?;

        // Unbounded child: freeing the ray variable dives the objective.
        let mut upper = p.upper.clone();
        upper[z] = f64::INFINITY;
        check_dual_child(&mut engine, &basis, &p, &p.lower, &upper, "unbounded child")?;
    }

    #[test]
    fn dual_resolve_on_degenerate_base_agrees_with_dense(raw in arb_instance()) {
        // Tight, duplicated rows: the warm basis sits on a massively tied
        // vertex, stressing the dual ratio test's tie handling.
        let (p, w, _z) = build_dual_base(&raw, true, true);
        let prepared = SparseLp::from_problem(&p);
        let mut engine = prepared.engine();
        let (root, basis) = engine.solve(&p.lower, &p.upper, None, None);
        prop_assert_eq!(root.status, LpStatus::Optimal, "degenerate dual base: {:?}", root.status);
        let basis = basis.expect("optimal solve returns a basis");

        let j = raw.3 % raw.0;
        let mut upper = p.upper.clone();
        upper[j] = f64::from(raw.1[j].0);
        check_dual_child(&mut engine, &basis, &p, &p.lower, &upper, "degenerate optimal child")?;

        let mut upper = p.upper.clone();
        upper[w] = 0.0;
        check_dual_child(&mut engine, &basis, &p, &p.lower, &upper, "degenerate infeasible child")?;
    }

    // ---- presolve differential: the presolved solver against the raw
    // solver on the same model, one test per guaranteed status class ----

    #[test]
    fn presolve_agrees_on_feasible(raw in arb_instance()) {
        check_presolve_agreement(&build_feasible(&raw, false, false), &integer_mask(&raw))?;
    }

    #[test]
    fn presolve_agrees_on_degenerate(raw in arb_instance()) {
        // Duplicated tight rows are presolve's favourite food (duplicate
        // and redundant row elimination both fire); verdicts must not move.
        check_presolve_agreement(&build_feasible(&raw, true, true), &integer_mask(&raw))?;
    }

    #[test]
    fn presolve_agrees_on_infeasible(raw in arb_instance()) {
        check_presolve_agreement(&build_infeasible(&raw), &integer_mask(&raw))?;
    }

    #[test]
    fn presolve_agrees_on_unbounded(raw in arb_instance()) {
        // The ray variable z is appended after the mask, so it stays
        // continuous and the instance stays certifiably unbounded.
        check_presolve_agreement(&build_unbounded(&raw), &integer_mask(&raw))?;
    }

    #[test]
    fn postsolve_roundtrips_to_feasible_original(raw in arb_instance()) {
        let p = build_feasible(&raw, false, false);
        let n = p.objective.len();
        let integer = integer_mask(&raw);
        let m = model_from_problem(&p, &integer);
        match presolve(&m) {
            fpva_ilp::Presolved { outcome: PresolveOutcome::Reduced(red), postsolve, .. } => {
                prop_assert_eq!(postsolve.original_var_count(), n);
                prop_assert_eq!(postsolve.reduced_var_count(), red.var_count());
                let out = MilpSolver::new().presolve(false).solve(&red).unwrap();
                prop_assert_eq!(out.status, SolveStatus::Optimal, "reduced model of a feasible instance");
                let restored = postsolve.restore(out.best.unwrap().values());
                prop_assert_eq!(restored.len(), n);
                let viol = primal_violation(&p, &restored);
                prop_assert!(viol <= OBJ_TOL, "postsolve point violates the original by {viol}");
                for (j, &is_int) in integer.iter().enumerate() {
                    if is_int {
                        prop_assert!(
                            (restored[j] - restored[j].round()).abs() <= OBJ_TOL,
                            "postsolve made x{j}={} fractional", restored[j]
                        );
                    }
                }
            }
            fpva_ilp::Presolved { outcome: PresolveOutcome::Solved(values), .. } => {
                prop_assert_eq!(values.len(), n);
                let viol = primal_violation(&p, &values);
                prop_assert!(viol <= OBJ_TOL, "presolve-solved point violates the original by {viol}");
            }
            fpva_ilp::Presolved { outcome, .. } => {
                prop_assert!(false, "feasible instance presolved to {outcome:?}");
            }
        }
    }
}

/// Deterministic long warm-start chain: one persistent engine re-solves
/// the same LP under a cycling schedule of bound tightenings, each step
/// checked against a fresh dense-oracle solve of the identical problem.
/// The chain pushes hundreds of Forrest–Tomlin updates through the
/// engine's basis with only the occasional freshness refactorization —
/// exactly the branch-and-bound access pattern the LU factors exist for.
#[test]
fn long_warm_start_chain_tracks_dense_oracle() {
    // The shared multi-knapsack chain workload (`fpva_ilp::fixtures`):
    // binding capacity rows force real pivots on every re-solve, and the
    // schedule keeps each step feasible, so every step is Optimal. The
    // `fpva-bench` LU bench times this exact construction.
    let p = fixtures::multi_knapsack_lp();
    let prepared = SparseLp::from_problem(&p);
    let mut engine = prepared.engine();
    let mut basis = None;
    let mut agreements = 0usize;
    for step in 0..400 {
        let (lower, upper) = fixtures::chain_bounds(step);
        // Every 25th step drops the warm basis on purpose, so the chain
        // mixes cold primal phase-1 solves into the dual re-solves and
        // both start paths are exercised against the oracle.
        let warm = if step % 25 == 24 {
            None
        } else {
            basis.as_ref()
        };
        let (sol, next_basis) = engine.solve(&lower, &upper, None, warm);
        let oracle = dense::solve(&LpProblem {
            objective: p.objective.clone(),
            rows: p.rows.clone(),
            lower,
            upper,
        });
        assert_eq!(
            sol.status, oracle.status,
            "step {step}: engine {:?} vs oracle {:?}",
            sol.status, oracle.status
        );
        if sol.status == LpStatus::Optimal {
            assert!(
                (sol.objective - oracle.objective).abs() <= OBJ_TOL,
                "step {step}: engine {} vs oracle {}",
                sol.objective,
                oracle.objective
            );
            agreements += 1;
        }
        if let Some(nb) = next_basis {
            basis = Some(nb);
        }
    }
    assert!(agreements >= 350, "only {agreements} optimal steps");
    let stats = engine.factor_stats();
    // The floor sat at 250 before the dual method landed; dual re-solves
    // reach feasibility in fewer pivots, so the chain legitimately
    // produces fewer Forrest–Tomlin updates now.
    assert!(
        stats.ft_updates >= 150,
        "chain exercised only {} Forrest–Tomlin updates",
        stats.ft_updates
    );
    // 8× rather than the old 10×: the deliberate cold steps above each
    // refactorize from the slack basis, which an all-warm chain avoided.
    assert!(
        stats.ft_updates >= 8 * stats.refactorizations.max(1),
        "updates ({}) should dwarf refactorizations ({})",
        stats.ft_updates,
        stats.refactorizations
    );
    let es = engine.engine_stats();
    assert_eq!(
        es.cold_restarts, 0,
        "every warm basis in the chain comes from the engine's own optimal \
         solve, so none may be rejected into a cold restart"
    );
    assert!(
        es.dual_pivots > 0,
        "the chain's bound tightenings must exercise the dual simplex"
    );
    assert!(
        es.warm_resolves >= 350,
        "only {} of the supplied warm bases were used",
        es.warm_resolves
    );
}

/// A basis driven towards numerical singularity: two near-parallel rows
/// make the optimal basis ill-conditioned, so Forrest–Tomlin updates
/// and/or the refactorization stability threshold must engage without
/// corrupting the reported optimum.
#[test]
fn near_singular_basis_recovers() {
    for eps_pow in [6, 8, 10] {
        let eps = 10f64.powi(-eps_pow);
        // min x + y subject to x + y >= 2, x + (1+eps)y >= 2, x − y <= 0,
        // all within [0, 4]: the first two rows are nearly dependent and
        // meet the third at a sliver vertex.
        let p = LpProblem {
            objective: vec![1.0, 1.0],
            rows: vec![
                LpRow {
                    coeffs: vec![(0, 1.0), (1, 1.0)],
                    op: ConstraintOp::Geq,
                    rhs: 2.0,
                },
                LpRow {
                    coeffs: vec![(0, 1.0), (1, 1.0 + eps)],
                    op: ConstraintOp::Geq,
                    rhs: 2.0,
                },
                LpRow {
                    coeffs: vec![(0, 1.0), (1, -1.0)],
                    op: ConstraintOp::Leq,
                    rhs: 0.0,
                },
            ],
            lower: vec![0.0, 0.0],
            upper: vec![4.0, 4.0],
        };
        let s = simplex::solve(&p);
        let d = dense::solve(&p);
        assert_eq!(s.status, LpStatus::Optimal, "eps=1e-{eps_pow}");
        assert_eq!(d.status, LpStatus::Optimal, "oracle, eps=1e-{eps_pow}");
        assert!(
            (s.objective - d.objective).abs() <= 1e-5,
            "eps=1e-{eps_pow}: engine {} vs oracle {}",
            s.objective,
            d.objective
        );
    }

    // The same ill-conditioning under warm starts: re-solving with
    // progressively tighter bounds walks the engine through the
    // near-singular bases repeatedly; every resolve must stay exact.
    let eps = 1e-9;
    let p = LpProblem {
        objective: vec![1.0, 1.0, 0.5],
        rows: vec![
            LpRow {
                coeffs: vec![(0, 1.0), (1, 1.0), (2, 1.0)],
                op: ConstraintOp::Geq,
                rhs: 3.0,
            },
            LpRow {
                coeffs: vec![(0, 1.0), (1, 1.0 + eps), (2, 1.0)],
                op: ConstraintOp::Geq,
                rhs: 3.0,
            },
            LpRow {
                coeffs: vec![(0, 1.0), (1, -1.0)],
                op: ConstraintOp::Leq,
                rhs: 0.0,
            },
        ],
        lower: vec![0.0; 3],
        upper: vec![5.0; 3],
    };
    let prepared = SparseLp::from_problem(&p);
    let mut engine = prepared.engine();
    let mut basis = None;
    for step in 0..40 {
        let hi = 5.0 - 0.1 * f64::from(step % 20);
        let upper = vec![5.0, hi, 5.0];
        let (sol, nb) = engine.solve(&p.lower, &upper, None, basis.as_ref());
        let oracle = dense::solve(&LpProblem {
            objective: p.objective.clone(),
            rows: p.rows.clone(),
            lower: p.lower.clone(),
            upper,
        });
        assert_eq!(sol.status, oracle.status, "step {step}");
        if sol.status == LpStatus::Optimal {
            assert!(
                (sol.objective - oracle.objective).abs() <= 1e-5,
                "step {step}: engine {} vs oracle {}",
                sol.objective,
                oracle.objective
            );
        }
        if let Some(nb) = nb {
            basis = Some(nb);
        }
    }
}
