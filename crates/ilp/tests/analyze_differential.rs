//! Differential harness for the root static analysis ([`fpva_ilp::analyze`]):
//! every deduction the analyzer emits must preserve the integer feasible
//! set, and every corrupted probing log must fail the exact audit.
//!
//! Random MILPs are generated **by status class** with the same witness
//! construction as `ilp_differential.rs` — the class is guaranteed, so a
//! disagreement is always an analyzer bug, never an ambiguous instance:
//!
//! * **feasible / degenerate** — an integral witness `x0` inside a finite
//!   box; the analyzer's lifted box must still contain `x0` (checked via a
//!   [`fpva_ilp::dense`] solve of the tightened relaxation staying
//!   `Optimal`) and the tightened MILP must keep the exact optimum of the
//!   untightened solve;
//! * **infeasible** — the witness construction plus a contradictory row;
//!   whatever the analyzer deduces, the verdict must stay `Infeasible`;
//! * **unbounded** — a continuous cost −1 ray variable; the analyzer may
//!   not clip the ray's infinite bound, and the verdict must stay
//!   `Unbounded`.
//!
//! On top of the set-preservation checks, every logged probe fixing is
//! replayed *differentially*: re-solving the model with the variable
//! clamped to the refuted value must come back `Infeasible` from a solver
//! with analysis disabled — the deduction must be true, not just internally
//! consistent.
//!
//! The deterministic tests at the bottom corrupt a certified solve's
//! probing log one field at a time; `certify_outcome` must reject every
//! mutant with [`CertifyError::Analysis`] — a 100% kill rate, since each
//! corruption claims a deduction the exact re-derivation cannot make.

use fpva_ilp::certify::CertifyError;
use fpva_ilp::dense;
use fpva_ilp::simplex::{LpProblem, LpRow, LpStatus};
use fpva_ilp::{
    analyze::{analyze, AnalyzeOptions},
    certify_outcome, ConstraintOp, LinExpr, MilpSolver, Model, Sense, SolveStatus,
};
use proptest::prelude::*;

/// Objective agreement tolerance between the tightened and raw solves.
const OBJ_TOL: f64 = 1e-6;

/// Per-variable raw draw: (witness value, lower slack below the witness,
/// upper headroom above it, objective coefficient ×2).
type VarRaw = (i32, i32, i32, i32);
/// Per-row raw draw: sparse support as (unreduced index, coefficient),
/// an operator selector, and a non-negative slack.
type RowRaw = (Vec<(usize, i32)>, u8, i32);
/// One full instance draw: variable count, per-variable data (oversized,
/// truncated to the count), row data, and a spare index.
type InstanceRaw = (usize, Vec<VarRaw>, Vec<RowRaw>, usize);

fn arb_instance() -> impl Strategy<Value = InstanceRaw> {
    (
        2usize..8,
        proptest::collection::vec((0i32..4, 0i32..3, 0i32..4, -5i32..6), 8..9),
        proptest::collection::vec(
            (
                proptest::collection::vec((0usize..64, -4i32..5), 1..4),
                0u8..3,
                0i32..4,
            ),
            1..6,
        ),
        0usize..64,
    )
}

/// Builds a guaranteed-feasible, guaranteed-bounded LP around the integral
/// witness point (see `ilp_differential.rs` for the construction).
fn build_feasible(raw: &InstanceRaw, tight: bool, duplicate: bool) -> LpProblem {
    let (n, ref vars, ref rows, _) = *raw;
    let x0: Vec<f64> = vars[..n].iter().map(|v| f64::from(v.0)).collect();
    let lower: Vec<f64> = vars[..n]
        .iter()
        .zip(&x0)
        .map(|(v, x)| x - f64::from(v.1))
        .collect();
    let upper: Vec<f64> = vars[..n]
        .iter()
        .zip(&x0)
        .map(|(v, x)| x + f64::from(v.2))
        .collect();
    let objective: Vec<f64> = vars[..n].iter().map(|v| f64::from(v.3) * 0.5).collect();
    let mut out_rows = Vec::new();
    for (support, op_sel, slack) in rows {
        let coeffs: Vec<(usize, f64)> = support
            .iter()
            .map(|&(j, a)| (j % n, f64::from(a)))
            .collect();
        let ax0: f64 = coeffs.iter().map(|&(j, a)| a * x0[j]).sum();
        let slack = if tight { 0.0 } else { f64::from(*slack) };
        let (op, rhs) = match op_sel % 3 {
            0 => (ConstraintOp::Leq, ax0 + slack),
            1 => (ConstraintOp::Geq, ax0 - slack),
            _ => (ConstraintOp::Eq, ax0),
        };
        let row = LpRow { coeffs, op, rhs };
        if duplicate {
            out_rows.push(row.clone());
        }
        out_rows.push(row);
    }
    LpProblem {
        objective,
        rows: out_rows,
        lower,
        upper,
    }
}

/// The feasible problem plus the contradictory row `x_j ≥ ub_j + 1`.
fn build_infeasible(raw: &InstanceRaw) -> LpProblem {
    let mut p = build_feasible(raw, false, false);
    let j = raw.3 % raw.0;
    p.rows.push(LpRow {
        coeffs: vec![(j, 1.0)],
        op: ConstraintOp::Geq,
        rhs: p.upper[j] + 1.0,
    });
    p
}

/// The feasible problem plus a cost −1 continuous ray `z ∈ [0, ∞)` that
/// appears (with +1) only in `≥` rows: `(x0, z → ∞)` stays feasible while
/// the objective dives.
fn build_unbounded(raw: &InstanceRaw) -> LpProblem {
    let mut p = build_feasible(raw, false, false);
    let z = p.objective.len();
    for row in &mut p.rows {
        if row.op == ConstraintOp::Geq {
            row.coeffs.push((z, 1.0));
        }
    }
    p.objective.push(-1.0);
    p.lower.push(0.0);
    p.upper.push(f64::INFINITY);
    p
}

/// Mirrors `p` as a minimisation [`Model`]; `integer[j]` (when present)
/// upgrades variable `j` to an integer. All witnesses and bounds above are
/// integral, so integrality never breaks the guaranteed status class.
fn model_from_problem(p: &LpProblem, integer: &[bool]) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let ids: Vec<_> = p
        .lower
        .iter()
        .zip(&p.upper)
        .enumerate()
        .map(|(j, (&l, &u))| {
            if integer.get(j).copied().unwrap_or(false) {
                m.integer_var(format!("x{j}"), l, u)
            } else {
                m.continuous_var(format!("x{j}"), l, u)
            }
        })
        .collect();
    let mut obj = LinExpr::new();
    for (j, &c) in p.objective.iter().enumerate() {
        obj.add_term(ids[j], c);
    }
    m.set_objective(obj);
    for row in &p.rows {
        let mut e = LinExpr::new();
        for &(j, a) in &row.coeffs {
            e.add_term(ids[j], a);
        }
        m.add_constraint(e, row.op, row.rhs);
    }
    m
}

/// Every other variable integer, rotated by the instance's spare index.
fn integer_mask(raw: &InstanceRaw) -> Vec<bool> {
    (0..raw.0).map(|j| (j + raw.3).is_multiple_of(2)).collect()
}

/// A reference solver with both presolve and the root analysis disabled:
/// the plain branch-and-bound acts as the ground-truth oracle the
/// analyzer's claims are checked against.
fn plain_solver() -> MilpSolver {
    MilpSolver::new().presolve(false).analyze(false)
}

/// The core differential check, shared by the four status classes.
///
/// Runs [`analyze`] on the mirrored model, then:
/// 1. solves the *untightened* model with the plain oracle solver;
/// 2. if the analyzer claims root infeasibility, the oracle must agree;
/// 3. otherwise re-solves under the analyzer's tightened box and demands
///    the identical status (and objective, when optimal) — a deduction
///    that cuts off the optimum or revives an infeasible model is a bug;
/// 4. replays every logged probe fixing against the oracle: clamping the
///    variable to the refuted value must be `Infeasible`.
fn check_analysis_preserves(p: &LpProblem, integer: &[bool]) -> Result<(), TestCaseError> {
    let m = model_from_problem(p, integer);
    let analysis = analyze(&m, &[], &AnalyzeOptions::default());
    let reference = plain_solver().solve(&m).unwrap();

    if analysis.infeasible {
        prop_assert_eq!(
            reference.status,
            SolveStatus::Infeasible,
            "analysis proved infeasibility of a model the solver decides {:?}",
            reference.status
        );
        return Ok(());
    }

    // The tightened model: same rows and objective, the analyzer's box.
    prop_assert_eq!(analysis.lower.len(), p.lower.len());
    let tight = LpProblem {
        objective: p.objective.clone(),
        rows: p.rows.clone(),
        lower: analysis.lower.clone(),
        upper: analysis.upper.clone(),
    };
    for j in 0..p.lower.len() {
        prop_assert!(
            tight.lower[j] >= p.lower[j] - OBJ_TOL && tight.upper[j] <= p.upper[j] + OBJ_TOL,
            "analysis widened the box on x{j}: [{}, {}] -> [{}, {}]",
            p.lower[j],
            p.upper[j],
            tight.lower[j],
            tight.upper[j]
        );
    }
    let tm = model_from_problem(&tight, integer);
    let tightened = plain_solver().solve(&tm).unwrap();
    prop_assert_eq!(
        tightened.status,
        reference.status,
        "analysis moved the verdict from {:?} to {:?}",
        reference.status,
        tightened.status
    );
    if reference.status == SolveStatus::Optimal {
        let a = reference.best.as_ref().expect("optimal carries a solution");
        let b = tightened.best.as_ref().expect("optimal carries a solution");
        prop_assert!(
            (a.objective - b.objective).abs() <= OBJ_TOL,
            "analysis moved the optimum from {} to {}",
            a.objective,
            b.objective
        );
        // Stronger than objective agreement: the untightened optimum is a
        // feasible point, so it must survive every deduction verbatim.
        for (j, &v) in a.values().iter().enumerate() {
            prop_assert!(
                v >= analysis.lower[j] - OBJ_TOL && v <= analysis.upper[j] + OBJ_TOL,
                "lifted bound on x{j} cuts off the optimum {v}: [{}, {}]",
                analysis.lower[j],
                analysis.upper[j]
            );
        }
        for f in &analysis.fixings {
            prop_assert!(
                (a.values()[f.var] - f.value).abs() <= OBJ_TOL,
                "fixing x{} = {} contradicts the optimum's {}",
                f.var,
                f.value,
                a.values()[f.var]
            );
        }
    }

    // Differential fixing replay: the refuted side must truly be
    // integer-infeasible, as judged by the analysis-free oracle.
    for f in &analysis.fixings {
        let mut clamped = p.clone();
        clamped.lower[f.var] = f.probed;
        clamped.upper[f.var] = f.probed;
        let out = plain_solver()
            .solve(&model_from_problem(&clamped, integer))
            .unwrap();
        prop_assert_eq!(
            out.status,
            SolveStatus::Infeasible,
            "probe fixing x{} = {} claims x{} = {} is infeasible, but the oracle says {:?}",
            f.var,
            f.value,
            f.var,
            f.probed,
            out.status
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn analysis_preserves_feasible(raw in arb_instance()) {
        let p = build_feasible(&raw, false, false);
        check_analysis_preserves(&p, &integer_mask(&raw))?;
        // Relaxation sanity: the integral witness survives the lifted box,
        // so the dense oracle on the tightened *relaxation* stays Optimal.
        let m = model_from_problem(&p, &integer_mask(&raw));
        let analysis = analyze(&m, &[], &AnalyzeOptions::default());
        prop_assert!(!analysis.infeasible, "analysis refuted a feasible instance");
        let d = dense::solve(&LpProblem {
            objective: p.objective.clone(),
            rows: p.rows.clone(),
            lower: analysis.lower.clone(),
            upper: analysis.upper.clone(),
        });
        prop_assert_eq!(
            d.status,
            LpStatus::Optimal,
            "tightened relaxation of a feasible instance: {:?}",
            d.status
        );
    }

    #[test]
    fn analysis_preserves_degenerate(raw in arb_instance()) {
        // Tight, duplicated rows: probing walks a maze of redundant
        // constraints, the classic source of over-eager deductions.
        check_analysis_preserves(&build_feasible(&raw, true, true), &integer_mask(&raw))?;
    }

    #[test]
    fn analysis_preserves_infeasible(raw in arb_instance()) {
        check_analysis_preserves(&build_infeasible(&raw), &integer_mask(&raw))?;
    }

    #[test]
    fn analysis_preserves_unbounded(raw in arb_instance()) {
        let p = build_unbounded(&raw);
        let integer = integer_mask(&raw);
        check_analysis_preserves(&p, &integer)?;
        // The ray variable's headroom is the unboundedness itself: any
        // "lifted" finite cap on it would silently bound the model.
        let m = model_from_problem(&p, &integer);
        let analysis = analyze(&m, &[], &AnalyzeOptions::default());
        if !analysis.infeasible {
            let z = p.objective.len() - 1;
            prop_assert!(
                analysis.upper[z].is_infinite(),
                "analysis clipped the ray variable to {}",
                analysis.upper[z]
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Corrupted probing logs: `certify_outcome` must reject every mutant.
// ---------------------------------------------------------------------------

/// The canonical forced-fixing model: `x + y ≥ 1` and `x − y ≥ 0` force
/// `x = 1` (probing `x = 0` propagates `y ≥ 1` and `y ≤ 0`). A certified
/// solve of it logs exactly that deduction.
fn forced_fixing_model() -> Model {
    let mut m = Model::new(Sense::Minimize);
    let x = m.binary_var("x");
    let y = m.binary_var("y");
    m.add_geq(x + y, 1.0);
    m.add_geq(x - y, 0.0);
    m.set_objective(x + y);
    m
}

#[test]
fn certified_probing_log_passes_pristine() {
    let m = forced_fixing_model();
    let out = MilpSolver::new().certificate(true).solve(&m).unwrap();
    assert_eq!(out.status, SolveStatus::Optimal);
    let cert = out
        .certificate
        .as_ref()
        .expect("certified solve logs a proof");
    assert!(
        !cert.analysis.is_empty(),
        "the forced fixing x = 1 must appear in the probing log"
    );
    let summary = certify_outcome(&m, &out).expect("pristine certificate verifies");
    assert_eq!(summary.probe_fixings, cert.analysis.len());
}

/// Every corruption of the probing log must die in the exact audit — a
/// 100% kill rate. Each mutant claims a deduction whose exact rational
/// re-derivation fails, so surviving one is a soundness hole.
#[test]
fn corrupted_probing_logs_are_rejected() {
    let m = forced_fixing_model();
    let out = MilpSolver::new().certificate(true).solve(&m).unwrap();
    assert_eq!(out.status, SolveStatus::Optimal);
    assert!(!out.certificate.as_ref().unwrap().analysis.is_empty());

    type Mutation = Box<dyn Fn(&mut fpva_ilp::ProbeFixing)>;
    let mutations: Vec<(&str, Mutation)> = vec![
        (
            "swap value and probed (claims x = 0 forced)",
            Box::new(|f| {
                std::mem::swap(&mut f.value, &mut f.probed);
            }),
        ),
        (
            "retarget the fixing to the unforced variable y",
            Box::new(|f| f.var = 1),
        ),
        (
            "probe the already-true side (no refutation exists)",
            Box::new(|f| f.probed = f.value),
        ),
        ("out-of-range variable index", Box::new(|f| f.var = 99)),
        (
            "fractional fixed value on a binary",
            Box::new(|f| f.value = 0.5),
        ),
    ];
    let mut rejected = 0usize;
    for (what, mutate) in &mutations {
        let mut mutant = out.clone();
        let log = &mut mutant.certificate.as_mut().unwrap().analysis;
        mutate(&mut log[0]);
        match certify_outcome(&m, &mutant) {
            Err(CertifyError::Analysis { .. }) => rejected += 1,
            Err(other) => panic!("{what}: rejected, but not as an analysis error: {other:?}"),
            Ok(_) => panic!("{what}: corrupted probing log certified"),
        }
    }
    assert_eq!(rejected, mutations.len(), "every mutant must be rejected");
}

/// A fabricated deduction appended to an otherwise-valid log must also be
/// rejected: the audit re-derives each entry, it does not just check the
/// entries it happens to like.
#[test]
fn fabricated_probing_entry_is_rejected() {
    let m = forced_fixing_model();
    let out = MilpSolver::new().certificate(true).solve(&m).unwrap();
    let mut mutant = out.clone();
    mutant
        .certificate
        .as_mut()
        .unwrap()
        .analysis
        .push(fpva_ilp::ProbeFixing {
            var: 1,
            value: 1.0,
            probed: 0.0,
        });
    match certify_outcome(&m, &mutant) {
        Err(CertifyError::Analysis { .. }) => {}
        other => panic!("fabricated y = 1 deduction must be rejected, got {other:?}"),
    }
}
