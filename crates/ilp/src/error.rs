//! Error type of the solver.

use std::error::Error;
use std::fmt;

/// Errors reported by [`crate::MilpSolver::solve`].
///
/// Infeasibility and unboundedness are *not* errors — they are reported in
/// [`crate::MilpOutcome::status`], because they are legitimate answers about
/// a well-formed model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IlpError {
    /// The model is malformed (non-finite coefficients, foreign variables).
    BadModel(String),
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::BadModel(what) => write!(f, "malformed model: {what}"),
        }
    }
}

impl Error for IlpError {}
