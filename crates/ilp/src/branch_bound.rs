//! Branch-and-bound driver on top of the simplex relaxation.

use crate::analyze::{self, Analysis, AnalyzeOptions, SignedPerm};
use crate::certify::{LeafCert, MilpCertificate, NodeCert};
use crate::error::IlpError;
use crate::model::{Model, Sense, VarKind};
use crate::presolve::{self, Postsolve, PresolveOutcome, PresolveStats, Propagator};
use crate::simplex::{Basis, LpCertificate, LpStatus};
use crate::solution::{MilpOutcome, Solution, SolveStats, SolveStatus};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Tuning knobs for [`MilpSolver`].
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Abort the search after this wall-clock time; the best incumbent (if
    /// any) is returned with status [`SolveStatus::Feasible`].
    pub time_limit: Option<Duration>,
    /// Abort after this many branch-and-bound nodes.
    pub node_limit: Option<usize>,
    /// A value is considered integral when within this distance of an
    /// integer.
    pub integer_tol: f64,
    /// Known objective value of some feasible solution (in the model's
    /// sense). Used as an initial cutoff; the solution itself is *not*
    /// reconstructed — supply it for pruning when a heuristic already
    /// produced an incumbent.
    pub initial_incumbent: Option<f64>,
    /// Stop at the first feasible integer solution (useful for pure
    /// feasibility models); the outcome status is then
    /// [`SolveStatus::Feasible`] unless the tree was exhausted anyway.
    pub stop_at_first: bool,
    /// Run the static [`crate::presolve()`] pass before branch-and-bound
    /// (default `true`): the root model is reduced once, integer bounds
    /// are re-propagated at every node, and reported solutions are
    /// mapped back through the postsolve record. Disable to solve the
    /// model exactly as written (used by differential harnesses).
    pub presolve: bool,
    /// Record a proof log ([`MilpCertificate`]) of the run into
    /// [`MilpOutcome::certificate`], re-verifiable in exact arithmetic by
    /// [`crate::certify::certify_outcome`]. Certificate mode keeps every
    /// pruning decision provable: per-node bound propagation is disabled
    /// (its tightenings are unproved deductions), and verdicts presolve
    /// certifies on its own are re-proved by branch-and-bound on the
    /// original model. Off by default — proof logging costs memory
    /// (duals per leaf) and some speed.
    pub certificate: bool,
    /// Run the static [`crate::analyze::analyze`] pass at the root
    /// (default `true`): conflict-graph extraction, 0/1 probing with
    /// implied fixings, and symmetry-orbit handling. In certificate mode
    /// probing fixings are logged into the proof
    /// ([`MilpCertificate::analysis`]) and re-derived exactly by the
    /// audit; unlogged deduction classes are disabled there.
    pub analyze: bool,
    /// Signed variable permutations over the **original** model claimed
    /// to be automorphisms (`perm[i] = (σ(i), flip)` maps solutions by
    /// `x'[σ(i)] = ±x[i]`). Each claim is pushed through the presolve
    /// mapping and *structurally re-verified* on the searched model
    /// before use — a wrong or presolve-broken claim is silently dropped
    /// (counted in [`crate::AnalysisStats::rejected_generators`]), never
    /// trusted. Verified generators drive orbit-aware branching and
    /// orbit fixing propagation.
    pub symmetry: Vec<SignedPerm>,
    /// Materialise the analysis conflict graph as clique-cut rows
    /// `xₐ + x_b ≤ 1` in the LP relaxation (off by default). The cuts
    /// are always valid, but on models with only a handful of conflict
    /// edges they can reroute a `stop_at_first` dive for better or
    /// worse; measure before enabling. Ignored in certificate mode (a
    /// cut row is a deduction the exact audit would have to trust).
    pub clique_cuts: bool,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            time_limit: None,
            node_limit: Some(2_000_000),
            integer_tol: 1e-6,
            initial_incumbent: None,
            stop_at_first: false,
            presolve: true,
            certificate: false,
            analyze: true,
            symmetry: Vec::new(),
            clique_cuts: false,
        }
    }
}

/// Depth-first branch-and-bound MILP solver.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, Default)]
pub struct MilpSolver {
    options: MilpOptions,
}

impl MilpSolver {
    /// A solver with default options.
    pub fn new() -> Self {
        MilpSolver::default()
    }

    /// A solver with explicit options.
    pub fn with_options(options: MilpOptions) -> Self {
        MilpSolver { options }
    }

    /// Sets the wall-clock limit and returns `self` for chaining.
    #[must_use]
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.options.time_limit = Some(limit);
        self
    }

    /// Sets the node limit and returns `self` for chaining.
    #[must_use]
    pub fn node_limit(mut self, limit: usize) -> Self {
        self.options.node_limit = Some(limit);
        self
    }

    /// Sets an initial incumbent objective (model sense) for pruning.
    #[must_use]
    pub fn initial_incumbent(mut self, objective: f64) -> Self {
        self.options.initial_incumbent = Some(objective);
        self
    }

    /// Enables or disables the static presolve pass (on by default).
    #[must_use]
    pub fn presolve(mut self, enabled: bool) -> Self {
        self.options.presolve = enabled;
        self
    }

    /// Enables or disables proof logging (off by default); see
    /// [`MilpOptions::certificate`].
    #[must_use]
    pub fn certificate(mut self, enabled: bool) -> Self {
        self.options.certificate = enabled;
        self
    }

    /// Enables or disables the static root analysis pass (on by
    /// default); see [`MilpOptions::analyze`].
    #[must_use]
    pub fn analyze(mut self, enabled: bool) -> Self {
        self.options.analyze = enabled;
        self
    }

    /// Supplies symmetry generators of the original model; see
    /// [`MilpOptions::symmetry`].
    #[must_use]
    pub fn symmetry(mut self, generators: Vec<SignedPerm>) -> Self {
        self.options.symmetry = generators;
        self
    }

    /// Enables or disables conflict-graph clique cuts (off by default);
    /// see [`MilpOptions::clique_cuts`].
    #[must_use]
    pub fn clique_cuts(mut self, enabled: bool) -> Self {
        self.options.clique_cuts = enabled;
        self
    }

    /// Solves the model.
    ///
    /// Infeasibility/unboundedness are reported through
    /// [`MilpOutcome::status`], not as errors.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::BadModel`] when the model fails
    /// [`Model::validate`].
    pub fn solve(&self, model: &Model) -> Result<MilpOutcome, IlpError> {
        model.validate()?;
        let start = Instant::now();
        if !self.options.presolve {
            return Ok(self.branch_and_bound(model, model, None, PresolveStats::default(), start));
        }
        // Static presolve first: it may certify a terminal verdict (a
        // proof by interval arithmetic — no LP ever runs), solve the
        // model outright, or hand back a reduced model whose solutions
        // are lifted through the postsolve record.
        let pre = presolve::presolve(model);
        let pstats = pre.stats;
        let sign = match model.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let make_stats = |best_bound: f64| SolveStats {
            presolve_rows: pstats.rows_removed,
            presolve_cols: pstats.cols_removed,
            presolve_tightenings: pstats.tightenings,
            elapsed: start.elapsed(),
            best_bound,
            ..SolveStats::default()
        };
        // In certificate mode a verdict presolve certifies on its own
        // (pure interval arithmetic) is re-proved by branch-and-bound on
        // the *original* model: the resulting tree proof needs no
        // reduced-model equivalence argument, so `certify_outcome` can
        // check it exactly.
        if self.options.certificate
            && matches!(
                pre.outcome,
                PresolveOutcome::Infeasible { .. } | PresolveOutcome::Solved(_)
            )
        {
            return Ok(self.branch_and_bound(model, model, None, pstats, start));
        }
        match pre.outcome {
            PresolveOutcome::Infeasible { .. } => Ok(MilpOutcome {
                status: SolveStatus::Infeasible,
                best: None,
                stats: make_stats(sign * f64::NEG_INFINITY),
                certificate: None,
            }),
            PresolveOutcome::Unbounded => Ok(MilpOutcome {
                status: SolveStatus::Unbounded,
                best: None,
                stats: make_stats(sign * f64::NEG_INFINITY),
                certificate: None,
            }),
            PresolveOutcome::Solved(values) => {
                let objective = model.objective().eval(&values);
                Ok(MilpOutcome {
                    status: SolveStatus::Optimal,
                    best: Some(Solution { objective, values }),
                    stats: make_stats(objective),
                    certificate: None,
                })
            }
            PresolveOutcome::Reduced(reduced) => {
                Ok(self.branch_and_bound(model, &reduced, Some(&pre.postsolve), pstats, start))
            }
        }
    }

    /// Depth-first search over `solve_model` — the presolve-reduced model
    /// when presolve ran, the original model otherwise. Incumbents are
    /// lifted back through `postsolve` and objectives are always reported
    /// against `original`, so callers never observe the reduction.
    fn branch_and_bound(
        &self,
        original: &Model,
        solve_model: &Model,
        postsolve: Option<&Postsolve>,
        pstats: PresolveStats,
        start: Instant,
    ) -> MilpOutcome {
        // Hard wall-clock deadline, enforced down inside the simplex pivot
        // loop — the per-node check alone cannot stop a long single LP.
        let deadline = self.options.time_limit.map(|limit| start + limit);
        let n = solve_model.var_count();
        let sign = match solve_model.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let model = solve_model;

        let is_int: Vec<bool> = model
            .vars()
            .iter()
            .map(|v| matches!(v.kind, VarKind::Integer | VarKind::Binary))
            .collect();
        let integral_objective = model.objective_is_integral();
        let tol = self.options.integer_tol;
        let cert_on = self.options.certificate;
        // Per-node integer bound propagation only runs when presolve is
        // on: it is the "reapply the bound-tightening reductions at every
        // node" half of the presolve design. Certificate mode disables it
        // — a propagated bound is an unproved deduction, and leaf proofs
        // must hold under root bounds plus branch decisions alone.
        let propagator = (postsolve.is_some() && !cert_on).then(|| Propagator::new(model));
        // Proof log: one NodeCert per branch-and-bound node, root first.
        let mut tree: Vec<NodeCert> = Vec::new();
        if cert_on {
            tree.push(NodeCert {
                parent: None,
                branch: None,
                leaf: None,
            });
        }
        // Set when a verdict could not be backed by LP evidence (the
        // engine declined to certify); the tree is then incomplete.
        let mut cert_failed = false;

        // Static root analysis: conflict graph, probing, symmetry orbits.
        // Caller-supplied symmetry generators describe the *original*
        // model; push them through the presolve mapping and re-verify
        // structurally on the model actually searched — presolve may
        // legitimately break a symmetry, and an unverified claim must
        // never influence the search.
        let analysis = if self.options.analyze {
            let mut rejected = 0usize;
            let mut gens: Vec<SignedPerm> = Vec::new();
            for g in &self.options.symmetry {
                let mapped = match postsolve {
                    Some(p) => map_generator(g, p.forward(), n),
                    None => (g.len() == n).then(|| g.clone()),
                };
                match mapped {
                    Some(m) if analyze::verify_automorphism(model, &m) => gens.push(m),
                    _ => rejected += 1,
                }
            }
            let mut a = analyze::analyze(
                model,
                &gens,
                &AnalyzeOptions {
                    certify: cert_on,
                    ..AnalyzeOptions::default()
                },
            );
            a.stats.rejected_generators = rejected;
            a
        } else {
            Analysis::trivial(model)
        };

        // Clique cuts: every conflict edge `(a, b)` yields the valid
        // inequality `xₐ + x_b ≤ 1` (both are binaries that cannot be 1
        // together). The cuts tighten every node's LP relaxation; they
        // are appended to a solve-local copy of the model so presolve
        // mappings, certificates and the reported model stay untouched.
        // Certify mode runs cut-free: a cut row is an unproved deduction
        // the exact audit would otherwise have to trust.
        // Clique cuts (opt-in): every conflict edge `(a, b)` yields the
        // valid inequality `xₐ + x_b ≤ 1`. They tighten every node's LP,
        // but on the sparse-conflict cover models they also reshape the
        // relaxation's optimal face — which reroutes the stop-at-first
        // dive, sometimes drastically in either direction (see the
        // ablation table in the bench crate). Hence an explicit knob
        // rather than a default. The cuts go into a solve-local copy of
        // the model so presolve mappings, certificates and the reported
        // model stay untouched; certify mode runs cut-free — a cut row
        // is a deduction the exact audit would otherwise have to trust.
        let cut_model: Option<Model> =
            (self.options.clique_cuts && !cert_on && !analysis.edges.is_empty()).then(|| {
                let mut m = model.clone();
                for &(a, b) in &analysis.edges {
                    let mut cut = crate::expr::LinExpr::new();
                    cut.add_term(crate::expr::VarId(a), 1.0);
                    cut.add_term(crate::expr::VarId(b), 1.0);
                    m.add_leq(cut, 1.0);
                }
                m
            });
        let lp_model: &Model = cut_model.as_ref().unwrap_or(model);

        // The constraint matrix is lowered to CSC exactly once; every
        // node then re-solves the same prepared LP under tightened bound
        // vectors (the dense-tableau solver used to re-clone the full row
        // set per node). A single engine persists across all nodes so a
        // DFS child popped right after its parent reuses the live
        // factorization and pricing weights.
        let (lp, mut base_lower, mut base_upper) = lp_model.to_sparse_lp();
        let mut engine = lp.engine();
        let obj_constant = model.objective().constant();
        engine.set_certify(cert_on);

        let mut stats = SolveStats {
            presolve_rows: pstats.rows_removed,
            presolve_cols: pstats.cols_removed,
            presolve_tightenings: pstats.tightenings,
            analysis: analysis.stats,
            ..SolveStats::default()
        };
        if analysis.infeasible {
            // Probing found a binary with no feasible value: both
            // propagations emptied a domain — exact interval arithmetic,
            // same trust level as a presolve verdict. (Never set in
            // certify mode; there the fixing is logged and the tree
            // carries the proof.)
            stats.elapsed = start.elapsed();
            stats.best_bound = sign * f64::NEG_INFINITY;
            return MilpOutcome {
                status: SolveStatus::Infeasible,
                best: None,
                stats,
                certificate: None,
            };
        }
        // Fold the analysis deductions (probing fixings; plus lifted
        // bounds and orbit fixings outside certify mode) into the root
        // box every node inherits.
        for j in 0..n {
            base_lower[j] = base_lower[j].max(analysis.lower[j]);
            base_upper[j] = base_upper[j].min(analysis.upper[j]);
        }
        let mut incumbent: Option<(f64, Vec<f64>)> = None; // (min-form obj, values)
                                                           // The user-facing incumbent value includes the objective constant
                                                           // (which presolve grows by every fixed variable's contribution);
                                                           // the search compares min-form objectives, so strip it here.
        let mut cutoff = self
            .options
            .initial_incumbent
            .map_or(f64::INFINITY, |u| sign * (u - obj_constant));
        let mut root_bound = f64::NEG_INFINITY;
        let mut hit_limit = false;

        // Each stack entry carries its parent's optimal basis (shared by
        // both children via Rc): warm-starting the child LP from it cuts
        // the per-node pivot count by an order of magnitude compared to
        // re-growing the basis from slacks at every node.
        type Node = (Vec<f64>, Vec<f64>, Option<Rc<Basis>>, usize);
        let mut stack: Vec<Node> = vec![(base_lower, base_upper, None, 0)];
        while let Some((mut lower, mut upper, warm, nid)) = stack.pop() {
            if let Some(limit) = self.options.node_limit {
                if stats.nodes >= limit {
                    hit_limit = true;
                    break;
                }
            }
            if let Some(limit) = self.options.time_limit {
                // The root node is always attempted: its LP enforces the
                // same deadline internally and bails out as TimeLimit, so
                // an exhausted budget still yields an honest limit count
                // instead of an empty run.
                if stats.nodes > 0 && start.elapsed() >= limit {
                    hit_limit = true;
                    break;
                }
            }
            // Integer bound propagation: exact floor/ceil deductions, so
            // a pruned node is pruned with certainty — no LP needed.
            if let Some(prop) = &propagator {
                match prop.propagate(&mut lower, &mut upper) {
                    None => {
                        stats.propagation_prunes += 1;
                        continue;
                    }
                    Some(t) => stats.node_tightenings += t,
                }
            }
            stats.nodes += 1;

            // An empty variable box is a trivially exact leaf proof; the
            // simplex also detects it, but without a Farkas ray.
            if cert_on {
                if let Some(j) = (0..n).find(|&j| lower[j] > upper[j]) {
                    tree[nid].leaf = Some(LeafCert::EmptyBox { var: j });
                    continue;
                }
            }

            let (sol, node_basis) = engine.solve(&lower, &upper, deadline, warm.as_deref());
            stats.lp_iterations += sol.iterations;
            match sol.status {
                LpStatus::Infeasible => {
                    if cert_on {
                        match engine.take_certificate() {
                            Some(LpCertificate::Infeasible { farkas }) => {
                                tree[nid].leaf = Some(LeafCert::Infeasible { farkas });
                            }
                            _ => cert_failed = true,
                        }
                    }
                    continue;
                }
                LpStatus::Unbounded => {
                    // Bounds only tighten below the root, so any unbounded
                    // node implies an unbounded relaxation.
                    stats.elapsed = start.elapsed();
                    let factor = engine.factor_stats();
                    stats.refactorizations = factor.refactorizations;
                    stats.ft_updates = factor.ft_updates;
                    stats.rejected_updates = factor.rejected_updates;
                    let es = engine.engine_stats();
                    stats.dual_pivots = es.dual_pivots;
                    stats.warm_resolves = es.warm_resolves;
                    stats.cold_restarts = es.cold_restarts;
                    stats.best_bound = f64::NEG_INFINITY * sign;
                    return MilpOutcome {
                        status: SolveStatus::Unbounded,
                        best: None,
                        stats,
                        certificate: None,
                    };
                }
                LpStatus::IterationLimit | LpStatus::TimeLimit => {
                    // The node's relaxation was cut short: its subtree is
                    // dropped without a bound, so count it as a limit hit
                    // (not as an explored node) and let the final status
                    // reflect the unproven search.
                    stats.limit_nodes += 1;
                    continue;
                }
                LpStatus::Optimal => {}
            }
            // In certificate mode an Optimal verdict comes with the final
            // simplex multipliers: the evidence for a Bound or Integral
            // leaf, should this node become one.
            let mut duals: Option<Vec<f64>> = None;
            if cert_on {
                if let Some(LpCertificate::Optimal { duals: d, .. }) = engine.take_certificate() {
                    duals = Some(d);
                }
            }
            if stats.nodes == 1 {
                root_bound = sol.objective;
            }
            // Bound pruning.
            let node_bound = sol.objective;
            let prune_threshold = if integral_objective {
                cutoff - 1.0 + 1e-6
            } else {
                cutoff - 1e-9
            };
            if node_bound > prune_threshold {
                if cert_on {
                    match duals.take() {
                        Some(d) => {
                            tree[nid].leaf = Some(LeafCert::Bound {
                                duals: d,
                                bound: node_bound,
                            });
                        }
                        None => cert_failed = true,
                    }
                }
                continue;
            }

            // Branching: most-fractional first; conflict degree and
            // symmetry-orbit representatives break exact fractionality
            // ties only (deciding an entangled binary settles its whole
            // clique's LP mass; a representative's subtree subsumes its
            // mates' up to automorphism). Keeping fractionality the
            // primary key preserves the tuned tree shape on models whose
            // conflict graph is sparse. Ordering preferences can never
            // invalidate a proof, so this stays active in certify mode.
            let mut branch: Option<(usize, f64, f64, u32, bool)> = None;
            for (j, &integer_var) in is_int.iter().enumerate().take(n) {
                if !integer_var {
                    continue;
                }
                let v = sol.x[j];
                let dist = (v - v.round()).abs();
                if dist <= tol {
                    continue;
                }
                let degree = analysis.degree[j];
                let rep = analysis.orbit_rep[j];
                let better = match branch {
                    None => true,
                    Some((_, _, bd, bdeg, brep)) => {
                        dist > bd
                            || (dist == bd && (degree > bdeg || (degree == bdeg && rep && !brep)))
                    }
                };
                if better {
                    branch = Some((j, v, dist, degree, rep));
                }
            }
            let branch = branch.map(|(j, v, _, _, _)| (j, v));
            let Some((j, v)) = branch else {
                // Integral: candidate incumbent.
                let mut values = sol.x.clone();
                for (x, &int) in values.iter_mut().zip(&is_int) {
                    if int {
                        *x = x.round();
                    }
                }
                let min_obj: f64 = lp
                    .objective()
                    .iter()
                    .zip(&values)
                    .map(|(c, x)| c * x)
                    .sum::<f64>();
                if cert_on {
                    match duals.take() {
                        Some(d) => {
                            tree[nid].leaf = Some(LeafCert::Integral {
                                x: values.clone(),
                                duals: d,
                                objective: min_obj,
                            });
                        }
                        None => cert_failed = true,
                    }
                }
                if min_obj < cutoff - 1e-9 {
                    cutoff = min_obj;
                    incumbent = Some((min_obj, values));
                    if self.options.stop_at_first {
                        hit_limit = !stack.is_empty();
                        break;
                    }
                }
                continue;
            };

            // Children: explore the side nearer the LP value first (LIFO).
            let parent_basis = node_basis.map(Rc::new);
            let floor = v.floor();
            let (down_id, up_id) = if cert_on {
                tree[nid].branch = Some((j, floor));
                let down_id = tree.len();
                tree.push(NodeCert {
                    parent: Some((nid, false)),
                    branch: None,
                    leaf: None,
                });
                let up_id = tree.len();
                tree.push(NodeCert {
                    parent: Some((nid, true)),
                    branch: None,
                    leaf: None,
                });
                (down_id, up_id)
            } else {
                (0, 0)
            };
            let mut down = (lower.clone(), upper.clone(), parent_basis.clone(), down_id);
            down.1[j] = floor;
            let mut up = (lower, upper, parent_basis, up_id);
            up.0[j] = floor + 1.0;
            // Conflict-involved binaries explore the 1-side first even
            // when the LP leans to 0: setting the entangled value is what
            // settles the variable's clique (its mates propagate to 0),
            // so the dive learns the most from that side. Everything else
            // keeps the classic nearer-side-first order.
            let up_first = analysis.degree[j] > 0 || v - floor > 0.5;
            if up_first {
                stack.push(down);
                stack.push(up);
            } else {
                stack.push(up);
                stack.push(down);
            }
        }

        stats.elapsed = start.elapsed();
        let factor = engine.factor_stats();
        stats.refactorizations = factor.refactorizations;
        stats.ft_updates = factor.ft_updates;
        stats.rejected_updates = factor.rejected_updates;
        let es = engine.engine_stats();
        stats.dual_pivots = es.dual_pivots;
        stats.warm_resolves = es.warm_resolves;
        stats.cold_restarts = es.cold_restarts;
        let proved_optimal = !hit_limit && stats.limit_nodes == 0;
        let status = match (&incumbent, proved_optimal) {
            (Some(_), true) => SolveStatus::Optimal,
            (Some(_), false) => SolveStatus::Feasible,
            (None, true) => SolveStatus::Infeasible,
            (None, false) => SolveStatus::Unknown,
        };
        let certificate = cert_on.then(|| MilpCertificate {
            reduced: model.clone(),
            presolve: postsolve.map(Postsolve::certificate),
            analysis: analysis.fixings.clone(),
            tree: std::mem::take(&mut tree),
            incumbent_reduced: incumbent.as_ref().map(|(_, v)| v.clone()),
            initial_cutoff: self
                .options
                .initial_incumbent
                .map(|u| sign * (u - obj_constant)),
            complete: proved_optimal && !cert_failed,
        });
        let best = incumbent.map(|(_, values)| {
            // Lift the reduced-space incumbent back to the original
            // variables; the objective is always evaluated through the
            // original model so presolve never changes reported values.
            let values = match postsolve {
                Some(p) => p.restore(&values),
                None => values,
            };
            let objective = original.objective().eval(&values);
            Solution { objective, values }
        });
        stats.best_bound = if status == SolveStatus::Optimal {
            best.as_ref().map_or(f64::NAN, |b| b.objective)
        } else {
            sign * root_bound + obj_constant
        };
        MilpOutcome {
            status,
            best,
            stats,
            certificate,
        }
    }
}

/// Pushes a signed permutation over the original variables through the
/// presolve forward map. `None` when the permutation does not respect
/// the eliminated set (a kept variable mapping to an eliminated one or
/// vice versa) — presolve legitimately breaks such symmetries and the
/// generator is simply dropped.
fn map_generator(
    g: &[(usize, bool)],
    forward: &[Option<usize>],
    reduced_n: usize,
) -> Option<Vec<(usize, bool)>> {
    if g.len() != forward.len() {
        return None;
    }
    let mut out: Vec<Option<(usize, bool)>> = vec![None; reduced_n];
    for (i, &(j, flip)) in g.iter().enumerate() {
        if j >= forward.len() {
            return None;
        }
        match (forward[i], forward[j]) {
            (Some(ri), Some(rj)) => {
                if out[ri].is_some() {
                    return None;
                }
                out[ri] = Some((rj, flip));
            }
            (None, None) => {}
            _ => return None,
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::Sense;

    #[test]
    fn knapsack_small() {
        let mut m = Model::new(Sense::Maximize);
        let items: Vec<_> = (0..5).map(|i| m.binary_var(format!("x{i}"))).collect();
        let weights = [2.0, 3.0, 4.0, 5.0, 9.0];
        let values = [3.0, 4.0, 5.0, 8.0, 10.0];
        let mut wexpr = LinExpr::new();
        let mut vexpr = LinExpr::new();
        for (i, &x) in items.iter().enumerate() {
            wexpr.add_term(x, weights[i]);
            vexpr.add_term(x, values[i]);
        }
        m.add_leq(wexpr, 10.0);
        m.set_objective(vexpr);
        let out = MilpSolver::new().solve(&m).unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        let best = out.best.unwrap();
        // Optimal: items 1 (w3 v4) + 3 (w5 v8) + 0 (w2 v3) = w10, v15.
        assert_eq!(best.objective.round() as i64, 15);
        let w: f64 = items
            .iter()
            .enumerate()
            .map(|(i, &x)| weights[i] * best.value(x))
            .sum();
        assert!(w <= 10.0 + 1e-6);
    }

    #[test]
    fn assignment_problem_is_tight() {
        // 3x3 assignment; LP relaxation is integral, so B&B should finish
        // at the root.
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new(Sense::Minimize);
        let mut x = vec![vec![]; 3];
        for (i, xi) in x.iter_mut().enumerate() {
            for j in 0..3 {
                xi.push(m.binary_var(format!("x{i}{j}")));
            }
        }
        let mut obj = LinExpr::new();
        for i in 0..3 {
            let mut r = LinExpr::new();
            let mut c = LinExpr::new();
            for j in 0..3 {
                r.add_term(x[i][j], 1.0);
                c.add_term(x[j][i], 1.0);
                obj.add_term(x[i][j], cost[i][j]);
            }
            m.add_eq(r, 1.0);
            m.add_eq(c, 1.0);
        }
        m.set_objective(obj);
        let out = MilpSolver::new().solve(&m).unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(out.best.unwrap().objective.round() as i64, 5);
    }

    #[test]
    fn set_cover() {
        // Universe {0..5}; sets: {0,1,2}, {1,3}, {2,4}, {3,4,5}, {0,5}.
        let sets: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![1, 3],
            vec![2, 4],
            vec![3, 4, 5],
            vec![0, 5],
        ];
        let mut m = Model::new(Sense::Minimize);
        let xs: Vec<_> = (0..sets.len())
            .map(|i| m.binary_var(format!("s{i}")))
            .collect();
        for e in 0..6 {
            let mut cover = LinExpr::new();
            for (i, s) in sets.iter().enumerate() {
                if s.contains(&e) {
                    cover.add_term(xs[i], 1.0);
                }
            }
            m.add_geq(cover, 1.0);
        }
        let mut obj = LinExpr::new();
        for &x in &xs {
            obj.add_term(x, 1.0);
        }
        m.set_objective(obj);
        let out = MilpSolver::new().solve(&m).unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(out.best.unwrap().objective.round() as i64, 2); // {0,1,2} + {3,4,5}
    }

    #[test]
    fn infeasible_binary_system() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        m.add_geq(x + y, 3.0);
        m.set_objective(x + y);
        let out = MilpSolver::new().solve(&m).unwrap();
        assert_eq!(out.status, SolveStatus::Infeasible);
        assert!(out.best.is_none());
    }

    #[test]
    fn unbounded_integer_model() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.integer_var("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::from(x));
        let out = MilpSolver::new().solve(&m).unwrap();
        assert_eq!(out.status, SolveStatus::Unbounded);
    }

    #[test]
    fn pure_lp_passthrough() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous_var("x", 0.0, 10.0);
        let y = m.continuous_var("y", 0.0, 10.0);
        m.add_geq(x + y, 3.0);
        m.set_objective(2.0 * x + y);
        let out = MilpSolver::new().solve(&m).unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        let best = out.best.unwrap();
        assert!((best.objective - 3.0).abs() < 1e-6);
        assert!((best.value(y) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn negative_integer_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.integer_var("x", -5.0, 5.0);
        m.add_geq(2.0 * x, -7.0); // x >= -3.5 -> x >= -3
        m.set_objective(LinExpr::from(x));
        let out = MilpSolver::new().solve(&m).unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(out.best.unwrap().value_int(x), -3);
    }

    #[test]
    fn objective_constant_carried() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        m.add_geq(LinExpr::from(x), 1.0);
        m.set_objective(LinExpr::from(x) + 10.0);
        let out = MilpSolver::new().solve(&m).unwrap();
        assert!((out.best.unwrap().objective - 11.0).abs() < 1e-9);
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        // A model needing branching, with node limit 1: no incumbent yet.
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..10).map(|i| m.binary_var(format!("x{i}"))).collect();
        let mut w = LinExpr::new();
        let mut v = LinExpr::new();
        for (i, &x) in xs.iter().enumerate() {
            w.add_term(x, 3.0 + (i as f64) * 1.3);
            v.add_term(x, 5.0 + ((i * 7) % 4) as f64);
        }
        m.add_leq(w, 20.0);
        m.set_objective(v);
        let solver = MilpSolver::with_options(MilpOptions {
            node_limit: Some(1),
            ..MilpOptions::default()
        });
        let out = solver.solve(&m).unwrap();
        assert!(matches!(
            out.status,
            SolveStatus::Feasible | SolveStatus::Unknown
        ));
        assert!(out.stats.nodes <= 1);
    }

    #[test]
    fn limit_hit_nodes_reported_separately() {
        // A knapsack that needs branching, strangled by an already-tiny
        // time budget: every node's LP hits the deadline. Those nodes
        // must surface in `limit_nodes` — not masquerade as explored —
        // and the status must degrade to Unknown, never Infeasible.
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..12).map(|i| m.binary_var(format!("x{i}"))).collect();
        let mut w = LinExpr::new();
        let mut v = LinExpr::new();
        for (i, &x) in xs.iter().enumerate() {
            w.add_term(x, 2.0 + (i as f64) * 1.1);
            v.add_term(x, 3.0 + ((i * 5) % 7) as f64);
        }
        m.add_leq(w, 23.0);
        m.set_objective(v);
        let out = MilpSolver::new()
            .time_limit(Duration::from_nanos(1))
            .solve(&m)
            .unwrap();
        assert!(
            out.stats.limit_nodes >= 1,
            "deadline-starved LPs must be counted as limit hits"
        );
        assert!(
            out.stats.limit_nodes <= out.stats.nodes,
            "limit nodes are a subset of processed nodes"
        );
        assert_eq!(out.status, SolveStatus::Unknown);

        // The same model with a sane budget explores cleanly: no limit
        // nodes, proven optimum.
        let out = MilpSolver::new().solve(&m).unwrap();
        assert_eq!(out.stats.limit_nodes, 0);
        assert_eq!(out.status, SolveStatus::Optimal);
    }

    #[test]
    fn initial_incumbent_prunes() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        m.add_geq(x + y, 1.0);
        m.set_objective(x + y);
        // Claim we already know a solution of value 1: solver must still
        // prove optimality (finding a solution of value 1 or better).
        let out = MilpSolver::new().initial_incumbent(1.0).solve(&m).unwrap();
        // With an integral objective and cutoff 1, nodes with bound > 0+eps
        // are pruned; the solver may end with no *stored* incumbent but
        // proven optimality means the cutoff was not beaten.
        assert!(matches!(
            out.status,
            SolveStatus::Optimal | SolveStatus::Infeasible
        ));
    }

    #[test]
    fn maximize_reports_user_sense_objective() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.integer_var("x", 0.0, 7.0);
        m.add_leq(2.0 * x, 9.0);
        m.set_objective(3.0 * x);
        let out = MilpSolver::new().solve(&m).unwrap();
        assert!(out.is_optimal());
        let best = out.best.unwrap();
        assert_eq!(best.value_int(x), 4);
        assert_eq!(best.objective.round() as i64, 12);
    }

    #[test]
    fn stats_are_populated() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        m.add_geq(LinExpr::from(x), 1.0);
        m.set_objective(LinExpr::from(x));
        // Presolve fixes x = 1 from the singleton row: zero nodes, and
        // the reduction is visible in the stats.
        let out = MilpSolver::new().solve(&m).unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(out.stats.nodes, 0);
        assert!(out.stats.presolve_rows >= 1);
        assert!(out.stats.presolve_cols >= 1);
        assert_eq!(out.stats.best_bound, 1.0);
        // With presolve off the same model must cost at least one node.
        let out = MilpSolver::new().presolve(false).solve(&m).unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert!(out.stats.nodes >= 1);
        assert_eq!(out.stats.presolve_rows, 0);
        assert_eq!(out.stats.best_bound, 1.0);
    }

    #[test]
    fn presolve_and_raw_agree_on_knapsack() {
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..8).map(|i| m.binary_var(format!("x{i}"))).collect();
        let mut w = LinExpr::new();
        let mut v = LinExpr::new();
        for (i, &x) in xs.iter().enumerate() {
            w.add_term(x, 2.0 + (i as f64) * 1.7);
            v.add_term(x, 4.0 + ((i * 3) % 5) as f64);
        }
        m.add_leq(w, 15.0);
        m.set_objective(v + 3.0);
        let on = MilpSolver::new().solve(&m).unwrap();
        let off = MilpSolver::new().presolve(false).solve(&m).unwrap();
        assert_eq!(on.status, SolveStatus::Optimal);
        assert_eq!(off.status, SolveStatus::Optimal);
        let (a, b) = (on.best.unwrap(), off.best.unwrap());
        assert!((a.objective - b.objective).abs() < 1e-6);
        assert_eq!(a.values().len(), b.values().len());
    }

    #[test]
    fn initial_incumbent_cutoff_respects_objective_constant() {
        // Minimise x + 100 with x ≥ 3 integer in [0, 10] plus a second
        // variable to keep presolve from solving it outright. A claimed
        // incumbent of 103 (the true optimum) must not prune the optimum
        // away: the cutoff must subtract the constant.
        let mut m = Model::new(Sense::Minimize);
        let x = m.integer_var("x", 0.0, 10.0);
        let y = m.integer_var("y", 0.0, 10.0);
        m.add_geq(x + y, 3.0);
        m.set_objective(x + y + 100.0);
        let out = MilpSolver::new()
            .initial_incumbent(103.0)
            .solve(&m)
            .unwrap();
        assert!(matches!(
            out.status,
            SolveStatus::Optimal | SolveStatus::Infeasible
        ));
        assert!((out.stats.best_bound - 103.0).abs() < 1e-6 || out.best.is_none());
        // Without the claimed incumbent the optimum is reported directly.
        let out = MilpSolver::new().solve(&m).unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert!((out.best.unwrap().objective - 103.0).abs() < 1e-6);
    }
}
