//! Shared solver workloads used by both the differential test harness
//! and the Criterion benches.
//!
//! The LU warm-start-chain bench in `fpva-bench` is only meaningful
//! because it times **exactly** the workload the `ilp_differential`
//! chain test verifies against the dense oracle — so the construction
//! lives here once, and retuning it keeps the two in lock-step.

use crate::model::ConstraintOp;
use crate::simplex::{LpProblem, LpRow};

/// Variable count of [`multi_knapsack_lp`].
pub const CHAIN_VARS: usize = 14;

/// A multi-knapsack LP whose binding capacity rows force real pivots on
/// every re-solve, while `x = lower` stays feasible under the whole
/// [`chain_bounds`] schedule (capacities dwarf the largest scheduled
/// lower bounds) — so every warm-started step is `Optimal`.
pub fn multi_knapsack_lp() -> LpProblem {
    let n = CHAIN_VARS;
    let mut rows = Vec::new();
    for k in 0..4usize {
        let coeffs: Vec<(usize, f64)> = (0..n)
            .map(|i| (i, 1.0 + ((i * (k + 2) + k) % 4) as f64))
            .collect();
        let capacity = 0.35 * 6.0 * coeffs.iter().map(|&(_, w)| w).sum::<f64>();
        rows.push(LpRow {
            coeffs,
            op: ConstraintOp::Leq,
            rhs: capacity,
        });
    }
    LpProblem {
        objective: (0..n).map(|i| -(1.0 + ((i * 5) % 9) as f64)).collect(),
        rows,
        lower: vec![0.0; n],
        upper: vec![6.0; n],
    }
}

/// The bound schedule of the warm-start chain: a tightening window that
/// cycles over the variables — lower bounds rise on one index, upper
/// bounds drop on another, then both relax.
pub fn chain_bounds(step: usize) -> (Vec<f64>, Vec<f64>) {
    let n = CHAIN_VARS;
    let mut lower = vec![0.0; n];
    let mut upper = vec![6.0; n];
    let a = step % n;
    let b = (step * 5 + 2) % n;
    lower[a] = (step % 3) as f64;
    upper[b] = 2.0 + ((step % 5) as f64);
    if lower[b] > upper[b] {
        lower[b] = upper[b];
    }
    (lower, upper)
}
