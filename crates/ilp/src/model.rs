//! MILP model description.

use crate::error::IlpError;
use crate::expr::{LinExpr, SparseVec, VarId};
use crate::simplex::SparseLp;
use crate::sparse::CscMatrix;

/// Optimisation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Minimise the objective.
    Minimize,
    /// Maximise the objective.
    Maximize,
}

/// Domain of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Real-valued.
    Continuous,
    /// Integer-valued.
    Integer,
    /// Integer restricted to `{0, 1}`.
    Binary,
}

/// Relational operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintOp {
    /// `expr ≤ rhs`
    Leq,
    /// `expr ≥ rhs`
    Geq,
    /// `expr = rhs`
    Eq,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct VarDef {
    pub name: String,
    pub kind: VarKind,
    pub lb: f64,
    pub ub: f64,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Constraint {
    pub expr: LinExpr,
    pub op: ConstraintOp,
    pub rhs: f64,
}

/// A mixed-integer linear program.
///
/// ```
/// use fpva_ilp::{Model, Sense};
/// let mut m = Model::new(Sense::Minimize);
/// let x = m.integer_var("x", 0.0, 10.0);
/// let y = m.continuous_var("y", 0.0, f64::INFINITY);
/// m.add_geq(x + y, 3.5);
/// m.set_objective(2.0 * x + y);
/// assert_eq!(m.var_count(), 2);
/// assert_eq!(m.constraint_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    sense: Sense,
    vars: Vec<VarDef>,
    constraints: Vec<Constraint>,
    objective: LinExpr,
}

impl Model {
    /// An empty model with the given optimisation direction.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::new(),
        }
    }

    /// Adds a binary (0/1) variable.
    pub fn binary_var(&mut self, name: impl Into<String>) -> VarId {
        self.push_var(name.into(), VarKind::Binary, 0.0, 1.0)
    }

    /// Adds an integer variable with inclusive bounds.
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub`, `lb` is not finite, or either bound is NaN.
    pub fn integer_var(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        self.push_var(name.into(), VarKind::Integer, lb, ub)
    }

    /// Adds a continuous variable with inclusive bounds (`ub` may be
    /// `f64::INFINITY`).
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub`, `lb` is not finite, or either bound is NaN.
    pub fn continuous_var(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        self.push_var(name.into(), VarKind::Continuous, lb, ub)
    }

    fn push_var(&mut self, name: String, kind: VarKind, lb: f64, ub: f64) -> VarId {
        assert!(!lb.is_nan() && !ub.is_nan(), "variable {name}: NaN bound");
        assert!(
            lb.is_finite(),
            "variable {name}: lower bound must be finite"
        );
        assert!(lb <= ub, "variable {name}: empty domain [{lb}, {ub}]");
        let id = VarId(self.vars.len());
        self.vars.push(VarDef { name, kind, lb, ub });
        id
    }

    /// Adds the constraint `expr (op) rhs`.
    pub fn add_constraint(&mut self, expr: impl Into<LinExpr>, op: ConstraintOp, rhs: f64) {
        let expr = expr.into();
        // Fold the expression constant into the right-hand side.
        let c = expr.constant();
        let mut e = expr;
        e.add_constant(-c);
        self.constraints.push(Constraint {
            expr: e,
            op,
            rhs: rhs - c,
        });
    }

    /// Adds `expr ≤ rhs`.
    pub fn add_leq(&mut self, expr: impl Into<LinExpr>, rhs: f64) {
        self.add_constraint(expr, ConstraintOp::Leq, rhs);
    }

    /// Adds `expr ≥ rhs`.
    pub fn add_geq(&mut self, expr: impl Into<LinExpr>, rhs: f64) {
        self.add_constraint(expr, ConstraintOp::Geq, rhs);
    }

    /// Adds `expr = rhs`.
    pub fn add_eq(&mut self, expr: impl Into<LinExpr>, rhs: f64) {
        self.add_constraint(expr, ConstraintOp::Eq, rhs);
    }

    /// Sets the objective expression (constants are allowed and carried
    /// through to reported objective values).
    pub fn set_objective(&mut self, expr: impl Into<LinExpr>) {
        self.objective = expr.into();
    }

    /// Optimisation direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// The [`VarId`] of the variable at dense `index` — the bridge back
    /// from the raw indices reported by analysis results (conflict
    /// edges, orbits) to the typed handle the accessors take.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.var_count()`.
    pub fn var_id(&self, index: usize) -> VarId {
        assert!(index < self.vars.len(), "variable index out of range");
        VarId(index)
    }

    /// Kind of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this model.
    pub fn var_kind(&self, v: VarId) -> VarKind {
        self.vars[v.0].kind
    }

    /// Bounds of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this model.
    pub fn var_bounds(&self, v: VarId) -> (f64, f64) {
        (self.vars[v.0].lb, self.vars[v.0].ub)
    }

    /// Name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this model.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0].name
    }

    /// The objective expression.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    pub(crate) fn vars(&self) -> &[VarDef] {
        &self.vars
    }

    pub(crate) fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Whether every integer/binary variable has integral objective
    /// coefficients — enables the branch-and-bound ceiling bound.
    pub(crate) fn objective_is_integral(&self) -> bool {
        self.objective.constant().fract() == 0.0
            && self.objective.terms().all(|(v, c)| {
                c.fract() == 0.0
                    && matches!(self.vars[v.0].kind, VarKind::Binary | VarKind::Integer)
            })
    }

    /// Lowers the model to a prepared [`SparseLp`] plus its root bound
    /// vectors, assembling the CSC constraint matrix straight from the
    /// (already sparse) constraint expressions — no dense row or tableau
    /// intermediate is ever built.
    ///
    /// The returned objective is in **minimisation form**: coefficients
    /// are negated for [`Sense::Maximize`] models, and the objective
    /// constant is dropped (callers re-evaluate reported objectives
    /// through [`Model::objective`]).
    pub fn to_sparse_lp(&self) -> (SparseLp, Vec<f64>, Vec<f64>) {
        let n = self.vars.len();
        let sign = match self.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut objective = vec![0.0; n];
        for (v, c) in self.objective.terms() {
            objective[v.0] = sign * c;
        }
        // Constraints are stored row-wise but arrive here column-sorted
        // for free: scanning rows in index order pushes each column's
        // entries in ascending row order, which is exactly the
        // `SparseVec::push` contract (LinExpr terms are unique per row).
        let mut columns = vec![SparseVec::new(); n];
        for (i, c) in self.constraints.iter().enumerate() {
            for (v, a) in c.expr.terms() {
                columns[v.0].push(i, a);
            }
        }
        let cols = CscMatrix::from_columns(self.constraints.len(), &columns);
        let ops = self.constraints.iter().map(|c| c.op).collect();
        let rhs = self.constraints.iter().map(|c| c.rhs).collect();
        let lower = self.vars.iter().map(|v| v.lb).collect();
        let upper = self.vars.iter().map(|v| v.ub).collect();
        (SparseLp::new(objective, cols, ops, rhs), lower, upper)
    }

    /// Validates coefficients and variable references.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::BadModel`] on non-finite coefficients or
    /// references to variables of another model.
    pub fn validate(&self) -> Result<(), IlpError> {
        let n = self.vars.len();
        let check = |e: &LinExpr, what: &str| -> Result<(), IlpError> {
            if !e.is_finite() {
                return Err(IlpError::BadModel(format!(
                    "{what}: non-finite coefficient"
                )));
            }
            if let Some((v, _)) = e.terms().find(|(v, _)| v.0 >= n) {
                return Err(IlpError::BadModel(format!("{what}: unknown variable {v}")));
            }
            Ok(())
        };
        check(&self.objective, "objective")?;
        for (i, c) in self.constraints.iter().enumerate() {
            check(&c.expr, &format!("constraint #{i}"))?;
            if !c.rhs.is_finite() {
                return Err(IlpError::BadModel(format!(
                    "constraint #{i}: non-finite rhs"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_definitions() {
        let mut m = Model::new(Sense::Minimize);
        let b = m.binary_var("b");
        let i = m.integer_var("i", -3.0, 3.0);
        let c = m.continuous_var("c", 0.0, f64::INFINITY);
        assert_eq!(m.var_kind(b), VarKind::Binary);
        assert_eq!(m.var_bounds(b), (0.0, 1.0));
        assert_eq!(m.var_kind(i), VarKind::Integer);
        assert_eq!(m.var_bounds(i), (-3.0, 3.0));
        assert_eq!(m.var_kind(c), VarKind::Continuous);
        assert_eq!(m.var_name(i), "i");
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn inverted_bounds_panic() {
        Model::new(Sense::Minimize).integer_var("x", 2.0, 1.0);
    }

    #[test]
    fn constraint_constant_folding() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        m.add_leq(LinExpr::from(x) + 5.0, 6.0);
        let c = &m.constraints()[0];
        assert_eq!(c.rhs, 1.0);
        assert_eq!(c.expr.constant(), 0.0);
    }

    #[test]
    fn integral_objective_detection() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        m.set_objective(2.0 * x);
        assert!(m.objective_is_integral());
        m.set_objective(1.5 * x);
        assert!(!m.objective_is_integral());
        let y = m.continuous_var("y", 0.0, 1.0);
        m.set_objective(LinExpr::from(x) + y);
        assert!(!m.objective_is_integral());
    }

    #[test]
    fn validate_catches_bad_coefficients() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        m.add_leq(f64::NAN * x, 1.0);
        assert!(matches!(m.validate(), Err(IlpError::BadModel(_))));
    }

    #[test]
    fn validate_catches_foreign_vars() {
        let mut other = Model::new(Sense::Minimize);
        for _ in 0..10 {
            other.binary_var("y");
        }
        let foreign = VarId(7);
        let mut m = Model::new(Sense::Minimize);
        let _x = m.binary_var("x");
        m.add_leq(LinExpr::from(foreign), 1.0);
        assert!(matches!(m.validate(), Err(IlpError::BadModel(_))));
    }

    #[test]
    fn to_sparse_lp_applies_sense_and_keeps_sparsity() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.binary_var("x");
        let y = m.integer_var("y", -1.0, 4.0);
        let _gap = m.continuous_var("gap", 0.0, f64::INFINITY); // never referenced
        m.add_leq(2.0 * x + y, 3.0);
        m.add_geq(LinExpr::from(y), -1.0);
        m.set_objective(3.0 * x - y + 10.0);
        let (lp, lower, upper) = m.to_sparse_lp();
        assert_eq!(lp.var_count(), 3);
        assert_eq!(lp.row_count(), 2);
        assert_eq!(lower, vec![0.0, -1.0, 0.0]);
        assert_eq!(upper, vec![1.0, 4.0, f64::INFINITY]);
        // Maximisation is lowered to minimisation: objective negated.
        let sol = lp.solve(&lower, &upper, None);
        assert_eq!(sol.status, crate::simplex::LpStatus::Optimal);
        // max 3x - y: x = 1, y = -1 -> minimised form -4 (constant dropped).
        assert!((sol.objective - (-4.0)).abs() < 1e-6, "{}", sol.objective);
    }

    #[test]
    fn validate_ok_model() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.binary_var("x");
        m.add_leq(LinExpr::from(x), 1.0);
        m.set_objective(LinExpr::from(x));
        assert!(m.validate().is_ok());
    }
}
