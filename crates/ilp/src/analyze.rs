//! Static root-node analysis of a MILP: conflict graph, probing, orbits.
//!
//! [`analyze`] runs once per solve, between [`presolve`](crate::presolve())
//! and branch-and-bound, on the model the tree will actually search (the
//! presolve-reduced model when presolve ran). It is *pure analysis*: the
//! model is never rewritten, only three kinds of facts are extracted and
//! handed to the search:
//!
//! * **Conflict graph** — pairs of binaries that cannot both be 1,
//!   detected structurally from set-packing/GUB-shaped rows (for the
//!   paper's cover models: the per-path port-opening rows `Σ pe = 1`)
//!   plus probing implications. Cliques found per row are kept as a
//!   clique table; conflict *degree* feeds branching (a fractional
//!   variable entangled with many others is worth deciding early).
//! * **Root probing** — each binary is tentatively fixed to 0 and to 1
//!   and the interval-propagation machinery of
//!   [`presolve`](mod@crate::presolve) is run. A side that propagates to
//!   an empty domain is provably infeasible, so the variable is *fixed*
//!   to the other value; two live sides yield implications (conflict
//!   edges) and, outside certify mode, lifted bounds (the union of the
//!   two sides' propagated boxes holds for every feasible point).
//! * **Symmetry orbits** — callers may supply signed variable
//!   permutations ([`MilpOptions::symmetry`](crate::MilpOptions))
//!   claimed to be automorphisms of the model.
//!   [`verify_automorphism`] checks each claim *structurally* (the
//!   permuted constraint multiset, objective, bounds and kinds must be
//!   bit-identical to the original), so an unsound claim is dropped, not
//!   trusted. Verified generators are closed into orbits of
//!   interchangeable binaries: branching prefers orbit representatives,
//!   and a probing fixing propagates to the whole orbit (a probing
//!   deduction at the root is a statement about *all* feasible points,
//!   which an automorphism maps to itself).
//!
//! **Certify mode.** Every solution-changing deduction must stay
//! provable. Probing fixings are logged ([`ProbeFixing`]) into the
//! [`MilpCertificate`](crate::certify::MilpCertificate) and re-derived by
//! [`certify_outcome`](crate::certify::certify_outcome) with exact
//! rational interval propagation; lifted bounds and orbit-propagated
//! fixings are *disabled* (each orbit member is simply probed directly,
//! so the same fixings arrive individually logged and auditable).

use crate::model::{ConstraintOp, Model, VarKind};
use crate::presolve::Propagator;
use std::collections::{BTreeMap, BTreeSet};

/// Conflict tolerance: two unit coefficients exceeding a unit rhs must
/// register, accumulated float noise must not.
const CONFLICT_TOL: f64 = 1e-7;

/// A signed variable permutation: entry `i` holds `(σ(i), flip)`, mapping
/// solutions by `x'[σ(i)] = ±x[i]`. Sign flips are only meaningful (and
/// only accepted) for continuous variables with symmetric bounds — e.g.
/// the flow variables of the cover models under a grid reflection.
pub type SignedPerm = Vec<(usize, bool)>;

/// Tuning of one [`analyze`] run.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Certify mode: log fixings, skip unlogged deductions (see module
    /// docs).
    pub certify: bool,
    /// Largest number of binaries probed; beyond it the remaining
    /// binaries keep their structural conflict degrees but are not
    /// probed. Guards generic huge models — the cover probes sit far
    /// below it.
    pub probe_cap: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            certify: false,
            probe_cap: 4096,
        }
    }
}

/// One probing fixing: `var` was fixed to `value` because the opposite
/// value `probed` propagates to an empty domain. Logged into the
/// certificate in certify mode and re-derived exactly by the audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeFixing {
    /// Variable index in the analyzed (reduced) model.
    pub var: usize,
    /// The value the variable is fixed to.
    pub value: f64,
    /// The refuted value: fixing `var` to it propagates to infeasibility.
    pub probed: f64,
}

/// Counters of one [`analyze`] run, threaded through
/// [`SolveStats`](crate::SolveStats) into the ablation tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Binaries considered by the analysis.
    pub binaries: usize,
    /// Distinct conflict-graph edges (structural + probing implications).
    pub conflict_edges: usize,
    /// Cliques recorded in the clique table (size ≥ 2, deduplicated).
    pub cliques: usize,
    /// Largest clique found.
    pub max_clique: usize,
    /// Probing propagation runs (two per probed binary).
    pub probes: usize,
    /// Variables fixed by probing (one side propagated to infeasibility).
    pub probe_fixings: usize,
    /// Implications harvested from two-live-sides probes.
    pub implications: usize,
    /// Bounds lifted from the union of both probe sides (never in
    /// certify mode).
    pub lifted_bounds: usize,
    /// Orbits of interchangeable binaries (size ≥ 2) under the verified
    /// symmetry generators.
    pub orbit_count: usize,
    /// Binaries belonging to those orbits.
    pub orbit_vars: usize,
    /// Fixings propagated to orbit mates without probing them (never in
    /// certify mode).
    pub orbit_fixings: usize,
    /// Symmetry generators supplied by the caller that failed structural
    /// verification and were dropped.
    pub rejected_generators: usize,
}

/// The result of one [`analyze`] run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Probing proved the model infeasible (some binary is infeasible at
    /// both 0 and 1). Never set in certify mode — the fixing is logged
    /// instead and the branch-and-bound tree carries the proof.
    pub infeasible: bool,
    /// Fixings derived by probing (and orbit propagation outside certify
    /// mode), already folded into [`Analysis::lower`]/[`Analysis::upper`].
    pub fixings: Vec<ProbeFixing>,
    /// Post-analysis lower bounds: the model's bounds plus every
    /// deduction the mode allows.
    pub lower: Vec<f64>,
    /// Post-analysis upper bounds.
    pub upper: Vec<f64>,
    /// Conflict degree per variable (0 for non-binaries).
    pub degree: Vec<u32>,
    /// Distinct conflict edges `(a, b)`, `a < b`: the binaries `a` and
    /// `b` cannot both be 1. Branch-and-bound turns these into clique
    /// cuts `xₐ + x_b ≤ 1` outside certify mode.
    pub edges: Vec<(usize, usize)>,
    /// Clique table: each entry is a sorted set of binaries of which at
    /// most one can be 1.
    pub cliques: Vec<Vec<usize>>,
    /// Orbit id per variable (`None`: not in any orbit of size ≥ 2).
    pub orbit_of: Vec<Option<usize>>,
    /// `true` for each variable that is its orbit's representative (the
    /// smallest index) — and for every variable outside all orbits.
    pub orbit_rep: Vec<bool>,
    /// Counters for stats reporting.
    pub stats: AnalysisStats,
}

impl Analysis {
    /// The empty analysis of an `n`-variable model (used when analysis
    /// is disabled or the model has no binaries).
    pub fn trivial(model: &Model) -> Self {
        let n = model.var_count();
        let (lower, upper) = (0..n)
            .map(|j| model.var_bounds(crate::expr::VarId(j)))
            .unzip();
        Analysis {
            infeasible: false,
            fixings: Vec::new(),
            lower,
            upper,
            degree: vec![0; n],
            edges: Vec::new(),
            cliques: Vec::new(),
            orbit_of: vec![None; n],
            orbit_rep: vec![true; n],
            stats: AnalysisStats::default(),
        }
    }
}

/// Checks structurally that `perm` is an automorphism of `model`: under
/// the solution map `x'[σ(i)] = ±x[i]` the variable kinds, bounds and
/// objective must be invariant and the constraint multiset must map to
/// itself **exactly** (coefficients compared bit-for-bit after sign
/// canonicalisation, `Geq` rows normalised to `Leq`, `Eq` rows
/// sign-normalised on their first coefficient).
///
/// This is the trust boundary for every orbit-based deduction: callers
/// (e.g. the grid-automorphism detection in `atpg`) may propose any
/// permutation, and an unsound proposal simply fails here.
pub fn verify_automorphism(model: &Model, perm: &[(usize, bool)]) -> bool {
    let n = model.var_count();
    if perm.len() != n {
        return false;
    }
    // Bijection + inverse (σ(i) -> (i, flip)).
    let mut inv: Vec<Option<(usize, bool)>> = vec![None; n];
    for (i, &(j, flip)) in perm.iter().enumerate() {
        if j >= n || inv[j].is_some() {
            return false;
        }
        inv[j] = Some((i, flip));
    }
    let inv: Vec<(usize, bool)> = inv.into_iter().map(|e| e.expect("bijection")).collect();
    // Kinds, bounds, objective.
    let obj: Vec<f64> = {
        let mut c = vec![0.0; n];
        for (v, a) in model.objective().terms() {
            c[v.index()] += a;
        }
        c
    };
    for (i, &(j, flip)) in perm.iter().enumerate() {
        let vi = crate::expr::VarId(i);
        let vj = crate::expr::VarId(j);
        if model.var_kind(vi) != model.var_kind(vj) {
            return false;
        }
        if flip && model.var_kind(vi) != VarKind::Continuous {
            return false;
        }
        let (li, ui) = model.var_bounds(vi);
        let (lj, uj) = model.var_bounds(vj);
        let (el, eu) = if flip { (-uj, -lj) } else { (lj, uj) };
        if !same_f64(li, el) || !same_f64(ui, eu) {
            return false;
        }
        // Σ c_v x'_v = Σ c_{σ(i)} (±x_i) must equal Σ c_i x_i.
        let mapped = if flip { -obj[j] } else { obj[j] };
        if !same_f64(obj[i], mapped) {
            return false;
        }
    }
    // Constraint multiset: pull each row back through the permutation and
    // consume it from a canonical-form count map.
    let mut counts: BTreeMap<CanonRow, isize> = BTreeMap::new();
    for c in model.constraints() {
        let terms: Vec<(usize, f64)> = c.expr.terms().map(|(v, a)| (v.index(), a)).collect();
        *counts.entry(canon_row(terms, c.op, c.rhs)).or_insert(0) += 1;
    }
    for c in model.constraints() {
        let pulled: Vec<(usize, f64)> = c
            .expr
            .terms()
            .map(|(v, a)| {
                let (i, flip) = inv[v.index()];
                (i, if flip { -a } else { a })
            })
            .collect();
        match counts.get_mut(&canon_row(pulled, c.op, c.rhs)) {
            Some(k) if *k > 0 => *k -= 1,
            _ => return false,
        }
    }
    true
}

/// Exact f64 identity up to `-0.0 == 0.0`.
fn same_f64(a: f64, b: f64) -> bool {
    a == b || (a.is_nan() && b.is_nan())
}

/// Canonical row key: `Leq`-normalised operator, sign-normalised `Eq`,
/// terms sorted by variable, coefficients and rhs as canonical bits.
type CanonRow = (u8, Vec<(usize, u64)>, u64);

fn canon_row(mut terms: Vec<(usize, f64)>, op: ConstraintOp, mut rhs: f64) -> CanonRow {
    terms.sort_unstable_by_key(|&(v, _)| v);
    terms.retain(|&(_, a)| a != 0.0);
    let mut negate = matches!(op, ConstraintOp::Geq);
    let tag = match op {
        ConstraintOp::Leq | ConstraintOp::Geq => 0u8,
        ConstraintOp::Eq => {
            // An equality is the same constraint up to a global sign:
            // normalise on the first coefficient.
            negate = terms.first().is_some_and(|&(_, a)| a < 0.0);
            1u8
        }
    };
    if negate {
        for (_, a) in &mut terms {
            *a = -*a;
        }
        rhs = -rhs;
    }
    let bits = terms.into_iter().map(|(v, a)| (v, canon_bits(a))).collect();
    (tag, bits, canon_bits(rhs))
}

fn canon_bits(a: f64) -> u64 {
    // Collapse -0.0 onto 0.0 so sign canonicalisation cannot split them.
    if a == 0.0 { 0.0f64 } else { a }.to_bits()
}

/// Closes `generators` into orbits over the binary variables via
/// union-find. Returns `(orbit_of, orbit_rep, orbit_count, orbit_vars)`.
fn binary_orbits(
    n: usize,
    generators: &[SignedPerm],
    is_bin: &[bool],
) -> (Vec<Option<usize>>, Vec<bool>, usize, usize) {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for g in generators {
        for (i, &(j, _)) in g.iter().enumerate() {
            if is_bin[i] && is_bin[j] && i != j {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a.max(b)] = a.min(b);
                }
            }
        }
    }
    let mut members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, &bin) in is_bin.iter().enumerate().take(n) {
        if bin {
            members.entry(find(&mut parent, i)).or_default().push(i);
        }
    }
    let mut orbit_of = vec![None; n];
    let mut orbit_rep = vec![true; n];
    let (mut count, mut vars) = (0usize, 0usize);
    for (_, mem) in members {
        if mem.len() < 2 {
            continue;
        }
        let rep = mem[0];
        for &v in &mem {
            orbit_of[v] = Some(count);
            orbit_rep[v] = v == rep;
        }
        count += 1;
        vars += mem.len();
    }
    (orbit_of, orbit_rep, count, vars)
}

/// Orbit summary of `generators` over the binaries of `model`:
/// `(orbit count, binaries in orbits)`, counting only orbits of size
/// ≥ 2. Callers must pass generators already accepted by
/// [`verify_automorphism`].
pub fn orbit_summary(model: &Model, generators: &[SignedPerm]) -> (usize, usize) {
    let n = model.var_count();
    let is_bin: Vec<bool> = model
        .vars()
        .iter()
        .map(|v| v.kind == VarKind::Binary)
        .collect();
    let (_, _, count, vars) = binary_orbits(n, generators, &is_bin);
    (count, vars)
}

/// Runs the full static analysis; see the module docs. `generators` must
/// already be verified by [`verify_automorphism`] (branch-and-bound does
/// this; the count of rejected ones can be passed for stats).
pub fn analyze(model: &Model, generators: &[SignedPerm], opts: &AnalyzeOptions) -> Analysis {
    let n = model.var_count();
    let mut out = Analysis::trivial(model);
    let is_bin: Vec<bool> = model
        .vars()
        .iter()
        .map(|v| v.kind == VarKind::Binary)
        .collect();
    out.stats.binaries = is_bin.iter().filter(|&&b| b).count();

    // Orbits first: probing walks representatives before mates so orbit
    // propagation pays off on the very first pass.
    let (orbit_of, orbit_rep, orbit_count, orbit_vars) = binary_orbits(n, generators, &is_bin);
    out.orbit_of = orbit_of;
    out.orbit_rep = orbit_rep;
    out.stats.orbit_count = orbit_count;
    out.stats.orbit_vars = orbit_vars;

    // --- Conflict graph + clique table from the rows -------------------
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut cliques: BTreeSet<Vec<usize>> = BTreeSet::new();
    for c in model.constraints() {
        // View every row in ≤-form; Eq rows contribute their ≤ direction.
        let forms: &[f64] = match c.op {
            ConstraintOp::Leq | ConstraintOp::Eq => &[1.0],
            ConstraintOp::Geq => &[-1.0],
        };
        for &s in forms {
            let rhs = s * c.rhs;
            // Minimum activity over all terms (binaries contribute their
            // lower bound side) plus the positive binary candidates.
            let mut minact = 0.0f64;
            let mut unbounded = false;
            let mut cand: Vec<(f64, usize)> = Vec::new();
            for (v, a0) in c.expr.terms() {
                let j = v.index();
                let a = s * a0;
                let (lb, ub) = (out.lower[j], out.upper[j]);
                let lo = if a > 0.0 { a * lb } else { a * ub };
                if lo == f64::NEG_INFINITY {
                    unbounded = true;
                    break;
                }
                minact += lo;
                if is_bin[j] && a > 0.0 && ub - lb > 0.5 {
                    cand.push((a, j));
                }
            }
            if unbounded || cand.len() < 2 {
                continue;
            }
            // Ascending by coefficient: the suffix from the first index
            // whose two smallest members overshoot is a clique.
            cand.sort_unstable_by(|x, y| {
                x.0.partial_cmp(&y.0).expect("finite").then(x.1.cmp(&y.1))
            });
            let t = cand.len();
            let mut start = None;
            for i in 0..t - 1 {
                if cand[i].0 + cand[i + 1].0 + minact > rhs + CONFLICT_TOL {
                    start = Some(i);
                    break;
                }
            }
            let Some(start) = start else { continue };
            let clique: Vec<usize> = cand[start..].iter().map(|&(_, j)| j).collect();
            for (x, &a) in clique.iter().enumerate() {
                for &b in clique.iter().skip(x + 1) {
                    edges.insert((a.min(b), a.max(b)));
                }
            }
            if clique.len() >= 2 {
                cliques.insert(clique);
            }
        }
    }

    // --- Root probing --------------------------------------------------
    let prop = Propagator::new(model);
    let order: Vec<usize> = {
        // Representatives first, then orbit mates, each in index order.
        let mut reps: Vec<usize> = (0..n).filter(|&j| is_bin[j] && out.orbit_rep[j]).collect();
        let mates: Vec<usize> = (0..n).filter(|&j| is_bin[j] && !out.orbit_rep[j]).collect();
        reps.extend(mates);
        reps
    };
    let mut probed = 0usize;
    'probing: for &j in &order {
        if out.lower[j] >= out.upper[j] - 0.5 {
            continue; // already fixed
        }
        if probed >= opts.probe_cap {
            break;
        }
        probed += 1;
        let run = |fix_to: f64| -> Option<(Vec<f64>, Vec<f64>)> {
            let mut lo = out.lower.clone();
            let mut up = out.upper.clone();
            lo[j] = fix_to;
            up[j] = fix_to;
            prop.propagate(&mut lo, &mut up).map(|_| (lo, up))
        };
        let zero = run(0.0);
        let one = run(1.0);
        out.stats.probes += 2;
        let fix = |out: &mut Analysis, value: f64, probed_v: f64| {
            out.fixings.push(ProbeFixing {
                var: j,
                value,
                probed: probed_v,
            });
            out.lower[j] = value;
            out.upper[j] = value;
            out.stats.probe_fixings += 1;
            if !opts.certify {
                if let Some(orbit) = out.orbit_of[j] {
                    for m in 0..n {
                        if m != j && out.orbit_of[m] == Some(orbit) && out.lower[m] < out.upper[m] {
                            out.fixings.push(ProbeFixing {
                                var: m,
                                value,
                                probed: probed_v,
                            });
                            out.lower[m] = value;
                            out.upper[m] = value;
                            out.stats.orbit_fixings += 1;
                        }
                    }
                }
            }
        };
        match (zero, one) {
            (None, None) => {
                // No feasible value at all. Outside certify mode that is
                // a terminal verdict; in certify mode log the 1-side
                // refutation (auditable on its own) and let the tree
                // prove the rest.
                if opts.certify {
                    fix(&mut out, 0.0, 1.0);
                    break 'probing;
                }
                out.infeasible = true;
                return out;
            }
            (None, Some((lo, up))) => {
                fix(&mut out, 1.0, 0.0);
                if !opts.certify {
                    adopt(&mut out, &lo, &up);
                }
            }
            (Some((lo, up)), None) => {
                fix(&mut out, 0.0, 1.0);
                if !opts.certify {
                    adopt(&mut out, &lo, &up);
                }
            }
            (Some((lo0, up0)), Some((lo1, up1))) => {
                // Implications: a binary forced by the 1-side is in
                // conflict with (or implied by) j.
                for k in 0..n {
                    if k == j || !is_bin[k] || out.upper[k] - out.lower[k] < 0.5 {
                        continue;
                    }
                    if up1[k] < 0.5 {
                        // j = 1 ⇒ k = 0: a conflict edge.
                        out.stats.implications += 1;
                        edges.insert((j.min(k), j.max(k)));
                    } else if lo1[k] > 0.5 || up0[k] < 0.5 || lo0[k] > 0.5 {
                        out.stats.implications += 1;
                    }
                }
                if !opts.certify {
                    // Lifted bounds: every feasible point lives in the
                    // union of the two propagated boxes.
                    for v in 0..n {
                        let nl = lo0[v].min(lo1[v]);
                        let nu = up0[v].max(up1[v]);
                        if nl > out.lower[v] {
                            out.lower[v] = nl;
                            out.stats.lifted_bounds += 1;
                        }
                        if nu < out.upper[v] {
                            out.upper[v] = nu;
                            out.stats.lifted_bounds += 1;
                        }
                    }
                }
            }
        }
    }

    // --- Final shape ----------------------------------------------------
    for &(a, b) in &edges {
        out.degree[a] += 1;
        out.degree[b] += 1;
    }
    out.stats.conflict_edges = edges.len();
    out.edges = edges.into_iter().collect();
    out.stats.cliques = cliques.len();
    out.stats.max_clique = cliques.iter().map(Vec::len).max().unwrap_or(0);
    out.cliques = cliques.into_iter().collect();
    out
}

/// Adopts the propagated box of a successful forced probe (the fixing's
/// consequences are implied for every feasible point). Non-certify only.
fn adopt(out: &mut Analysis, lo: &[f64], up: &[f64]) {
    for v in 0..out.lower.len() {
        if lo[v] > out.lower[v] {
            out.lower[v] = lo[v];
        }
        if up[v] < out.upper[v] {
            out.upper[v] = up[v];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::Sense;

    #[test]
    fn gub_row_yields_a_clique() {
        let mut m = Model::new(Sense::Minimize);
        let xs: Vec<_> = (0..4).map(|i| m.binary_var(format!("x{i}"))).collect();
        let mut sum = LinExpr::new();
        for &x in &xs {
            sum.add_term(x, 1.0);
        }
        m.add_eq(sum, 1.0);
        m.set_objective(LinExpr::from(xs[0]));
        let a = analyze(&m, &[], &AnalyzeOptions::default());
        assert_eq!(a.stats.max_clique, 4);
        assert_eq!(a.stats.conflict_edges, 6);
        assert!(a.degree.iter().take(4).all(|&d| d == 3));
    }

    #[test]
    fn probing_fixes_a_forced_binary() {
        // x + y ≥ 1 and x ≥ y force x = 1: probing x = 0 gives y ≥ 1
        // and y ≤ 0.
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        m.add_geq(x + y, 1.0);
        m.add_geq(x - y, 0.0);
        m.set_objective(x + y);
        let a = analyze(&m, &[], &AnalyzeOptions::default());
        assert!(!a.infeasible);
        assert_eq!(a.stats.probe_fixings, 1);
        assert_eq!(a.fixings[0].var, 0);
        assert_eq!(a.fixings[0].value, 1.0);
        assert_eq!(a.fixings[0].probed, 0.0);
        assert_eq!((a.lower[0], a.upper[0]), (1.0, 1.0));
    }

    #[test]
    fn probing_detects_infeasibility() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        m.add_geq(x + y, 2.0); // forces both 1
        m.add_leq(x + y, 1.0); // forbids it
        m.set_objective(x + y);
        let a = analyze(&m, &[], &AnalyzeOptions::default());
        assert!(a.infeasible);
        // In certify mode the verdict becomes a logged fixing instead.
        let c = analyze(
            &m,
            &[],
            &AnalyzeOptions {
                certify: true,
                ..AnalyzeOptions::default()
            },
        );
        assert!(!c.infeasible);
        assert_eq!(c.stats.probe_fixings, 1);
    }

    #[test]
    fn certify_mode_logs_no_unproved_deductions() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        let z = m.integer_var("z", 0.0, 9.0);
        m.add_geq(x + y, 1.0);
        m.add_geq(x - y, 0.0);
        m.add_leq(LinExpr::from(z) - 4.0 * LinExpr::from(x), 0.0);
        m.set_objective(x + y + z);
        let c = analyze(
            &m,
            &[],
            &AnalyzeOptions {
                certify: true,
                ..AnalyzeOptions::default()
            },
        );
        assert_eq!(c.stats.lifted_bounds, 0);
        assert_eq!(c.stats.orbit_fixings, 0);
        // Every bound change is explained by a logged fixing.
        let fixed: Vec<usize> = c.fixings.iter().map(|f| f.var).collect();
        for j in 0..m.var_count() {
            let (lb, ub) = m.var_bounds(crate::expr::VarId(j));
            if (c.lower[j], c.upper[j]) != (lb, ub) {
                assert!(fixed.contains(&j), "unlogged bound change on {j}");
            }
        }
    }

    #[test]
    fn automorphism_swap_verifies_and_ordering_rows_break_it() {
        // x and y are interchangeable in x + y ≤ 1 with equal costs.
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        m.add_leq(x + y, 1.0);
        m.set_objective(x + y);
        let swap = vec![(1, false), (0, false)];
        assert!(verify_automorphism(&m, &swap));
        assert!(verify_automorphism(&m, &[(0, false), (1, false)]));
        // An ordering row x ≥ y breaks the swap...
        let mut m2 = Model::new(Sense::Minimize);
        let x = m2.binary_var("x");
        let y = m2.binary_var("y");
        m2.add_leq(x + y, 1.0);
        m2.add_geq(x - y, 0.0);
        m2.set_objective(x + y);
        assert!(!verify_automorphism(&m2, &swap));
        // ...and unequal costs break it too.
        let mut m3 = Model::new(Sense::Minimize);
        let x = m3.binary_var("x");
        let y = m3.binary_var("y");
        m3.add_leq(x + y, 1.0);
        m3.set_objective(2.0 * LinExpr::from(x) + y);
        assert!(!verify_automorphism(&m3, &swap));
    }

    #[test]
    fn sign_flip_automorphism_on_symmetric_flow() {
        // f ∈ [−3, 3] continuous with f + 3x ≥ 0 and f − 3x ≤ 0: negating
        // f maps the two gating rows onto each other.
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let f = m.continuous_var("f", -3.0, 3.0);
        m.add_geq(LinExpr::from(f) + 3.0 * LinExpr::from(x), 0.0);
        m.add_leq(LinExpr::from(f) - 3.0 * LinExpr::from(x), 0.0);
        m.set_objective(LinExpr::from(x));
        assert!(verify_automorphism(&m, &[(0, false), (1, true)]));
        // Flipping a binary is never accepted.
        assert!(!verify_automorphism(&m, &[(0, true), (1, false)]));
    }

    #[test]
    fn orbit_fixing_propagates_to_mates() {
        // Two interchangeable forced binaries: x0 + x1 ≥ 2.
        let mut m = Model::new(Sense::Minimize);
        let a = m.binary_var("a");
        let b = m.binary_var("b");
        m.add_geq(a + b, 2.0);
        m.set_objective(a + b);
        let swap = vec![(1usize, false), (0usize, false)];
        assert!(verify_automorphism(&m, &swap));
        let an = analyze(&m, &[swap], &AnalyzeOptions::default());
        assert_eq!(an.stats.orbit_count, 1);
        assert_eq!(an.stats.orbit_vars, 2);
        assert_eq!(an.stats.probe_fixings + an.stats.orbit_fixings, 2);
        assert!(an.stats.orbit_fixings >= 1, "mate fixed via the orbit");
        assert_eq!((an.lower[0], an.lower[1]), (1.0, 1.0));
    }

    #[test]
    fn probe_cap_limits_probing() {
        let mut m = Model::new(Sense::Minimize);
        let xs: Vec<_> = (0..6).map(|i| m.binary_var(format!("x{i}"))).collect();
        let mut sum = LinExpr::new();
        for &x in &xs {
            sum.add_term(x, 1.0);
        }
        m.add_geq(sum, 6.0); // all forced
        m.set_objective(LinExpr::from(xs[0]));
        // Certify mode probes each binary individually (no propagated-box
        // adoption), so the cap is directly observable.
        let a = analyze(
            &m,
            &[],
            &AnalyzeOptions {
                certify: true,
                probe_cap: 2,
            },
        );
        assert_eq!(a.stats.probes, 4);
        assert_eq!(a.stats.probe_fixings, 2);
    }
}
