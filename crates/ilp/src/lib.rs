//! A self-contained mixed-integer linear programming (MILP) solver.
//!
//! The FPVA test-generation paper (Liu et al., DATE 2017) formulates flow
//! path and cut-set construction as ILPs (constraints (1)–(9)) and solves
//! them with a commercial solver. No ILP solver is available as an offline
//! dependency, so this crate implements one from scratch:
//!
//! * a modelling API ([`Model`], [`LinExpr`], [`VarId`]) for continuous,
//!   general-integer and binary variables with bounds,
//! * a dense **two-phase primal simplex** for the LP relaxations
//!   ([`simplex`]), with Bland's anti-cycling rule,
//! * a **branch-and-bound** driver ([`MilpSolver`]) with depth-first
//!   search, most-fractional branching, integral-objective ceiling bounds,
//!   warm-start incumbents, node/time limits.
//!
//! It is sized for the instances the paper's *hierarchical* flow produces
//! (5×5 subblocks, a few hundred variables); it is not a general-purpose
//! replacement for a commercial solver on huge direct formulations — that
//! trade-off is exactly why the paper proposes the hierarchical model.
//!
//! # Example: a tiny knapsack
//!
//! ```
//! use fpva_ilp::{Model, MilpSolver, Sense};
//!
//! # fn main() -> Result<(), fpva_ilp::IlpError> {
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.binary_var("x");
//! let y = m.binary_var("y");
//! let z = m.binary_var("z");
//! // weights 3, 4, 5; capacity 7; values 4, 5, 6
//! m.add_leq(3.0 * x + 4.0 * y + 5.0 * z, 7.0);
//! m.set_objective(4.0 * x + 5.0 * y + 6.0 * z);
//! let outcome = MilpSolver::new().solve(&m)?;
//! let best = outcome.best.expect("feasible");
//! assert_eq!(best.objective.round() as i64, 9); // x + y
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch_bound;
mod error;
mod expr;
mod model;
pub mod simplex;
mod solution;

pub use branch_bound::{MilpOptions, MilpSolver};
pub use error::IlpError;
pub use expr::{LinExpr, VarId};
pub use model::{ConstraintOp, Model, Sense, VarKind};
pub use solution::{MilpOutcome, Solution, SolveStats, SolveStatus};
