//! A self-contained mixed-integer linear programming (MILP) solver.
//!
//! The FPVA test-generation paper (Liu et al., DATE 2017) formulates flow
//! path and cut-set construction as ILPs (constraints (1)–(9)) and solves
//! them with a commercial solver. No ILP solver is available as an offline
//! dependency, so this crate implements one from scratch:
//!
//! * a modelling API ([`Model`], [`LinExpr`], [`VarId`]) for continuous,
//!   general-integer and binary variables with bounds,
//! * a **static presolve** layer ([`presolve`](mod@presolve)) that
//!   shrinks the model and certifies trivial verdicts before any basis
//!   is factorized,
//! * a **sparse revised simplex** for the LP relaxations ([`simplex`]),
//! * a **branch-and-bound** driver ([`MilpSolver`]) with depth-first
//!   search, most-fractional branching, integral-objective ceiling bounds,
//!   warm-start incumbents, node/time limits.
//!
//! # Presolve / postsolve architecture
//!
//! [`presolve()`] sits between [`Model`] construction and
//! [`Model::to_sparse_lp`]. It runs row, duplicate and column sweeps to
//! a fixpoint (bounded by a pass cap): empty and singleton rows become
//! bound updates, redundant rows are dropped and forcing rows fix their
//! whole support, duplicate rows merge to the tightest combination,
//! implied-free zero-cost column singletons are substituted out, empty
//! columns are fixed at their cheapest bound, and integer bounds are
//! tightened by floor/ceil implied-bound propagation.
//!
//! Every deduction is pure interval arithmetic over the variable
//! bounds, so a [`PresolveOutcome::Infeasible`] or
//! [`PresolveOutcome::Unbounded`] outcome is a *certificate*, exactly
//! like the simplex engine's audited verdicts — branch-and-bound can
//! return it without ever factorizing a basis ([`SolveStats`] then
//! reports zero nodes). Unboundedness is only certified once zero rows
//! remain (the model is trivially feasible) and an improving direction
//! is unbounded; anything subtler is left for the simplex to decide.
//!
//! The reductions are recorded in a [`Postsolve`] action stack; applying
//! it in reverse lifts any reduced-model solution back to the original
//! variable space (`x = clamp((rhs − Σ aᵢ·xᵢ)/coeff, lb, ub)` for
//! substitutions, the recorded value for fixings). [`MilpSolver`] runs
//! presolve at the root by default ([`MilpOptions::presolve`] turns it
//! off), re-applies integer implied-bound propagation per node before
//! each LP, and restores incumbents through the postsolve record, so
//! solver signatures, reported solutions and verdict semantics are
//! unchanged by the whole layer. [`numerics_report`] shares the same
//! static machinery to flag tiny/huge coefficients and near-parallel
//! rows before a solve is attempted.
//!
//! # Static analysis: conflict graph, probing, orbits
//!
//! Between presolve and the tree sits a second static pass,
//! [`analyze`](mod@analyze), run once on the model the tree will search
//! (the reduced model when presolve ran). Unlike presolve it never
//! rewrites the model — it extracts facts:
//!
//! * a **conflict graph** over the binaries, built structurally from
//!   set-packing/GUB-shaped rows (clique detection per row, with a
//!   clique table) and extended by probing implications; the conflict
//!   *degree* weights branching towards entangled variables,
//! * **root probing**: each binary is tentatively fixed to 0 and 1 and
//!   the presolve interval propagator is run — a side that propagates to
//!   an empty domain fixes the variable to the other value before the
//!   root LP; two live sides yield implications and (outside certify
//!   mode) union-lifted bounds,
//! * **symmetry orbits**: callers pass signed variable permutations
//!   ([`MilpOptions::symmetry`]); each is *structurally verified* by
//!   [`analyze::verify_automorphism`] against the searched model (so a
//!   wrong claim is dropped, never trusted — presolve may legitimately
//!   break a symmetry of the original model), then closed into orbits of
//!   interchangeable binaries. Branching prefers orbit representatives,
//!   and probing fixings propagate to orbit mates.
//!
//! In certify mode every solution-changing deduction must remain
//! auditable: probing fixings are logged into the certificate
//! ([`certify::MilpCertificate::analysis`]) and re-derived by
//! [`certify_outcome`] with exact rational interval propagation, while
//! lifted bounds and orbit-propagated fixings are disabled (orbit mates
//! are simply probed individually, so their fixings arrive logged too).
//! Orbit-aware *branching order* stays active — a branching choice can
//! never invalidate a proof.
//!
//! # Revised-simplex architecture
//!
//! The paper's path-cover LPs are extremely sparse — each column touches
//! a handful of degree/flow/cover rows — so the LP engine never builds a
//! tableau:
//!
//! * **Storage.** The constraint matrix is lowered once to compressed
//!   sparse column form ([`sparse::CscMatrix`], assembled through the
//!   sorted-column builder [`SparseVec`]) as a prepared
//!   [`simplex::SparseLp`]. Branch-and-bound re-solves that one object
//!   under per-node bound vectors instead of cloning rows at every node.
//! * **Bounds.** Variable bounds are handled natively: nonbasic variables
//!   rest at a finite bound and may "bound-flip" without a basis change,
//!   so finite upper bounds add no rows (the dense oracle adds one row
//!   per bounded variable).
//! * **Basis.** `B` is held as a sparse LU factorization ([`lu`]):
//!   `B = F·H·V` with `F` the lower-triangular factor of the last
//!   refactorization (a column-eta file), `V` the permuted
//!   upper-triangular factor stored explicitly in dual row/column form,
//!   and `H` a file of Forrest–Tomlin row etas. Refactorization runs
//!   right-looking Gaussian elimination with **Markowitz ordering**
//!   (minimise the `(r−1)(c−1)` fill proxy) under a **threshold
//!   partial-pivoting** stability test; each simplex pivot then updates
//!   the factors in place by one **Forrest–Tomlin** column replacement
//!   instead of appending product-form etas.
//! * **Refactorization policy.** Rebuilds are no longer a fixed cadence:
//!   the LU layer requests one when update-file fill outgrows the base
//!   factorization or an update fails its stability test (a tiny
//!   re-triangularised diagonal), and the simplex layer adds two of its
//!   own triggers — a short freshness cadence (crisper alphas measurably
//!   improve degenerate ratio-test decisions, a branching-quality knob
//!   inherited from the eta-file era) and an escalation when the
//!   periodic basic-value refresh measures drift. Numerical freshness
//!   (one FTRAN per `VALUES_REFRESH` pivots of [`simplex`]) is thereby
//!   decoupled from rebuild cost.
//! * **Stability safeguards.** An `Optimal`/`Infeasible` verdict is a
//!   *proof* to branch-and-bound, so the engine certifies terminations:
//!   the pivot loop only breaks off freshly recomputed basic values, a
//!   phase-1 infeasibility verdict is re-proven on a fresh
//!   factorization, and every reported optimum must pass a
//!   factor-independent primal-residual audit (`|A·x + s − b|` straight
//!   off the CSC matrix). Tiny blocking pivots on a factor that has
//!   absorbed updates trigger refactorize-and-retry rather than an
//!   unstable Forrest–Tomlin update.
//! * **Pricing.** Projected steepest-edge (Devex) reference weights:
//!   the entering column maximises `d²/w`, with weights updated from the
//!   pivot row. A degenerate-pivot streak switches to **Bland's rule**
//!   until progress resumes (and permanently after a large degenerate
//!   total), which is what terminates classic cycling instances such as
//!   Beale's example.
//! * **Determinism.** No randomisation anywhere; fixed iteration order
//!   and index-based tie-breaking make every solve a pure function of
//!   `(problem, bounds, deadline behaviour)`.
//! * **Limits.** [`MilpOptions::time_limit`] is enforced as a wall-clock
//!   deadline *inside* the pivot loop (a single LP cannot overshoot the
//!   budget; it returns [`simplex::LpStatus::TimeLimit`] with no partial
//!   answer), and [`MilpOptions::node_limit`] bounds the tree size.
//!   Nodes whose LP was cut short are reported in
//!   [`SolveStats::limit_nodes`] — they are *pruned unproven*, so any
//!   outcome with `limit_nodes > 0` is at best [`SolveStatus::Feasible`].
//!
//! The previous dense two-phase tableau solver survives as [`dense`], the
//! reference oracle the `ilp_differential` proptest harness checks the
//! revised simplex against.
//!
//! # Dual simplex warm re-solves
//!
//! Branch-and-bound's child nodes differ from their parent by one
//! tightened bound, which leaves the parent's optimal basis **dual
//! feasible** but (usually) primal infeasible — the textbook dual-simplex
//! starting state. The engine therefore runs a dual walk before the
//! primal phases whenever a warm-started basis has bound violations:
//!
//! * **Pricing.** The leaving row is the basic variable furthest outside
//!   its bounds (switching to smallest-index under Bland's rule). Its
//!   pivot row is accumulated through the CSR row mirror exactly like a
//!   Devex update, and reduced costs are maintained *incrementally*
//!   across pivots (`d_j ← d_j − (d_q/α_rq)·α_rj`) from one BTRAN-priced
//!   seed at walk entry, so a pivot costs one BTRAN for the row and one
//!   FTRAN for the entering column — no per-pivot pricing sweep.
//! * **Bound-flipping ratio test.** Breakpoints are walked in ascending
//!   dual ratio `|d_j|/|α_rj|` with the same EPS tie-tolerancing as the
//!   primal ratio test; a boxed candidate whose whole span cannot absorb
//!   the remaining violation is bound-flipped without a basis change (the
//!   "long step"), and among breakpoints tied at the stopping ratio the
//!   largest pivot-row entry enters for stability. Flips are only applied
//!   when an entering pivot actually follows — flipping without the
//!   accompanying dual step would leave the basis silently dual
//!   infeasible.
//! * **Anti-cycling.** These cover probes are massively degenerate, so
//!   the dual walk gives up much sooner than the primal machinery: a
//!   streak of zero-progress pivots switches to Bland's rule at
//!   `DUAL_DEGEN_FOR_BLAND` and hands the basis back at
//!   `DUAL_DEGEN_STALL`, under an overall per-node pivot budget.
//! * **Consume-or-rollback.** The engine snapshots its exact state
//!   (basis, statuses, values, LU factors) before the walk. A walk that
//!   reaches primal feasibility is consumed — phase 1 is skipped and
//!   phase 2 confirms optimality from the dual-optimal basis; a proven
//!   infeasibility is returned as the node verdict (certifying solves
//!   instead fall through to primal phase 1 so the proof log gets its
//!   Farkas ray). Anything else — stall, budget, deadline — rolls the
//!   engine back bit-identically and the primal path re-solves as if the
//!   dual had never run. The exactness matters: restarting the primal
//!   from a merely *perturbed* copy of the same basis measurably
//!   reshuffles degenerate pricing ties and blows up the search tree.
//!
//! [`SolveStats`] exposes the walk's footprint (`dual_pivots`,
//! `warm_resolves`, `cold_restarts`); the repo-level ablation harness
//! reports them per subblock. Measured on the paper's exact-cover
//! probes, the dual path shrinks the branch-and-bound tree on every
//! unchannelled size (3×3: 57 → 35 nodes, 4×4: 338 → 174, 5×5: 91 → 74
//! at equal-or-better wall-clock) and raises node throughput on the
//! channelled Table I 5×5 by ~39% (fewer refactorizations: the dual
//! verdict spares the phase-1 grind on infeasible children).
//!
//! # Certificates and exact re-verification
//!
//! Every safeguard above still trusts `f64`. The certificate layer
//! removes that trust for terminal verdicts: solvers *log proofs*, and
//! [`certify`](mod@certify) re-checks them in exact arbitrary-precision
//! rational arithmetic ([`bigrat::BigRat`] — every finite `f64` is a
//! dyadic rational, so the conversion is lossless and no dependency is
//! needed).
//!
//! * **LP level.** [`simplex::SimplexEngine::set_certify`] makes each
//!   solve emit an [`simplex::LpCertificate`]: the final primal point and
//!   simplex multipliers for `Optimal`, a phase-1 Farkas ray for
//!   `Infeasible`. [`certify::certify_lp`] re-proves the verdict from the
//!   multipliers alone — the Lagrangian bound `y·b + Σ min dⱼxⱼ` must
//!   reach the primal objective, or the aggregated Farkas row must exceed
//!   the variable box's maximum activity — without trusting the basis or
//!   the factorization.
//! * **MILP level.** [`MilpOptions::certificate`] makes [`MilpSolver`]
//!   record a [`certify::MilpCertificate`]: the full branching tree
//!   (every leaf carrying a Farkas ray, a dominating dual bound, an
//!   integral LP optimum or an empty domain), the reduced-space
//!   incumbent, and presolve's reduction action list.
//!   [`certify::certify_outcome`] replays the tree from the root,
//!   re-proves every leaf under its accumulated bounds, audits the
//!   presolve actions against the original model, independently replays
//!   the postsolve over the incumbent and re-checks the restored point's
//!   feasibility and objective against the **original** model — exactly.
//!   Rejections are structured [`certify::CertifyError`]s naming the
//!   violated row, bound, leaf or action.
//!
//! Certificate mode changes the search to keep proofs exact: per-node
//! bound propagation is disabled (a tightened bound is an unproved
//! deduction; leaf boxes must be root bounds plus branch decisions only),
//! and when presolve itself certifies an `Infeasible`/`Solved` verdict
//! the solver re-proves it by branch-and-bound on the *original* model so
//! the tree proof needs no reduction equivalence argument. The remaining
//! trust boundary is deliberate and documented: for *pruning* purposes
//! the reduced model is audited (action-by-action consistency, mapping
//! injectivity, bounds only tightened, incumbent replay) but presolve's
//! interval deductions are not re-derived from first principles.
//!
//! It is sized for the instances the paper's *hierarchical* flow produces
//! (subblocks up to a few hundred variables); it is not a general-purpose
//! replacement for a commercial solver on huge direct formulations — that
//! trade-off is exactly why the paper proposes the hierarchical model.
//!
//! # Example: a tiny knapsack
//!
//! ```
//! use fpva_ilp::{Model, MilpSolver, Sense};
//!
//! # fn main() -> Result<(), fpva_ilp::IlpError> {
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.binary_var("x");
//! let y = m.binary_var("y");
//! let z = m.binary_var("z");
//! // weights 3, 4, 5; capacity 7; values 4, 5, 6
//! m.add_leq(3.0 * x + 4.0 * y + 5.0 * z, 7.0);
//! m.set_objective(4.0 * x + 5.0 * y + 6.0 * z);
//! let outcome = MilpSolver::new().solve(&m)?;
//! let best = outcome.best.expect("feasible");
//! assert_eq!(best.objective.round() as i64, 9); // x + y
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod bigrat;
mod branch_bound;
pub mod certify;
pub mod dense;
mod error;
mod expr;
#[doc(hidden)]
pub mod fixtures;
pub mod lu;
mod model;
pub mod presolve;
pub mod simplex;
mod solution;
pub mod sparse;

pub use analyze::{Analysis, AnalysisStats, AnalyzeOptions, ProbeFixing, SignedPerm};
pub use bigrat::BigRat;
pub use branch_bound::{MilpOptions, MilpSolver};
pub use certify::{certify_lp, certify_outcome, CertifyError, CertifySummary, MilpCertificate};
pub use error::IlpError;
pub use expr::{LinExpr, SparseVec, VarId};
pub use model::{ConstraintOp, Model, Sense, VarKind};
pub use presolve::{
    numerics_report, presolve, NumericsReport, Postsolve, PresolveOutcome, PresolveStats, Presolved,
};
pub use solution::{MilpOutcome, Solution, SolveStats, SolveStatus};
