//! Arbitrary-precision rational arithmetic for certificate checking.
//!
//! [`certify`](crate::certify) re-verifies solver certificates against the
//! original model in *exact* arithmetic, so it cannot use `f64`. This module
//! provides the minimal bignum rational it needs: a sign plus little-endian
//! `Vec<u64>` limb magnitudes for numerator and denominator, with addition,
//! subtraction, multiplication, division, floor/ceil (for replaying
//! integer bound propagation exactly), comparison and a binary GCD for
//! normalisation. There is deliberately no serialisation and no
//! dependency — the whole module is safe, portable Rust.
//!
//! Every finite `f64` is a dyadic rational (`±mantissa · 2^exponent`), so
//! [`BigRat::from_f64`] is **lossless**: the exact value the solver computed
//! with is the exact value the checker reasons about. Denominators of all
//! quantities derived from `f64` inputs stay powers of two, which keeps the
//! binary GCD cheap.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

// ---------------------------------------------------------------------------
// Limb-vector helpers. Magnitudes are little-endian `Vec<u64>` with no
// trailing zero limbs; the empty vector is zero.
// ---------------------------------------------------------------------------

fn trim(v: &mut Vec<u64>) {
    while v.last() == Some(&0) {
        v.pop();
    }
}

fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        if x != y {
            return x.cmp(y);
        }
    }
    Ordering::Equal
}

fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u128;
    for (i, &limb) in long.iter().enumerate() {
        let s = carry + u128::from(limb) + u128::from(*short.get(i).unwrap_or(&0));
        out.push(s as u64);
        carry = s >> 64;
    }
    if carry != 0 {
        out.push(carry as u64);
    }
    out
}

/// `a - b`; requires `a >= b`.
fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(cmp_mag(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i128;
    for (i, &limb) in a.iter().enumerate() {
        let d = i128::from(limb) - i128::from(*b.get(i).unwrap_or(&0)) - borrow;
        if d < 0 {
            out.push((d + (1i128 << 64)) as u64);
            borrow = 1;
        } else {
            out.push(d as u64);
            borrow = 0;
        }
    }
    trim(&mut out);
    out
}

fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &y) in b.iter().enumerate() {
            let t = u128::from(x) * u128::from(y) + u128::from(out[i + j]) + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = u128::from(out[k]) + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    trim(&mut out);
    out
}

/// Number of trailing zero bits of a non-zero magnitude.
fn trailing_zero_bits(v: &[u64]) -> u64 {
    debug_assert!(!v.is_empty());
    let mut tz = 0u64;
    for &limb in v {
        if limb == 0 {
            tz += 64;
        } else {
            return tz + u64::from(limb.trailing_zeros());
        }
    }
    tz
}

fn shl_mag(v: &[u64], bits: u64) -> Vec<u64> {
    if v.is_empty() {
        return Vec::new();
    }
    let limbs = (bits / 64) as usize;
    let sh = (bits % 64) as u32;
    let mut out = vec![0u64; limbs];
    if sh == 0 {
        out.extend_from_slice(v);
    } else {
        let mut carry = 0u64;
        for &limb in v {
            out.push((limb << sh) | carry);
            carry = limb >> (64 - sh);
        }
        if carry != 0 {
            out.push(carry);
        }
    }
    trim(&mut out);
    out
}

fn shr_mag(v: &[u64], bits: u64) -> Vec<u64> {
    let limbs = (bits / 64) as usize;
    if limbs >= v.len() {
        return Vec::new();
    }
    let sh = (bits % 64) as u32;
    let mut out = v[limbs..].to_vec();
    if sh != 0 {
        for i in 0..out.len() {
            let hi = if i + 1 < out.len() { out[i + 1] } else { 0 };
            out[i] = (out[i] >> sh) | (hi << (64 - sh));
        }
    }
    trim(&mut out);
    out
}

/// Binary GCD of two magnitudes; `gcd(0, b) = b`.
fn gcd_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    trim(&mut a);
    trim(&mut b);
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let ta = trailing_zero_bits(&a);
    let tb = trailing_zero_bits(&b);
    let k = ta.min(tb);
    a = shr_mag(&a, ta);
    loop {
        let t = trailing_zero_bits(&b);
        b = shr_mag(&b, t);
        if cmp_mag(&a, &b) == Ordering::Greater {
            std::mem::swap(&mut a, &mut b);
        }
        b = sub_mag(&b, &a);
        if b.is_empty() {
            break;
        }
    }
    shl_mag(&a, k)
}

/// Divides a magnitude by a small non-zero divisor, returning the quotient
/// and remainder. Used only for decimal formatting.
fn divrem_small(v: &[u64], d: u64) -> (Vec<u64>, u64) {
    debug_assert!(d != 0);
    let mut out = vec![0u64; v.len()];
    let mut rem = 0u128;
    for i in (0..v.len()).rev() {
        let cur = (rem << 64) | u128::from(v[i]);
        out[i] = (cur / u128::from(d)) as u64;
        rem = cur % u128::from(d);
    }
    trim(&mut out);
    (out, rem as u64)
}

fn mag_to_decimal(v: &[u64]) -> String {
    if v.is_empty() {
        return "0".to_string();
    }
    // Peel 19 decimal digits at a time (10^19 fits in a u64).
    const CHUNK: u64 = 10_000_000_000_000_000_000;
    let mut rest = v.to_vec();
    let mut chunks = Vec::new();
    while !rest.is_empty() {
        let (q, r) = divrem_small(&rest, CHUNK);
        chunks.push(r);
        rest = q;
    }
    let mut s = chunks
        .last()
        .map_or_else(|| "0".to_string(), u64::to_string);
    for chunk in chunks.iter().rev().skip(1) {
        s.push_str(&format!("{chunk:019}"));
    }
    s
}

/// Approximates a magnitude as `(mantissa, exponent)` with value
/// `≈ mantissa · 2^exponent`; the top 64 bits are kept exactly, so the
/// result is lossless whenever the magnitude has ≤ 64 significant bits.
fn top_bits(v: &[u64]) -> (u64, i64) {
    let bits = mag_bits(v);
    if bits <= 64 {
        (v.first().copied().unwrap_or(0), 0)
    } else {
        let shift = bits - 64;
        let top = shr_mag(v, shift);
        (top[0], shift as i64)
    }
}

// ---------------------------------------------------------------------------
// BigRat
// ---------------------------------------------------------------------------

/// An exact arbitrary-precision rational: sign plus limb-vector numerator
/// and denominator magnitudes, always kept in lowest terms.
///
/// Invariants: `den` is non-zero; `gcd(num, den) == 1`; zero is represented
/// with an empty numerator, denominator one and a non-negative sign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigRat {
    neg: bool,
    num: Vec<u64>,
    den: Vec<u64>,
}

impl BigRat {
    /// The rational 0.
    pub fn zero() -> Self {
        BigRat {
            neg: false,
            num: Vec::new(),
            den: vec![1],
        }
    }

    /// The rational 1.
    pub fn one() -> Self {
        BigRat::from_i64(1)
    }

    /// Builds an exact integer.
    pub fn from_i64(v: i64) -> Self {
        let neg = v < 0;
        let mag = v.unsigned_abs();
        let num = if mag == 0 { Vec::new() } else { vec![mag] };
        BigRat {
            neg: neg && mag != 0,
            num,
            den: vec![1],
        }
    }

    /// Converts a finite `f64` to the **exact** rational it represents
    /// (every finite `f64` is `±mantissa · 2^e`). Returns `None` for NaN
    /// and the infinities.
    pub fn from_f64(v: f64) -> Option<Self> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(BigRat::zero());
        }
        let bits = v.to_bits();
        let neg = bits >> 63 == 1;
        let biased = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mant, e) = if biased == 0 {
            (frac, -1074i64)
        } else {
            (frac | (1u64 << 52), biased - 1075)
        };
        let mut num = vec![mant];
        let mut den = vec![1u64];
        if e >= 0 {
            num = shl_mag(&num, e as u64);
        } else {
            den = shl_mag(&den, (-e) as u64);
        }
        Some(Self::from_parts(neg, num, den))
    }

    /// Normalising constructor: trims, reduces by the GCD and canonicalises
    /// zero. `den` must be non-zero.
    fn from_parts(neg: bool, mut num: Vec<u64>, mut den: Vec<u64>) -> Self {
        trim(&mut num);
        trim(&mut den);
        assert!(!den.is_empty(), "BigRat denominator must be non-zero");
        if num.is_empty() {
            return BigRat::zero();
        }
        let g = gcd_mag(&num, &den);
        if g != [1] {
            num = divide_exact(&num, &g);
            den = divide_exact(&den, &g);
        }
        BigRat { neg, num, den }
    }

    /// `true` iff the value is exactly 0.
    pub fn is_zero(&self) -> bool {
        self.num.is_empty()
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.neg
    }

    /// `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        !self.neg && !self.num.is_empty()
    }

    /// `true` iff the value is an integer (denominator 1).
    pub fn is_integer(&self) -> bool {
        self.den == [1]
    }

    /// The absolute value.
    pub fn abs(&self) -> Self {
        BigRat {
            neg: false,
            num: self.num.clone(),
            den: self.den.clone(),
        }
    }

    /// Nearest `f64` (approximate; used only for diagnostics, never for
    /// certification decisions).
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        // Divide the top 64 bits of each magnitude and re-apply the
        // stripped power of two; exponents beyond f64 range saturate to
        // ±inf / 0, which is the right answer for a diagnostic value.
        let (n, ne) = top_bits(&self.num);
        let (d, de) = top_bits(&self.den);
        let exp = (ne - de).clamp(-1500, 1500) as i32;
        let q = (n as f64 / d as f64) * 2f64.powi(exp);
        if self.neg {
            -q
        } else {
            q
        }
    }

    /// The multiplicative inverse. Panics on zero (certification treats a
    /// zero divisor as a malformed certificate before ever dividing).
    pub fn recip(&self) -> Self {
        assert!(!self.is_zero(), "BigRat::recip of zero");
        BigRat {
            neg: self.neg,
            num: self.den.clone(),
            den: self.num.clone(),
        }
    }

    /// The largest integer `≤ self`, as an exact rational.
    pub fn floor(&self) -> Self {
        let (quo, rem) = divrem_mag(&self.num, &self.den);
        if !self.neg {
            BigRat::from_parts(false, quo, vec![1])
        } else if rem.is_empty() {
            BigRat::from_parts(true, quo, vec![1])
        } else {
            BigRat::from_parts(true, add_mag(&quo, &[1]), vec![1])
        }
    }

    /// The smallest integer `≥ self`, as an exact rational.
    pub fn ceil(&self) -> Self {
        -&(-self).floor()
    }

    fn signed_cmp(&self, other: &Self) -> Ordering {
        match (self.neg, other.neg) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => cmp_mag(
                &mul_mag(&self.num, &other.den),
                &mul_mag(&other.num, &self.den),
            ),
            (true, true) => cmp_mag(
                &mul_mag(&other.num, &self.den),
                &mul_mag(&self.num, &other.den),
            ),
        }
    }
}

/// Exact division `a / g` where `g` is known to divide `a`.
fn divide_exact(a: &[u64], g: &[u64]) -> Vec<u64> {
    let (quo, rem) = divrem_mag(a, g);
    debug_assert!(rem.is_empty(), "divide_exact divisor must divide exactly");
    quo
}

/// Truncating division of magnitudes: returns `(a / g, a % g)` with
/// `g != 0`. Schoolbook via [`divrem_small`] when `g` is one limb, binary
/// long division (subtracting shifted copies of `g`) otherwise.
fn divrem_mag(a: &[u64], g: &[u64]) -> (Vec<u64>, Vec<u64>) {
    debug_assert!(!g.is_empty());
    if g == [1] {
        return (a.to_vec(), Vec::new());
    }
    if g.len() == 1 {
        let (q, r) = divrem_small(a, g[0]);
        let rem = if r == 0 { Vec::new() } else { vec![r] };
        return (q, rem);
    }
    let mut rem = a.to_vec();
    trim(&mut rem);
    let mut quo: Vec<u64> = Vec::new();
    let bits_a = mag_bits(&rem);
    let bits_g = mag_bits(g);
    if bits_a < bits_g {
        return (Vec::new(), rem);
    }
    let mut shift = bits_a - bits_g;
    loop {
        let gs = shl_mag(g, shift);
        if cmp_mag(&rem, &gs) != Ordering::Less {
            rem = sub_mag(&rem, &gs);
            set_bit(&mut quo, shift);
        }
        if shift == 0 {
            break;
        }
        shift -= 1;
    }
    trim(&mut quo);
    (quo, rem)
}

fn mag_bits(v: &[u64]) -> u64 {
    match v.last() {
        None => 0,
        Some(&top) => (v.len() as u64) * 64 - u64::from(top.leading_zeros()),
    }
}

fn set_bit(v: &mut Vec<u64>, bit: u64) {
    let limb = (bit / 64) as usize;
    if v.len() <= limb {
        v.resize(limb + 1, 0);
    }
    v[limb] |= 1u64 << (bit % 64);
}

impl PartialOrd for BigRat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRat {
    fn cmp(&self, other: &Self) -> Ordering {
        self.signed_cmp(other)
    }
}

impl Add for &BigRat {
    type Output = BigRat;

    fn add(self, rhs: &BigRat) -> BigRat {
        let left = mul_mag(&self.num, &rhs.den);
        let right = mul_mag(&rhs.num, &self.den);
        let den = mul_mag(&self.den, &rhs.den);
        let (neg, num) = if self.neg == rhs.neg {
            (self.neg, add_mag(&left, &right))
        } else if cmp_mag(&left, &right) == Ordering::Less {
            (rhs.neg, sub_mag(&right, &left))
        } else {
            (self.neg, sub_mag(&left, &right))
        };
        BigRat::from_parts(neg, num, den)
    }
}

impl Sub for &BigRat {
    type Output = BigRat;

    fn sub(self, rhs: &BigRat) -> BigRat {
        self + &(-rhs)
    }
}

impl Mul for &BigRat {
    type Output = BigRat;

    fn mul(self, rhs: &BigRat) -> BigRat {
        BigRat::from_parts(
            self.neg != rhs.neg,
            mul_mag(&self.num, &rhs.num),
            mul_mag(&self.den, &rhs.den),
        )
    }
}

impl Div for &BigRat {
    type Output = BigRat;

    // Division *is* multiplication by the reciprocal here; the lint
    // only sees the operator mismatch.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: &BigRat) -> BigRat {
        self * &rhs.recip()
    }
}

impl Neg for &BigRat {
    type Output = BigRat;

    fn neg(self) -> BigRat {
        if self.is_zero() {
            return BigRat::zero();
        }
        BigRat {
            neg: !self.neg,
            num: self.num.clone(),
            den: self.den.clone(),
        }
    }
}

impl fmt::Display for BigRat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.neg {
            f.write_str("-")?;
        }
        f.write_str(&mag_to_decimal(&self.num))?;
        if !self.is_integer() {
            write!(f, "/{}", mag_to_decimal(&self.den))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: f64) -> BigRat {
        BigRat::from_f64(v).unwrap()
    }

    #[test]
    fn f64_roundtrip_is_exact_for_dyadics() {
        for v in [0.0, 1.0, -1.0, 0.5, -0.375, 3.25, 1e18, -1e-300, 2.5e307] {
            let q = r(v);
            assert_eq!(q.to_f64(), v, "roundtrip of {v}");
        }
        assert!(BigRat::from_f64(f64::NAN).is_none());
        assert!(BigRat::from_f64(f64::INFINITY).is_none());
    }

    #[test]
    fn point_one_is_not_one_tenth() {
        // 0.1 is not representable; its exact rational has a power-of-two
        // denominator, not 10.
        let q = r(0.1);
        let tenth = BigRat::from_parts(false, vec![1], vec![10]);
        assert_ne!(q, tenth);
        assert!((&q - &tenth).abs() < r(1e-16));
    }

    #[test]
    fn arithmetic_identities() {
        let a = r(0.1);
        let b = r(0.7);
        let c = r(-3.2);
        assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        assert_eq!(&a - &a, BigRat::zero());
        assert_eq!(&a + &(-&a), BigRat::zero());
        assert!((&b - &a).is_positive());
        assert!((&c - &a).is_negative());
    }

    #[test]
    fn exact_sums_match_integer_arithmetic() {
        // 2^53 + 1 is not an f64, but BigRat must represent the exact sum.
        let big = r(9_007_199_254_740_992.0); // 2^53
        let one = BigRat::one();
        let sum = &big + &one;
        assert_eq!(sum.to_string(), "9007199254740993");
        assert!(sum.is_integer());
        assert!(sum > big);
    }

    #[test]
    fn ordering_crosses_signs_and_magnitudes() {
        let vals = [-2.5, -0.1, 0.0, 1e-9, 0.5, 2.0, 1e9];
        for (i, &x) in vals.iter().enumerate() {
            for (j, &y) in vals.iter().enumerate() {
                assert_eq!(r(x).cmp(&r(y)), i.cmp(&j).then(Ordering::Equal));
            }
        }
    }

    #[test]
    fn reduction_keeps_lowest_terms() {
        let q = BigRat::from_parts(false, vec![6], vec![4]);
        assert_eq!(q.to_string(), "3/2");
        let p = BigRat::from_parts(true, vec![0], vec![7]);
        assert!(p.is_zero() && !p.is_negative());
    }

    #[test]
    fn multi_limb_products_and_display() {
        let a = r(1e300);
        let sq = &a * &a;
        assert!(sq > a);
        assert!(sq.is_integer());
        // 1e300 is ~2^996; its square has > 30 limbs.
        assert!(sq.to_string().len() > 590);
        // 1e600 is far beyond f64 range: the diagnostic value saturates.
        assert_eq!(sq.to_f64(), f64::INFINITY);
    }

    #[test]
    fn subnormals_convert_exactly() {
        let tiny = f64::from_bits(1); // smallest subnormal, 2^-1074
        let q = r(tiny);
        assert!(q.is_positive());
        assert_eq!(&q + &q, r(2.0 * tiny));
    }

    #[test]
    fn division_and_reciprocal() {
        let a = r(0.75);
        let b = r(-2.5);
        assert_eq!(&(&a / &b) * &b, a);
        assert_eq!(&a * &a.recip(), BigRat::one());
        assert_eq!((&b / &b), BigRat::one());
        let third = &BigRat::one() / &BigRat::from_i64(3);
        assert_eq!((&third + &(&third + &third)), BigRat::one());
    }

    #[test]
    fn floor_and_ceil_cover_signs() {
        let cases = [
            (2.5, 2, 3),
            (-2.5, -3, -2),
            (2.0, 2, 2),
            (-2.0, -2, -2),
            (0.0, 0, 0),
            (0.25, 0, 1),
            (-0.25, -1, 0),
        ];
        for (v, fl, ce) in cases {
            assert_eq!(r(v).floor(), BigRat::from_i64(fl), "floor({v})");
            assert_eq!(r(v).ceil(), BigRat::from_i64(ce), "ceil({v})");
        }
        // A multi-limb case: 2^128 ≡ 1 (mod 3), so floor(2^128/3)·3 + 1
        // must reconstruct 2^128 exactly.
        let x = &r(2f64.powi(128)) / &BigRat::from_i64(3);
        assert_eq!(
            &(&x.floor() * &BigRat::from_i64(3)) + &BigRat::one(),
            r(2f64.powi(128))
        );
        assert_eq!(&x.ceil() - &x.floor(), BigRat::one());
    }

    #[test]
    fn gcd_small_cases() {
        assert_eq!(gcd_mag(&[12], &[18]), vec![6]);
        assert_eq!(gcd_mag(&[], &[5]), vec![5]);
        assert_eq!(gcd_mag(&[7], &[]), vec![7]);
        assert_eq!(gcd_mag(&[1u64 << 40], &[1u64 << 63]), vec![1u64 << 40]);
    }

    #[test]
    fn divrem_and_decimal() {
        let v = mul_mag(&[u64::MAX], &[u64::MAX]);
        let (q, rem) = divrem_small(&v, 3);
        let back = add_mag(&mul_mag(&q, &[3]), &[rem]);
        assert_eq!(back, v);
        assert_eq!(mag_to_decimal(&[]), "0");
        assert_eq!(mag_to_decimal(&[10_000_000_000_000_000_000, 5]), {
            // 5 * 2^64 + 10^19 = 102233720368547758080 + 10^19
            "102233720368547758080".to_string()
        });
    }
}
