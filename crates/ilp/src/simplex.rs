//! Dense two-phase primal simplex for the LP relaxations.
//!
//! The solver works on [`LpProblem`]: minimise `c·x` subject to linear
//! rows and per-variable bounds with **finite lower bounds** (upper bounds
//! may be infinite). Internally variables are shifted to `x' = x − l ≥ 0`,
//! finite upper bounds become extra rows, and a standard two-phase tableau
//! simplex runs with Dantzig pricing and Bland's rule as the anti-cycling
//! fallback.
//!
//! This module is public so the branch-and-bound driver and the test suite
//! can exercise it directly; library users normally go through
//! [`crate::MilpSolver`].

use crate::model::ConstraintOp;

/// Numerical tolerance for pivot selection and feasibility tests.
pub const EPS: f64 = 1e-9;
/// Tolerance used when comparing phase-1 objective against zero.
const FEAS_TOL: f64 = 1e-7;

/// One linear constraint row in sparse form.
#[derive(Debug, Clone)]
pub struct LpRow {
    /// `(variable index, coefficient)` pairs; indices must be unique.
    pub coeffs: Vec<(usize, f64)>,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// An LP in "minimise subject to rows and bounds" form.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Objective coefficients, one per variable (minimisation).
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub rows: Vec<LpRow>,
    /// Finite lower bound per variable.
    pub lower: Vec<f64>,
    /// Upper bound per variable; `f64::INFINITY` allowed.
    pub upper: Vec<f64>,
}

/// How an LP solve ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LpStatus {
    /// Optimum found.
    Optimal,
    /// No feasible point.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
    /// Pivot limit exhausted (treat as a solver failure).
    IterationLimit,
}

/// Result of [`solve`].
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Primal point (meaningful only when status is [`LpStatus::Optimal`]).
    pub x: Vec<f64>,
    /// Objective value `c·x`.
    pub objective: f64,
    /// Simplex pivots performed.
    pub iterations: usize,
}

struct Tableau {
    /// (m + 1) rows × (ncols + 1) columns, flat row-major; last column is
    /// the RHS, last row the reduced-cost row.
    data: Vec<f64>,
    m: usize,
    ncols: usize,
    basis: Vec<usize>,
    iterations: usize,
}

impl Tableau {
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * (self.ncols + 1) + c]
    }

    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * (self.ncols + 1) + c] = v;
    }

    fn pivot(&mut self, pr: usize, pc: usize) {
        let w = self.ncols + 1;
        let pivot = self.at(pr, pc);
        debug_assert!(pivot.abs() > EPS, "pivot too small: {pivot}");
        let inv = 1.0 / pivot;
        for c in 0..w {
            self.data[pr * w + c] *= inv;
        }
        self.set(pr, pc, 1.0);
        for r in 0..=self.m {
            if r == pr {
                continue;
            }
            let factor = self.at(r, pc);
            if factor.abs() <= EPS {
                self.set(r, pc, 0.0);
                continue;
            }
            for c in 0..w {
                let v = self.data[r * w + c] - factor * self.data[pr * w + c];
                self.data[r * w + c] = v;
            }
            self.set(r, pc, 0.0);
        }
        self.basis[pr] = pc;
        self.iterations += 1;
    }

    /// Runs the pivot loop; `allowed` filters columns that may enter.
    fn optimize(
        &mut self,
        allowed: impl Fn(usize) -> bool,
        max_iters: usize,
        deadline: Option<std::time::Instant>,
    ) -> LpStatus {
        let bland_after = 200 + 20 * self.m;
        let mut local_iters = 0usize;
        loop {
            if local_iters > max_iters {
                return LpStatus::IterationLimit;
            }
            // A single dense pivot on a large tableau is expensive, so a
            // caller's wall-clock budget has to be enforced *inside* the
            // pivot loop — checking only between branch-and-bound nodes
            // lets one LP overshoot the limit by minutes.
            if local_iters.is_multiple_of(128) {
                if let Some(d) = deadline {
                    if std::time::Instant::now() >= d {
                        return LpStatus::IterationLimit;
                    }
                }
            }
            let use_bland = local_iters > bland_after;
            // Entering column.
            let zrow = self.m;
            let mut entering: Option<usize> = None;
            let mut best = -EPS;
            for c in 0..self.ncols {
                if !allowed(c) {
                    continue;
                }
                let rc = self.at(zrow, c);
                if use_bland {
                    if rc < -EPS {
                        entering = Some(c);
                        break;
                    }
                } else if rc < best {
                    best = rc;
                    entering = Some(c);
                }
            }
            let Some(pc) = entering else {
                return LpStatus::Optimal;
            };
            // Ratio test.
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.m {
                let a = self.at(r, pc);
                if a > EPS {
                    let ratio = self.at(r, self.ncols) / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leaving.is_some_and(|lr| self.basis[r] < self.basis[lr]));
                    if better {
                        best_ratio = ratio;
                        leaving = Some(r);
                    }
                }
            }
            let Some(pr) = leaving else {
                return LpStatus::Unbounded;
            };
            self.pivot(pr, pc);
            local_iters += 1;
        }
    }
}

/// Solves the LP with a two-phase dense primal simplex.
///
/// # Panics
///
/// Panics if the problem arrays have inconsistent lengths, a lower bound is
/// not finite, or a coefficient is NaN (callers are expected to validate
/// with [`crate::Model::validate`] first).
pub fn solve(p: &LpProblem) -> LpSolution {
    solve_with_deadline(p, None)
}

/// Like [`solve`], but gives up with [`LpStatus::IterationLimit`] once
/// `deadline` passes (checked inside the pivot loop, so a single large LP
/// cannot overshoot a caller's wall-clock budget).
///
/// # Panics
///
/// Same contract as [`solve`].
pub fn solve_with_deadline(p: &LpProblem, deadline: Option<std::time::Instant>) -> LpSolution {
    let n = p.objective.len();
    assert_eq!(p.lower.len(), n, "lower bound count mismatch");
    assert_eq!(p.upper.len(), n, "upper bound count mismatch");
    assert!(
        p.lower.iter().all(|l| l.is_finite()),
        "lower bounds must be finite"
    );

    // Shift variables: x = x' + l, x' >= 0. Collect all rows, including
    // upper-bound rows, as (coeffs, op, rhs) over x'.
    struct Row {
        coeffs: Vec<(usize, f64)>,
        op: ConstraintOp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(p.rows.len() + n);
    for row in &p.rows {
        let shift: f64 = row.coeffs.iter().map(|&(j, a)| a * p.lower[j]).sum();
        rows.push(Row {
            coeffs: row.coeffs.clone(),
            op: row.op,
            rhs: row.rhs - shift,
        });
    }
    for j in 0..n {
        if p.upper[j].is_finite() {
            let span = p.upper[j] - p.lower[j];
            rows.push(Row {
                coeffs: vec![(j, 1.0)],
                op: ConstraintOp::Leq,
                rhs: span,
            });
        }
    }

    // Normalise RHS to be non-negative.
    for row in &mut rows {
        if row.rhs < 0.0 {
            row.rhs = -row.rhs;
            for (_, a) in &mut row.coeffs {
                *a = -*a;
            }
            row.op = match row.op {
                ConstraintOp::Leq => ConstraintOp::Geq,
                ConstraintOp::Geq => ConstraintOp::Leq,
                ConstraintOp::Eq => ConstraintOp::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: structural (n) | slack/surplus (one per Leq/Geq row) |
    // artificial (one per Geq/Eq row).
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for row in &rows {
        match row.op {
            ConstraintOp::Leq => n_slack += 1,
            ConstraintOp::Geq => {
                n_slack += 1;
                n_art += 1;
            }
            ConstraintOp::Eq => n_art += 1,
        }
    }
    let ncols = n + n_slack + n_art;
    let w = ncols + 1;
    let mut t = Tableau {
        data: vec![0.0; (m + 1) * w],
        m,
        ncols,
        basis: vec![usize::MAX; m],
        iterations: 0,
    };

    let art_start = n + n_slack;
    let mut slack_next = n;
    let mut art_next = art_start;
    for (r, row) in rows.iter().enumerate() {
        for &(j, a) in &row.coeffs {
            let cur = t.at(r, j);
            t.set(r, j, cur + a);
        }
        t.set(r, ncols, row.rhs);
        match row.op {
            ConstraintOp::Leq => {
                t.set(r, slack_next, 1.0);
                t.basis[r] = slack_next;
                slack_next += 1;
            }
            ConstraintOp::Geq => {
                t.set(r, slack_next, -1.0);
                slack_next += 1;
                t.set(r, art_next, 1.0);
                t.basis[r] = art_next;
                art_next += 1;
            }
            ConstraintOp::Eq => {
                t.set(r, art_next, 1.0);
                t.basis[r] = art_next;
                art_next += 1;
            }
        }
    }

    let max_iters = 2000 + 60 * (m + ncols);

    // Phase 1: minimise the sum of artificials.
    if n_art > 0 {
        for c in art_start..ncols {
            t.set(m, c, 1.0);
        }
        // Zero out reduced costs of the basic artificials.
        for r in 0..m {
            if t.basis[r] >= art_start {
                let w2 = ncols + 1;
                for c in 0..w2 {
                    let v = t.data[m * w2 + c] - t.data[r * w2 + c];
                    t.data[m * w2 + c] = v;
                }
            }
        }
        let status = t.optimize(|_| true, max_iters, deadline);
        if status == LpStatus::IterationLimit {
            return LpSolution {
                status,
                x: vec![0.0; n],
                objective: f64::NAN,
                iterations: t.iterations,
            };
        }
        let phase1_obj = -t.at(m, ncols);
        if phase1_obj > FEAS_TOL {
            return LpSolution {
                status: LpStatus::Infeasible,
                x: vec![0.0; n],
                objective: f64::NAN,
                iterations: t.iterations,
            };
        }
        // Pivot basic artificials out where possible.
        for r in 0..m {
            if t.basis[r] >= art_start {
                if let Some(c) = (0..art_start).find(|&c| t.at(r, c).abs() > 1e-7) {
                    t.pivot(r, c);
                }
                // If no pivot column exists the row is redundant; the
                // artificial stays basic at value 0, which is harmless as
                // long as artificial columns never re-enter (guaranteed by
                // the `allowed` filter below).
            }
        }
    }

    // Phase 2: install the real objective row.
    {
        let w2 = ncols + 1;
        for c in 0..w2 {
            t.data[m * w2 + c] = 0.0;
        }
        for (j, &cost) in p.objective.iter().enumerate() {
            t.set(m, j, cost);
        }
        for r in 0..m {
            let b = t.basis[r];
            if b < n {
                let cost = p.objective[b];
                if cost != 0.0 {
                    for c in 0..w2 {
                        let v = t.data[m * w2 + c] - cost * t.data[r * w2 + c];
                        t.data[m * w2 + c] = v;
                    }
                }
            }
        }
    }
    let status = t.optimize(|c| c < art_start, max_iters, deadline);
    if status != LpStatus::Optimal {
        return LpSolution {
            status,
            x: vec![0.0; n],
            objective: f64::NAN,
            iterations: t.iterations,
        };
    }

    // Extract the primal point.
    let mut x = p.lower.clone();
    for r in 0..m {
        let b = t.basis[r];
        if b < n {
            x[b] = p.lower[b] + t.at(r, ncols);
        }
    }
    let objective = p.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    LpSolution {
        status: LpStatus::Optimal,
        x,
        objective,
        iterations: t.iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(coeffs: &[(usize, f64)], op: ConstraintOp, rhs: f64) -> LpRow {
        LpRow {
            coeffs: coeffs.to_vec(),
            op,
            rhs,
        }
    }

    #[test]
    fn textbook_two_var_max() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (min form: negate).
        let p = LpProblem {
            objective: vec![-3.0, -5.0],
            rows: vec![
                row(&[(0, 1.0)], ConstraintOp::Leq, 4.0),
                row(&[(1, 2.0)], ConstraintOp::Leq, 12.0),
                row(&[(0, 3.0), (1, 2.0)], ConstraintOp::Leq, 18.0),
            ],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(
            (s.objective - (-36.0)).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!((s.x[0] - 2.0).abs() < 1e-6 && (s.x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_and_geq_need_phase1() {
        // min x + y s.t. x + y = 10, x >= 3, y >= 2.
        let p = LpProblem {
            objective: vec![1.0, 1.0],
            rows: vec![row(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 10.0)],
            lower: vec![3.0, 2.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-6);
        assert!((s.x[0] + s.x[1] - 10.0).abs() < 1e-6);
        assert!(s.x[0] >= 3.0 - 1e-9 && s.x[1] >= 2.0 - 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2.
        let p = LpProblem {
            objective: vec![0.0],
            rows: vec![
                row(&[(0, 1.0)], ConstraintOp::Leq, 1.0),
                row(&[(0, 1.0)], ConstraintOp::Geq, 2.0),
            ],
            lower: vec![0.0],
            upper: vec![f64::INFINITY],
        };
        assert_eq!(solve(&p).status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x, x >= 0 unconstrained above.
        let p = LpProblem {
            objective: vec![-1.0],
            rows: vec![],
            lower: vec![0.0],
            upper: vec![f64::INFINITY],
        };
        assert_eq!(solve(&p).status, LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_respected() {
        // min -x - y with x <= 2.5, y <= 1.5 via bounds only.
        let p = LpProblem {
            objective: vec![-1.0, -1.0],
            rows: vec![],
            lower: vec![0.0, 0.0],
            upper: vec![2.5, 1.5],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.x[0] - 2.5).abs() < 1e-6 && (s.x[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn shifted_lower_bounds() {
        // min x with x in [-5, 10] and x >= -3 as a row.
        let p = LpProblem {
            objective: vec![1.0],
            rows: vec![row(&[(0, 1.0)], ConstraintOp::Geq, -3.0)],
            lower: vec![-5.0],
            upper: vec![10.0],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.x[0] + 3.0).abs() < 1e-6, "x = {}", s.x[0]);
    }

    #[test]
    fn negative_rhs_normalisation() {
        // min y s.t. -x - y <= -4  (i.e. x + y >= 4), x <= 1.
        let p = LpProblem {
            objective: vec![0.0, 1.0],
            rows: vec![row(&[(0, -1.0), (1, -1.0)], ConstraintOp::Leq, -4.0)],
            lower: vec![0.0, 0.0],
            upper: vec![1.0, f64::INFINITY],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(
            (s.objective - 3.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn redundant_equalities_do_not_break_phase1() {
        // x + y = 2 twice, minimise x.
        let p = LpProblem {
            objective: vec![1.0, 0.0],
            rows: vec![
                row(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0),
                row(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0),
            ],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(s.objective.abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classically degenerate LP (many ties in the ratio test).
        let p = LpProblem {
            objective: vec![-0.75, 150.0, -0.02, 6.0],
            rows: vec![
                row(
                    &[(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
                    ConstraintOp::Leq,
                    0.0,
                ),
                row(
                    &[(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
                    ConstraintOp::Leq,
                    0.0,
                ),
                row(&[(2, 1.0)], ConstraintOp::Leq, 1.0),
            ],
            lower: vec![0.0; 4],
            upper: vec![f64::INFINITY; 4],
        };
        let s = solve(&p);
        assert_eq!(
            s.status,
            LpStatus::Optimal,
            "Beale's example must terminate"
        );
        assert!(
            (s.objective - (-0.05)).abs() < 1e-6,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn fixed_variable_via_equal_bounds() {
        let p = LpProblem {
            objective: vec![1.0, 1.0],
            rows: vec![row(&[(0, 1.0), (1, 1.0)], ConstraintOp::Geq, 5.0)],
            lower: vec![2.0, 0.0],
            upper: vec![2.0, f64::INFINITY],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.x[0] - 2.0).abs() < 1e-9);
        assert!((s.x[1] - 3.0).abs() < 1e-6);
    }
}
