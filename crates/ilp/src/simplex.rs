//! Sparse revised simplex for the LP relaxations.
//!
//! The solver works on [`LpProblem`] (or the prepared [`SparseLp`] form):
//! minimise `c·x` subject to linear rows and per-variable bounds with
//! **finite lower bounds** (upper bounds may be infinite). The path-cover
//! models of the paper are extremely sparse — each column touches a
//! handful of degree/flow/cover rows — so unlike the dense tableau oracle
//! in [`crate::dense`], this implementation never materialises `B⁻¹`:
//!
//! * the constraint matrix is stored once in CSC form
//!   ([`crate::sparse::CscMatrix`]); bounds are handled natively (nonbasic
//!   variables sit at a finite bound), so no upper-bound rows are added;
//! * every row gets one logical (slack) column — `Leq → s ∈ [0, ∞)`,
//!   `Geq → s ∈ (−∞, 0]`, `Eq → s ∈ [0, 0]` — giving an identity cold
//!   starting basis;
//! * feasibility is restored by a **big-M-free primal phase 1**: basic
//!   variables outside their bounds price with cost `∓1`, and the ratio
//!   test lets them block (and leave) at the bound they are approaching.
//!   Because this works from *any* basis, branch-and-bound warm-starts
//!   every child node from its parent's optimal [`Basis`];
//! * the basis is held as a **sparse LU factorization**
//!   ([`crate::lu::LuFactors`]: Markowitz pivot ordering, threshold
//!   partial pivoting) updated in place by **Forrest–Tomlin** after every
//!   pivot; refactorization is triggered by the factor's own
//!   stability/fill-in policy instead of a fixed cadence, while the basic
//!   values are still recomputed exactly every `VALUES_REFRESH` pivots
//!   (the degenerate path-cover LPs branch measurably better against
//!   exact values — that cadence is a solver choice, not a factor one);
//! * pricing is **projected steepest-edge (Devex)** — the entering column
//!   maximises `d²/w` with reference weights updated from the pivot row —
//!   falling back to **Bland's rule** while a degenerate streak persists
//!   (and permanently after a large degenerate total), which terminates
//!   classic cycling instances such as Beale's example;
//! * warm starts from a **dual-feasible** basis (the branch-and-bound
//!   child pattern: a parent's optimal basis after a one-bound change)
//!   skip phase 1 entirely and run the **dual simplex** instead — worst
//!   bound-violation row selection, a bound-flipping dual ratio test with
//!   the same EPS tie-tolerancing, and the same Bland/stall anti-cycling
//!   fallbacks, degrading gracefully to the primal path whenever the
//!   warm basis is unusable or the dual walk stalls.
//!
//! Determinism: all loops run in fixed index order, ties are broken by
//! variable index (Bland) or largest pivot magnitude (otherwise), and no
//! randomisation is used anywhere — a given `(problem, bounds, warm
//! basis)` always performs the identical pivot sequence.
//!
//! This module is public so the branch-and-bound driver and the test
//! suite can exercise it directly; library users normally go through
//! [`crate::MilpSolver`].

use crate::expr::SparseVec;
use crate::lu::{FactorStats, LuFactors};
use crate::model::ConstraintOp;
use crate::sparse::CscMatrix;
use std::time::Instant;

/// Numerical tolerance for pivot selection and feasibility tests.
pub const EPS: f64 = 1e-9;
/// Bound-violation tolerance: basic values within this of their bound
/// count as feasible (phase-1 costs and ratio-test branches key off it).
const FEAS_TOL: f64 = 1e-7;
/// Reduced-cost threshold below which a column may enter.
const DUAL_TOL: f64 = 1e-9;
/// Basic-value drift (incremental vs freshly recomputed, max-norm) above
/// which the periodic refresh escalates to a full refactorization: the
/// factors themselves have degraded, not just the running values.
const DRIFT_REFACTOR_TOL: f64 = 1e-8;
/// A blocking pivot element smaller than this on a non-fresh
/// factorization triggers a refactorize-and-retry of the iteration
/// instead of a Forrest–Tomlin update on a stale tiny pivot.
const SMALL_PIVOT_TOL: f64 = 1e-7;
/// Recompute the basic values from the bounds every this many pivots.
/// Deliberately small: the path-cover LPs are so degenerate that exact
/// basic values measurably steer the ratio test — PR 4 measured a 50×
/// node blowup at a large cadence. With the LU basis this refresh is one
/// FTRAN, **decoupled** from the (much more expensive, policy-driven)
/// refactorization.
const VALUES_REFRESH: usize = 8;
/// Refactorize once this many Forrest–Tomlin updates have accumulated,
/// even though the factors are still numerically healthy. This is a
/// *branching-quality* knob, not a stability one (the LU layer's own
/// drift backstop sits far higher): on the degenerate path-cover LPs,
/// crisper alphas from a fresher factor measurably improve ratio-test
/// tie decisions — sweeping the 5×5 exact cover gave 0.6s at 16 vs 15s
/// at 256 updates. This cadence means engine-driven solves never exceed
/// 16 updates per factor; the LU layer itself supports far longer runs
/// (its drift backstop sits at 1024 — see the
/// `hundreds_of_updates_without_refactorization` unit test in
/// [`crate::lu`]).
const UPDATES_REFACTOR: usize = 16;
/// Deadline polling stride inside the pivot loop.
const DEADLINE_CHECK_EVERY: usize = 128;
/// Consecutive degenerate pivots before Bland's rule engages.
const DEGEN_STREAK_FOR_BLAND: usize = 48;
/// Loose dual-feasibility tolerance for the warm-start gate: a parent's
/// optimal reduced costs satisfy the sign conditions to [`DUAL_TOL`], but
/// reclamping a tightened bound or plain float drift can leave slightly
/// larger residue that the dual ratio test still absorbs harmlessly.
const DUAL_FEAS_TOL: f64 = 1e-7;
/// Consecutive *dual*-degenerate pivots (vanishing dual ratio) before the
/// walk gives the basis back to the primal path. Much tighter than the
/// primal [`DEGEN_STREAK_FOR_BLAND`] machinery: the warm re-solves this
/// engine sees are massively degenerate set-cover probes, and a walk that
/// has ground this many zero-progress pivots in a row almost never
/// converges before the pivot budget while the rollback-plus-primal
/// fallback is cheap. Tuned on the paper's exact-cover probes (a 24-pivot
/// stall cap with Bland from half that was the only setting that beat the
/// primal-only engine on every probe size at once).
const DUAL_DEGEN_STALL: usize = 24;
/// Dual-walk Bland switch: half the stall cap, so the deterministic
/// tie-breaking gets a chance to break the cycle before the walk bails.
const DUAL_DEGEN_FOR_BLAND: usize = DUAL_DEGEN_STALL / 2;

/// One linear constraint row in sparse form.
#[derive(Debug, Clone)]
pub struct LpRow {
    /// `(variable index, coefficient)` pairs; duplicate indices are summed.
    pub coeffs: Vec<(usize, f64)>,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// An LP in "minimise subject to rows and bounds" form.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Objective coefficients, one per variable (minimisation).
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub rows: Vec<LpRow>,
    /// Finite lower bound per variable.
    pub lower: Vec<f64>,
    /// Upper bound per variable; `f64::INFINITY` allowed.
    pub upper: Vec<f64>,
}

/// How an LP solve ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LpStatus {
    /// Optimum found.
    Optimal,
    /// No feasible point.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
    /// Pivot budget exhausted or numerical failure (treat as a solver
    /// failure).
    IterationLimit,
    /// The caller's wall-clock deadline passed mid-solve; no partial
    /// answer is reported.
    TimeLimit,
}

/// How a solve obtained its starting basis — the non-silent return path
/// for warm-start handling. A caller that hands a [`Basis`] snapshot to
/// [`SimplexEngine::solve`] can tell from this (and from the cumulative
/// [`EngineStats::cold_restarts`] counter) whether the snapshot was
/// actually used or fell back to the cold slack basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmStart {
    /// No warm basis was supplied (or the solve answered before touching
    /// the basis, e.g. an empty variable domain).
    Cold,
    /// The snapshot matched the basis the engine already held; the live
    /// factorization was reused as-is.
    Reused,
    /// The snapshot was installed and freshly refactorized.
    Installed,
    /// The snapshot was structurally or numerically unusable; the solve
    /// fell back to the cold slack basis (counted in
    /// [`EngineStats::cold_restarts`]).
    Rejected,
}

/// Warm-start and dual-path counters of a [`SimplexEngine`], cumulative
/// across every solve on the engine — a branch-and-bound run shares one
/// engine, so these directly measure how its children re-solved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Dual simplex pivots performed (bound flips inside the dual ratio
    /// test's long step are not counted).
    pub dual_pivots: usize,
    /// Solves that started from a usable warm basis
    /// ([`WarmStart::Reused`] or [`WarmStart::Installed`]).
    pub warm_resolves: usize,
    /// Solves where a supplied warm basis was rejected and the engine
    /// fell back to the cold slack basis ([`WarmStart::Rejected`]).
    pub cold_restarts: usize,
}

/// Result of [`solve`].
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Primal point (meaningful only when status is [`LpStatus::Optimal`]).
    pub x: Vec<f64>,
    /// Objective value `c·x`.
    pub objective: f64,
    /// Simplex pivots performed.
    pub iterations: usize,
    /// How the starting basis was obtained (always [`WarmStart::Cold`]
    /// for the plain [`solve`]/[`SparseLp::solve`] entry points).
    pub start: WarmStart,
}

impl LpSolution {
    fn failed(status: LpStatus, n: usize, iterations: usize, start: WarmStart) -> Self {
        LpSolution {
            status,
            x: vec![0.0; n],
            objective: f64::NAN,
            iterations,
            start,
        }
    }
}

/// Proof artifact of a single LP solve, emitted when certification is
/// enabled via [`SimplexEngine::set_certify`] and re-checkable in exact
/// rational arithmetic by [`crate::certify::certify_lp`].
///
/// The multipliers are sign-clamped per row operator (`≤` rows get
/// `y ≤ 0`, `≥` rows `y ≥ 0`) so that the vector is valid dual evidence
/// by construction; the clamp only discards sub-tolerance float noise.
#[derive(Debug, Clone, PartialEq)]
pub enum LpCertificate {
    /// Optimality evidence: the final primal point plus the simplex
    /// multipliers `y = B⁻ᵀc_B`, whose exact Lagrangian bound matches
    /// the primal objective.
    Optimal {
        /// Row multipliers (one per constraint).
        duals: Vec<f64>,
        /// The reported primal point (structural variables).
        x: Vec<f64>,
        /// The reported objective `c·x` (internal minimisation form).
        objective: f64,
    },
    /// Infeasibility evidence: a Farkas ray from the phase-1 optimum —
    /// row multipliers whose aggregated constraint no point in the
    /// variable box can satisfy.
    Infeasible {
        /// Farkas row multipliers (one per constraint).
        farkas: Vec<f64>,
    },
}

/// An opaque basis snapshot from a successful solve, reusable as a warm
/// start for a related solve (same matrix, different bounds) — the
/// branch-and-bound access pattern. A stale or inconsistent snapshot is
/// detected and replaced by the cold slack basis; the fallback is
/// reported through [`LpSolution::start`] and counted in
/// [`EngineStats::cold_restarts`] rather than swallowed silently.
#[derive(Debug, Clone)]
pub struct Basis {
    /// Basic variable per row position (structurals `0..n`, logicals
    /// `n..n + m`).
    basis: Vec<usize>,
    /// Which bound each variable rested at when snapshotted (`true` =
    /// upper); only meaningful for nonbasic variables.
    at_upper: Vec<bool>,
}

/// A prepared LP: constraint matrix in CSC form plus row metadata, built
/// **once** and then solved repeatedly under different variable bounds —
/// exactly the access pattern of branch-and-bound, which previously
/// re-cloned every row at every node.
#[derive(Debug, Clone)]
pub struct SparseLp {
    objective: Vec<f64>,
    cols: CscMatrix,
    /// CSR mirror of `cols` (the transpose, column `i` = row `i`), kept
    /// so the Devex pivot-row update can sweep row-wise and touch only
    /// the columns intersecting the pivot row's support.
    rows_csr: CscMatrix,
    ops: Vec<ConstraintOp>,
    rhs: Vec<f64>,
}

impl SparseLp {
    /// Assembles a prepared LP from its parts.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are inconsistent (`cols` must be
    /// `ops.len() × objective.len()`).
    pub fn new(
        objective: Vec<f64>,
        cols: CscMatrix,
        ops: Vec<ConstraintOp>,
        rhs: Vec<f64>,
    ) -> Self {
        assert_eq!(cols.ncols(), objective.len(), "objective length mismatch");
        assert_eq!(cols.nrows(), ops.len(), "row op count mismatch");
        assert_eq!(cols.nrows(), rhs.len(), "rhs count mismatch");
        let rows_csr = cols.transpose();
        SparseLp {
            objective,
            cols,
            rows_csr,
            ops,
            rhs,
        }
    }

    /// Converts a row-form [`LpProblem`] (bounds are supplied separately
    /// at [`SparseLp::solve`] time).
    /// # Panics
    ///
    /// Panics if a row references a variable outside the objective.
    pub fn from_problem(p: &LpProblem) -> Self {
        let n = p.objective.len();
        let m = p.rows.len();
        // Scatter the row-form coefficients into per-variable columns;
        // `from_unsorted` sorts each column and sums duplicate row
        // entries (the documented `LpRow::coeffs` semantics).
        let mut columns: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for (i, row) in p.rows.iter().enumerate() {
            for &(j, a) in &row.coeffs {
                assert!(j < n, "row {i} references variable {j} of {n}");
                columns[j].push((i, a));
            }
        }
        let columns: Vec<SparseVec> = columns.into_iter().map(SparseVec::from_unsorted).collect();
        SparseLp::new(
            p.objective.clone(),
            CscMatrix::from_columns(m, &columns),
            p.rows.iter().map(|r| r.op).collect(),
            p.rows.iter().map(|r| r.rhs).collect(),
        )
    }

    /// Number of structural variables.
    pub fn var_count(&self) -> usize {
        self.objective.len()
    }

    /// The (minimisation-form) objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Number of constraint rows.
    pub fn row_count(&self) -> usize {
        self.rhs.len()
    }

    /// Solves under the given variable bounds with the revised simplex.
    ///
    /// # Panics
    ///
    /// Panics if the bound slices do not match [`SparseLp::var_count`] or
    /// a lower bound is not finite.
    pub fn solve(&self, lower: &[f64], upper: &[f64], deadline: Option<Instant>) -> LpSolution {
        self.engine().solve(lower, upper, deadline, None).0
    }

    /// A reusable [`SimplexEngine`] over this LP. Callers that solve the
    /// same matrix many times under changing bounds (branch-and-bound)
    /// should create the engine once: its factorization, pricing weights
    /// and scratch buffers persist between solves.
    pub fn engine(&self) -> SimplexEngine<'_> {
        SimplexEngine::new(self)
    }
}

/// Solves the LP with the sparse revised simplex.
///
/// # Panics
///
/// Panics if the problem arrays have inconsistent lengths, a lower bound
/// is not finite, or a coefficient is NaN (callers are expected to
/// validate with [`crate::Model::validate`] first).
pub fn solve(p: &LpProblem) -> LpSolution {
    solve_with_deadline(p, None)
}

/// Like [`solve`], but gives up with [`LpStatus::TimeLimit`] once
/// `deadline` passes (checked inside the pivot loop, so a single large LP
/// cannot overshoot a caller's wall-clock budget).
///
/// # Panics
///
/// Same contract as [`solve`].
pub fn solve_with_deadline(p: &LpProblem, deadline: Option<Instant>) -> LpSolution {
    SparseLp::from_problem(p).solve(&p.lower, &p.upper, deadline)
}

/// Where a nonbasic variable currently rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VStat {
    Basic,
    AtLower,
    AtUpper,
}

/// Outcome of the bounded-variable ratio test.
enum Ratio {
    /// Entering variable travels its whole span to the opposite bound; no
    /// basis change.
    BoundFlip,
    /// Basic variable at `pos` blocks after `theta`; it leaves to its
    /// upper bound when `to_upper`.
    Pivot {
        pos: usize,
        theta: f64,
        to_upper: bool,
    },
    /// Nothing blocks and the span is infinite.
    Unbounded,
}

/// Outcome of a [`SimplexEngine::dual_optimize`] run from a warm basis.
#[derive(Debug)]
enum DualOutcome {
    /// Primal feasibility restored; phase 2 can resume from this basis.
    Feasible,
    /// Dual unbounded — the LP is primal infeasible, re-proved off a
    /// factorization with no accumulated Forrest–Tomlin updates.
    Infeasible,
    /// Degeneracy or numerics stalled the dual walk; the caller falls
    /// back to the primal phase-1 path, which terminates unconditionally.
    Stalled,
    /// Deadline or pivot budget exhausted.
    Limit(LpStatus),
}

/// Reusable revised-simplex state over one [`SparseLp`].
///
/// The engine owns the factorization (a sparse LU of the basis, updated
/// in place by [`lu`](crate::lu) Forrest–Tomlin rank-one replacements),
/// pricing weights and all scratch buffers, so a sequence of related
/// solves — branch-and-bound nodes — pays the setup cost once. When a solve is warm-started from
/// the basis the engine already holds (the common case: a DFS child
/// popped right after its parent), the factorization is reused as-is and
/// only the basic values are recomputed under the new bounds.
pub struct SimplexEngine<'a> {
    lp: &'a SparseLp,
    m: usize,
    /// Structural variable count; logicals are `n..n + m`.
    n: usize,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Phase-2 cost per variable (objective on structurals, 0 logicals).
    cost: Vec<f64>,
    x: Vec<f64>,
    stat: Vec<VStat>,
    /// Basic variable per basis position.
    basis: Vec<usize>,
    /// Sparse LU factorization of the basis, Forrest–Tomlin updated in
    /// place; its validity flag doubles as the old "factored" marker.
    lu: LuFactors,
    /// Scratch: the entering column's partial FTRAN (`H⁻¹F⁻¹a_q`), the
    /// spike a Forrest–Tomlin update consumes.
    spike: Vec<f64>,
    /// Pivots since the basic values were last recomputed exactly.
    pivots_since_refresh: usize,
    /// Devex reference weights per variable.
    weights: Vec<f64>,
    /// Scratch for the Devex pivot-row BTRAN.
    rho: Vec<f64>,
    /// Scratch: simplex multipliers.
    y: Vec<f64>,
    /// Scratch: FTRAN'd entering column.
    alpha: Vec<f64>,
    /// Scratch: pivot-row entries `ρᵀa_j` per structural column (reset
    /// via `touched` after every Devex update).
    abar: Vec<f64>,
    /// Scratch: whether `abar[j]` currently holds a live accumulation.
    abar_seen: Vec<bool>,
    /// Scratch: structural columns touched by the current pivot row.
    touched: Vec<usize>,
    /// Scratch: pre-dual-walk engine state `(basis, stat, x, lu,
    /// pivots_since_refresh)`, restored after every dual walk; kept on
    /// the engine so per-node snapshots reuse their allocations.
    snap: (Vec<usize>, Vec<VStat>, Vec<f64>, LuFactors, usize),
    /// Scratch: reduced costs per variable, maintained incrementally
    /// across dual pivots (valid only inside `dual_optimize`).
    dvec: Vec<f64>,
    /// Scratch: `(column, pivot-row entry)` pairs of the current dual
    /// pivot row, for the incremental reduced-cost update.
    dupd: Vec<(usize, f64)>,
    iterations: usize,
    total_degen: usize,
    /// Cumulative dual simplex pivots (see [`EngineStats`]).
    dual_pivots: usize,
    /// Cumulative solves started from a usable warm basis.
    warm_resolves: usize,
    /// Cumulative solves whose supplied warm basis was rejected.
    cold_restarts: usize,
    /// When set, terminal verdicts also record an [`LpCertificate`].
    certify: bool,
    /// Certificate of the most recent solve (taken by the caller).
    certificate: Option<LpCertificate>,
}

impl std::fmt::Debug for SimplexEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimplexEngine")
            .field("m", &self.m)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl<'a> SimplexEngine<'a> {
    fn new(lp: &'a SparseLp) -> Self {
        let n = lp.var_count();
        let m = lp.row_count();
        let ntotal = n + m;
        let mut lower = vec![0.0; ntotal];
        let mut upper = vec![0.0; ntotal];
        for (i, op) in lp.ops.iter().enumerate() {
            let (lo, hi) = match op {
                ConstraintOp::Leq => (0.0, f64::INFINITY),
                ConstraintOp::Geq => (f64::NEG_INFINITY, 0.0),
                ConstraintOp::Eq => (0.0, 0.0),
            };
            lower[n + i] = lo;
            upper[n + i] = hi;
        }
        let mut cost = vec![0.0; ntotal];
        cost[..n].copy_from_slice(&lp.objective);
        SimplexEngine {
            lp,
            m,
            n,
            lower,
            upper,
            cost,
            x: vec![0.0; ntotal],
            stat: vec![VStat::AtLower; ntotal],
            basis: Vec::with_capacity(m),
            lu: LuFactors::new(),
            spike: Vec::new(),
            pivots_since_refresh: 0,
            weights: vec![1.0; ntotal],
            rho: vec![0.0; m],
            y: vec![0.0; m],
            alpha: Vec::with_capacity(m),
            abar: vec![0.0; n],
            abar_seen: vec![false; n],
            touched: Vec::new(),
            snap: (Vec::new(), Vec::new(), Vec::new(), LuFactors::new(), 0),
            dvec: Vec::new(),
            dupd: Vec::new(),
            iterations: 0,
            total_degen: 0,
            dual_pivots: 0,
            warm_resolves: 0,
            cold_restarts: 0,
            certify: false,
            certificate: None,
        }
    }

    /// Enables or disables proof logging: when on, every
    /// [`LpStatus::Optimal`] or [`LpStatus::Infeasible`] verdict of
    /// [`solve`](Self::solve) leaves an [`LpCertificate`] behind for
    /// [`take_certificate`](Self::take_certificate).
    pub fn set_certify(&mut self, on: bool) {
        self.certify = on;
    }

    /// Takes the certificate of the most recent solve, if one was
    /// emitted. The slot is cleared at the start of every solve, so a
    /// leftover certificate never describes a stale verdict.
    pub fn take_certificate(&mut self) -> Option<LpCertificate> {
        self.certificate.take()
    }

    /// The current simplex multipliers `y = B⁻ᵀc_B` for the phase-1
    /// violation costs or the phase-2 objective, sign-clamped per row
    /// operator so the vector is valid dual evidence by construction.
    fn certificate_multipliers(&mut self, phase1: bool) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        for (p, &v) in self.basis.iter().enumerate() {
            y[p] = if phase1 {
                if self.x[v] < self.lower[v] - FEAS_TOL {
                    -1.0
                } else if self.x[v] > self.upper[v] + FEAS_TOL {
                    1.0
                } else {
                    0.0
                }
            } else {
                self.cost[v]
            };
        }
        self.btran(&mut y);
        for (i, op) in self.lp.ops.iter().enumerate() {
            match op {
                ConstraintOp::Leq => y[i] = y[i].min(0.0),
                ConstraintOp::Geq => y[i] = y[i].max(0.0),
                ConstraintOp::Eq => {}
            }
        }
        y
    }

    /// Solves under the given bounds, optionally warm-starting from a
    /// basis snapshot of a previous solve. On [`LpStatus::Optimal`] the
    /// final basis is returned for reuse.
    ///
    /// # Panics
    ///
    /// Panics if the bound slices do not match the LP's variable count or
    /// a lower bound is not finite.
    pub fn solve(
        &mut self,
        lower_s: &[f64],
        upper_s: &[f64],
        deadline: Option<Instant>,
        warm: Option<&Basis>,
    ) -> (LpSolution, Option<Basis>) {
        let n = self.n;
        assert_eq!(lower_s.len(), n, "lower bound count mismatch");
        assert_eq!(upper_s.len(), n, "upper bound count mismatch");
        assert!(
            lower_s.iter().all(|l| l.is_finite()),
            "lower bounds must be finite"
        );
        self.certificate = None;
        // An empty variable domain (branch-and-bound can produce one when
        // tightening bounds) makes the whole LP infeasible; the pivot
        // machinery assumes lower <= upper everywhere, so answer here.
        if lower_s.iter().zip(upper_s).any(|(l, u)| l > u) {
            return (
                LpSolution::failed(LpStatus::Infeasible, n, 0, WarmStart::Cold),
                None,
            );
        }
        self.lower[..n].copy_from_slice(lower_s);
        self.upper[..n].copy_from_slice(upper_s);
        self.iterations = 0;
        self.total_degen = 0;

        // Basis selection: reuse the live factorization when the caller
        // hands back exactly the basis this engine last held; otherwise
        // install and refactorize the snapshot; otherwise start cold from
        // the slack basis (which phase 1 can always repair). Each path is
        // counted and reported via `LpSolution::start` — a rejected warm
        // basis is a cold restart the caller can see, not a silent swap.
        let reuse = self.lu.is_valid()
            && warm.is_some_and(|w| w.basis == self.basis && w.at_upper.len() == self.n + self.m);
        let start = if reuse {
            self.reclamp_nonbasics();
            let _ = self.recompute_basic_values();
            self.warm_resolves += 1;
            WarmStart::Reused
        } else if warm.is_some_and(|w| self.install_basis(w)) && self.refactorize().is_ok() {
            self.warm_resolves += 1;
            WarmStart::Installed
        } else {
            self.cold_start();
            if warm.is_some() {
                self.cold_restarts += 1;
                WarmStart::Rejected
            } else {
                WarmStart::Cold
            }
        };

        let max_iters = 2000 + 60 * (self.m + self.n + self.m);

        // Dual warm re-solve: a basis inherited from a parent's optimal
        // solve stays dual feasible after a one-bound change (the
        // branch-and-bound child pattern), so the dual simplex either
        // proves the child infeasible in a handful of pivots — the
        // outcome branch-and-bound consumes as a prune, where the primal
        // restart would grind phase 1 to the same verdict — or walks the
        // basis straight to a primal-feasible (hence optimal) one that
        // phase 2 below confirms without a phase-1 restart. The walk is
        // consumed only on those two clean outcomes; a stalled, capped,
        // or deadline-hit walk is rolled back to the pre-walk state and
        // the primal path re-solves as if the dual had never run.
        if matches!(start, WarmStart::Reused | WarmStart::Installed) && self.has_violations() {
            // Exact engine-state snapshot (basis, factors, values): the
            // rollback must be bit-identical, because even
            // refactorize-level float noise in the restored state flips
            // pricing near-ties downstream and reshuffles the search
            // tree (measured: restarting the primal from a perturbed
            // copy of the same basis blows the 5x5 exact-cover dive from
            // ~90 nodes to thousands). The buffers live on the engine,
            // so a node's snapshot costs copies into already-sized
            // allocations, not fresh ones.
            self.snap.0.clone_from(&self.basis);
            self.snap.1.clone_from(&self.stat);
            self.snap.2.clone_from(&self.x);
            self.snap.3.clone_from(&self.lu);
            self.snap.4 = self.pivots_since_refresh;
            let outcome = self.dual_optimize(max_iters, deadline);
            if !matches!(outcome, DualOutcome::Feasible) {
                // Restore by swap: the snapshot buffers then hold the walk's
                // end state, which the next node's snapshot overwrites.
                std::mem::swap(&mut self.basis, &mut self.snap.0);
                std::mem::swap(&mut self.stat, &mut self.snap.1);
                std::mem::swap(&mut self.x, &mut self.snap.2);
                std::mem::swap(&mut self.lu, &mut self.snap.3);
                self.pivots_since_refresh = self.snap.4;
            }
            match outcome {
                DualOutcome::Limit(status) => {
                    return (LpSolution::failed(status, n, self.iterations, start), None);
                }
                // Certificate-free callers take the (re-proved) verdict
                // as a prune; certifying solves re-derive it below so
                // the proof log gets its Farkas ray. The rollback above
                // leaves the *parent* basis live in the engine, so the
                // pruned child's sibling — the next node branch-and-bound
                // pops — still gets a true reuse of the parent
                // factorization.
                DualOutcome::Infeasible if !self.certify => {
                    return (
                        LpSolution::failed(LpStatus::Infeasible, n, self.iterations, start),
                        None,
                    );
                }
                DualOutcome::Feasible | DualOutcome::Stalled | DualOutcome::Infeasible => {}
            }
        }

        // Both phases, wrapped in a bounded certification loop: an
        // `Infeasible` or `Optimal` verdict is only ever issued off a
        // factorization that has absorbed no Forrest–Tomlin updates, or
        // off a point whose factor-independent primal residual checks
        // out — branch-and-bound consumes these verdicts as *proofs*.
        let mut attempt = 0;
        loop {
            attempt += 1;
            // Phase 1 (only when some basic value violates its bounds).
            if self.has_violations() {
                let status = self.optimize(true, max_iters, deadline);
                if status != LpStatus::Optimal {
                    return (LpSolution::failed(status, n, self.iterations, start), None);
                }
                if self.has_violations() {
                    if self.lu.updates_since_refactor() > 0 && attempt < 3 {
                        // Re-prove the impending infeasibility verdict
                        // from a fresh factorization.
                        if self.refactorize().is_err() {
                            return (
                                LpSolution::failed(
                                    LpStatus::IterationLimit,
                                    n,
                                    self.iterations,
                                    start,
                                ),
                                None,
                            );
                        }
                        continue;
                    }
                    if self.certify {
                        let farkas = self.certificate_multipliers(true);
                        self.certificate = Some(LpCertificate::Infeasible { farkas });
                    }
                    return (
                        LpSolution::failed(LpStatus::Infeasible, n, self.iterations, start),
                        None,
                    );
                }
            }

            // Phase 2: the real objective.
            let status = self.optimize(false, max_iters, deadline);
            if status != LpStatus::Optimal {
                return (LpSolution::failed(status, n, self.iterations, start), None);
            }
            // Factor-independent audit: the reported point must satisfy
            // the rows (logicals absorb each row, so the residual is a
            // direct A·x check) and the basic bounds.
            if self.primal_residual() <= FEAS_TOL && !self.has_violations() {
                break;
            }
            if attempt >= 3 || self.refactorize().is_err() {
                // Refuse to report a point that fails its own audit.
                return (
                    LpSolution::failed(LpStatus::IterationLimit, n, self.iterations, start),
                    None,
                );
            }
        }

        let x: Vec<f64> = self.x[..n].to_vec();
        let objective = self.lp.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
        if self.certify {
            let duals = self.certificate_multipliers(false);
            self.certificate = Some(LpCertificate::Optimal {
                duals,
                x: x.clone(),
                objective,
            });
        }
        let snapshot = Basis {
            basis: self.basis.clone(),
            at_upper: self.stat.iter().map(|&s| s == VStat::AtUpper).collect(),
        };
        (
            LpSolution {
                status: LpStatus::Optimal,
                x,
                objective,
                iterations: self.iterations,
                start,
            },
            Some(snapshot),
        )
    }

    /// Cold start: every logical basic, every structural at its lower
    /// bound; the factorization of the diagonal slack basis is empty.
    fn cold_start(&mut self) {
        self.basis.clear();
        for j in 0..self.n {
            self.stat[j] = VStat::AtLower;
            self.x[j] = self.lower[j];
        }
        for i in 0..self.m {
            self.basis.push(self.n + i);
            self.stat[self.n + i] = VStat::Basic;
        }
        self.refactorize()
            .expect("the all-logical slack basis is a nonsingular diagonal");
    }

    /// Re-rests every nonbasic variable on a finite bound under the
    /// current (possibly tightened) bound vectors, keeping its side where
    /// possible.
    fn reclamp_nonbasics(&mut self) {
        for j in 0..self.n + self.m {
            let prefer_upper = match self.stat[j] {
                VStat::Basic => continue,
                VStat::AtUpper => true,
                VStat::AtLower => false,
            };
            let (stat, value) = if prefer_upper && self.upper[j].is_finite() {
                (VStat::AtUpper, self.upper[j])
            } else if self.lower[j].is_finite() {
                (VStat::AtLower, self.lower[j])
            } else {
                (VStat::AtUpper, self.upper[j])
            };
            self.stat[j] = stat;
            self.x[j] = value;
        }
    }

    /// Tries to adopt a snapshot; `false` when it is structurally unusable.
    fn install_basis(&mut self, warm: &Basis) -> bool {
        let ntotal = self.n + self.m;
        if warm.basis.len() != self.m || warm.at_upper.len() != ntotal {
            return false;
        }
        let mut seen = vec![false; ntotal];
        for &v in &warm.basis {
            if v >= ntotal || seen[v] {
                return false;
            }
            seen[v] = true;
        }
        self.basis.clear();
        self.basis.extend_from_slice(&warm.basis);
        for (j, &basic) in seen.iter().enumerate() {
            self.stat[j] = if basic {
                VStat::Basic
            } else if warm.at_upper[j] {
                VStat::AtUpper
            } else {
                VStat::AtLower
            };
        }
        self.reclamp_nonbasics();
        true
    }

    /// Worst row residual `|a_r·x + s_r − b_r|` of the current point —
    /// an audit that does **not** go through the factorization, so it
    /// stays trustworthy when the factors have degraded.
    fn primal_residual(&self) -> f64 {
        let mut residual = self.lp.rhs.clone();
        for j in 0..self.n {
            let xj = self.x[j];
            if xj != 0.0 {
                for (r, v) in self.lp.cols.col(j) {
                    residual[r] -= v * xj;
                }
            }
        }
        for (i, r) in residual.iter_mut().enumerate() {
            *r -= self.x[self.n + i];
        }
        residual.iter().fold(0.0f64, |acc, r| acc.max(r.abs()))
    }

    /// Whether any basic value sits outside its bounds beyond [`FEAS_TOL`].
    fn has_violations(&self) -> bool {
        self.basis
            .iter()
            .any(|&v| self.x[v] < self.lower[v] - FEAS_TOL || self.x[v] > self.upper[v] + FEAS_TOL)
    }

    /// Visits the `(row, value)` entries of column `j` (structural or
    /// logical).
    #[inline]
    fn for_col(&self, j: usize, mut f: impl FnMut(usize, f64)) {
        if j < self.n {
            for (r, v) in self.lp.cols.col(j) {
                f(r, v);
            }
        } else {
            f(j - self.n, 1.0);
        }
    }

    /// Sparse dot of column `j` with a dense vector.
    #[inline]
    fn col_dot(&self, j: usize, dense: &[f64]) -> f64 {
        if j < self.n {
            self.lp.cols.col_dot(j, dense)
        } else {
            dense[j - self.n]
        }
    }

    /// `out = B⁻¹ · column j` through the LU factors, capturing the
    /// partial transform (the Forrest–Tomlin spike) for a later
    /// [`SimplexEngine::apply_pivot`] on this column.
    fn ftran_col(&mut self, j: usize, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.m, 0.0);
        if j < self.n {
            for (r, v) in self.lp.cols.col(j) {
                out[r] += v;
            }
        } else {
            out[j - self.n] = 1.0;
        }
        let mut spike = std::mem::take(&mut self.spike);
        self.lu.ftran(out, Some(&mut spike));
        self.spike = spike;
    }

    /// `v ← B⁻ᵀ v` through the LU factors.
    fn btran(&mut self, v: &mut [f64]) {
        self.lu.btran(v);
    }

    /// Rebuilds the LU factorization from the current basis columns
    /// (Markowitz ordering, threshold partial pivoting) and recomputes
    /// the basic values, bounding numerical drift.
    ///
    /// Errors when the basis is numerically singular; the factorization
    /// is then invalid, which the warm-reuse path in `solve` detects.
    fn refactorize(&mut self) -> Result<(), ()> {
        let (cols, n, basis) = (&self.lp.cols, self.n, &self.basis);
        let result = self.lu.factorize(self.m, |p, buf| {
            let v = basis[p];
            if v < n {
                buf.extend(cols.col(v));
            } else {
                buf.push((v - n, 1.0));
            }
        });
        self.pivots_since_refresh = 0;
        match result {
            Ok(()) => {
                let _ = self.recompute_basic_values();
                Ok(())
            }
            Err(_) => Err(()),
        }
    }

    /// Recomputes `x_B = B⁻¹ (b − N x_N)` from the nonbasic values,
    /// returning how far the incrementally maintained values had drifted
    /// (max-norm) — the solver's cheap factorization-health probe.
    fn recompute_basic_values(&mut self) -> f64 {
        let mut r = self.lp.rhs.clone();
        for j in 0..self.n + self.m {
            if self.stat[j] == VStat::Basic {
                continue;
            }
            let xj = self.x[j];
            if xj != 0.0 {
                self.for_col(j, |row, v| r[row] -= v * xj);
            }
        }
        self.lu.ftran(&mut r, None);
        let mut drift = 0.0f64;
        for (&v, &val) in self.basis.iter().zip(&r) {
            drift = drift.max((self.x[v] - val).abs());
            self.x[v] = val;
        }
        self.pivots_since_refresh = 0;
        drift
    }

    /// Cumulative basis-maintenance counters of this engine (survive
    /// refactorizations; shared across all solves on this engine).
    pub fn factor_stats(&self) -> FactorStats {
        self.lu.stats()
    }

    /// Cumulative warm-start and dual-path counters of this engine.
    pub fn engine_stats(&self) -> EngineStats {
        EngineStats {
            dual_pivots: self.dual_pivots,
            warm_resolves: self.warm_resolves,
            cold_restarts: self.cold_restarts,
        }
    }

    /// Picks the entering variable: Devex `d²/w` score, or the
    /// lowest-index eligible column under Bland's rule. In phase 1 all
    /// nonbasic costs are zero, so `d_j = −yᵀa_j`.
    fn price(&self, y: &[f64], phase1: bool, bland: bool) -> Option<(usize, i8)> {
        let mut best: Option<(usize, i8)> = None;
        let mut best_score = 0.0;
        for j in 0..self.n + self.m {
            let dir = match self.stat[j] {
                VStat::Basic => continue,
                VStat::AtLower => 1i8,
                VStat::AtUpper => -1i8,
            };
            if self.lower[j] == self.upper[j] {
                continue; // fixed (e.g. Eq logicals) never re-enter
            }
            let c = if phase1 { 0.0 } else { self.cost[j] };
            let d = c - self.col_dot(j, y);
            let eligible = if dir == 1 {
                d < -DUAL_TOL
            } else {
                d > DUAL_TOL
            };
            if !eligible {
                continue;
            }
            if bland {
                return Some((j, dir));
            }
            let score = d * d / self.weights[j];
            if score > best_score {
                best_score = score;
                best = Some((j, dir));
            }
        }
        best
    }

    /// Bounded-variable ratio test along `±B⁻¹a_q`. In phase 1, a basic
    /// variable outside its bounds blocks at the violated bound it is
    /// moving towards (restoring its feasibility as it leaves the basis)
    /// and never blocks when moving further away.
    fn ratio_test(&self, q: usize, dir: i8, alpha: &[f64], phase1: bool, bland: bool) -> Ratio {
        let span = self.upper[q] - self.lower[q];
        let d = f64::from(dir);
        let mut pivot_theta = f64::INFINITY;
        let mut pos = usize::MAX;
        let mut pos_alpha = 0.0f64;
        let mut to_upper = false;
        for (p, &a) in alpha.iter().enumerate() {
            if a.abs() <= EPS {
                continue;
            }
            let rate = -d * a; // dx_B[p] per unit θ
            let v = self.basis[p];
            let xv = self.x[v];
            let (lo, hi) = (self.lower[v], self.upper[v]);
            let (bound, hits_upper) = if rate > 0.0 {
                // Moving up: a variable below its lower bound regains
                // feasibility at `lo`; a feasible one blocks at `hi`; one
                // above `hi` is moving further away only in phase 1
                // pricing terms — it must not block behind itself.
                if phase1 && xv < lo - FEAS_TOL {
                    (lo, false)
                } else if xv <= hi + FEAS_TOL {
                    if hi == f64::INFINITY {
                        continue;
                    }
                    (hi, true)
                } else {
                    continue;
                }
            } else {
                // Moving down, mirror image.
                if phase1 && xv > hi + FEAS_TOL {
                    (hi, true)
                } else if xv >= lo - FEAS_TOL {
                    if lo == f64::NEG_INFINITY {
                        continue;
                    }
                    (lo, false)
                } else {
                    continue;
                }
            };
            let ratio = ((bound - xv) / rate).max(0.0);
            let take = if pos == usize::MAX {
                ratio < pivot_theta
            } else if ratio < pivot_theta - EPS {
                true
            } else if ratio <= pivot_theta + EPS {
                if bland {
                    v < self.basis[pos]
                } else {
                    a.abs() > pos_alpha.abs()
                }
            } else {
                false
            };
            if take {
                pivot_theta = pivot_theta.min(ratio);
                pos = p;
                pos_alpha = a;
                to_upper = hits_upper;
            }
        }
        // EPS-toleranced like every other ratio tie in this loop: on a
        // degenerate tie between the entering span and the blocking
        // ratio, prefer the flip — it needs no pivot at all, while the
        // tied blocker may carry an arbitrarily small (unstable) alpha.
        // The overshoot this admits is at most EPS·|rate|, inside
        // [`FEAS_TOL`] for the O(1)-scaled path-cover rows.
        if span <= pivot_theta + EPS {
            if span.is_infinite() {
                return Ratio::Unbounded;
            }
            return Ratio::BoundFlip;
        }
        if pos == usize::MAX {
            return Ratio::Unbounded;
        }
        Ratio::Pivot {
            pos,
            theta: pivot_theta,
            to_upper,
        }
    }

    /// Devex weight update from the pivot row, done against the **old**
    /// basis (before the new eta is appended).
    ///
    /// The pivot row `ρᵀA` (with `ρ = B⁻ᵀe_r`) is accumulated through the
    /// CSR mirror: only rows with `ρ_i ≠ 0` are swept, so only columns
    /// intersecting the pivot row's support are touched — a dense scan
    /// over every column (the former second-largest per-pivot cost after
    /// pricing) degenerates to work proportional to the row's fill-in.
    fn devex_update(&mut self, q: usize, alpha: &[f64], r: usize) {
        let ar = alpha[r];
        let gamma = self.weights[q].max(1.0);
        self.rho.iter_mut().for_each(|e| *e = 0.0);
        self.rho[r] = 1.0;
        let mut rho = std::mem::take(&mut self.rho);
        self.btran(&mut rho);
        let mut abar = std::mem::take(&mut self.abar);
        let mut seen = std::mem::take(&mut self.abar_seen);
        let mut touched = std::mem::take(&mut self.touched);
        for (i, &rv) in rho.iter().enumerate() {
            if rv == 0.0 {
                continue;
            }
            // Structural columns crossing row i (per-column contributions
            // accumulate in ascending row order, matching a direct
            // column-wise dot product exactly).
            for (j, a) in self.lp.rows_csr.col(i) {
                if !seen[j] {
                    seen[j] = true;
                    abar[j] = 0.0;
                    touched.push(j);
                }
                abar[j] += a * rv;
            }
            // The logical column of row i is the unit vector e_i.
            let j = self.n + i;
            if self.stat[j] != VStat::Basic && j != q && self.lower[j] != self.upper[j] {
                let cand = (rv / ar) * (rv / ar) * gamma;
                if cand > self.weights[j] {
                    self.weights[j] = cand;
                }
            }
        }
        for &j in &touched {
            seen[j] = false;
            if self.stat[j] == VStat::Basic || j == q || self.lower[j] == self.upper[j] {
                continue;
            }
            let ab = abar[j];
            if ab != 0.0 {
                let cand = (ab / ar) * (ab / ar) * gamma;
                if cand > self.weights[j] {
                    self.weights[j] = cand;
                }
            }
        }
        touched.clear();
        self.abar = abar;
        self.abar_seen = seen;
        self.touched = touched;
        self.rho = rho;
        self.weights[self.basis[r]] = (gamma / (ar * ar)).max(1.0);
        if self.weights.iter().any(|&w| w > 1e8) {
            self.weights.iter_mut().for_each(|w| *w = 1.0);
        }
    }

    /// Executes a basis-changing pivot: updates values, statuses and the
    /// basis map, then Forrest–Tomlin-updates the factorization with the
    /// spike captured by the entering column's FTRAN. When the update is
    /// rejected by the stability test, the basis is refactorized from
    /// scratch instead; `false` means even that failed (numerically
    /// singular basis — the caller must abort the solve).
    #[must_use]
    fn apply_pivot(
        &mut self,
        q: usize,
        dir: i8,
        alpha: &[f64],
        pos: usize,
        theta: f64,
        to_upper: bool,
    ) -> bool {
        let d = f64::from(dir);
        if theta != 0.0 {
            for (p, &a) in alpha.iter().enumerate() {
                if a != 0.0 {
                    let v = self.basis[p];
                    self.x[v] -= d * theta * a;
                }
            }
            self.x[q] += d * theta;
        }
        let leaving = self.basis[pos];
        // Snap the leaver exactly onto the bound it hit.
        self.x[leaving] = if to_upper {
            self.upper[leaving]
        } else {
            self.lower[leaving]
        };
        self.stat[leaving] = if to_upper {
            VStat::AtUpper
        } else {
            VStat::AtLower
        };
        self.stat[q] = VStat::Basic;
        self.basis[pos] = q;
        self.pivots_since_refresh += 1;
        let spike = std::mem::take(&mut self.spike);
        let updated = self.lu.replace_column(pos, &spike);
        self.spike = spike;
        // A rejected update leaves the factors unusable: rebuild from the
        // (already updated) basis, which also restores exact values.
        updated.is_ok() || self.refactorize().is_ok()
    }

    /// Moves the entering variable across its whole span to the opposite
    /// bound; the basis is unchanged.
    fn apply_bound_flip(&mut self, q: usize, dir: i8, alpha: &[f64]) {
        let d = f64::from(dir);
        let span = self.upper[q] - self.lower[q];
        for (p, &a) in alpha.iter().enumerate() {
            if a != 0.0 {
                let v = self.basis[p];
                self.x[v] -= d * span * a;
            }
        }
        if dir == 1 {
            self.x[q] = self.upper[q];
            self.stat[q] = VStat::AtUpper;
        } else {
            self.x[q] = self.lower[q];
            self.stat[q] = VStat::AtLower;
        }
    }

    /// The simplex pivot loop for one phase. Phase 1 minimises the total
    /// bound violation of the basic variables (big-M-free: costs are ∓1
    /// on violated basics, recomputed every iteration) and returns
    /// `Optimal` as soon as the basis is primal feasible; phase 2 runs
    /// the real objective.
    fn optimize(&mut self, phase1: bool, max_iters: usize, deadline: Option<Instant>) -> LpStatus {
        // After this many degenerate pivots in total, stay on Bland's rule
        // for good — unconditional termination beats pricing quality.
        let bland_forever_after = 1000 + 10 * (self.m + self.n);
        let mut local = 0usize;
        let mut degen_streak = 0usize;
        // Whether the current resting point has been re-verified from
        // freshly recomputed values (cleared by any move).
        let mut certified = false;
        let mut y = std::mem::take(&mut self.y);
        let mut alpha = std::mem::take(&mut self.alpha);
        y.clear();
        y.resize(self.m, 0.0);
        let status = loop {
            if local > max_iters {
                break LpStatus::IterationLimit;
            }
            if local.is_multiple_of(DEADLINE_CHECK_EVERY) {
                if let Some(dl) = deadline {
                    if Instant::now() >= dl {
                        break LpStatus::TimeLimit;
                    }
                }
            }
            // Refactorize when the factor's stability/fill policy asks
            // for it; otherwise refresh the basic values (one FTRAN) on
            // the short cadence that keeps degenerate branching honest,
            // escalating to a refactorization when the measured drift
            // says the factors themselves have degraded.
            if self.lu.should_refactor() || self.lu.updates_since_refactor() >= UPDATES_REFACTOR {
                if self.refactorize().is_err() {
                    break LpStatus::IterationLimit;
                }
            } else if self.pivots_since_refresh >= VALUES_REFRESH
                && self.recompute_basic_values() > DRIFT_REFACTOR_TOL
                && self.refactorize().is_err()
            {
                break LpStatus::IterationLimit;
            }
            let bland =
                degen_streak > DEGEN_STREAK_FOR_BLAND || self.total_degen > bland_forever_after;
            // Simplex multipliers for the phase's cost vector.
            let mut any_violation = false;
            for (yp, &v) in y.iter_mut().zip(&self.basis) {
                *yp = if phase1 {
                    if self.x[v] < self.lower[v] - FEAS_TOL {
                        any_violation = true;
                        -1.0
                    } else if self.x[v] > self.upper[v] + FEAS_TOL {
                        any_violation = true;
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    self.cost[v]
                };
            }
            if phase1 && !any_violation {
                // Terminate only off freshly recomputed basic values: the
                // incremental ones may under-report violations (the break
                // is consumed as a feasibility claim by phase 2). One
                // FTRAN, escalating to a rebuild when the measured drift
                // says the factors themselves have degraded.
                if !certified {
                    certified = true;
                    if self.recompute_basic_values() > DRIFT_REFACTOR_TOL
                        && self.refactorize().is_err()
                    {
                        break LpStatus::IterationLimit;
                    }
                    local += 1;
                    continue;
                }
                break LpStatus::Optimal;
            }
            self.btran(&mut y);
            let Some((q, dir)) = self.price(&y, phase1, bland) else {
                // Same certification as the phase-1 break: refresh the
                // values once and re-price before declaring optimality.
                if !certified {
                    certified = true;
                    if self.recompute_basic_values() > DRIFT_REFACTOR_TOL
                        && self.refactorize().is_err()
                    {
                        break LpStatus::IterationLimit;
                    }
                    local += 1;
                    continue;
                }
                break LpStatus::Optimal;
            };
            self.ftran_col(q, &mut alpha);
            match self.ratio_test(q, dir, &alpha, phase1, bland) {
                Ratio::Unbounded => {
                    // Phase-1 infeasibility is bounded below by zero; an
                    // unbounded ray there is numerical breakage, not a
                    // certificate.
                    break if phase1 {
                        LpStatus::IterationLimit
                    } else {
                        LpStatus::Unbounded
                    };
                }
                Ratio::BoundFlip => {
                    self.apply_bound_flip(q, dir, &alpha);
                    degen_streak = 0;
                    certified = false;
                }
                Ratio::Pivot {
                    pos,
                    theta,
                    to_upper,
                } => {
                    // A tiny blocking pivot on a factor that has absorbed
                    // updates is as likely stale arithmetic as a genuine
                    // degenerate pivot: refactorize and redo the
                    // iteration with exact alphas before committing.
                    if alpha[pos].abs() < SMALL_PIVOT_TOL && self.lu.updates_since_refactor() > 0 {
                        if self.refactorize().is_err() {
                            break LpStatus::IterationLimit;
                        }
                        local += 1;
                        continue;
                    }
                    if theta <= 1e-10 {
                        degen_streak += 1;
                        self.total_degen += 1;
                    } else {
                        degen_streak = 0;
                    }
                    self.devex_update(q, &alpha, pos);
                    if !self.apply_pivot(q, dir, &alpha, pos, theta, to_upper) {
                        break LpStatus::IterationLimit;
                    }
                    certified = false;
                }
            }
            self.iterations += 1;
            local += 1;
        };
        self.y = y;
        self.alpha = alpha;
        status
    }

    /// Prices every reduced cost `d_j = c_j − yᵀA_j` into `dvec` (basics
    /// get 0) off a fresh BTRAN of the phase-2 costs, and reports whether
    /// the basis is dual feasible: every nonbasic `d_j` carries the sign
    /// its resting bound requires, within [`DUAL_FEAS_TOL`]. One BTRAN
    /// plus one pricing sweep — the dual walk runs this once at entry
    /// (its feasibility gate doubles as the seed for the incrementally
    /// maintained reduced costs) and again whenever a terminal verdict
    /// must be re-proved off fresh numbers.
    fn price_duals(&mut self, y: &mut Vec<f64>, dvec: &mut Vec<f64>) -> bool {
        y.clear();
        y.resize(self.m, 0.0);
        for (yp, &v) in y.iter_mut().zip(&self.basis) {
            *yp = self.cost[v];
        }
        self.btran(y);
        let ntotal = self.n + self.m;
        dvec.clear();
        dvec.resize(ntotal, 0.0);
        let mut ok = true;
        for j in 0..ntotal {
            let at_upper = match self.stat[j] {
                VStat::Basic => continue,
                VStat::AtUpper => true,
                VStat::AtLower => false,
            };
            let d = if j < self.n {
                self.cost[j] - self.col_dot(j, y)
            } else {
                -y[j - self.n]
            };
            dvec[j] = d;
            if self.lower[j] == self.upper[j] {
                continue; // fixed columns never re-enter; any sign is fine
            }
            if (at_upper && d > DUAL_FEAS_TOL) || (!at_upper && d < -DUAL_FEAS_TOL) {
                ok = false;
            }
        }
        ok
    }

    /// The dual simplex pivot loop: from a dual-feasible basis whose
    /// basic values violate their bounds (the state a parent's optimal
    /// basis is left in after a child tightens one bound), each iteration
    /// picks the worst-violating basic row, accumulates its pivot row
    /// through the CSR mirror (exactly like the Devex update), and runs a
    /// **bound-flipping dual ratio test**: breakpoints are walked in
    /// ascending `|d_j| / |α_rj|` order with the same EPS tie-tolerancing
    /// as the primal ratio test; a boxed candidate whose whole span
    /// cannot absorb the remaining violation is bound-flipped without a
    /// pivot (the long step), and the first candidate that can cover the
    /// rest enters the basis. Exhausting the breakpoints with violation
    /// left over means the dual is unbounded, i.e. the LP is primal
    /// infeasible — re-proved off a fresh factorization exactly like the
    /// primal phase-1 verdict, since branch-and-bound consumes it as a
    /// proof. Anti-cycling mirrors the primal loop: a degenerate streak
    /// switches row/column ties to Bland's rule (which also disables the
    /// long-step flips), and a persistent stall falls back to the primal
    /// path via [`DualOutcome::Stalled`].
    fn dual_optimize(&mut self, max_iters: usize, deadline: Option<Instant>) -> DualOutcome {
        let mut local = 0usize;
        let mut degen_streak = 0usize;
        // A warm child re-solve should finish in a handful of pivots; a
        // dual walk still violating after O(m + n) of them is either
        // cycling on dual degeneracy or fighting numerics, and the primal
        // phase-1 restart is the cheaper way out. This budget bounds the
        // worst-case overhead of *attempting* the dual path per node.
        let budget = (200 + 4 * (self.m + self.n)).min(max_iters);
        // Whether the impending conclusion rests on freshly recomputed
        // basic values (any move clears it) — both the Feasible and the
        // Infeasible break are consumed as trusted claims by `solve`.
        let mut certified = false;
        let mut y = std::mem::take(&mut self.y);
        let mut alpha = std::mem::take(&mut self.alpha);
        let mut dvec = std::mem::take(&mut self.dvec);
        let mut dupd = std::mem::take(&mut self.dupd);
        // `(ratio, variable, pivot-row entry)` breakpoints of one test.
        let mut cands: Vec<(f64, usize, f64)> = Vec::new();
        // The entry gate doubles as the seed of the incrementally
        // maintained reduced costs: a basis that does not price dual
        // feasible is the primal path's problem.
        if !self.price_duals(&mut y, &mut dvec) {
            self.y = y;
            self.alpha = alpha;
            self.dvec = dvec;
            self.dupd = dupd;
            return DualOutcome::Stalled;
        }
        let outcome = loop {
            if local > budget {
                break DualOutcome::Stalled;
            }
            if local.is_multiple_of(DEADLINE_CHECK_EVERY) {
                if let Some(dl) = deadline {
                    if Instant::now() >= dl {
                        break DualOutcome::Limit(LpStatus::TimeLimit);
                    }
                }
            }
            // Same refactorization / value-refresh policy as the primal,
            // plus a fresh pricing of the incrementally maintained
            // reduced costs whenever the factors are rebuilt (their
            // accumulated float error resets with everything else's).
            if self.lu.should_refactor() || self.lu.updates_since_refactor() >= UPDATES_REFACTOR {
                if self.refactorize().is_err() {
                    break DualOutcome::Limit(LpStatus::IterationLimit);
                }
                self.price_duals(&mut y, &mut dvec);
            } else if self.pivots_since_refresh >= VALUES_REFRESH
                && self.recompute_basic_values() > DRIFT_REFACTOR_TOL
                && self.refactorize().is_err()
            {
                break DualOutcome::Limit(LpStatus::IterationLimit);
            }
            let bland = degen_streak > DUAL_DEGEN_FOR_BLAND;
            if degen_streak > DUAL_DEGEN_STALL {
                // Bland's rule alone should have broken the tie chain by
                // now; hand the basis to the primal path rather than keep
                // grinding degenerate dual pivots.
                break DualOutcome::Stalled;
            }
            // Leaving row: the basic value furthest outside its bounds
            // (the dual analogue of Devex pricing), or the smallest
            // violated variable index under Bland's rule.
            let mut r = usize::MAX;
            let mut worst = FEAS_TOL;
            let mut viol_high = false;
            for (p, &v) in self.basis.iter().enumerate() {
                let below = self.lower[v] - self.x[v];
                let above = self.x[v] - self.upper[v];
                let (viol, high) = if below >= above {
                    (below, false)
                } else {
                    (above, true)
                };
                if viol <= FEAS_TOL {
                    continue;
                }
                let take = if bland {
                    r == usize::MAX || v < self.basis[r]
                } else {
                    viol > worst
                };
                if take {
                    r = p;
                    worst = viol;
                    viol_high = high;
                }
            }
            if r == usize::MAX {
                // Primal feasible. Conclude only off fresh values, like
                // the primal phase-1 break — `solve` skips phase 1 on the
                // strength of this.
                if !certified {
                    certified = true;
                    if self.recompute_basic_values() > DRIFT_REFACTOR_TOL
                        && self.refactorize().is_err()
                    {
                        break DualOutcome::Limit(LpStatus::IterationLimit);
                    }
                    local += 1;
                    continue;
                }
                break DualOutcome::Feasible;
            }
            let leave = self.basis[r];
            // Pivot row ρᵀA (ρ = B⁻ᵀe_r) through the CSR mirror; the
            // reduced costs come from the incrementally maintained
            // `dvec`, so no per-pivot BTRAN of the costs is needed.
            self.rho.iter_mut().for_each(|e| *e = 0.0);
            self.rho[r] = 1.0;
            let mut rho = std::mem::take(&mut self.rho);
            self.btran(&mut rho);
            let mut abar = std::mem::take(&mut self.abar);
            let mut seen = std::mem::take(&mut self.abar_seen);
            let mut touched = std::mem::take(&mut self.touched);
            for (i, &rv) in rho.iter().enumerate() {
                if rv == 0.0 {
                    continue;
                }
                for (j, a) in self.lp.rows_csr.col(i) {
                    if !seen[j] {
                        seen[j] = true;
                        abar[j] = 0.0;
                        touched.push(j);
                    }
                    abar[j] += a * rv;
                }
            }
            // Breakpoints: every nonbasic column whose natural move (up
            // from a lower bound, down from an upper one) pushes row r's
            // value back toward its violated bound, keyed by the dual
            // ratio. The basic value changes by −α_rj per unit of an
            // upward move, so fixing a violation from below wants
            // α_rj < 0 at a lower bound and α_rj > 0 at an upper one
            // (mirrored for a violation from above).
            cands.clear();
            dupd.clear();
            for &j in &touched {
                let a = abar[j];
                let at_upper = match self.stat[j] {
                    VStat::Basic => continue,
                    VStat::AtUpper => true,
                    VStat::AtLower => false,
                };
                if a == 0.0 {
                    continue;
                }
                // Every nonbasic column the pivot row touches needs its
                // reduced cost shifted by the dual step, candidate or
                // not.
                dupd.push((j, a));
                if self.lower[j] == self.upper[j] || a.abs() <= EPS {
                    continue;
                }
                let want_pos = viol_high != at_upper;
                if if want_pos { a <= EPS } else { a >= -EPS } {
                    continue;
                }
                let d = dvec[j];
                let ratio = (if at_upper { -d } else { d }).max(0.0) / a.abs();
                cands.push((ratio, j, a));
            }
            for (i, &rv) in rho.iter().enumerate() {
                // The logical column of row i is the unit vector e_i, so
                // its pivot-row entry is ρ_i and its cost is zero.
                if rv == 0.0 {
                    continue;
                }
                let j = self.n + i;
                let at_upper = match self.stat[j] {
                    VStat::Basic => continue,
                    VStat::AtUpper => true,
                    VStat::AtLower => false,
                };
                dupd.push((j, rv));
                if self.lower[j] == self.upper[j] || rv.abs() <= EPS {
                    continue;
                }
                let want_pos = viol_high != at_upper;
                if if want_pos { rv <= EPS } else { rv >= -EPS } {
                    continue;
                }
                let d = dvec[j];
                let ratio = (if at_upper { -d } else { d }).max(0.0) / rv.abs();
                cands.push((ratio, j, rv));
            }
            for &j in &touched {
                seen[j] = false;
            }
            touched.clear();
            self.abar = abar;
            self.abar_seen = seen;
            self.touched = touched;
            self.rho = rho;
            // Ascending dual ratio, variable index breaking exact ties —
            // deterministic, like every other ordering in this module.
            cands.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            // Bound-flipping walk over the breakpoints, in two passes: a
            // *virtual* walk first decides which prefix of the sorted
            // breakpoints flips and which one enters, and the flips are
            // only applied when an entering pivot actually follows. A
            // flip leaves the flipped column's reduced cost unchanged —
            // it is the entering pivot's dual step (at least as large as
            // every flipped ratio) that moves the reduced costs across
            // zero and re-signs them for the new bound. Flipping without
            // that pivot would leave the basis silently dual infeasible,
            // which is exactly the kind of corruption branch-and-bound
            // later consumes as a wrong infeasibility proof. Under
            // Bland's rule the long step is disabled and the
            // smallest-index column within EPS of the minimum ratio
            // enters directly.
            let mut entering: Option<(usize, f64, f64)> = None;
            let mut flips = 0usize;
            if bland {
                if let Some(first) = cands.first() {
                    let cutoff = first.0 + EPS;
                    entering = cands
                        .iter()
                        .filter(|c| c.0 <= cutoff)
                        .map(|&(ratio, j, a)| (j, a, ratio))
                        .min_by_key(|&(j, ..)| j);
                }
            } else {
                let mut remaining = if viol_high {
                    self.x[leave] - self.upper[leave]
                } else {
                    self.lower[leave] - self.x[leave]
                };
                for &(ratio, j, a) in &cands {
                    let span = self.upper[j] - self.lower[j];
                    // EPS-toleranced like the primal flip tie: a boxed
                    // candidate whose whole span cannot absorb what is
                    // left of the violation is marked to flip, and the
                    // walk moves to the next breakpoint.
                    if span.is_finite() && a.abs() * span < remaining - EPS {
                        remaining -= a.abs() * span;
                        flips += 1;
                        continue;
                    }
                    entering = Some((j, a, ratio));
                    break;
                }
                // Degenerate duals tie many breakpoints at the stopping
                // ratio; among them, the largest pivot-row entry gives
                // both the stablest pivot and the longest primal step.
                // Columns skipped over inside the window keep their
                // (near-zero) reduced costs within tolerance.
                if let Some((_, _, stop_ratio)) = entering {
                    let cutoff = stop_ratio + EPS;
                    entering = cands[flips..]
                        .iter()
                        .take_while(|c| c.0 <= cutoff)
                        .max_by(|a, b| a.2.abs().total_cmp(&b.2.abs()))
                        .map(|&(ratio, j, a)| (j, a, ratio));
                }
            }
            if entering.is_some() {
                for &(_, j, _) in &cands[..flips] {
                    let dir: i8 = if self.stat[j] == VStat::AtUpper {
                        -1
                    } else {
                        1
                    };
                    self.ftran_col(j, &mut alpha);
                    self.apply_bound_flip(j, dir, &alpha);
                    certified = false;
                }
            }
            let delta = if viol_high {
                self.x[leave] - self.upper[leave]
            } else {
                self.lower[leave] - self.x[leave]
            };
            let Some((q, _, entering_ratio)) = entering else {
                if delta <= FEAS_TOL {
                    // Drift guard: the row's stored value no longer
                    // violates; pick the next violated row off fresh
                    // numbers.
                    self.iterations += 1;
                    local += 1;
                    continue;
                }
                // No breakpoint (or none left) can move row r to its
                // bound: the dual is unbounded, so the LP is primal
                // infeasible. Re-prove off a fresh factorization and
                // fresh values before concluding, like every other
                // terminal verdict in this engine.
                if self.lu.updates_since_refactor() > 0 {
                    if self.refactorize().is_err() {
                        break DualOutcome::Limit(LpStatus::IterationLimit);
                    }
                    self.price_duals(&mut y, &mut dvec);
                    certified = true;
                    local += 1;
                    continue;
                }
                if !certified {
                    certified = true;
                    if self.recompute_basic_values() > DRIFT_REFACTOR_TOL
                        && self.refactorize().is_err()
                    {
                        break DualOutcome::Limit(LpStatus::IterationLimit);
                    }
                    self.price_duals(&mut y, &mut dvec);
                    local += 1;
                    continue;
                }
                break DualOutcome::Infeasible;
            };
            self.ftran_col(q, &mut alpha);
            let arq = alpha[r];
            if arq.abs() < SMALL_PIVOT_TOL {
                if self.lu.updates_since_refactor() > 0 {
                    // Stale tiny pivot: refactorize and redo the
                    // iteration with exact alphas, as in the primal loop.
                    if self.refactorize().is_err() {
                        break DualOutcome::Limit(LpStatus::IterationLimit);
                    }
                    local += 1;
                    continue;
                }
                if arq.abs() <= EPS {
                    // Hopeless pivot even on fresh factors; let the
                    // primal path take over.
                    break DualOutcome::Stalled;
                }
            }
            let theta = (delta / arq.abs()).max(0.0);
            // Dual degeneracy is a vanishing *dual ratio* — the pivot
            // leaves the dual objective where it was, which is what lets
            // the walk cycle — not a vanishing primal step (the primal
            // step is `delta / |α|`, strictly positive whenever a pivot
            // is taken at all).
            if entering_ratio <= DUAL_TOL {
                degen_streak += 1;
                self.total_degen += 1;
            } else {
                degen_streak = 0;
            }
            let dir: i8 = if self.stat[q] == VStat::AtUpper {
                -1
            } else {
                1
            };
            // The primal Devex reference weights are deliberately left
            // untouched. Any positive weights are a valid Devex state (a
            // stale weight only costs pricing quality, never
            // correctness), and threading the dual pivots through
            // `devex_update` measurably poisons the downstream primal
            // pricing on the massively degenerate cover probes this
            // engine exists for (~8x more nodes on the 4x4 exact-cover
            // dive when the walk maintained the weights).
            // Dual step length forced by the entering column's reduced
            // cost landing on zero: y' = y + (d_q/α_rq)·ρ, hence
            // d_j' = d_j − (d_q/α_rq)·α_rj for every nonbasic column the
            // pivot row touches, and the leaving variable picks up
            // d' = −d_q/α_rq. Read before the pivot clobbers the state.
            let t = dvec[q] / arq;
            if !self.apply_pivot(q, dir, &alpha, r, theta, viol_high) {
                break DualOutcome::Limit(LpStatus::IterationLimit);
            }
            for &(j, a) in &dupd {
                dvec[j] -= t * a;
            }
            dvec[leave] = -t;
            dvec[q] = 0.0;
            certified = false;
            self.dual_pivots += 1;
            self.iterations += 1;
            local += 1;
        };
        self.y = y;
        self.alpha = alpha;
        self.dvec = dvec;
        self.dupd = dupd;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(coeffs: &[(usize, f64)], op: ConstraintOp, rhs: f64) -> LpRow {
        LpRow {
            coeffs: coeffs.to_vec(),
            op,
            rhs,
        }
    }

    #[test]
    fn textbook_two_var_max() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (min form: negate).
        let p = LpProblem {
            objective: vec![-3.0, -5.0],
            rows: vec![
                row(&[(0, 1.0)], ConstraintOp::Leq, 4.0),
                row(&[(1, 2.0)], ConstraintOp::Leq, 12.0),
                row(&[(0, 3.0), (1, 2.0)], ConstraintOp::Leq, 18.0),
            ],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(
            (s.objective - (-36.0)).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!((s.x[0] - 2.0).abs() < 1e-6 && (s.x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_and_geq_need_phase1() {
        // min x + y s.t. x + y = 10, x >= 3, y >= 2.
        let p = LpProblem {
            objective: vec![1.0, 1.0],
            rows: vec![row(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 10.0)],
            lower: vec![3.0, 2.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-6);
        assert!((s.x[0] + s.x[1] - 10.0).abs() < 1e-6);
        assert!(s.x[0] >= 3.0 - 1e-9 && s.x[1] >= 2.0 - 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2.
        let p = LpProblem {
            objective: vec![0.0],
            rows: vec![
                row(&[(0, 1.0)], ConstraintOp::Leq, 1.0),
                row(&[(0, 1.0)], ConstraintOp::Geq, 2.0),
            ],
            lower: vec![0.0],
            upper: vec![f64::INFINITY],
        };
        assert_eq!(solve(&p).status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x, x >= 0 unconstrained above.
        let p = LpProblem {
            objective: vec![-1.0],
            rows: vec![],
            lower: vec![0.0],
            upper: vec![f64::INFINITY],
        };
        assert_eq!(solve(&p).status, LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_respected() {
        // min -x - y with x <= 2.5, y <= 1.5 via bounds only (pure bound
        // flips, no pivots at all).
        let p = LpProblem {
            objective: vec![-1.0, -1.0],
            rows: vec![],
            lower: vec![0.0, 0.0],
            upper: vec![2.5, 1.5],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.x[0] - 2.5).abs() < 1e-6 && (s.x[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn shifted_lower_bounds() {
        // min x with x in [-5, 10] and x >= -3 as a row.
        let p = LpProblem {
            objective: vec![1.0],
            rows: vec![row(&[(0, 1.0)], ConstraintOp::Geq, -3.0)],
            lower: vec![-5.0],
            upper: vec![10.0],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.x[0] + 3.0).abs() < 1e-6, "x = {}", s.x[0]);
    }

    #[test]
    fn negative_rhs_normalisation() {
        // min y s.t. -x - y <= -4  (i.e. x + y >= 4), x <= 1.
        let p = LpProblem {
            objective: vec![0.0, 1.0],
            rows: vec![row(&[(0, -1.0), (1, -1.0)], ConstraintOp::Leq, -4.0)],
            lower: vec![0.0, 0.0],
            upper: vec![1.0, f64::INFINITY],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(
            (s.objective - 3.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn redundant_equalities_do_not_break_phase1() {
        // x + y = 2 twice, minimise x.
        let p = LpProblem {
            objective: vec![1.0, 0.0],
            rows: vec![
                row(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0),
                row(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0),
            ],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(s.objective.abs() < 1e-6);
    }

    #[test]
    fn beales_cycling_example_terminates() {
        // Beale's classic example cycles under naive Dantzig pricing; the
        // degenerate-streak Bland fallback must terminate it at the true
        // optimum.
        let p = LpProblem {
            objective: vec![-0.75, 150.0, -0.02, 6.0],
            rows: vec![
                row(
                    &[(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
                    ConstraintOp::Leq,
                    0.0,
                ),
                row(
                    &[(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
                    ConstraintOp::Leq,
                    0.0,
                ),
                row(&[(2, 1.0)], ConstraintOp::Leq, 1.0),
            ],
            lower: vec![0.0; 4],
            upper: vec![f64::INFINITY; 4],
        };
        let s = solve(&p);
        assert_eq!(
            s.status,
            LpStatus::Optimal,
            "Beale's example must terminate"
        );
        assert!(
            (s.objective - (-0.05)).abs() < 1e-6,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn degenerate_vertex_with_ratio_ties() {
        // Three constraints meet at (1, 1) along with the optimum; every
        // ratio test at the final vertex ties at zero. The solver must
        // not cycle and must report the right point.
        let p = LpProblem {
            objective: vec![-1.0, -1.0],
            rows: vec![
                row(&[(0, 1.0)], ConstraintOp::Leq, 1.0),
                row(&[(1, 1.0)], ConstraintOp::Leq, 1.0),
                row(&[(0, 1.0), (1, 1.0)], ConstraintOp::Leq, 2.0),
                row(&[(0, 2.0), (1, 1.0)], ConstraintOp::Leq, 3.0),
                row(&[(0, 1.0), (1, 2.0)], ConstraintOp::Leq, 3.0),
            ],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(
            (s.objective - (-2.0)).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!((s.x[0] - 1.0).abs() < 1e-6 && (s.x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_bound_flip_tie_prefers_the_flip() {
        // min −x with x ∈ [0, 1] against the row 1e-6·x ≤ 1e-6·(1 − 1e-10):
        // the blocking ratio (1 − 1e-10) ties with the bound span (1.0)
        // inside EPS, and the blocker's pivot element is a tiny 1e-6. An
        // exact `span <= theta` comparison takes the unstable tiny-alpha
        // pivot and lands at x = 1 − 1e-10; the EPS-toleranced tie must
        // flip x cleanly onto its upper bound instead (the admitted row
        // overshoot, 1e-16, is far inside FEAS_TOL).
        let p = LpProblem {
            objective: vec![-1.0],
            rows: vec![row(&[(0, 1e-6)], ConstraintOp::Leq, 1e-6 * (1.0 - 1e-10))],
            lower: vec![0.0],
            upper: vec![1.0],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(
            (s.x[0] - 1.0).abs() < 1e-12,
            "tie must resolve to a clean bound flip, got x = {:.17}",
            s.x[0]
        );
        assert_eq!(s.iterations, 1, "one flip, no pivots");
    }

    #[test]
    fn expired_deadline_returns_time_limit_not_partial_answer() {
        // The deadline is checked inside the pivot loop: with an already
        // expired deadline the solver must give up with TimeLimit and NaN
        // objective rather than report whatever point it was at.
        let p = LpProblem {
            objective: vec![-3.0, -5.0],
            rows: vec![
                row(&[(0, 1.0)], ConstraintOp::Leq, 4.0),
                row(&[(1, 2.0)], ConstraintOp::Leq, 12.0),
                row(&[(0, 3.0), (1, 2.0)], ConstraintOp::Leq, 18.0),
            ],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
        };
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let s = solve_with_deadline(&p, Some(past));
        assert_eq!(s.status, LpStatus::TimeLimit);
        assert!(s.objective.is_nan(), "no partial objective on TimeLimit");
        assert!(s.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fixed_variable_via_equal_bounds() {
        let p = LpProblem {
            objective: vec![1.0, 1.0],
            rows: vec![row(&[(0, 1.0), (1, 1.0)], ConstraintOp::Geq, 5.0)],
            lower: vec![2.0, 0.0],
            upper: vec![2.0, f64::INFINITY],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.x[0] - 2.0).abs() < 1e-9);
        assert!((s.x[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_domain_is_infeasible() {
        let p = LpProblem {
            objective: vec![1.0],
            rows: vec![],
            lower: vec![2.0],
            upper: vec![1.0],
        };
        assert_eq!(solve(&p).status, LpStatus::Infeasible);
    }

    #[test]
    fn prepared_lp_reused_across_bound_changes() {
        // The branch-and-bound access pattern: one SparseLp, many bound
        // vectors, warm-started from the parent basis.
        let p = LpProblem {
            objective: vec![-1.0, -1.0],
            rows: vec![row(&[(0, 1.0), (1, 1.0)], ConstraintOp::Leq, 3.0)],
            lower: vec![0.0, 0.0],
            upper: vec![2.0, 2.0],
        };
        let prepared = SparseLp::from_problem(&p);
        let mut engine = prepared.engine();
        let (root, basis) = engine.solve(&p.lower, &p.upper, None, None);
        assert_eq!(root.status, LpStatus::Optimal);
        assert!((root.objective + 3.0).abs() < 1e-6);
        let basis = basis.expect("optimal solve returns a basis");
        // Child node: x <= 1, warm-started.
        let (child, _) = engine.solve(&[0.0, 0.0], &[1.0, 2.0], None, Some(&basis));
        assert_eq!(child.status, LpStatus::Optimal);
        assert!((child.objective + 3.0).abs() < 1e-6);
        // Child node: x and y fixed to 2 makes the row infeasible.
        let (infeasible, none) = engine.solve(&[2.0, 2.0], &[2.0, 2.0], None, Some(&basis));
        assert_eq!(infeasible.status, LpStatus::Infeasible);
        assert!(none.is_none(), "failed solves return no basis");
    }

    #[test]
    fn warm_resolve_after_bound_tightening_takes_the_dual_path() {
        // max x + y over x + y <= 3, x, y in [0, 2]: the optimal basis has
        // the row's logical nonbasic and one structural basic. Tightening
        // a bound leaves the basis dual feasible but primal infeasible —
        // exactly the state the dual simplex exists for.
        let p = LpProblem {
            objective: vec![-1.0, -1.0],
            rows: vec![row(&[(0, 1.0), (1, 1.0)], ConstraintOp::Leq, 3.0)],
            lower: vec![0.0, 0.0],
            upper: vec![2.0, 2.0],
        };
        let prepared = SparseLp::from_problem(&p);
        let mut engine = prepared.engine();
        let (root, basis) = engine.solve(&p.lower, &p.upper, None, None);
        assert_eq!(root.status, LpStatus::Optimal);
        assert_eq!(root.start, WarmStart::Cold);
        assert_eq!(engine.engine_stats(), EngineStats::default());
        let basis = basis.unwrap();
        // Child: y <= 0.5 forces the basic point off the old vertex.
        let (child, _) = engine.solve(&[0.0, 0.0], &[2.0, 0.5], None, Some(&basis));
        assert_eq!(child.status, LpStatus::Optimal);
        assert!((child.objective + 2.5).abs() < 1e-6, "{}", child.objective);
        assert_eq!(child.start, WarmStart::Reused);
        let stats = engine.engine_stats();
        assert_eq!(stats.warm_resolves, 1);
        assert_eq!(stats.cold_restarts, 0);
        assert!(
            stats.dual_pivots > 0,
            "the warm re-solve must go through the dual simplex"
        );
    }

    #[test]
    fn rejected_warm_basis_is_counted_not_silent() {
        let p = LpProblem {
            objective: vec![-1.0, -1.0],
            rows: vec![row(&[(0, 1.0), (1, 1.0)], ConstraintOp::Leq, 3.0)],
            lower: vec![0.0, 0.0],
            upper: vec![2.0, 2.0],
        };
        let prepared = SparseLp::from_problem(&p);
        let mut engine = prepared.engine();
        // A structurally bogus snapshot (basic variable out of range, as
        // a snapshot from a different LP would be) must be rejected,
        // counted, and reported — and the solve must still answer
        // correctly from the cold slack basis.
        let bogus = Basis {
            basis: vec![7],
            at_upper: vec![false; 3],
        };
        let (sol, _) = engine.solve(&p.lower, &p.upper, None, Some(&bogus));
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 3.0).abs() < 1e-6);
        assert_eq!(sol.start, WarmStart::Rejected);
        let stats = engine.engine_stats();
        assert_eq!(stats.cold_restarts, 1);
        assert_eq!(stats.warm_resolves, 0);
    }

    #[test]
    fn dual_infeasible_child_agrees_with_cold_solve() {
        // Fixing both variables above what the row allows: the dual walk
        // must prove infeasibility (no eligible entering column), and the
        // verdict must match a cold phase-1 proof.
        let p = LpProblem {
            objective: vec![1.0, 1.0],
            rows: vec![row(&[(0, 1.0), (1, 1.0)], ConstraintOp::Leq, 3.0)],
            lower: vec![0.0, 0.0],
            upper: vec![2.0, 2.0],
        };
        let prepared = SparseLp::from_problem(&p);
        let mut engine = prepared.engine();
        let (root, basis) = engine.solve(&p.lower, &p.upper, None, None);
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = basis.unwrap();
        let (warm, none) = engine.solve(&[2.0, 2.0], &[2.0, 2.0], None, Some(&basis));
        assert_eq!(warm.status, LpStatus::Infeasible);
        assert!(none.is_none());
        let cold = prepared.solve(&[2.0, 2.0], &[2.0, 2.0], None);
        assert_eq!(cold.status, LpStatus::Infeasible);
    }

    #[test]
    fn warm_start_agrees_with_cold_start() {
        // Same LP solved cold and warm (from a sibling's basis) must land
        // on the same objective.
        let p = LpProblem {
            objective: vec![1.0, -2.0, 3.0, -1.0],
            rows: vec![
                row(&[(0, 1.0), (1, 1.0), (2, 1.0)], ConstraintOp::Leq, 6.0),
                row(&[(1, 1.0), (3, 2.0)], ConstraintOp::Geq, 2.0),
                row(&[(0, 1.0), (2, -1.0), (3, 1.0)], ConstraintOp::Eq, 1.0),
            ],
            lower: vec![0.0; 4],
            upper: vec![4.0, 4.0, 4.0, 4.0],
        };
        let prepared = SparseLp::from_problem(&p);
        let mut engine = prepared.engine();
        let (cold, basis) = engine.solve(&p.lower, &p.upper, None, None);
        assert_eq!(cold.status, LpStatus::Optimal);
        let basis = basis.unwrap();
        // Tighten a bound, resolve warm, then relax back and check
        // agreement with the cold solve.
        let (_, tight_basis) = engine.solve(&[0.0, 0.0, 0.0, 1.0], &p.upper, None, Some(&basis));
        let (warm, _) = engine.solve(
            &p.lower,
            &p.upper,
            None,
            tight_basis.as_ref().or(Some(&basis)),
        );
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
    }

    #[test]
    fn long_pivot_chains_survive_refactorization() {
        // A staircase LP needing enough pivots that the LU factors are
        // Forrest–Tomlin-updated past the freshness cadence and rebuilt
        // mid-solve: min Σ x_i subject to x_0 >= 1, x_i − x_{i−1} >= 1.
        let n = 160;
        let mut rows = vec![row(&[(0, 1.0)], ConstraintOp::Geq, 1.0)];
        for i in 1..n {
            rows.push(row(&[(i, 1.0), (i - 1, -1.0)], ConstraintOp::Geq, 1.0));
        }
        let p = LpProblem {
            objective: vec![1.0; n],
            rows,
            lower: vec![0.0; n],
            upper: vec![f64::INFINITY; n],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        let expect: f64 = (1..=n).map(|i| i as f64).sum();
        assert!(
            (s.objective - expect).abs() < 1e-5,
            "objective {} vs {expect}",
            s.objective
        );
        for i in 0..n {
            assert!((s.x[i] - (i + 1) as f64).abs() < 1e-5);
        }
    }

    #[test]
    fn agrees_with_dense_oracle_on_a_mixed_model() {
        // A structured mixed Leq/Geq/Eq model with bounded and unbounded
        // variables; the dense tableau oracle must land on the same
        // objective.
        let n = 12;
        let mut rows = Vec::new();
        for i in 0..n {
            let j = (i + 1) % n;
            rows.push(row(
                &[(i, 1.0), (j, if i % 2 == 0 { 2.0 } else { -1.0 })],
                match i % 3 {
                    0 => ConstraintOp::Leq,
                    1 => ConstraintOp::Geq,
                    _ => ConstraintOp::Eq,
                },
                (i % 5) as f64 - 1.0,
            ));
        }
        let objective: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let lower: Vec<f64> = (0..n)
            .map(|i| if i % 4 == 0 { -3.0 } else { 0.0 })
            .collect();
        let upper: Vec<f64> = (0..n).map(|i| 2.0 + (i % 3) as f64).collect();
        let p = LpProblem {
            objective,
            rows,
            lower,
            upper,
        };
        let sparse = solve(&p);
        let dense = crate::dense::solve(&p);
        assert_eq!(sparse.status, dense.status);
        if sparse.status == LpStatus::Optimal {
            assert!(
                (sparse.objective - dense.objective).abs() < 1e-6,
                "sparse {} vs dense {}",
                sparse.objective,
                dense.objective
            );
        }
    }
}
