//! Linear expressions over model variables.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Identifier of a variable inside one [`crate::Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Dense index of the variable inside its model.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A linear expression `Σ coeff·var + constant`.
///
/// Built with ordinary operators:
///
/// ```
/// use fpva_ilp::{Model, Sense};
/// let mut m = Model::new(Sense::Minimize);
/// let x = m.binary_var("x");
/// let y = m.binary_var("y");
/// let e = 2.0 * x - y + 1.0;
/// assert_eq!(e.coeff(x), 2.0);
/// assert_eq!(e.coeff(y), -1.0);
/// assert_eq!(e.constant(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinExpr {
    terms: BTreeMap<VarId, f64>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// An expression consisting of a constant only.
    pub fn constant_expr(c: f64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// Adds `coeff · var` to the expression.
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut Self {
        let entry = self.terms.entry(var).or_insert(0.0);
        *entry += coeff;
        if *entry == 0.0 {
            self.terms.remove(&var);
        }
        self
    }

    /// Adds a constant.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// The coefficient of `var` (0 when absent).
    pub fn coeff(&self, var: VarId) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// The constant part.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Iterates over `(var, coeff)` pairs with non-zero coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Number of variables with non-zero coefficient.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Whether all coefficients and the constant are finite.
    pub fn is_finite(&self) -> bool {
        self.constant.is_finite() && self.terms.values().all(|c| c.is_finite())
    }

    /// Evaluates the expression under an assignment `values[var.index()]`.
    ///
    /// # Panics
    ///
    /// Panics if a variable index exceeds `values.len()`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|(v, c)| c * values[v.0]).sum::<f64>()
    }
}

/// A sparse vector: sorted `(index, value)` pairs with no duplicates.
///
/// This is the column currency of the revised simplex — structural
/// columns of the constraint matrix ([`crate::sparse::CscMatrix`]) and
/// sparse objective vectors are assembled from it without ever touching
/// a dense intermediate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVec {
    entries: Vec<(usize, f64)>,
}

impl SparseVec {
    /// The empty vector.
    pub fn new() -> Self {
        SparseVec::default()
    }

    /// An empty vector with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        SparseVec {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Appends an entry; zeros are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not strictly greater than the last pushed
    /// index (entries must arrive sorted and unique).
    pub fn push(&mut self, index: usize, value: f64) {
        if let Some(&(last, _)) = self.entries.last() {
            assert!(index > last, "indices must be pushed in ascending order");
        }
        if value != 0.0 {
            self.entries.push((index, value));
        }
    }

    /// Builds from entries in any order; duplicates are summed, zeros
    /// dropped.
    pub fn from_unsorted(mut entries: Vec<(usize, f64)>) -> Self {
        entries.sort_unstable_by_key(|&(i, _)| i);
        let mut out = SparseVec::with_capacity(entries.len());
        for (i, v) in entries {
            match out.entries.last_mut() {
                Some((last, acc)) if *last == i => *acc += v,
                _ => out.entries.push((i, v)),
            }
        }
        out.entries.retain(|&(_, v)| v != 0.0);
        out
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The `(index, value)` entries in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.entries.iter().copied()
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        let mut e = LinExpr::new();
        e.add_term(v, 1.0);
        e
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant_expr(c)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        *self += -rhs;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: f64) -> LinExpr {
        if k == 0.0 {
            return LinExpr::new();
        }
        for c in self.terms.values_mut() {
            *c *= k;
        }
        self.constant *= k;
        self
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, e: LinExpr) -> LinExpr {
        e * self
    }
}

// Convenience operators mixing `VarId` and `f64` into expressions.

impl Add<VarId> for VarId {
    type Output = LinExpr;
    fn add(self, rhs: VarId) -> LinExpr {
        LinExpr::from(self) + LinExpr::from(rhs)
    }
}

impl Add<VarId> for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: VarId) -> LinExpr {
        self + LinExpr::from(rhs)
    }
}

impl Add<LinExpr> for VarId {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        LinExpr::from(self) + rhs
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: f64) -> LinExpr {
        self + LinExpr::constant_expr(rhs)
    }
}

impl Add<LinExpr> for f64 {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        rhs + self
    }
}

impl Sub<VarId> for VarId {
    type Output = LinExpr;
    fn sub(self, rhs: VarId) -> LinExpr {
        LinExpr::from(self) - LinExpr::from(rhs)
    }
}

impl Sub<VarId> for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: VarId) -> LinExpr {
        self - LinExpr::from(rhs)
    }
}

impl Sub<LinExpr> for VarId {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        LinExpr::from(self) - rhs
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: f64) -> LinExpr {
        self + LinExpr::constant_expr(-rhs)
    }
}

impl Mul<VarId> for f64 {
    type Output = LinExpr;
    fn mul(self, v: VarId) -> LinExpr {
        LinExpr::from(v) * self
    }
}

impl Neg for VarId {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        -LinExpr::from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId(i)
    }

    #[test]
    fn build_and_eval() {
        let e = 2.0 * v(0) + v(1) - 0.5 * v(2) + 3.0;
        assert_eq!(e.coeff(v(0)), 2.0);
        assert_eq!(e.coeff(v(1)), 1.0);
        assert_eq!(e.coeff(v(2)), -0.5);
        assert_eq!(e.coeff(v(9)), 0.0);
        assert_eq!(e.constant(), 3.0);
        assert_eq!(e.eval(&[1.0, 2.0, 4.0]), 2.0 + 2.0 - 2.0 + 3.0);
    }

    #[test]
    fn cancellation_removes_terms() {
        let e = v(0) + v(1) - v(0);
        assert_eq!(e.term_count(), 1);
        assert_eq!(e.coeff(v(0)), 0.0);
    }

    #[test]
    fn neg_and_sub() {
        let e = -(v(0) + 2.0 * v(1) + 1.0);
        assert_eq!(e.coeff(v(0)), -1.0);
        assert_eq!(e.coeff(v(1)), -2.0);
        assert_eq!(e.constant(), -1.0);
        let d = LinExpr::from(v(0)) - 1.0;
        assert_eq!(d.constant(), -1.0);
    }

    #[test]
    fn mul_by_zero_clears() {
        let e = (v(0) + v(1) + 5.0) * 0.0;
        assert_eq!(e.term_count(), 0);
        assert_eq!(e.constant(), 0.0);
    }

    #[test]
    fn finite_check() {
        let mut e = LinExpr::from(v(0));
        assert!(e.is_finite());
        e.add_term(v(1), f64::NAN);
        assert!(!e.is_finite());
    }

    #[test]
    fn sparse_vec_push_drops_zeros_and_keeps_order() {
        let mut v = SparseVec::new();
        v.push(1, 2.0);
        v.push(3, 0.0); // dropped
        v.push(4, -1.0);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![(1, 2.0), (4, -1.0)]);
    }

    #[test]
    #[should_panic(expected = "ascending order")]
    fn sparse_vec_rejects_unsorted_push() {
        let mut v = SparseVec::new();
        v.push(2, 1.0);
        v.push(1, 1.0);
    }

    #[test]
    fn sparse_vec_from_unsorted_merges() {
        let v = SparseVec::from_unsorted(vec![(3, 1.0), (0, 2.0), (3, -1.0), (1, 4.0)]);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![(0, 2.0), (1, 4.0)]);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut e = LinExpr::new();
        e += LinExpr::from(v(0));
        e += 2.0 * v(0) + 1.0;
        assert_eq!(e.coeff(v(0)), 3.0);
        assert_eq!(e.constant(), 1.0);
        e -= LinExpr::from(v(0)) * 3.0;
        assert_eq!(e.term_count(), 0);
    }
}
