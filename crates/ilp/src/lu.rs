//! Sparse LU factorization of the simplex basis with Forrest–Tomlin
//! updates.
//!
//! The basis matrix `B` of the revised simplex ([`crate::simplex`]) is
//! maintained as the product `B = F · H · V`:
//!
//! * **`F`** — the lower-triangular factor of the last refactorization,
//!   stored as a file of column etas (the Gaussian elimination
//!   multipliers). `F` is frozen between refactorizations.
//! * **`V`** — the permuted upper-triangular factor, stored **explicitly**
//!   in dual (column-wise + row-wise) form so Forrest–Tomlin can rewrite
//!   its columns and rows in place.
//! * **`H`** — a growing file of elementary *row* transformations, one
//!   appended per Forrest–Tomlin update, that re-triangularise `V` after
//!   a basis column is replaced.
//!
//! Refactorization ([`LuFactors::factorize`]) runs right-looking Gaussian
//! elimination with **Markowitz pivot ordering**: each pivot minimises the
//! fill-in proxy `(row_count − 1) · (col_count − 1)` over the active
//! submatrix, restricted to entries that pass the **threshold
//! partial-pivoting** test `|a| ≥ τ · max|column|` (τ =
//! [`PIVOT_THRESHOLD`]) so sparsity can never buy numerical garbage. The
//! search walks candidate columns in increasing active count and settles
//! after a few eligible columns (the Suhl–Suhl compromise), which keeps
//! ordering cost far below the elimination itself.
//!
//! A pivot ([`LuFactors::replace_column`]) applies the classic
//! Forrest–Tomlin rewrite: the leaving position's column of `V` is
//! replaced by the entering column's partial FTRAN (its *spike*), the
//! pivot's row/column pair moves to the back of the elimination order,
//! and the now off-diagonal entries of the freed pivot row are eliminated
//! with one appended `H` eta. The update **fails** — forcing the caller
//! to refactorize from the updated basis — when the resulting diagonal is
//! absolutely tiny ([`ABS_PIVOT_TOL`]) or small relative to the spike it
//! came from ([`REL_PIVOT_TOL`]): the Forrest–Tomlin stability test.
//! [`LuFactors::should_refactor`] additionally recommends a rebuild once
//! update-file growth makes FTRAN/BTRAN more expensive than a fresh
//! factorization would be — a fill-in policy, not a fixed cadence.
//!
//! Everything is deterministic: pivot ties break on larger magnitude and
//! then smaller indices, and all sweeps run in fixed order.

/// Threshold partial pivoting: an entry may be chosen as pivot only when
/// its magnitude is at least this fraction of the largest magnitude in
/// its active column. Higher is more stable, lower is sparser; 0.1 is the
/// textbook LP default.
pub const PIVOT_THRESHOLD: f64 = 0.1;
/// Pivots below this magnitude declare the basis numerically singular.
pub const ABS_PIVOT_TOL: f64 = 1e-10;
/// A Forrest–Tomlin update is rejected (→ refactorize) when the new
/// diagonal is smaller than this fraction of the spike's largest entry.
pub const REL_PIVOT_TOL: f64 = 1e-8;
/// Entries below this magnitude are dropped from factor files.
const DROP_TOL: f64 = 1e-12;
/// [`LuFactors::should_refactor`] triggers once the live fill (`V` plus
/// the `H` update file) exceeds this multiple of the fill right after the
/// last refactorization, plus a one-entry-per-row allowance.
const FILL_GROWTH_LIMIT: f64 = 3.0;
/// Hard cap on Forrest–Tomlin updates between refactorizations — a
/// drift backstop far above what the fill policy usually allows, so
/// long warm-start chains can run hundreds of updates on one factor.
const MAX_UPDATES: usize = 1024;
/// The Markowitz search settles after examining this many candidate
/// columns that hold at least one threshold-eligible entry.
const MARKOWITZ_SEARCH_COLS: usize = 4;

/// One column eta of the `F` factor: the multipliers that eliminated the
/// sub-pivot entries of one elimination step.
#[derive(Debug)]
struct ColEta {
    /// Pivot row of the elimination step.
    pivot_row: usize,
    /// `(row, multiplier)` for rows pivoted later than this step.
    entries: Vec<(usize, f64)>,
}

impl Clone for ColEta {
    fn clone(&self) -> Self {
        ColEta {
            pivot_row: self.pivot_row,
            entries: self.entries.clone(),
        }
    }

    // Reuses the eta's entry buffer (see [`LuFactors::clone_from`]).
    fn clone_from(&mut self, src: &Self) {
        self.pivot_row = src.pivot_row;
        self.entries.clone_from(&src.entries);
    }
}

impl ColEta {
    /// `v ← L_t⁻¹ v`.
    #[inline]
    fn ftran(&self, v: &mut [f64]) {
        let t = v[self.pivot_row];
        if t != 0.0 {
            for &(i, m) in &self.entries {
                v[i] -= m * t;
            }
        }
    }

    /// `v ← L_t⁻ᵀ v`.
    #[inline]
    fn btran(&self, v: &mut [f64]) {
        let mut acc = 0.0;
        for &(i, m) in &self.entries {
            acc += m * v[i];
        }
        v[self.pivot_row] -= acc;
    }
}

/// One row eta of the `H` update file: the row operation that eliminated
/// the freed pivot row after a Forrest–Tomlin column replacement.
#[derive(Debug)]
struct RowEta {
    /// The row that was re-triangularised.
    row: usize,
    /// `(other_row, multiplier)` pairs subtracted from `row`.
    entries: Vec<(usize, f64)>,
}

impl Clone for RowEta {
    fn clone(&self) -> Self {
        RowEta {
            row: self.row,
            entries: self.entries.clone(),
        }
    }

    // Reuses the eta's entry buffer (see [`LuFactors::clone_from`]).
    fn clone_from(&mut self, src: &Self) {
        self.row = src.row;
        self.entries.clone_from(&src.entries);
    }
}

impl RowEta {
    /// `v ← E v` (forward step): `v[row] -= Σ mult · v[other]`.
    #[inline]
    fn ftran(&self, v: &mut [f64]) {
        let mut acc = 0.0;
        for &(i, m) in &self.entries {
            acc += m * v[i];
        }
        v[self.row] -= acc;
    }

    /// `v ← Eᵀ v`: `v[other] -= mult · v[row]`.
    #[inline]
    fn btran(&self, v: &mut [f64]) {
        let t = v[self.row];
        if t != 0.0 {
            for &(i, m) in &self.entries {
                v[i] -= m * t;
            }
        }
    }
}

/// Cumulative factorization effort counters, exposed through the simplex
/// engine so branch-and-bound (and the `ablation`/bench consumers) can
/// report how the basis was maintained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FactorStats {
    /// Full Markowitz refactorizations performed.
    pub refactorizations: usize,
    /// Forrest–Tomlin updates applied in place.
    pub ft_updates: usize,
    /// Updates rejected by the stability test (each forces a
    /// refactorization).
    pub rejected_updates: usize,
    /// Largest `V`-plus-`H` fill (stored entries) seen so far.
    pub peak_fill: usize,
}

impl FactorStats {
    /// Merges `other` into `self` (aggregation across solves/probes).
    pub fn absorb(&mut self, other: &FactorStats) {
        self.refactorizations += other.refactorizations;
        self.ft_updates += other.ft_updates;
        self.rejected_updates += other.rejected_updates;
        self.peak_fill = self.peak_fill.max(other.peak_fill);
    }
}

/// Why a factorization or update could not be completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuError {
    /// The basis matrix is numerically singular (no acceptable pivot).
    Singular,
    /// The Forrest–Tomlin stability test failed; the factorization is
    /// left unusable and the caller must refactorize.
    UnstableUpdate,
}

/// A sparse LU factorization of one basis matrix, updatable in place by
/// Forrest–Tomlin column replacements.
///
/// The owner supplies basis columns through a callback at
/// [`LuFactors::factorize`] time and identifies columns by their **basis
/// position** (`0..m`) thereafter. [`LuFactors::ftran`] maps a dense
/// right-hand side to the solution indexed by basis position;
/// [`LuFactors::btran`] maps a position-indexed cost vector to row-indexed
/// simplex multipliers.
#[derive(Debug, Default)]
pub struct LuFactors {
    m: usize,
    /// Column etas of `F`, applied in append order for FTRAN.
    f_file: Vec<ColEta>,
    /// Row etas of `H`, applied in append order for FTRAN.
    h_file: Vec<RowEta>,
    /// `V` column-wise: `(row, value)` entries of each basis position,
    /// **excluding** the diagonal (kept in `vdiag`). Unordered.
    vcols: Vec<Vec<(usize, f64)>>,
    /// `V` row-wise mirror: `(position, value)` entries, no diagonals.
    vrows: Vec<Vec<(usize, f64)>>,
    /// Diagonal (pivot) value per basis position.
    vdiag: Vec<f64>,
    /// Elimination order: `order[t]` is the basis position pivoted at
    /// step `t` (solves sweep it forwards for `Vᵀ`, backwards for `V`).
    order: Vec<usize>,
    /// Inverse of `order`.
    step_of: Vec<usize>,
    /// Pivot row of each basis position.
    pivot_row_of: Vec<usize>,
    /// Whether a usable factorization is loaded.
    valid: bool,
    /// `V`+`H` stored entries right after the last refactorization.
    base_fill: usize,
    /// Live `V` entry count (diagonals included), kept incrementally.
    v_fill: usize,
    /// Live `H` entry count.
    h_fill: usize,
    /// Forrest–Tomlin updates applied since the last refactorization
    /// (some leave no `H` eta, so this is not `h_file.len()`).
    updates_since: usize,
    /// Dense scratch for the solve permutations.
    scratch: Vec<f64>,
    stats: FactorStats,
}

impl Clone for LuFactors {
    fn clone(&self) -> Self {
        let mut c = LuFactors::default();
        c.clone_from(self);
        c
    }

    /// Allocation-reusing deep copy: the simplex engine snapshots the
    /// factorization before every dual walk and rolls it back after, so
    /// this runs once per warm branch-and-bound node — `Vec::clone_from`
    /// keeps the eta/`V` buffers (outer and inner) instead of
    /// reallocating them each time.
    fn clone_from(&mut self, src: &Self) {
        self.m = src.m;
        self.f_file.clone_from(&src.f_file);
        self.h_file.clone_from(&src.h_file);
        self.vcols.clone_from(&src.vcols);
        self.vrows.clone_from(&src.vrows);
        self.vdiag.clone_from(&src.vdiag);
        self.order.clone_from(&src.order);
        self.step_of.clone_from(&src.step_of);
        self.pivot_row_of.clone_from(&src.pivot_row_of);
        self.valid = src.valid;
        self.base_fill = src.base_fill;
        self.v_fill = src.v_fill;
        self.h_fill = src.h_fill;
        self.updates_since = src.updates_since;
        self.scratch.clone_from(&src.scratch);
        self.stats = src.stats;
    }
}

impl LuFactors {
    /// An empty factorization; call [`LuFactors::factorize`] before
    /// solving.
    pub fn new() -> Self {
        LuFactors::default()
    }

    /// Cumulative effort counters (never reset by refactorization).
    pub fn stats(&self) -> FactorStats {
        self.stats
    }

    /// Whether a usable factorization is currently loaded.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Forrest–Tomlin updates applied since the last refactorization.
    pub fn updates_since_refactor(&self) -> usize {
        self.updates_since
    }

    /// Whether the fill-in policy recommends a rebuild: the live factor
    /// fill has grown past `FILL_GROWTH_LIMIT` times the
    /// post-refactorization fill (plus one entry per row of slack), or
    /// the update count hit the `MAX_UPDATES` drift backstop. Unlike
    /// the product-form eta file this module replaces, triggering is a
    /// *cost* decision — the factorization stays numerically valid either
    /// way.
    pub fn should_refactor(&self) -> bool {
        self.updates_since >= MAX_UPDATES
            || (self.v_fill + self.h_fill) as f64
                > FILL_GROWTH_LIMIT * self.base_fill as f64 + self.m as f64
    }

    /// Factorizes the `m × m` basis whose column at position `p` is
    /// produced by `column(p, &mut buf)` (pushing `(row, value)` entries,
    /// duplicates pre-summed). Replaces any previous factorization.
    ///
    /// # Errors
    ///
    /// [`LuError::Singular`] when some elimination step finds no
    /// acceptable pivot; the factorization is left unusable.
    pub fn factorize(
        &mut self,
        m: usize,
        mut column: impl FnMut(usize, &mut Vec<(usize, f64)>),
    ) -> Result<(), LuError> {
        self.m = m;
        self.valid = false;
        self.f_file.clear();
        self.h_file.clear();
        self.stats.refactorizations += 1;

        // Active working matrix in dual form. Deleted entries are
        // swap-removed; order within a list is irrelevant.
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        let mut buf: Vec<(usize, f64)> = Vec::new();
        for (p, col) in cols.iter_mut().enumerate() {
            buf.clear();
            column(p, &mut buf);
            for &(r, v) in &buf {
                debug_assert!(r < m, "column {p} references row {r} of {m}");
                if v != 0.0 {
                    col.push((r, v));
                    rows[r].push((p, v));
                }
            }
        }

        let mut col_active = vec![true; m];
        let mut row_active = vec![true; m];
        self.vcols = vec![Vec::new(); m];
        self.vrows = vec![Vec::new(); m];
        self.vdiag = vec![0.0; m];
        self.order.clear();
        self.step_of = vec![usize::MAX; m];
        self.pivot_row_of = vec![usize::MAX; m];
        self.scratch.clear();
        self.scratch.resize(m, 0.0);
        self.v_fill = 0;
        self.h_fill = 0;
        self.updates_since = 0;

        for _step in 0..m {
            let Some((pr, pc)) = markowitz_pivot(&cols, &rows, &col_active) else {
                return Err(LuError::Singular);
            };
            let pivot_val = cols[pc]
                .iter()
                .find(|&&(r, _)| r == pr)
                .map(|&(_, v)| v)
                .expect("chosen pivot entry exists");

            col_active[pc] = false;
            row_active[pr] = false;
            self.step_of[pc] = self.order.len();
            self.order.push(pc);
            self.pivot_row_of[pc] = pr;
            self.vdiag[pc] = pivot_val;
            self.v_fill += 1;

            // Freeze row pr: its remaining active entries become the V
            // row; drop them from the active columns.
            let urow: Vec<(usize, f64)> = rows[pr]
                .iter()
                .filter(|&&(c, _)| col_active[c])
                .map(|&(c, v)| (c, v))
                .collect();
            for &(c, v) in &urow {
                remove_entry(&mut cols[c], pr);
                self.vcols[c].push((pr, v));
                self.vrows[pr].push((c, v));
                self.v_fill += 1;
            }
            rows[pr].clear();

            // Multipliers for the still-active entries of column pc.
            let mults: Vec<(usize, f64)> = cols[pc]
                .iter()
                .filter(|&&(r, _)| row_active[r])
                .map(|&(r, v)| (r, v / pivot_val))
                .collect();
            for &(r, _) in &mults {
                remove_entry(&mut rows[r], pc);
            }
            cols[pc].clear();

            // Right-looking update over the active submatrix:
            // row_i -= mult_i × row_pr, generating fill-in.
            for &(c, u) in &urow {
                for &(r, mlt) in &mults {
                    add_to_entry(&mut cols[c], r, -mlt * u, &mut rows[r], c);
                }
            }
            if !mults.is_empty() {
                self.f_file.push(ColEta {
                    pivot_row: pr,
                    entries: mults,
                });
            }
        }
        self.base_fill = self.v_fill;
        self.stats.peak_fill = self.stats.peak_fill.max(self.v_fill);
        self.valid = true;
        Ok(())
    }

    /// `v ← B⁻¹ v` (dense, row-indexed in, **basis-position**-indexed
    /// out). `spike`, when supplied, receives the partial transform
    /// `H⁻¹F⁻¹ v` — exactly the vector a subsequent
    /// [`LuFactors::replace_column`] for this column needs.
    pub fn ftran(&mut self, v: &mut [f64], spike: Option<&mut Vec<f64>>) {
        debug_assert!(self.valid, "ftran on an invalid factorization");
        debug_assert_eq!(v.len(), self.m);
        for eta in &self.f_file {
            eta.ftran(v);
        }
        for eta in &self.h_file {
            eta.ftran(v);
        }
        if let Some(s) = spike {
            s.clear();
            s.extend_from_slice(v);
        }
        // Back substitution V x = v over the elimination order; x for the
        // position pivoted on row r accumulates at v[r].
        for t in (0..self.m).rev() {
            let p = self.order[t];
            let r = self.pivot_row_of[p];
            let xv = v[r] / self.vdiag[p];
            if xv != 0.0 {
                for &(row, val) in &self.vcols[p] {
                    v[row] -= val * xv;
                }
            }
            v[r] = xv;
        }
        // Permute row-indexed solution entries onto basis positions.
        self.scratch.copy_from_slice(v);
        for (vp, &row) in v.iter_mut().zip(&self.pivot_row_of) {
            *vp = self.scratch[row];
        }
    }

    /// `v ← B⁻ᵀ v` (dense, **basis-position**-indexed in, row-indexed
    /// out — the simplex-multiplier convention `y = B⁻ᵀ c_B`).
    pub fn btran(&mut self, v: &mut [f64]) {
        debug_assert!(self.valid, "btran on an invalid factorization");
        debug_assert_eq!(v.len(), self.m);
        // Forward substitution Vᵀ z = v over the elimination order; the
        // input is read per position, the output lands per row, so the
        // result accumulates in scratch.
        for t in 0..self.m {
            let p = self.order[t];
            let r = self.pivot_row_of[p];
            let mut acc = v[p];
            for &(row, val) in &self.vcols[p] {
                acc -= val * self.scratch[row];
            }
            self.scratch[r] = acc / self.vdiag[p];
        }
        v.copy_from_slice(&self.scratch);
        for eta in self.h_file.iter().rev() {
            eta.btran(v);
        }
        for eta in self.f_file.iter().rev() {
            eta.btran(v);
        }
    }

    /// Forrest–Tomlin update: the basis column at position `p` is
    /// replaced by the column whose partial FTRAN (`H⁻¹F⁻¹ a`, captured
    /// by [`LuFactors::ftran`]) is `spike`.
    ///
    /// # Errors
    ///
    /// [`LuError::UnstableUpdate`] when the re-triangularised diagonal
    /// fails the stability test; the factorization is unusable afterwards
    /// and the caller must refactorize from the updated basis.
    pub fn replace_column(&mut self, p: usize, spike: &[f64]) -> Result<(), LuError> {
        debug_assert!(self.valid, "update on an invalid factorization");
        debug_assert_eq!(spike.len(), self.m);
        let t = self.step_of[p];
        let r = self.pivot_row_of[p];

        // Drop column p's current entries from the row mirror.
        self.v_fill -= 1 + self.vcols[p].len();
        let old_col = std::mem::take(&mut self.vcols[p]);
        for (row, _) in old_col {
            remove_entry(&mut self.vrows[row], p);
        }

        // Install the spike as the new column p, diagonal split off.
        let mut spike_max = 0.0f64;
        let mut diag = 0.0;
        for (row, &val) in spike.iter().enumerate() {
            if val.abs() <= DROP_TOL {
                continue;
            }
            spike_max = spike_max.max(val.abs());
            if row == r {
                diag = val;
            } else {
                self.vcols[p].push((row, val));
                self.vrows[row].push((p, val));
                self.v_fill += 1;
            }
        }
        self.v_fill += 1;

        // Move position p to the back of the elimination order.
        for s in t..self.m - 1 {
            self.order[s] = self.order[s + 1];
            self.step_of[self.order[s]] = s;
        }
        self.order[self.m - 1] = p;
        self.step_of[p] = self.m - 1;

        // Row r is no longer pivoted early: eliminate its entries in all
        // columns now ordered before p, sweeping in elimination order so
        // each step only creates fill in columns processed later. The
        // multipliers become one appended H eta.
        let mut eta_entries: Vec<(usize, f64)> = Vec::new();
        for s in t..self.m - 1 {
            let c = self.order[s];
            let Some(idx) = self.vrows[r].iter().position(|&(pos, _)| pos == c) else {
                continue;
            };
            let val = self.vrows[r][idx].1;
            self.vrows[r].swap_remove(idx);
            remove_entry(&mut self.vcols[c], r);
            self.v_fill -= 1;
            let mult = val / self.vdiag[c];
            if mult.abs() <= DROP_TOL {
                continue;
            }
            // row r -= mult × (pivot row of c), which lives in columns
            // ordered after c plus the spike column p.
            let pr_c = self.pivot_row_of[c];
            let updates = self.vrows[pr_c].clone();
            for (c2, u) in updates {
                if c2 == p {
                    continue; // the spike's pr_c entry feeds the diagonal
                }
                add_to_entry_v(
                    &mut self.vrows[r],
                    c2,
                    -mult * u,
                    &mut self.vcols[c2],
                    r,
                    &mut self.v_fill,
                );
            }
            if let Some(&(_, sv)) = self.vcols[p].iter().find(|&&(row, _)| row == pr_c) {
                diag -= mult * sv;
            }
            eta_entries.push((pr_c, mult));
        }

        // Stability test on the re-triangularised diagonal (Forrest–
        // Tomlin): absolute floor plus a relative test against the spike.
        if diag.abs() <= ABS_PIVOT_TOL || diag.abs() < REL_PIVOT_TOL * spike_max {
            self.stats.rejected_updates += 1;
            self.valid = false;
            return Err(LuError::UnstableUpdate);
        }
        if !eta_entries.is_empty() {
            self.h_fill += eta_entries.len();
            self.h_file.push(RowEta {
                row: r,
                entries: eta_entries,
            });
        }
        self.vdiag[p] = diag;
        self.updates_since += 1;
        self.stats.ft_updates += 1;
        self.stats.peak_fill = self.stats.peak_fill.max(self.v_fill + self.h_fill);
        Ok(())
    }
}

/// Removes the entry keyed `key` from `list` if present (at most once);
/// list order is not preserved.
#[inline]
fn remove_entry(list: &mut Vec<(usize, f64)>, key: usize) {
    if let Some(idx) = list.iter().position(|&(k, _)| k == key) {
        list.swap_remove(idx);
    }
}

/// Adds `delta` to the `row` entry of active column `col`, mirroring into
/// `row_list` (keyed by `col_key`); creates the entry on fill-in and
/// drops it on cancellation, keeping the Markowitz counts honest.
#[inline]
fn add_to_entry(
    col: &mut Vec<(usize, f64)>,
    row: usize,
    delta: f64,
    row_list: &mut Vec<(usize, f64)>,
    col_key: usize,
) {
    if let Some(idx) = col.iter().position(|&(r, _)| r == row) {
        let nv = col[idx].1 + delta;
        if nv.abs() <= DROP_TOL {
            col.swap_remove(idx);
            remove_entry(row_list, col_key);
        } else {
            col[idx].1 = nv;
            if let Some(re) = row_list.iter_mut().find(|(c, _)| *c == col_key) {
                re.1 = nv;
            }
        }
    } else if delta.abs() > DROP_TOL {
        col.push((row, delta));
        row_list.push((col_key, delta));
    }
}

/// [`add_to_entry`] for the `V` mirrors (row-major primary), tracking
/// fill.
#[inline]
fn add_to_entry_v(
    row_list: &mut Vec<(usize, f64)>,
    col_key: usize,
    delta: f64,
    col: &mut Vec<(usize, f64)>,
    row: usize,
    fill: &mut usize,
) {
    if let Some(idx) = row_list.iter().position(|&(c, _)| c == col_key) {
        let nv = row_list[idx].1 + delta;
        if nv.abs() <= DROP_TOL {
            row_list.swap_remove(idx);
            remove_entry(col, row);
            *fill -= 1;
        } else {
            row_list[idx].1 = nv;
            if let Some(ce) = col.iter_mut().find(|(r, _)| *r == row) {
                ce.1 = nv;
            }
        }
    } else if delta.abs() > DROP_TOL {
        row_list.push((col_key, delta));
        col.push((row, delta));
        *fill += 1;
    }
}

/// Markowitz pivot search over the active submatrix: the entry
/// minimising `(row_count − 1)(col_count − 1)` among threshold-eligible
/// entries, scanning columns in increasing active count and settling
/// after [`MARKOWITZ_SEARCH_COLS`] eligible columns (or immediately on a
/// zero-cost pivot). Ties break on larger magnitude, then smaller
/// `(row, col)`.
fn markowitz_pivot(
    cols: &[Vec<(usize, f64)>],
    rows: &[Vec<(usize, f64)>],
    col_active: &[bool],
) -> Option<(usize, usize)> {
    // Bucket the active columns by count (count 0 ⇒ structurally
    // singular: unreachable as a pivot, surfaces as `None` at the end).
    let mut buckets: Vec<Vec<usize>> = Vec::new();
    for (c, col) in cols.iter().enumerate() {
        if !col_active[c] || col.is_empty() {
            continue;
        }
        let count = col.len();
        if buckets.len() < count {
            buckets.resize(count, Vec::new());
        }
        buckets[count - 1].push(c);
    }
    let mut best: Option<(usize, usize)> = None;
    let mut best_cost = usize::MAX;
    let mut best_mag = 0.0f64;
    let mut examined = 0usize;
    for bucket in &buckets {
        for &c in bucket {
            let col = &cols[c];
            let col_max = col.iter().map(|&(_, v)| v.abs()).fold(0.0f64, f64::max);
            if col_max <= ABS_PIVOT_TOL {
                continue;
            }
            let mut found_any = false;
            for &(r, v) in col {
                if v.abs() < PIVOT_THRESHOLD * col_max || v.abs() <= ABS_PIVOT_TOL {
                    continue;
                }
                found_any = true;
                let cost = (rows[r].len() - 1) * (col.len() - 1);
                let better = match best {
                    None => true,
                    Some((br, bc)) => {
                        cost < best_cost
                            || (cost == best_cost
                                && (v.abs() > best_mag
                                    || (v.abs() == best_mag && (r, c) < (br, bc))))
                    }
                };
                if better {
                    best = Some((r, c));
                    best_cost = cost;
                    best_mag = v.abs();
                }
            }
            if found_any {
                examined += 1;
                if best_cost == 0 || examined >= MARKOWITZ_SEARCH_COLS {
                    return best;
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense m×m reference: columns by position.
    fn dense_from(cols: &[Vec<(usize, f64)>], m: usize) -> Vec<Vec<f64>> {
        let mut a = vec![vec![0.0; m]; m];
        for (p, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                a[r][p] += v;
            }
        }
        a
    }

    fn mat_vec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        a.iter()
            .map(|row| row.iter().zip(x).map(|(r, v)| r * v).sum())
            .collect()
    }

    fn mat_t_vec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        let m = a.len();
        (0..m)
            .map(|j| (0..m).map(|i| a[i][j] * x[i]).sum())
            .collect()
    }

    fn factorize_cols(lu: &mut LuFactors, cols: &[Vec<(usize, f64)>]) -> Result<(), LuError> {
        let m = cols.len();
        lu.factorize(m, |p, buf| buf.extend_from_slice(&cols[p]))
    }

    /// FTRAN/BTRAN of `lu` must invert the dense reference on a basis of
    /// unit vectors.
    fn check_inverse(lu: &mut LuFactors, a: &[Vec<f64>]) {
        let m = a.len();
        for k in 0..m {
            // ftran: B x = e_k  ⇒  B x must reproduce e_k.
            let mut v = vec![0.0; m];
            v[k] = 1.0;
            lu.ftran(&mut v, None);
            let back = mat_vec(a, &v);
            for (i, &b) in back.iter().enumerate() {
                let expect = if i == k { 1.0 } else { 0.0 };
                assert!(
                    (b - expect).abs() < 1e-8,
                    "ftran residual at ({i},{k}): {b} vs {expect}"
                );
            }
            // btran: Bᵀ y = e_k  ⇒  Bᵀ y must reproduce e_k.
            let mut v = vec![0.0; m];
            v[k] = 1.0;
            lu.btran(&mut v);
            let back = mat_t_vec(a, &v);
            for (i, &b) in back.iter().enumerate() {
                let expect = if i == k { 1.0 } else { 0.0 };
                assert!(
                    (b - expect).abs() < 1e-8,
                    "btran residual at ({i},{k}): {b} vs {expect}"
                );
            }
        }
    }

    /// Deterministic pseudo-random stream (SplitMix64) for test matrices.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A random sparse nonsingular matrix: identity diagonal plus a few
    /// off-diagonal entries.
    fn random_cols(m: usize, extra: usize, seed: u64) -> Vec<Vec<(usize, f64)>> {
        let mut s = seed;
        let mut cols: Vec<Vec<(usize, f64)>> = (0..m).map(|p| vec![(p, 2.0)]).collect();
        for _ in 0..extra {
            let r = (splitmix(&mut s) % m as u64) as usize;
            let c = (splitmix(&mut s) % m as u64) as usize;
            if r == c {
                continue;
            }
            let v = ((splitmix(&mut s) % 9) as f64 - 4.0) / 4.0;
            if v != 0.0 && !cols[c].iter().any(|&(row, _)| row == r) {
                cols[c].push((r, v));
            }
        }
        cols
    }

    #[test]
    fn identity_round_trip() {
        let cols: Vec<Vec<(usize, f64)>> = (0..5).map(|p| vec![(p, 1.0)]).collect();
        let mut lu = LuFactors::new();
        factorize_cols(&mut lu, &cols).unwrap();
        let mut v = vec![3.0, -1.0, 0.5, 2.0, 7.0];
        let orig = v.clone();
        lu.ftran(&mut v, None);
        assert_eq!(v, orig);
        lu.btran(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn permuted_diagonal_solves() {
        // Columns are scaled unit vectors in scrambled row order: pure
        // permutation handling, no elimination at all.
        let rows = [2usize, 0, 3, 1];
        let cols: Vec<Vec<(usize, f64)>> = rows
            .iter()
            .enumerate()
            .map(|(p, &r)| vec![(r, (p + 1) as f64)])
            .collect();
        let a = dense_from(&cols, 4);
        let mut lu = LuFactors::new();
        factorize_cols(&mut lu, &cols).unwrap();
        check_inverse(&mut lu, &a);
    }

    #[test]
    fn random_sparse_matrices_invert() {
        for seed in 0..20u64 {
            let m = 3 + (seed % 8) as usize;
            let cols = random_cols(m, 3 * m, 0xC0FFEE ^ seed);
            let a = dense_from(&cols, m);
            let mut lu = LuFactors::new();
            factorize_cols(&mut lu, &cols).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            check_inverse(&mut lu, &a);
        }
    }

    #[test]
    fn singular_matrix_detected() {
        // Two identical columns.
        let cols = vec![vec![(0, 1.0), (1, 1.0)], vec![(0, 1.0), (1, 1.0)]];
        let mut lu = LuFactors::new();
        assert_eq!(factorize_cols(&mut lu, &cols), Err(LuError::Singular));
        assert!(!lu.is_valid());
        // Structurally empty column.
        let cols = vec![vec![(0, 1.0), (1, 1.0)], vec![]];
        assert_eq!(factorize_cols(&mut lu, &cols), Err(LuError::Singular));
    }

    #[test]
    fn forrest_tomlin_matches_refactorization() {
        // Apply a chain of column replacements via FT updates and check
        // the solves against a fresh factorization of the same matrix
        // after every step.
        let m = 7;
        let mut cols = random_cols(m, 2 * m, 0xFEED);
        let mut lu = LuFactors::new();
        factorize_cols(&mut lu, &cols).unwrap();
        let mut s = 0xF00Du64;
        for step in 0..24 {
            let p = (splitmix(&mut s) % m as u64) as usize;
            // New column: diagonal-dominant so updates stay acceptable.
            let mut newcol = vec![(p, 3.0 + f64::from(step % 3))];
            let r = (splitmix(&mut s) % m as u64) as usize;
            if r != p {
                newcol.push((r, 1.0 - f64::from(step % 5) / 2.0));
            }
            // Spike = H⁻¹F⁻¹ a, captured through a full FTRAN.
            let mut dense = vec![0.0; m];
            for &(row, v) in &newcol {
                dense[row] += v;
            }
            let mut spike = Vec::new();
            lu.ftran(&mut dense, Some(&mut spike));
            lu.replace_column(p, &spike)
                .unwrap_or_else(|e| panic!("step {step}: {e:?}"));
            cols[p] = newcol;
            let a = dense_from(&cols, m);
            check_inverse(&mut lu, &a);
        }
        assert_eq!(lu.stats().ft_updates, 24);
        assert_eq!(lu.stats().refactorizations, 1);
        assert_eq!(lu.updates_since_refactor(), 24);
    }

    #[test]
    fn hundreds_of_updates_without_refactorization() {
        // The drift backstop is deliberately high: a long well-behaved
        // warm-start chain must be able to push hundreds of
        // Forrest–Tomlin updates through one factorization and stay
        // exact against the dense reference.
        let m = 10;
        let mut cols = random_cols(m, 2 * m, 0x1E57);
        let mut lu = LuFactors::new();
        factorize_cols(&mut lu, &cols).unwrap();
        let mut s = 0xCAFEu64;
        for step in 0..300 {
            let p = (splitmix(&mut s) % m as u64) as usize;
            let mut newcol = vec![(p, 2.5 + f64::from(step % 4) / 2.0)];
            let r = (splitmix(&mut s) % m as u64) as usize;
            if r != p {
                newcol.push((r, 1.0 - f64::from(step % 3) / 2.0));
            }
            let mut dense = vec![0.0; m];
            for &(row, v) in &newcol {
                dense[row] += v;
            }
            let mut spike = Vec::new();
            lu.ftran(&mut dense, Some(&mut spike));
            lu.replace_column(p, &spike)
                .unwrap_or_else(|e| panic!("step {step}: {e:?}"));
            cols[p] = newcol;
            // Full inverse checks are O(m²); sample the chain.
            if step % 25 == 24 || step == 299 {
                let a = dense_from(&cols, m);
                check_inverse(&mut lu, &a);
            }
        }
        assert_eq!(lu.stats().refactorizations, 1, "no intervening rebuild");
        assert_eq!(lu.stats().ft_updates, 300);
        assert_eq!(lu.updates_since_refactor(), 300);
    }

    #[test]
    fn unstable_update_rejected() {
        // Replacing a column with (almost) a copy of another column makes
        // the basis singular; the FT stability test must refuse rather
        // than produce a garbage factorization.
        let cols = vec![vec![(0, 1.0)], vec![(1, 1.0)], vec![(2, 1.0)]];
        let mut lu = LuFactors::new();
        factorize_cols(&mut lu, &cols).unwrap();
        // New column 2 := e_1 (duplicates column 1).
        let mut dense = vec![0.0, 1.0, 0.0];
        let mut spike = Vec::new();
        lu.ftran(&mut dense, Some(&mut spike));
        assert_eq!(lu.replace_column(2, &spike), Err(LuError::UnstableUpdate));
        assert!(!lu.is_valid());
        assert_eq!(lu.stats().rejected_updates, 1);
    }

    #[test]
    fn fill_policy_eventually_requests_refactorization() {
        // Dense-ish replacement columns grow V fill until the policy
        // trips; it must not trip right after a fresh factorization.
        let m = 6;
        let cols = random_cols(m, m, 0xABCD);
        let mut lu = LuFactors::new();
        factorize_cols(&mut lu, &cols).unwrap();
        assert!(!lu.should_refactor(), "fresh factorization must be clean");
        let mut s = 0x5EEDu64;
        let mut tripped = false;
        for _ in 0..512 {
            let p = (splitmix(&mut s) % m as u64) as usize;
            // A dense column: every row populated.
            let mut dense: Vec<f64> = (0..m)
                .map(|i| {
                    1.0 + ((splitmix(&mut s) % 7) as f64) / 4.0 + if i == p { 3.0 } else { 0.0 }
                })
                .collect();
            let mut spike = Vec::new();
            lu.ftran(&mut dense, Some(&mut spike));
            if lu.replace_column(p, &spike).is_err() {
                factorize_cols(&mut lu, &random_cols(m, m, s)).unwrap();
                continue;
            }
            if lu.should_refactor() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "fill/update policy never requested a rebuild");
    }
}
