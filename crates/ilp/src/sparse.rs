//! Compressed sparse column (CSC) storage for the constraint matrix.
//!
//! The path-cover LPs are extremely sparse — each structural column
//! touches a handful of degree/flow/cover rows — so the revised simplex
//! in [`crate::simplex`] works on a [`CscMatrix`] instead of a dense
//! tableau. Columns are assembled either directly from sorted sparse
//! columns ([`CscMatrix::from_columns`]) or from row-major triplets
//! ([`CscMatrix::from_triplets`], used when converting the row-wise
//! [`crate::Model`]/[`crate::simplex::LpProblem`] forms).

use crate::expr::SparseVec;

/// An immutable sparse matrix in compressed-sparse-column form.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    /// `col_ptr[j]..col_ptr[j + 1]` indexes the entries of column `j`.
    col_ptr: Vec<usize>,
    /// Row index of each entry, ascending within a column.
    row_idx: Vec<usize>,
    /// Value of each entry.
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds the matrix from one [`SparseVec`] per column.
    ///
    /// # Panics
    ///
    /// Panics if a column references a row `>= nrows`.
    pub fn from_columns(nrows: usize, columns: &[SparseVec]) -> Self {
        let nnz = columns.iter().map(SparseVec::nnz).sum();
        let mut m = CscMatrix {
            nrows,
            ncols: columns.len(),
            col_ptr: Vec::with_capacity(columns.len() + 1),
            row_idx: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
        };
        m.col_ptr.push(0);
        for col in columns {
            for (row, value) in col.iter() {
                assert!(row < nrows, "row {row} out of bounds for {nrows} rows");
                m.row_idx.push(row);
                m.values.push(value);
            }
            m.col_ptr.push(m.row_idx.len());
        }
        m
    }

    /// Builds the matrix from `(row, col, value)` triplets in any order;
    /// duplicate coordinates are summed, exact zeros dropped.
    ///
    /// # Panics
    ///
    /// Panics if a triplet lies outside the `nrows × ncols` shape.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &mut [(usize, usize, f64)]) -> Self {
        triplets.sort_unstable_by_key(|&(r, c, _)| (c, r));
        let mut col_ptr = Vec::with_capacity(ncols + 1);
        let mut row_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        col_ptr.push(0);
        let mut col = 0usize;
        let mut i = 0usize;
        while i < triplets.len() {
            let (r, c, mut v) = triplets[i];
            assert!(r < nrows && c < ncols, "triplet ({r}, {c}) out of bounds");
            while col < c {
                col_ptr.push(row_idx.len());
                col += 1;
            }
            i += 1;
            while i < triplets.len() && triplets[i].0 == r && triplets[i].1 == c {
                v += triplets[i].2;
                i += 1;
            }
            if v != 0.0 {
                row_idx.push(r);
                values.push(v);
            }
        }
        while col < ncols {
            col_ptr.push(row_idx.len());
            col += 1;
        }
        CscMatrix {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(row, value)` entries of column `j`, row-ascending.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols`.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.col_ptr[j]..self.col_ptr[j + 1];
        self.row_idx[range.clone()]
            .iter()
            .zip(&self.values[range])
            .map(|(&r, &v)| (r, v))
    }

    /// Number of stored entries in column `j`.
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Sparse dot product of column `j` with a dense vector.
    pub fn col_dot(&self, j: usize, dense: &[f64]) -> f64 {
        self.col(j).map(|(r, v)| v * dense[r]).sum()
    }

    /// The transposed matrix — i.e. the CSR mirror of `self`: column `i`
    /// of the result is row `i` of `self`. The revised simplex keeps one
    /// alongside the CSC form so row-wise sweeps (the Devex pivot-row
    /// update) can skip columns that do not intersect a sparse row
    /// support.
    pub fn transpose(&self) -> CscMatrix {
        let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(self.nnz());
        for j in 0..self.ncols {
            for (i, v) in self.col(j) {
                triplets.push((j, i, v));
            }
        }
        CscMatrix::from_triplets(self.ncols, self.nrows, &mut triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_sort_merge_and_drop_zeros() {
        let mut t = vec![
            (2, 1, 4.0),
            (0, 0, 1.0),
            (1, 1, 2.0),
            (2, 1, -4.0), // cancels
            (0, 3, 5.0),
        ];
        let m = CscMatrix::from_triplets(3, 4, &mut t);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![(0, 1.0)]);
        assert_eq!(m.col(1).collect::<Vec<_>>(), vec![(1, 2.0)]);
        assert!(m.col(2).next().is_none());
        assert_eq!(m.col(3).collect::<Vec<_>>(), vec![(0, 5.0)]);
    }

    #[test]
    fn from_columns_round_trips() {
        let mut a = SparseVec::new();
        a.push(0, 1.0);
        a.push(2, -3.0);
        let b = SparseVec::new();
        let m = CscMatrix::from_columns(3, &[a, b]);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, -3.0)]);
        assert_eq!(m.col_nnz(1), 0);
    }

    #[test]
    fn col_dot_matches_dense() {
        let mut t = vec![(0, 0, 2.0), (2, 0, 1.0)];
        let m = CscMatrix::from_triplets(3, 1, &mut t);
        assert_eq!(m.col_dot(0, &[1.0, 9.0, 4.0]), 6.0);
    }

    #[test]
    fn transpose_mirrors_rows_as_columns() {
        let mut t = vec![(0, 0, 1.0), (2, 0, -3.0), (0, 1, 5.0)];
        let m = CscMatrix::from_triplets(3, 2, &mut t);
        let r = m.transpose();
        assert_eq!((r.nrows(), r.ncols()), (2, 3));
        assert_eq!(r.col(0).collect::<Vec<_>>(), vec![(0, 1.0), (1, 5.0)]);
        assert!(r.col(1).next().is_none());
        assert_eq!(r.col(2).collect::<Vec<_>>(), vec![(0, -3.0)]);
    }
}
