//! Solver results.

use crate::expr::VarId;
use std::time::Duration;

/// Final status of a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// The returned solution is proven optimal.
    Optimal,
    /// A feasible solution was found but optimality was not proven before a
    /// node/time limit was reached.
    Feasible,
    /// The model has no feasible assignment.
    Infeasible,
    /// The relaxation is unbounded in the optimisation direction.
    Unbounded,
    /// A limit was reached before any feasible solution was found.
    Unknown,
}

/// Search statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolveStats {
    /// Branch-and-bound nodes processed.
    pub nodes: usize,
    /// Nodes whose LP relaxation was abandoned on a time or iteration
    /// limit. These nodes are **not** explored: their subtrees are pruned
    /// without a bound, so any "Infeasible"/"Feasible" verdict with
    /// `limit_nodes > 0` is unproven (the outcome status already reflects
    /// that). Consumers attributing ILP-vs-heuristic quality should treat
    /// `limit_nodes > 0` as "the solver ran out of budget", not "the
    /// model was explored".
    pub limit_nodes: usize,
    /// Total simplex pivots across all LP relaxations.
    pub lp_iterations: usize,
    /// Full basis refactorizations (Markowitz sparse LU rebuilds)
    /// performed by the persistent simplex engine across all nodes.
    pub refactorizations: usize,
    /// Forrest–Tomlin basis updates applied in place (the cheap per-pivot
    /// path; see [`refactorizations`](Self::refactorizations) for the
    /// expensive one).
    pub ft_updates: usize,
    /// Forrest–Tomlin updates rejected by the stability test (each
    /// forces a refactorization; a high count signals an
    /// ill-conditioned relaxation).
    pub rejected_updates: usize,
    /// Dual simplex pivots across all warm re-solves: child nodes whose
    /// parent basis stayed dual feasible after the branching bound change
    /// restore feasibility dually instead of restarting primal phase 1.
    pub dual_pivots: usize,
    /// Node LP solves that started from a usable warm basis (the engine
    /// either reused its live factorization or installed the snapshot).
    pub warm_resolves: usize,
    /// Node LP solves whose supplied warm basis was rejected as stale or
    /// inconsistent, forcing a cold start from the slack basis. Should
    /// stay at (or near) zero — a nonzero count means parent snapshots
    /// are being invalidated somewhere.
    pub cold_restarts: usize,
    /// Constraints eliminated by the root presolve pass (zero when
    /// presolve is disabled via `MilpOptions::presolve`).
    pub presolve_rows: usize,
    /// Variables eliminated by the root presolve pass (fixed or
    /// substituted out; restored transparently in reported solutions).
    pub presolve_cols: usize,
    /// Variable bounds tightened by the root presolve pass.
    pub presolve_tightenings: usize,
    /// Integer bounds tightened by per-node propagation across all
    /// branch-and-bound nodes.
    pub node_tightenings: usize,
    /// Nodes pruned by per-node propagation alone — their LP relaxation
    /// was never solved.
    pub propagation_prunes: usize,
    /// Footprint of the root static-analysis pass (conflict graph,
    /// probing, symmetry orbits); all zeros when analysis is disabled
    /// via `MilpOptions::analyze`.
    pub analysis: crate::analyze::AnalysisStats,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
    /// Best proven bound on the optimum (in the model's sense); equals the
    /// incumbent objective when status is [`SolveStatus::Optimal`].
    pub best_bound: f64,
}

/// A feasible (integer) assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Objective value in the model's optimisation sense.
    pub objective: f64,
    pub(crate) values: Vec<f64>,
}

impl Solution {
    /// Value assigned to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the solved model.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }

    /// Value of `v` rounded to the nearest integer — use for integer and
    /// binary variables.
    ///
    /// In debug builds this asserts the stored value is within
    /// integrality tolerance (`1e-6`) of the returned integer, so a call
    /// on a genuinely fractional (continuous) value fails loudly instead
    /// of silently rounding.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the solved model, or (debug
    /// builds only) if the stored value is more than `1e-6` away from
    /// the nearest integer.
    pub fn value_int(&self, v: VarId) -> i64 {
        let raw = self.values[v.index()];
        let nearest = raw.round();
        debug_assert!(
            (raw - nearest).abs() <= 1e-6,
            "value_int on a fractional value: variable {} holds {raw}",
            v.index()
        );
        nearest as i64
    }

    /// `true` when binary/integer variable `v` rounds to a non-zero value.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the solved model.
    pub fn is_set(&self, v: VarId) -> bool {
        self.value_int(v) != 0
    }

    /// All variable values, indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Outcome of a branch-and-bound run: a status plus the incumbent, if any.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpOutcome {
    /// How the search ended.
    pub status: SolveStatus,
    /// Best feasible solution found (present for `Optimal` and `Feasible`).
    pub best: Option<Solution>,
    /// Search statistics.
    pub stats: SolveStats,
    /// Proof log of the run, present when
    /// [`MilpOptions::certificate`](crate::MilpOptions) was enabled and
    /// the verdict is certifiable (everything except `Unbounded`).
    /// Re-verify with [`crate::certify::certify_outcome`].
    pub certificate: Option<crate::certify::MilpCertificate>,
}

impl MilpOutcome {
    /// `true` when the status proves optimality.
    pub fn is_optimal(&self) -> bool {
        self.status == SolveStatus::Optimal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solution(values: Vec<f64>) -> Solution {
        Solution {
            objective: 0.0,
            values,
        }
    }

    #[test]
    fn value_int_rounds_near_integers() {
        let s = solution(vec![0.9999995, 2.0000004, -3.0000001]);
        assert_eq!(s.value_int(VarId(0)), 1);
        assert_eq!(s.value_int(VarId(1)), 2);
        assert_eq!(s.value_int(VarId(2)), -3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "value_int on a fractional value")]
    fn value_int_rejects_fractional_values() {
        let s = solution(vec![0.4]);
        let _ = s.value_int(VarId(0));
    }
}
