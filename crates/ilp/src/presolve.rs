//! Static presolve: a reduction-and-diagnostics pass over a [`Model`].
//!
//! [`presolve`] runs between model construction and
//! [`Model::to_sparse_lp`]: it removes empty and singleton rows, fixed
//! and empty columns, substitutes implied-free column singletons, merges
//! duplicate rows, detects redundant and forcing rows by interval
//! (activity) arithmetic, and certifies obvious infeasibility or
//! unboundedness without ever factorizing a basis. Every deduction is a
//! consequence of interval arithmetic over the variable bounds, so the
//! certified verdicts remain proofs — exactly the property branch-and-
//! bound relies on when it consumes `Infeasible`/`Optimal` outcomes.
//!
//! The [`Postsolve`] record maps any solution of the reduced model back
//! to the original variable space, so solver signatures (and reported
//! solutions) are unchanged by presolve.

use crate::model::{ConstraintOp, Model, Sense, VarKind};
use std::collections::{BTreeMap, BTreeSet};

/// Feasibility slack: a row is declared infeasible only when its best
/// achievable activity misses the rhs by more than this.
const FEAS_TOL: f64 = 1e-7;
/// Integrality tolerance used when rounding integer bounds.
const INT_TOL: f64 = 1e-6;
/// Two bounds closer than this collapse the variable to a fixed value.
const FIX_TOL: f64 = 1e-9;
/// Relative tolerance for treating two rows as exact scalar multiples.
const DUP_TOL: f64 = 1e-12;
/// Fixpoint pass cap — each pass is a full row + column sweep.
const MAX_PASSES: usize = 10;

/// Reduction counters accumulated by [`presolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PresolveStats {
    /// Constraints eliminated (empty, singleton, redundant, forcing,
    /// duplicate, or substituted away).
    pub rows_removed: usize,
    /// Variables eliminated (fixed or substituted out).
    pub cols_removed: usize,
    /// Variable bounds strictly tightened.
    pub tightenings: usize,
    /// Fixpoint passes executed.
    pub passes: usize,
}

/// Static numerics diagnostics for a model (also used by `fpva-lint`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NumericsReport {
    /// Smallest non-zero |coefficient| in the constraint matrix.
    pub min_abs_coeff: f64,
    /// Largest |coefficient| in the constraint matrix.
    pub max_abs_coeff: f64,
    /// Largest |rhs|.
    pub max_abs_rhs: f64,
    /// Coefficients with magnitude below `1e-7` (likely noise).
    pub tiny_coeffs: usize,
    /// Coefficients with magnitude above `1e7` (conditioning hazard).
    pub huge_coeffs: usize,
    /// Row pairs with identical support whose coefficient vectors are
    /// (nearly) proportional — near-linear dependence.
    pub near_parallel_rows: usize,
}

/// How the reduced problem relates to the original.
#[derive(Debug, Clone)]
pub enum PresolveOutcome {
    /// A smaller (possibly identical) model remains to be solved.
    Reduced(Model),
    /// Presolve fixed every variable; the values are a certified optimal
    /// assignment in the **original** variable space.
    Solved(Vec<f64>),
    /// The model is proven infeasible by interval arithmetic alone.
    Infeasible {
        /// Human-readable certificate of the contradiction.
        reason: String,
    },
    /// The model is feasible and the objective improves without bound.
    Unbounded,
}

/// A single undo step; applied in reverse order by [`Postsolve::restore`].
#[derive(Debug, Clone)]
enum Action {
    /// `var` was fixed to `value`.
    Fix { var: usize, value: f64 },
    /// `var` was substituted out of row `coeff·var + Σ terms = / ≤ / ≥ rhs`;
    /// restore as `clamp((rhs − Σ aᵢ·xᵢ) / coeff, lb, ub)`.
    Substitute {
        var: usize,
        coeff: f64,
        rhs: f64,
        terms: Vec<(usize, f64)>,
        lb: f64,
        ub: f64,
    },
}

/// Maps solutions of the reduced model back to original variables.
#[derive(Debug, Clone)]
pub struct Postsolve {
    original_n: usize,
    /// original index → reduced index (None when eliminated).
    forward: Vec<Option<usize>>,
    actions: Vec<Action>,
}

impl Postsolve {
    /// Original-index → reduced-index map (`None` for eliminated
    /// variables); used to push caller-supplied symmetry generators into
    /// the reduced variable space before re-verification.
    pub(crate) fn forward(&self) -> &[Option<usize>] {
        &self.forward
    }

    /// Number of variables in the original model.
    pub fn original_var_count(&self) -> usize {
        self.original_n
    }

    /// Number of variables surviving into the reduced model.
    pub fn reduced_var_count(&self) -> usize {
        self.forward.iter().flatten().count()
    }

    /// Exports the reduction record for exact-arithmetic auditing by
    /// [`crate::certify::certify_outcome`]: the variable mapping plus
    /// every action, in application order.
    pub fn certificate(&self) -> crate::certify::PresolveCertificate {
        use crate::certify::PresolveAction;
        crate::certify::PresolveCertificate {
            original_vars: self.original_n,
            forward: self.forward.clone(),
            actions: self
                .actions
                .iter()
                .map(|a| match a {
                    Action::Fix { var, value } => PresolveAction::Fix {
                        var: *var,
                        value: *value,
                    },
                    Action::Substitute {
                        var,
                        coeff,
                        rhs,
                        terms,
                        lb,
                        ub,
                    } => PresolveAction::Substitute {
                        var: *var,
                        coeff: *coeff,
                        rhs: *rhs,
                        terms: terms.clone(),
                        lb: *lb,
                        ub: *ub,
                    },
                })
                .collect(),
        }
    }

    /// Lifts a reduced-model assignment to the original variable space.
    ///
    /// # Panics
    ///
    /// Panics if `reduced` is shorter than the reduced variable count.
    pub fn restore(&self, reduced: &[f64]) -> Vec<f64> {
        let mut full = vec![f64::NAN; self.original_n];
        for (orig, fwd) in self.forward.iter().enumerate() {
            if let Some(j) = fwd {
                full[orig] = reduced[*j];
            }
        }
        // Reverse order: an action's `terms` only reference variables
        // that were still alive when it was recorded, i.e. variables
        // restored by later (already-undone) actions or kept variables.
        for action in self.actions.iter().rev() {
            match action {
                Action::Fix { var, value } => full[*var] = *value,
                Action::Substitute {
                    var,
                    coeff,
                    rhs,
                    terms,
                    lb,
                    ub,
                } => {
                    let rest: f64 = terms.iter().map(|&(v, a)| a * full[v]).sum();
                    full[*var] = ((rhs - rest) / coeff).clamp(*lb, *ub);
                }
            }
        }
        full
    }
}

/// Result of [`presolve`]: outcome, undo record, counters, diagnostics.
#[derive(Debug, Clone)]
pub struct Presolved {
    /// The reduced problem (or a certified terminal verdict).
    pub outcome: PresolveOutcome,
    /// Undo record lifting reduced solutions back to original variables.
    pub postsolve: Postsolve,
    /// Reduction counters.
    pub stats: PresolveStats,
    /// Numerics diagnostics of the **original** model.
    pub numerics: NumericsReport,
}

struct WVar {
    kind: VarKind,
    lb: f64,
    ub: f64,
    obj: f64,
    alive: bool,
}

struct WRow {
    terms: BTreeMap<usize, f64>,
    op: ConstraintOp,
    rhs: f64,
}

#[derive(Debug)]
struct Infeasible(String);

struct Work {
    sign: f64, // +1 minimize, -1 maximize
    vars: Vec<WVar>,
    rows: Vec<Option<WRow>>,
    col_rows: Vec<BTreeSet<usize>>,
    actions: Vec<Action>,
    stats: PresolveStats,
}

/// Activity bounds of a set of terms: finite part plus infinity counts.
#[derive(Default, Clone, Copy)]
struct Activity {
    min_fin: f64,
    max_fin: f64,
    min_ninf: usize, // terms contributing -inf to the min activity
    max_pinf: usize, // terms contributing +inf to the max activity
}

impl Activity {
    fn min(&self) -> f64 {
        if self.min_ninf > 0 {
            f64::NEG_INFINITY
        } else {
            self.min_fin
        }
    }
    fn max(&self) -> f64 {
        if self.max_pinf > 0 {
            f64::INFINITY
        } else {
            self.max_fin
        }
    }
    /// Min activity of all terms except `(v, a)`'s contribution.
    fn min_without(&self, contrib: f64) -> f64 {
        if contrib == f64::NEG_INFINITY {
            if self.min_ninf == 1 {
                self.min_fin
            } else {
                f64::NEG_INFINITY
            }
        } else if self.min_ninf > 0 {
            f64::NEG_INFINITY
        } else {
            self.min_fin - contrib
        }
    }
    fn max_without(&self, contrib: f64) -> f64 {
        if contrib == f64::INFINITY {
            if self.max_pinf == 1 {
                self.max_fin
            } else {
                f64::INFINITY
            }
        } else if self.max_pinf > 0 {
            f64::INFINITY
        } else {
            self.max_fin - contrib
        }
    }
}

impl Work {
    /// Contribution of one term to the minimum activity (may be -inf).
    fn min_contrib(&self, v: usize, a: f64) -> f64 {
        if a > 0.0 {
            a * self.vars[v].lb
        } else {
            a * self.vars[v].ub
        }
    }
    fn max_contrib(&self, v: usize, a: f64) -> f64 {
        if a > 0.0 {
            a * self.vars[v].ub
        } else {
            a * self.vars[v].lb
        }
    }

    fn activity(&self, terms: &[(usize, f64)]) -> Activity {
        let mut act = Activity::default();
        for &(v, a) in terms {
            let lo = self.min_contrib(v, a);
            let hi = self.max_contrib(v, a);
            if lo == f64::NEG_INFINITY {
                act.min_ninf += 1;
            } else {
                act.min_fin += lo;
            }
            if hi == f64::INFINITY {
                act.max_pinf += 1;
            } else {
                act.max_fin += hi;
            }
        }
        act
    }

    fn remove_row(&mut self, r: usize) {
        if let Some(row) = self.rows[r].take() {
            for &v in row.terms.keys() {
                self.col_rows[v].remove(&r);
            }
            self.stats.rows_removed += 1;
        }
    }

    /// Fixes `v` to `value` (rounded for integers, clamped into bounds)
    /// and substitutes it out of every row it appears in.
    fn fix(&mut self, v: usize, value: f64) -> Result<(), Infeasible> {
        let var = &self.vars[v];
        if !var.alive {
            return Ok(());
        }
        let value = if var.kind == VarKind::Continuous {
            value
        } else {
            if (value - value.round()).abs() > INT_TOL {
                return Err(Infeasible(format!(
                    "integer variable x{v} forced to fractional value {value}"
                )));
            }
            value.round()
        };
        if value < var.lb - FEAS_TOL || value > var.ub + FEAS_TOL {
            return Err(Infeasible(format!(
                "variable x{v} forced to {value} outside [{}, {}]",
                var.lb, var.ub
            )));
        }
        let value = value.clamp(var.lb, var.ub);
        self.vars[v].alive = false;
        self.stats.cols_removed += 1;
        self.actions.push(Action::Fix { var: v, value });
        for r in std::mem::take(&mut self.col_rows[v]) {
            if let Some(row) = self.rows[r].as_mut() {
                if let Some(a) = row.terms.remove(&v) {
                    row.rhs -= a * value;
                }
            }
        }
        Ok(())
    }

    /// Tightens the upper bound; returns whether it improved.
    fn tighten_ub(&mut self, v: usize, mut new_ub: f64) -> Result<bool, Infeasible> {
        let var = &self.vars[v];
        if !var.alive {
            return Ok(false);
        }
        if var.kind != VarKind::Continuous {
            new_ub = (new_ub + INT_TOL).floor();
        }
        let cur = var.ub;
        let improves = if cur.is_finite() {
            new_ub < cur - FIX_TOL * (1.0 + cur.abs())
        } else {
            new_ub.is_finite()
        };
        if !improves {
            return Ok(false);
        }
        if new_ub < var.lb - FEAS_TOL {
            return Err(Infeasible(format!(
                "variable x{v}: implied upper bound {new_ub} below lower bound {}",
                var.lb
            )));
        }
        let lb = var.lb;
        self.vars[v].ub = new_ub.max(lb);
        self.stats.tightenings += 1;
        if self.vars[v].ub - lb <= FIX_TOL {
            self.fix(v, lb)?;
        }
        Ok(true)
    }

    fn tighten_lb(&mut self, v: usize, mut new_lb: f64) -> Result<bool, Infeasible> {
        let var = &self.vars[v];
        if !var.alive {
            return Ok(false);
        }
        if var.kind != VarKind::Continuous {
            new_lb = (new_lb - INT_TOL).ceil();
        }
        let cur = var.lb;
        let improves = new_lb > cur + FIX_TOL * (1.0 + cur.abs());
        if !improves {
            return Ok(false);
        }
        if new_lb > var.ub + FEAS_TOL {
            return Err(Infeasible(format!(
                "variable x{v}: implied lower bound {new_lb} above upper bound {}",
                var.ub
            )));
        }
        let ub = var.ub;
        self.vars[v].lb = new_lb.min(ub);
        self.stats.tightenings += 1;
        if ub.is_finite() && ub - self.vars[v].lb <= FIX_TOL {
            self.fix(v, ub)?;
        }
        Ok(true)
    }

    /// Applies a singleton row `a·x (op) rhs` as a bound and removes it.
    fn singleton_row(
        &mut self,
        v: usize,
        a: f64,
        op: ConstraintOp,
        rhs: f64,
    ) -> Result<(), Infeasible> {
        let bound = rhs / a;
        match (op, a > 0.0) {
            (ConstraintOp::Leq, true) | (ConstraintOp::Geq, false) => {
                self.tighten_ub(v, bound)?;
            }
            (ConstraintOp::Leq, false) | (ConstraintOp::Geq, true) => {
                self.tighten_lb(v, bound)?;
            }
            (ConstraintOp::Eq, _) => {
                let var = &self.vars[v];
                if bound < var.lb - FEAS_TOL || bound > var.ub + FEAS_TOL {
                    return Err(Infeasible(format!(
                        "singleton equality fixes x{v} to {bound} outside [{}, {}]",
                        var.lb, var.ub
                    )));
                }
                self.fix(v, bound)?;
            }
        }
        Ok(())
    }

    /// One full sweep over the rows; returns whether anything changed.
    fn row_pass(&mut self) -> Result<bool, Infeasible> {
        let mut changed = false;
        for r in 0..self.rows.len() {
            let Some(row) = self.rows[r].as_ref() else {
                continue;
            };
            let op = row.op;
            let rhs = row.rhs;
            let terms: Vec<(usize, f64)> = row.terms.iter().map(|(&v, &a)| (v, a)).collect();

            if terms.is_empty() {
                let ok = match op {
                    ConstraintOp::Leq => rhs >= -FEAS_TOL,
                    ConstraintOp::Geq => rhs <= FEAS_TOL,
                    ConstraintOp::Eq => rhs.abs() <= FEAS_TOL,
                };
                if !ok {
                    return Err(Infeasible(format!(
                        "constraint #{r} reduced to the contradiction 0 {op:?} {rhs}"
                    )));
                }
                self.remove_row(r);
                changed = true;
                continue;
            }
            if terms.len() == 1 {
                let (v, a) = terms[0];
                self.remove_row(r);
                self.singleton_row(v, a, op, rhs)?;
                changed = true;
                continue;
            }

            let act = self.activity(&terms);
            let (minact, maxact) = (act.min(), act.max());
            // Certified infeasibility: even the most favourable bound
            // assignment misses the rhs.
            let infeasible = match op {
                ConstraintOp::Leq => minact > rhs + FEAS_TOL,
                ConstraintOp::Geq => maxact < rhs - FEAS_TOL,
                ConstraintOp::Eq => minact > rhs + FEAS_TOL || maxact < rhs - FEAS_TOL,
            };
            if infeasible {
                return Err(Infeasible(format!(
                    "constraint #{r}: activity range [{minact}, {maxact}] cannot meet {op:?} {rhs}"
                )));
            }
            // Redundancy: satisfied by every assignment within bounds.
            let redundant = match op {
                ConstraintOp::Leq => maxact <= rhs,
                ConstraintOp::Geq => minact >= rhs,
                ConstraintOp::Eq => false,
            };
            if redundant {
                self.remove_row(r);
                changed = true;
                continue;
            }
            // Forcing: the rhs is only reachable with every variable at
            // the extreme bound it contributes (tight tolerance — this
            // *fixes* variables, so it must be a near-exact hit).
            let force_min =
                minact.is_finite() && (rhs - minact).abs() <= 1e-9 && op != ConstraintOp::Geq;
            let force_max =
                maxact.is_finite() && (rhs - maxact).abs() <= 1e-9 && op != ConstraintOp::Leq;
            if force_min || force_max {
                for &(v, a) in &terms {
                    let var = &self.vars[v];
                    let val = if (a > 0.0) == force_min {
                        var.lb
                    } else {
                        var.ub
                    };
                    self.fix(v, val)?;
                }
                self.remove_row(r);
                changed = true;
                continue;
            }
            // Implied-bound tightening, integer variables only: floor/
            // ceil rounding keeps the deduction exact, so no integer
            // point is ever cut off (continuous implied bounds are left
            // to the simplex to avoid FP-rounding unsoundness).
            for &(v, a) in &terms {
                if self.vars[v].kind == VarKind::Continuous || !self.vars[v].alive {
                    continue;
                }
                if op != ConstraintOp::Geq {
                    // Σ ≤ rhs ⇒ a·x ≤ rhs − minact(others)
                    let others = act.min_without(self.min_contrib(v, a));
                    if others.is_finite() {
                        let bound = (rhs - others) / a;
                        let t = if a > 0.0 {
                            self.tighten_ub(v, bound)?
                        } else {
                            self.tighten_lb(v, bound)?
                        };
                        changed |= t;
                    }
                }
                if op != ConstraintOp::Leq {
                    // Σ ≥ rhs ⇒ a·x ≥ rhs − maxact(others)
                    let others = act.max_without(self.max_contrib(v, a));
                    if others.is_finite() {
                        let bound = (rhs - others) / a;
                        let t = if a > 0.0 {
                            self.tighten_lb(v, bound)?
                        } else {
                            self.tighten_ub(v, bound)?
                        };
                        changed |= t;
                    }
                }
                if self.rows[r].is_none() {
                    break; // a fix emptied and removed this row
                }
            }
        }
        Ok(changed)
    }

    /// Merges duplicate rows (identical support, proportional coeffs).
    fn duplicate_pass(&mut self) -> Result<bool, Infeasible> {
        let mut groups: BTreeMap<Vec<usize>, Vec<usize>> = BTreeMap::new();
        for (r, row) in self.rows.iter().enumerate() {
            if let Some(row) = row {
                if row.terms.len() >= 2 {
                    groups
                        .entry(row.terms.keys().copied().collect())
                        .or_default()
                        .push(r);
                }
            }
        }
        let mut changed = false;
        for rows in groups.values().filter(|g| g.len() >= 2) {
            for i in 0..rows.len() {
                for j in (i + 1)..rows.len() {
                    if self.rows[rows[i]].is_none() || self.rows[rows[j]].is_none() {
                        continue;
                    }
                    changed |= self.try_merge(rows[i], rows[j])?;
                }
            }
        }
        Ok(changed)
    }

    /// Attempts to merge row `rj` into row `ri`; both share support.
    fn try_merge(&mut self, ri: usize, rj: usize) -> Result<bool, Infeasible> {
        let (a, b) = (
            self.rows[ri].as_ref().unwrap(),
            self.rows[rj].as_ref().unwrap(),
        );
        let (&first, &ai) = a.terms.iter().next().unwrap();
        let k = b.terms[&first] / ai;
        for (v, &av) in &a.terms {
            let bv = b.terms[v];
            if (bv - k * av).abs() > DUP_TOL * (1.0 + (k * av).abs()) {
                return Ok(false);
            }
        }
        // Normalise row j onto row i's scale: b/k (op flips when k < 0).
        let rhs_j = b.rhs / k;
        let op_j = match (b.op, k > 0.0) {
            (op, true) => op,
            (ConstraintOp::Leq, false) => ConstraintOp::Geq,
            (ConstraintOp::Geq, false) => ConstraintOp::Leq,
            (ConstraintOp::Eq, false) => ConstraintOp::Eq,
        };
        let (op_i, rhs_i) = (a.op, a.rhs);
        use ConstraintOp::{Eq, Geq, Leq};
        let merged = match (op_i, op_j) {
            (Eq, Eq) => {
                if (rhs_i - rhs_j).abs() > FEAS_TOL {
                    return Err(Infeasible(format!(
                        "duplicate equalities #{ri} and #{rj} demand {rhs_i} and {rhs_j}"
                    )));
                }
                self.remove_row(rj);
                true
            }
            (Eq, Leq) | (Leq, Eq) => {
                let (eq, le) = if op_i == Eq {
                    (rhs_i, rhs_j)
                } else {
                    (rhs_j, rhs_i)
                };
                if eq > le + FEAS_TOL {
                    return Err(Infeasible(format!(
                        "rows #{ri}/#{rj}: equality at {eq} violates duplicate ≤ {le}"
                    )));
                }
                let keep = self.rows[ri].as_mut().unwrap();
                keep.op = Eq;
                keep.rhs = eq;
                self.remove_row(rj);
                true
            }
            (Eq, Geq) | (Geq, Eq) => {
                let (eq, ge) = if op_i == Eq {
                    (rhs_i, rhs_j)
                } else {
                    (rhs_j, rhs_i)
                };
                if eq < ge - FEAS_TOL {
                    return Err(Infeasible(format!(
                        "rows #{ri}/#{rj}: equality at {eq} violates duplicate ≥ {ge}"
                    )));
                }
                let keep = self.rows[ri].as_mut().unwrap();
                keep.op = Eq;
                keep.rhs = eq;
                self.remove_row(rj);
                true
            }
            (Leq, Leq) => {
                self.rows[ri].as_mut().unwrap().rhs = rhs_i.min(rhs_j);
                self.remove_row(rj);
                true
            }
            (Geq, Geq) => {
                self.rows[ri].as_mut().unwrap().rhs = rhs_i.max(rhs_j);
                self.remove_row(rj);
                true
            }
            (Leq, Geq) | (Geq, Leq) => {
                let (le, ge) = if op_i == Leq {
                    (rhs_i, rhs_j)
                } else {
                    (rhs_j, rhs_i)
                };
                if ge > le + FEAS_TOL {
                    return Err(Infeasible(format!(
                        "rows #{ri}/#{rj}: duplicate ≥ {ge} contradicts ≤ {le}"
                    )));
                }
                if (le - ge).abs() <= DUP_TOL * (1.0 + le.abs()) {
                    let keep = self.rows[ri].as_mut().unwrap();
                    keep.op = Eq;
                    keep.rhs = le;
                    self.remove_row(rj);
                    true
                } else {
                    false // a genuine two-sided range; keep both rows
                }
            }
        };
        Ok(merged)
    }

    /// Column sweep: empty columns and implied-free column singletons.
    fn col_pass(&mut self) -> Result<bool, Infeasible> {
        let mut changed = false;
        for v in 0..self.vars.len() {
            if !self.vars[v].alive {
                continue;
            }
            let count = self.col_rows[v].len();
            if count == 0 {
                // Empty column: fix at the cheapest bound when finite;
                // an improving infinite direction is left alive — the
                // finalisation step certifies Unbounded only once the
                // rest of the model is known feasible (zero rows left).
                let c = self.sign * self.vars[v].obj;
                if c < 0.0 && self.vars[v].ub.is_infinite() {
                    continue;
                }
                let val = if c < 0.0 {
                    self.vars[v].ub
                } else {
                    self.vars[v].lb
                };
                self.fix(v, val)?;
                changed = true;
                continue;
            }
            if count == 1 && self.vars[v].kind == VarKind::Continuous && self.vars[v].obj == 0.0 {
                let r = *self.col_rows[v].iter().next().unwrap();
                changed |= self.substitute_singleton(v, r);
            }
        }
        Ok(changed)
    }

    /// Substitutes a zero-cost continuous column singleton out of its
    /// only row. Equality rows need the implied-free condition; for
    /// inequality rows the variable acts as a bounded slack.
    fn substitute_singleton(&mut self, v: usize, r: usize) -> bool {
        let Some(row) = self.rows[r].as_ref() else {
            return false;
        };
        if row.terms.len() < 2 {
            return false; // leave singleton rows to the row pass
        }
        let a = row.terms[&v];
        let (op, rhs) = (row.op, row.rhs);
        let others: Vec<(usize, f64)> = row
            .terms
            .iter()
            .filter(|&(&w, _)| w != v)
            .map(|(&w, &c)| (w, c))
            .collect();
        let (lb, ub) = (self.vars[v].lb, self.vars[v].ub);

        let record = |work: &mut Work| {
            work.actions.push(Action::Substitute {
                var: v,
                coeff: a,
                rhs,
                terms: others.clone(),
                lb,
                ub,
            });
            work.vars[v].alive = false;
            work.col_rows[v].clear();
            work.stats.cols_removed += 1;
        };

        match op {
            ConstraintOp::Eq => {
                // Implied-free check: the row itself confines v to
                // [(rhs − omax)/a, (rhs − omin)/a] (a > 0); only when
                // that interval sits inside [lb, ub] can the explicit
                // bounds be dropped along with the row.
                let oact = self.activity(&others);
                let (omin, omax) = (oact.min(), oact.max());
                if !omin.is_finite() || !omax.is_finite() {
                    return false;
                }
                let (ilo, ihi) = if a > 0.0 {
                    ((rhs - omax) / a, (rhs - omin) / a)
                } else {
                    ((rhs - omin) / a, (rhs - omax) / a)
                };
                let pad = FIX_TOL * (1.0 + ilo.abs().max(ihi.abs()));
                if ilo < lb - pad || ihi > ub + pad {
                    return false;
                }
                record(self);
                self.remove_row(r);
                true
            }
            ConstraintOp::Leq | ConstraintOp::Geq => {
                // a·v + rest (op) rhs is satisfiable in v exactly when
                // rest (op) rhs − extreme(a·v); the extreme is -inf/+inf
                // for an unbounded slack (row vanishes) and a finite
                // shift otherwise.
                let extreme = if (op == ConstraintOp::Leq) == (a > 0.0) {
                    a * lb
                } else {
                    a * ub // may be ±inf
                };
                record(self);
                if extreme.is_infinite() {
                    self.remove_row(r);
                } else {
                    let row = self.rows[r].as_mut().unwrap();
                    row.terms.remove(&v);
                    row.rhs -= extreme;
                }
                true
            }
        }
    }
}

/// Runs the presolve pass over `model`.
///
/// The input is unchanged; the result holds the reduced model (or a
/// certified verdict), the [`Postsolve`] undo record, reduction
/// counters, and a numerics report. Call after [`Model::validate`] —
/// non-finite data may otherwise panic.
pub fn presolve(model: &Model) -> Presolved {
    let numerics = numerics_report(model);
    let n = model.var_count();
    let sign = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut work = Work {
        sign,
        vars: model
            .vars()
            .iter()
            .map(|v| WVar {
                kind: v.kind,
                lb: v.lb,
                ub: v.ub,
                obj: 0.0,
                alive: true,
            })
            .collect(),
        rows: Vec::with_capacity(model.constraint_count()),
        col_rows: vec![BTreeSet::new(); n],
        actions: Vec::new(),
        stats: PresolveStats::default(),
    };
    for (v, c) in model.objective().terms() {
        work.vars[v.index()].obj = c;
    }
    for (r, c) in model.constraints().iter().enumerate() {
        let terms: BTreeMap<usize, f64> = c.expr.terms().map(|(v, a)| (v.index(), a)).collect();
        for &v in terms.keys() {
            work.col_rows[v].insert(r);
        }
        work.rows.push(Some(WRow {
            terms,
            op: c.op,
            rhs: c.rhs,
        }));
    }

    let fixpoint = |work: &mut Work| -> Result<(), Infeasible> {
        // Normalise integer bounds and collapse degenerate domains first.
        for v in 0..work.vars.len() {
            if work.vars[v].kind != VarKind::Continuous {
                let lb = (work.vars[v].lb - INT_TOL).ceil();
                let ub = (work.vars[v].ub + INT_TOL).floor();
                if ub < lb {
                    return Err(Infeasible(format!(
                        "integer variable x{v} has empty domain [{lb}, {ub}]"
                    )));
                }
                work.vars[v].lb = lb;
                work.vars[v].ub = ub;
            }
            let (lb, ub) = (work.vars[v].lb, work.vars[v].ub);
            if ub.is_finite() && ub - lb <= FIX_TOL {
                work.fix(v, lb)?;
            }
        }
        for _ in 0..MAX_PASSES {
            work.stats.passes += 1;
            let mut changed = work.row_pass()?;
            changed |= work.duplicate_pass()?;
            changed |= work.col_pass()?;
            if !changed {
                break;
            }
        }
        Ok(())
    };

    let verdict = fixpoint(&mut work);
    let mut forward = vec![None; n];
    let postsolve = |work: &Work, forward: Vec<Option<usize>>| Postsolve {
        original_n: n,
        forward,
        actions: work.actions.clone(),
    };

    if let Err(Infeasible(reason)) = verdict {
        return Presolved {
            outcome: PresolveOutcome::Infeasible { reason },
            postsolve: postsolve(&work, forward),
            stats: work.stats,
            numerics,
        };
    }

    if work.rows.iter().all(Option::is_none) {
        // No constraints left: every remaining variable sits at its
        // cheapest bound. An improving infinite direction is now a
        // certificate of unboundedness (the model is trivially feasible).
        for v in 0..work.vars.len() {
            if !work.vars[v].alive {
                continue;
            }
            let c = work.sign * work.vars[v].obj;
            if c < 0.0 && work.vars[v].ub.is_infinite() {
                return Presolved {
                    outcome: PresolveOutcome::Unbounded,
                    postsolve: postsolve(&work, forward),
                    stats: work.stats,
                    numerics,
                };
            }
            let val = if c < 0.0 {
                work.vars[v].ub
            } else {
                work.vars[v].lb
            };
            work.fix(v, val)
                .expect("bound endpoints are always in range");
        }
        let ps = postsolve(&work, forward);
        let values = ps.restore(&[]);
        return Presolved {
            outcome: PresolveOutcome::Solved(values),
            postsolve: ps,
            stats: work.stats,
            numerics,
        };
    }

    // Build the reduced model.
    let mut reduced = Model::new(model.sense());
    let mut next = 0usize;
    for (v, wv) in work.vars.iter().enumerate() {
        if !wv.alive {
            continue;
        }
        forward[v] = Some(next);
        next += 1;
        let name = model.var_name(crate::expr::VarId(v));
        match wv.kind {
            VarKind::Binary if wv.lb == 0.0 && wv.ub == 1.0 => {
                reduced.binary_var(name);
            }
            VarKind::Binary | VarKind::Integer => {
                reduced.integer_var(name, wv.lb, wv.ub);
            }
            VarKind::Continuous => {
                reduced.continuous_var(name, wv.lb, wv.ub);
            }
        }
    }
    for row in work.rows.iter().flatten() {
        let mut expr = crate::expr::LinExpr::new();
        for (&v, &a) in &row.terms {
            expr.add_term(
                crate::expr::VarId(forward[v].expect("term var is alive")),
                a,
            );
        }
        reduced.add_constraint(expr, row.op, row.rhs);
    }
    let mut obj = crate::expr::LinExpr::new();
    let mut constant = model.objective().constant();
    for (v, wv) in work.vars.iter().enumerate() {
        if wv.alive && wv.obj != 0.0 {
            obj.add_term(crate::expr::VarId(forward[v].unwrap()), wv.obj);
        }
    }
    // Fixed variables fold their objective contribution into the
    // constant so reduced and original objectives agree pointwise.
    for action in &work.actions {
        if let Action::Fix { var, value } = action {
            constant += model.objective().coeff(crate::expr::VarId(*var)) * value;
        }
    }
    obj.add_constant(constant);
    reduced.set_objective(obj);

    Presolved {
        outcome: PresolveOutcome::Reduced(reduced),
        postsolve: postsolve(&work, forward),
        stats: work.stats,
        numerics,
    }
}

/// Computes static numerics diagnostics for `model`.
pub fn numerics_report(model: &Model) -> NumericsReport {
    let mut rep = NumericsReport {
        min_abs_coeff: f64::INFINITY,
        ..NumericsReport::default()
    };
    let mut supports: BTreeMap<Vec<usize>, Vec<Vec<f64>>> = BTreeMap::new();
    for c in model.constraints() {
        rep.max_abs_rhs = rep.max_abs_rhs.max(c.rhs.abs());
        let mut vars = Vec::new();
        let mut coeffs = Vec::new();
        for (v, a) in c.expr.terms() {
            let m = a.abs();
            rep.min_abs_coeff = rep.min_abs_coeff.min(m);
            rep.max_abs_coeff = rep.max_abs_coeff.max(m);
            if m < 1e-7 {
                rep.tiny_coeffs += 1;
            }
            if m > 1e7 {
                rep.huge_coeffs += 1;
            }
            vars.push(v.index());
            coeffs.push(a);
        }
        if vars.len() >= 2 {
            supports.entry(vars).or_default().push(coeffs);
        }
    }
    if !rep.min_abs_coeff.is_finite() {
        rep.min_abs_coeff = 0.0;
    }
    for rows in supports.values().filter(|r| r.len() >= 2) {
        for i in 0..rows.len() {
            for j in (i + 1)..rows.len() {
                let k = rows[j][0] / rows[i][0];
                let near = rows[i]
                    .iter()
                    .zip(&rows[j])
                    .all(|(&a, &b)| (b - k * a).abs() <= 1e-3 * (1.0 + (k * a).abs()));
                if near {
                    rep.near_parallel_rows += 1;
                }
            }
        }
    }
    rep
}

/// Per-node integer bound propagation over the (reduced) model's rows.
///
/// Branch-and-bound applies this to every node's bound vectors before
/// solving the LP relaxation: floor/ceil implied bounds on integer
/// variables are exact deductions, so nodes pruned here are pruned with
/// certainty and the search's certified verdicts are preserved.
/// One propagation row: sparse terms, operator and right-hand side.
type PropRow = (Vec<(usize, f64)>, ConstraintOp, f64);

#[derive(Debug, Clone)]
pub(crate) struct Propagator {
    rows: Vec<PropRow>,
    is_int: Vec<bool>,
    passes: usize,
}

impl Propagator {
    pub(crate) fn new(model: &Model) -> Self {
        let rows = model
            .constraints()
            .iter()
            .map(|c| {
                let terms: Vec<(usize, f64)> =
                    c.expr.terms().map(|(v, a)| (v.index(), a)).collect();
                (terms, c.op, c.rhs)
            })
            .collect();
        let is_int = model
            .vars()
            .iter()
            .map(|v| v.kind != VarKind::Continuous)
            .collect();
        Propagator {
            rows,
            is_int,
            passes: 3,
        }
    }

    /// Tightens integer entries of `lower`/`upper` in place. Returns the
    /// number of tightenings, or `None` when a domain empties or a row
    /// becomes unsatisfiable (the node can be pruned without an LP).
    pub(crate) fn propagate(&self, lower: &mut [f64], upper: &mut [f64]) -> Option<usize> {
        let mut tightened = 0usize;
        for _ in 0..self.passes {
            let before = tightened;
            for (terms, op, rhs) in &self.rows {
                let mut min_fin = 0.0;
                let mut max_fin = 0.0;
                let mut min_ninf = 0usize;
                let mut max_pinf = 0usize;
                for &(v, a) in terms {
                    let lo = if a > 0.0 { a * lower[v] } else { a * upper[v] };
                    let hi = if a > 0.0 { a * upper[v] } else { a * lower[v] };
                    if lo == f64::NEG_INFINITY {
                        min_ninf += 1;
                    } else {
                        min_fin += lo;
                    }
                    if hi == f64::INFINITY {
                        max_pinf += 1;
                    } else {
                        max_fin += hi;
                    }
                }
                let minact = if min_ninf > 0 {
                    f64::NEG_INFINITY
                } else {
                    min_fin
                };
                let maxact = if max_pinf > 0 { f64::INFINITY } else { max_fin };
                let infeasible = match op {
                    ConstraintOp::Leq => minact > rhs + FEAS_TOL,
                    ConstraintOp::Geq => maxact < rhs - FEAS_TOL,
                    ConstraintOp::Eq => minact > rhs + FEAS_TOL || maxact < rhs - FEAS_TOL,
                };
                if infeasible {
                    return None;
                }
                for &(v, a) in terms {
                    if !self.is_int[v] {
                        continue;
                    }
                    let lo = if a > 0.0 { a * lower[v] } else { a * upper[v] };
                    let hi = if a > 0.0 { a * upper[v] } else { a * lower[v] };
                    if *op != ConstraintOp::Geq {
                        let others = if lo == f64::NEG_INFINITY {
                            if min_ninf == 1 {
                                min_fin
                            } else {
                                f64::NEG_INFINITY
                            }
                        } else if min_ninf > 0 {
                            f64::NEG_INFINITY
                        } else {
                            min_fin - lo
                        };
                        if others.is_finite() {
                            let b = (rhs - others) / a;
                            if a > 0.0 {
                                let nb = (b + INT_TOL).floor();
                                if nb < upper[v] - 0.5 {
                                    upper[v] = nb;
                                    tightened += 1;
                                    if upper[v] < lower[v] {
                                        return None;
                                    }
                                }
                            } else {
                                let nb = (b - INT_TOL).ceil();
                                if nb > lower[v] + 0.5 {
                                    lower[v] = nb;
                                    tightened += 1;
                                    if upper[v] < lower[v] {
                                        return None;
                                    }
                                }
                            }
                        }
                    }
                    if *op != ConstraintOp::Leq {
                        let others = if hi == f64::INFINITY {
                            if max_pinf == 1 {
                                max_fin
                            } else {
                                f64::INFINITY
                            }
                        } else if max_pinf > 0 {
                            f64::INFINITY
                        } else {
                            max_fin - hi
                        };
                        if others.is_finite() {
                            let b = (rhs - others) / a;
                            if a > 0.0 {
                                let nb = (b - INT_TOL).ceil();
                                if nb > lower[v] + 0.5 {
                                    lower[v] = nb;
                                    tightened += 1;
                                    if upper[v] < lower[v] {
                                        return None;
                                    }
                                }
                            } else {
                                let nb = (b + INT_TOL).floor();
                                if nb < upper[v] - 0.5 {
                                    upper[v] = nb;
                                    tightened += 1;
                                    if upper[v] < lower[v] {
                                        return None;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            if tightened == before {
                break;
            }
        }
        Some(tightened)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::Sense;

    fn reduced(p: &Presolved) -> &Model {
        match &p.outcome {
            PresolveOutcome::Reduced(m) => m,
            other => panic!("expected Reduced, got {other:?}"),
        }
    }

    #[test]
    fn singleton_equality_fixes_variable() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        m.add_eq(LinExpr::from(x), 1.0);
        m.add_leq(x + y, 2.0); // becomes y <= 1 (redundant) after the fix
        m.set_objective(x + y);
        let p = presolve(&m);
        assert!(p.stats.rows_removed >= 2);
        assert!(p.stats.cols_removed >= 1);
        match &p.outcome {
            // y alone remains, or everything got solved outright.
            PresolveOutcome::Reduced(r) => assert!(r.var_count() <= 1),
            PresolveOutcome::Solved(v) => {
                assert_eq!(v[0], 1.0);
                assert_eq!(v[1], 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn forcing_row_fixes_every_variable() {
        // x + y >= 2 over binaries: only (1, 1) works.
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        m.add_geq(x + y, 2.0);
        m.set_objective(x + y);
        let p = presolve(&m);
        match &p.outcome {
            PresolveOutcome::Solved(v) => assert_eq!(v, &vec![1.0, 1.0]),
            other => panic!("expected Solved, got {other:?}"),
        }
    }

    #[test]
    fn certified_infeasible_without_factorizing() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        m.add_geq(x + y, 3.0);
        m.set_objective(x + y);
        let p = presolve(&m);
        assert!(matches!(p.outcome, PresolveOutcome::Infeasible { .. }));
    }

    #[test]
    fn fractional_singleton_equality_on_integer_is_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.integer_var("x", 0.0, 10.0);
        m.add_eq(2.0 * x, 5.0);
        m.set_objective(LinExpr::from(x));
        let p = presolve(&m);
        assert!(matches!(p.outcome, PresolveOutcome::Infeasible { .. }));
    }

    #[test]
    fn redundant_row_is_dropped() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        m.add_leq(x + y, 5.0); // max activity 2 <= 5
        m.add_geq(x + y, 1.0); // kept
        m.set_objective(x + y);
        let p = presolve(&m);
        assert_eq!(p.stats.rows_removed, 1);
        assert_eq!(reduced(&p).constraint_count(), 1);
    }

    #[test]
    fn duplicate_rows_merge_to_tightest() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        m.add_leq(x + y, 1.0);
        m.add_leq(2.0 * x + 2.0 * y, 4.0); // scaled duplicate, rhs 2 > 1
        m.set_objective(x + y);
        let p = presolve(&m);
        assert_eq!(reduced(&p).constraint_count(), 1);
        assert!(p.stats.rows_removed >= 1);
    }

    #[test]
    fn contradictory_duplicate_equalities_are_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous_var("x", 0.0, 10.0);
        let y = m.continuous_var("y", 0.0, 10.0);
        m.add_eq(x + y, 3.0);
        m.add_eq(2.0 * x + 2.0 * y, 8.0); // says x + y = 4
        m.set_objective(LinExpr::from(x));
        let p = presolve(&m);
        assert!(matches!(p.outcome, PresolveOutcome::Infeasible { .. }));
    }

    #[test]
    fn implied_free_singleton_substitution_roundtrips() {
        // s appears only in the equality, has zero cost, and the row
        // confines it to [0, 2] inside its [-,5] bounds -> substituted.
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous_var("x", 0.0, 1.0);
        let y = m.continuous_var("y", 0.0, 1.0);
        let s = m.continuous_var("s", -3.0, 5.0);
        m.add_eq(x + y + s, 2.0);
        m.add_geq(x + y, 0.5);
        m.set_objective(x + y);
        let p = presolve(&m);
        let r = reduced(&p);
        assert_eq!(r.var_count(), 2);
        // Solve-by-hand reduced optimum: x + y = 0.5. Restore s.
        let full = p.postsolve.restore(&[0.5, 0.0]);
        assert_eq!(full.len(), 3);
        assert!((full[0] + full[1] + full[2] - 2.0).abs() < 1e-9);
        assert!(full[2] >= -3.0 && full[2] <= 5.0);
    }

    #[test]
    fn bounds_only_model_is_solved_outright() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.integer_var("x", 0.0, 7.0);
        let y = m.continuous_var("y", -2.0, 3.0);
        m.set_objective(2.0 * x - y);
        let p = presolve(&m);
        match &p.outcome {
            PresolveOutcome::Solved(v) => assert_eq!(v, &vec![7.0, -2.0]),
            other => panic!("expected Solved, got {other:?}"),
        }
    }

    #[test]
    fn free_improving_direction_is_certified_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.integer_var("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::from(x));
        let p = presolve(&m);
        assert!(matches!(p.outcome, PresolveOutcome::Unbounded));
    }

    #[test]
    fn empty_contradictory_row_is_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let _x = m.binary_var("x");
        m.add_geq(LinExpr::new(), 1.0); // 0 >= 1
        let p = presolve(&m);
        assert!(matches!(p.outcome, PresolveOutcome::Infeasible { .. }));
    }

    #[test]
    fn integer_implied_bounds_tighten() {
        // 3x + y <= 4, y in [1, 10] integer -> x <= 1 (from floor(3/3)).
        let mut m = Model::new(Sense::Maximize);
        let x = m.integer_var("x", 0.0, 10.0);
        let y = m.integer_var("y", 1.0, 10.0);
        m.add_leq(3.0 * x + y, 4.0);
        m.set_objective(x + y);
        let p = presolve(&m);
        assert!(p.stats.tightenings >= 1);
        let r = reduced(&p);
        let xr = crate::expr::VarId(0);
        assert_eq!(r.var_bounds(xr).1, 1.0);
    }

    #[test]
    fn numerics_report_flags_extremes() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous_var("x", 0.0, 1.0);
        let y = m.continuous_var("y", 0.0, 1.0);
        m.add_leq(1e-9 * x + 1e9 * y, 1.0);
        m.add_leq(x + y, 1.0);
        m.add_leq(x + y + 1e-12 * LinExpr::from(x), 2.0); // ~ parallel to row 1
        m.set_objective(x + y);
        let rep = numerics_report(&m);
        assert_eq!(rep.tiny_coeffs, 1);
        assert_eq!(rep.huge_coeffs, 1);
        assert!(rep.max_abs_coeff >= 1e9);
        assert!(rep.min_abs_coeff <= 1e-9);
        assert_eq!(rep.near_parallel_rows, 1);
        assert_eq!(rep.max_abs_rhs, 2.0);
    }

    #[test]
    fn propagator_prunes_and_tightens() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.integer_var("x", 0.0, 10.0);
        let y = m.integer_var("y", 0.0, 10.0);
        m.add_leq(x + y, 3.0);
        m.add_geq(x + y, 1.0);
        m.set_objective(x + y);
        let prop = Propagator::new(&m);
        let mut lo = vec![0.0, 0.0];
        let mut hi = vec![10.0, 10.0];
        let t = prop.propagate(&mut lo, &mut hi).unwrap();
        assert!(t >= 2);
        assert_eq!(hi, vec![3.0, 3.0]);
        // Branching x >= 4 contradicts x + y <= 3.
        let mut lo = vec![4.0, 0.0];
        let mut hi = vec![10.0, 10.0];
        assert!(prop.propagate(&mut lo, &mut hi).is_none());
    }

    #[test]
    fn postsolve_forward_maps_kept_vars() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        let z = m.binary_var("z");
        m.add_eq(LinExpr::from(y), 1.0); // y fixed
        m.add_geq(x + z, 1.0);
        m.set_objective(x + y + z);
        let p = presolve(&m);
        assert_eq!(p.postsolve.original_var_count(), 3);
        assert_eq!(p.postsolve.reduced_var_count(), 2);
        let full = p.postsolve.restore(&[1.0, 0.0]);
        assert_eq!(full, vec![1.0, 1.0, 0.0]);
    }
}
