//! Dense two-phase tableau simplex, kept as the **differential-test
//! oracle** for the sparse revised simplex in [`crate::simplex`].
//!
//! This is the original production solver: a standard two-phase tableau
//! with Dantzig pricing and Bland's rule as the anti-cycling fallback.
//! Finite upper bounds become extra rows and variables are shifted to
//! `x' = x − l ≥ 0`. It is slow on the path-cover LPs (every pivot
//! rewrites the full `(m + 1) × (ncols + 1)` tableau) but simple enough
//! to trust, which makes it the reference implementation the
//! `ilp_differential` proptest harness compares [`crate::simplex::solve`]
//! against. Production code must call [`crate::simplex`]; nothing outside
//! the test suites should depend on this module.

use crate::model::ConstraintOp;
use crate::simplex::{LpProblem, LpSolution, LpStatus, WarmStart, EPS};

/// Tolerance used when comparing the phase-1 objective against zero.
const FEAS_TOL: f64 = 1e-7;

struct Tableau {
    /// (m + 1) rows × (ncols + 1) columns, flat row-major; last column is
    /// the RHS, last row the reduced-cost row.
    data: Vec<f64>,
    m: usize,
    ncols: usize,
    basis: Vec<usize>,
    iterations: usize,
}

impl Tableau {
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * (self.ncols + 1) + c]
    }

    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * (self.ncols + 1) + c] = v;
    }

    fn pivot(&mut self, pr: usize, pc: usize) {
        let w = self.ncols + 1;
        let pivot = self.at(pr, pc);
        debug_assert!(pivot.abs() > EPS, "pivot too small: {pivot}");
        let inv = 1.0 / pivot;
        for c in 0..w {
            self.data[pr * w + c] *= inv;
        }
        self.set(pr, pc, 1.0);
        for r in 0..=self.m {
            if r == pr {
                continue;
            }
            let factor = self.at(r, pc);
            if factor.abs() <= EPS {
                self.set(r, pc, 0.0);
                continue;
            }
            for c in 0..w {
                let v = self.data[r * w + c] - factor * self.data[pr * w + c];
                self.data[r * w + c] = v;
            }
            self.set(r, pc, 0.0);
        }
        self.basis[pr] = pc;
        self.iterations += 1;
    }

    /// Runs the pivot loop; `allowed` filters columns that may enter.
    fn optimize(
        &mut self,
        allowed: impl Fn(usize) -> bool,
        max_iters: usize,
        deadline: Option<std::time::Instant>,
    ) -> LpStatus {
        let bland_after = 200 + 20 * self.m;
        let mut local_iters = 0usize;
        loop {
            if local_iters > max_iters {
                return LpStatus::IterationLimit;
            }
            // A single dense pivot on a large tableau is expensive, so a
            // caller's wall-clock budget has to be enforced *inside* the
            // pivot loop — checking only between branch-and-bound nodes
            // lets one LP overshoot the limit by minutes.
            if local_iters.is_multiple_of(128) {
                if let Some(d) = deadline {
                    if std::time::Instant::now() >= d {
                        return LpStatus::TimeLimit;
                    }
                }
            }
            let use_bland = local_iters > bland_after;
            // Entering column.
            let zrow = self.m;
            let mut entering: Option<usize> = None;
            let mut best = -EPS;
            for c in 0..self.ncols {
                if !allowed(c) {
                    continue;
                }
                let rc = self.at(zrow, c);
                if use_bland {
                    if rc < -EPS {
                        entering = Some(c);
                        break;
                    }
                } else if rc < best {
                    best = rc;
                    entering = Some(c);
                }
            }
            let Some(pc) = entering else {
                return LpStatus::Optimal;
            };
            // Ratio test.
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.m {
                let a = self.at(r, pc);
                if a > EPS {
                    let ratio = self.at(r, self.ncols) / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leaving.is_some_and(|lr| self.basis[r] < self.basis[lr]));
                    if better {
                        best_ratio = ratio;
                        leaving = Some(r);
                    }
                }
            }
            let Some(pr) = leaving else {
                return LpStatus::Unbounded;
            };
            self.pivot(pr, pc);
            local_iters += 1;
        }
    }
}

/// Solves the LP with the dense two-phase primal simplex.
///
/// # Panics
///
/// Panics if the problem arrays have inconsistent lengths, a lower bound
/// is not finite, or a coefficient is NaN (callers are expected to
/// validate with [`crate::Model::validate`] first).
pub fn solve(p: &LpProblem) -> LpSolution {
    solve_with_deadline(p, None)
}

/// Like [`solve`], but gives up with [`LpStatus::TimeLimit`] once
/// `deadline` passes (checked inside the pivot loop).
///
/// # Panics
///
/// Same contract as [`solve`].
pub fn solve_with_deadline(p: &LpProblem, deadline: Option<std::time::Instant>) -> LpSolution {
    let n = p.objective.len();
    assert_eq!(p.lower.len(), n, "lower bound count mismatch");
    assert_eq!(p.upper.len(), n, "upper bound count mismatch");
    assert!(
        p.lower.iter().all(|l| l.is_finite()),
        "lower bounds must be finite"
    );

    // Shift variables: x = x' + l, x' >= 0. Collect all rows, including
    // upper-bound rows, as (coeffs, op, rhs) over x'.
    struct Row {
        coeffs: Vec<(usize, f64)>,
        op: ConstraintOp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(p.rows.len() + n);
    for row in &p.rows {
        let shift: f64 = row.coeffs.iter().map(|&(j, a)| a * p.lower[j]).sum();
        rows.push(Row {
            coeffs: row.coeffs.clone(),
            op: row.op,
            rhs: row.rhs - shift,
        });
    }
    for j in 0..n {
        if p.upper[j].is_finite() {
            let span = p.upper[j] - p.lower[j];
            rows.push(Row {
                coeffs: vec![(j, 1.0)],
                op: ConstraintOp::Leq,
                rhs: span,
            });
        }
    }

    // Normalise RHS to be non-negative.
    for row in &mut rows {
        if row.rhs < 0.0 {
            row.rhs = -row.rhs;
            for (_, a) in &mut row.coeffs {
                *a = -*a;
            }
            row.op = match row.op {
                ConstraintOp::Leq => ConstraintOp::Geq,
                ConstraintOp::Geq => ConstraintOp::Leq,
                ConstraintOp::Eq => ConstraintOp::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: structural (n) | slack/surplus (one per Leq/Geq row) |
    // artificial (one per Geq/Eq row).
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for row in &rows {
        match row.op {
            ConstraintOp::Leq => n_slack += 1,
            ConstraintOp::Geq => {
                n_slack += 1;
                n_art += 1;
            }
            ConstraintOp::Eq => n_art += 1,
        }
    }
    let ncols = n + n_slack + n_art;
    let w = ncols + 1;
    let mut t = Tableau {
        data: vec![0.0; (m + 1) * w],
        m,
        ncols,
        basis: vec![usize::MAX; m],
        iterations: 0,
    };

    let art_start = n + n_slack;
    let mut slack_next = n;
    let mut art_next = art_start;
    for (r, row) in rows.iter().enumerate() {
        for &(j, a) in &row.coeffs {
            let cur = t.at(r, j);
            t.set(r, j, cur + a);
        }
        t.set(r, ncols, row.rhs);
        match row.op {
            ConstraintOp::Leq => {
                t.set(r, slack_next, 1.0);
                t.basis[r] = slack_next;
                slack_next += 1;
            }
            ConstraintOp::Geq => {
                t.set(r, slack_next, -1.0);
                slack_next += 1;
                t.set(r, art_next, 1.0);
                t.basis[r] = art_next;
                art_next += 1;
            }
            ConstraintOp::Eq => {
                t.set(r, art_next, 1.0);
                t.basis[r] = art_next;
                art_next += 1;
            }
        }
    }

    let max_iters = 2000 + 60 * (m + ncols);

    // Phase 1: minimise the sum of artificials.
    if n_art > 0 {
        for c in art_start..ncols {
            t.set(m, c, 1.0);
        }
        // Zero out reduced costs of the basic artificials.
        for r in 0..m {
            if t.basis[r] >= art_start {
                let w2 = ncols + 1;
                for c in 0..w2 {
                    let v = t.data[m * w2 + c] - t.data[r * w2 + c];
                    t.data[m * w2 + c] = v;
                }
            }
        }
        let status = t.optimize(|_| true, max_iters, deadline);
        if status == LpStatus::IterationLimit || status == LpStatus::TimeLimit {
            return LpSolution {
                status,
                x: vec![0.0; n],
                objective: f64::NAN,
                iterations: t.iterations,
                start: WarmStart::Cold,
            };
        }
        let phase1_obj = -t.at(m, ncols);
        if phase1_obj > FEAS_TOL {
            return LpSolution {
                status: LpStatus::Infeasible,
                x: vec![0.0; n],
                objective: f64::NAN,
                iterations: t.iterations,
                start: WarmStart::Cold,
            };
        }
        // Pivot basic artificials out where possible.
        for r in 0..m {
            if t.basis[r] >= art_start {
                if let Some(c) = (0..art_start).find(|&c| t.at(r, c).abs() > 1e-7) {
                    t.pivot(r, c);
                }
                // If no pivot column exists the row is redundant; the
                // artificial stays basic at value 0, which is harmless as
                // long as artificial columns never re-enter (guaranteed by
                // the `allowed` filter below).
            }
        }
    }

    // Phase 2: install the real objective row.
    {
        let w2 = ncols + 1;
        for c in 0..w2 {
            t.data[m * w2 + c] = 0.0;
        }
        for (j, &cost) in p.objective.iter().enumerate() {
            t.set(m, j, cost);
        }
        for r in 0..m {
            let b = t.basis[r];
            if b < n {
                let cost = p.objective[b];
                if cost != 0.0 {
                    for c in 0..w2 {
                        let v = t.data[m * w2 + c] - cost * t.data[r * w2 + c];
                        t.data[m * w2 + c] = v;
                    }
                }
            }
        }
    }
    let status = t.optimize(|c| c < art_start, max_iters, deadline);
    if status != LpStatus::Optimal {
        return LpSolution {
            status,
            x: vec![0.0; n],
            objective: f64::NAN,
            iterations: t.iterations,
            start: WarmStart::Cold,
        };
    }

    // Extract the primal point.
    let mut x = p.lower.clone();
    for r in 0..m {
        let b = t.basis[r];
        if b < n {
            x[b] = p.lower[b] + t.at(r, ncols);
        }
    }
    let objective = p.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    LpSolution {
        status: LpStatus::Optimal,
        x,
        objective,
        iterations: t.iterations,
        start: WarmStart::Cold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(coeffs: &[(usize, f64)], op: ConstraintOp, rhs: f64) -> crate::simplex::LpRow {
        crate::simplex::LpRow {
            coeffs: coeffs.to_vec(),
            op,
            rhs,
        }
    }

    #[test]
    fn textbook_two_var_max() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (min form: negate).
        let p = LpProblem {
            objective: vec![-3.0, -5.0],
            rows: vec![
                row(&[(0, 1.0)], ConstraintOp::Leq, 4.0),
                row(&[(1, 2.0)], ConstraintOp::Leq, 12.0),
                row(&[(0, 3.0), (1, 2.0)], ConstraintOp::Leq, 18.0),
            ],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(
            (s.objective - (-36.0)).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!((s.x[0] - 2.0).abs() < 1e-6 && (s.x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2.
        let p = LpProblem {
            objective: vec![0.0],
            rows: vec![
                row(&[(0, 1.0)], ConstraintOp::Leq, 1.0),
                row(&[(0, 1.0)], ConstraintOp::Geq, 2.0),
            ],
            lower: vec![0.0],
            upper: vec![f64::INFINITY],
        };
        assert_eq!(solve(&p).status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x, x >= 0 unconstrained above.
        let p = LpProblem {
            objective: vec![-1.0],
            rows: vec![],
            lower: vec![0.0],
            upper: vec![f64::INFINITY],
        };
        assert_eq!(solve(&p).status, LpStatus::Unbounded);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Beale's classic cycling example.
        let p = LpProblem {
            objective: vec![-0.75, 150.0, -0.02, 6.0],
            rows: vec![
                row(
                    &[(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
                    ConstraintOp::Leq,
                    0.0,
                ),
                row(
                    &[(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
                    ConstraintOp::Leq,
                    0.0,
                ),
                row(&[(2, 1.0)], ConstraintOp::Leq, 1.0),
            ],
            lower: vec![0.0; 4],
            upper: vec![f64::INFINITY; 4],
        };
        let s = solve(&p);
        assert_eq!(
            s.status,
            LpStatus::Optimal,
            "Beale's example must terminate"
        );
        assert!(
            (s.objective - (-0.05)).abs() < 1e-6,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn expired_deadline_reports_time_limit() {
        let p = LpProblem {
            objective: vec![-1.0, -1.0],
            rows: vec![row(&[(0, 1.0), (1, 1.0)], ConstraintOp::Leq, 4.0)],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
        };
        let past = std::time::Instant::now() - std::time::Duration::from_millis(1);
        assert_eq!(
            solve_with_deadline(&p, Some(past)).status,
            LpStatus::TimeLimit
        );
    }
}
