//! Exact-arithmetic re-verification of solver certificates.
//!
//! Floating-point simplex verdicts are *claims*; this module turns them
//! into *checked claims*. [`MilpSolver`](crate::MilpSolver) (with
//! [`MilpOptions::certificate`](crate::MilpOptions) enabled) and
//! [`SimplexEngine`](crate::simplex::SimplexEngine) (via
//! `set_certify`) emit proof artifacts alongside their answers:
//!
//! * **LP optimal** — the final simplex multipliers. The checker computes
//!   the Lagrangian bound `L(y) = y·b + Σⱼ min over [lⱼ,uⱼ] of dⱼxⱼ`
//!   (with `dⱼ = cⱼ − y·Aⱼ`) in exact rational arithmetic; `L(y)` is a
//!   valid lower bound on the LP optimum for *any* `y`, so
//!   `L(y) ≥ c·x − ε` together with exact primal feasibility of `x`
//!   certifies optimality without trusting the basis.
//! * **LP infeasible** — a Farkas ray `y` (the phase-1 multipliers). The
//!   checker verifies `y·b > max over the bound box of Σⱼ (y·Aⱼ)xⱼ`
//!   exactly: no point in the box can satisfy all rows at once.
//! * **MILP verdicts** — the branching tree log: every leaf carries an
//!   exact certificate (a Farkas ray, a dual bound dominating the final
//!   incumbent, an integral LP optimum, or an empty variable domain),
//!   every internal node records its integer split, and the checker
//!   replays the tree from the root to confirm the leaves partition the
//!   search box. The incumbent is re-lifted through the certificate's
//!   presolve action list and re-checked against the **original** model.
//!
//! All arithmetic runs on [`BigRat`] — every finite `f64` converts
//! losslessly — so a passing certificate is a machine-checked proof up to
//! the explicitly declared tolerances (`1e-6`, scaled by row norms).
//!
//! **Trust boundary.** Leaf and incumbent certificates are re-proved from
//! scratch. Presolve reductions are *audited* (actions must respect the
//! original bounds, integrality and variable mapping, and the incumbent
//! must survive an independent replay of the action list) but their
//! deductions are not re-derived; the equivalence of the reduced model to
//! the original rests on the presolve implementation. When presolve
//! certifies a terminal verdict itself, the solver in certificate mode
//! re-proves that verdict by branch-and-bound on the *original* model, so
//! terminal `Infeasible`/`Optimal` answers always carry a full tree proof.

use crate::bigrat::BigRat;
use crate::model::{ConstraintOp, Model, Sense, VarKind};
use crate::simplex::LpCertificate;
use crate::solution::{MilpOutcome, SolveStatus};
use std::fmt;

/// Base feasibility/gap tolerance; row checks scale it by `1 + Σ|aᵢⱼ|`.
const TOL: f64 = 1e-6;
/// Tolerance for comparing the replayed postsolve against the reported
/// incumbent (pure `f64` replay of identical operations).
const REPLAY_TOL: f64 = 1e-9;

// ---------------------------------------------------------------------------
// Certificate data
// ---------------------------------------------------------------------------

/// One recorded presolve reduction, mirroring the internal action stack of
/// [`mod@crate::presolve`] for certification.
#[derive(Debug, Clone, PartialEq)]
pub enum PresolveAction {
    /// Variable `var` (original index) was fixed to `value`.
    Fix {
        /// Original-model variable index.
        var: usize,
        /// The fixed value.
        value: f64,
    },
    /// Variable `var` was substituted out of the equality
    /// `coeff·var + Σ terms = rhs`; restored as
    /// `clamp((rhs − Σ aᵢxᵢ)/coeff, lb, ub)`.
    Substitute {
        /// Original-model variable index.
        var: usize,
        /// Coefficient of `var` in the defining row (non-zero).
        coeff: f64,
        /// Right-hand side of the defining row.
        rhs: f64,
        /// Other `(variable, coefficient)` terms of the defining row.
        terms: Vec<(usize, f64)>,
        /// Lower clamp bound (the variable's bounds when substituted).
        lb: f64,
        /// Upper clamp bound.
        ub: f64,
    },
}

/// The presolve half of a [`MilpCertificate`]: the reduction action list
/// plus the original→reduced variable mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct PresolveCertificate {
    /// Variable count of the original model.
    pub original_vars: usize,
    /// Original index → reduced index (`None` when eliminated).
    pub forward: Vec<Option<usize>>,
    /// Reduction actions in the order presolve applied them.
    pub actions: Vec<PresolveAction>,
}

/// The proof artifact attached to one branch-and-bound leaf.
#[derive(Debug, Clone, PartialEq)]
pub enum LeafCert {
    /// The node's variable box is empty: `lower[var] > upper[var]`.
    EmptyBox {
        /// Reduced-model variable with an empty domain.
        var: usize,
    },
    /// The node's LP relaxation is infeasible; `farkas` are row
    /// multipliers whose aggregated row no point in the box satisfies.
    Infeasible {
        /// Farkas row multipliers (one per reduced-model constraint).
        farkas: Vec<f64>,
    },
    /// The node was pruned: the dual bound from `duals` dominates the
    /// final incumbent.
    Bound {
        /// Simplex multipliers of the node's optimal LP basis.
        duals: Vec<f64>,
        /// The solver's floating-point node bound. The checker recomputes
        /// the bound exactly from `duals` and requires the two to agree
        /// (strong duality at the leaf's basis), so neither field can be
        /// corrupted independently.
        bound: f64,
    },
    /// The node's LP optimum was integral (an incumbent candidate).
    Integral {
        /// The integral LP optimum (reduced-model variables, integer
        /// variables rounded).
        x: Vec<f64>,
        /// Simplex multipliers of the node's optimal basis; they bound
        /// the whole subtree at `x`'s objective.
        duals: Vec<f64>,
        /// Internal minimisation-form objective of `x`.
        objective: f64,
    },
}

/// One node of the recorded branching tree.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCert {
    /// `(parent index, is_up_child)`; `None` exactly for the root. A
    /// parent always precedes its children in the tree vector.
    pub parent: Option<(usize, bool)>,
    /// `(variable, floor)` when the node branched: the down child gets
    /// `upper[var] = floor`, the up child `lower[var] = floor + 1`.
    pub branch: Option<(usize, f64)>,
    /// The leaf proof when the node was not expanded further.
    pub leaf: Option<LeafCert>,
}

/// Proof log of one branch-and-bound run, attached to
/// [`MilpOutcome::certificate`] when [`crate::MilpOptions::certificate`]
/// is enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpCertificate {
    /// The model the tree ran on: the presolve-reduced model, or a copy
    /// of the original when presolve did not reduce (or was disabled).
    pub reduced: Model,
    /// Presolve reduction record (`None` when the tree ran on the
    /// original model).
    pub presolve: Option<PresolveCertificate>,
    /// Root-analysis probing log: fixings derived by 0/1 probing on the
    /// reduced model, in derivation order. Each is re-derived by exact
    /// rational interval propagation during the audit, then folded into
    /// the base bounds the tree proof is checked under.
    pub analysis: Vec<crate::analyze::ProbeFixing>,
    /// The branching tree; index 0 is the root.
    pub tree: Vec<NodeCert>,
    /// The final incumbent in reduced-model variable space.
    pub incumbent_reduced: Option<Vec<f64>>,
    /// Internal minimisation-form cutoff derived from
    /// [`crate::MilpOptions::initial_incumbent`], if one was supplied.
    pub initial_cutoff: Option<f64>,
    /// `true` when the search exhausted the tree (no node, time or
    /// iteration limit fired); only complete trees prove
    /// optimality/infeasibility.
    pub complete: bool,
}

/// What a successful [`certify_outcome`] run verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CertifySummary {
    /// Branching tree nodes audited.
    pub nodes: usize,
    /// Leaf certificates re-proved in exact arithmetic.
    pub leaves: usize,
    /// Presolve actions audited.
    pub actions: usize,
    /// Root-analysis probing fixings re-derived exactly.
    pub probe_fixings: usize,
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a certificate was rejected, naming the violated row, bound, leaf
/// or presolve action.
#[derive(Debug, Clone, PartialEq)]
pub enum CertifyError {
    /// The outcome carries no certificate to check.
    MissingCertificate,
    /// The certificate's shape does not match its claim (wrong vector
    /// lengths, missing incumbent, reduced model mismatch, …).
    Malformed {
        /// What is inconsistent.
        detail: String,
    },
    /// A certificate number is NaN or infinite.
    BadValue {
        /// Which quantity.
        what: String,
    },
    /// A claimed-feasible point violates a constraint row.
    RowViolation {
        /// Tree node of the offending point (`None`: the incumbent
        /// against the original model).
        leaf: Option<usize>,
        /// Violated row index.
        row: usize,
        /// Exact activity vs right-hand side.
        detail: String,
    },
    /// A claimed-feasible point violates a variable bound.
    BoundViolation {
        /// Tree node (`None`: the incumbent).
        leaf: Option<usize>,
        /// Violated variable index.
        var: usize,
        /// Exact value vs bound.
        detail: String,
    },
    /// An integer variable holds a fractional value.
    NotIntegral {
        /// Tree node (`None`: the incumbent).
        leaf: Option<usize>,
        /// The variable.
        var: usize,
        /// Its fractional value.
        value: f64,
    },
    /// A dual/Farkas multiplier has the wrong sign for its row operator.
    DualSign {
        /// Tree node (`None`: a standalone LP certificate).
        leaf: Option<usize>,
        /// The row whose multiplier is mis-signed.
        row: usize,
    },
    /// A dual/Farkas aggregation needs a bound the variable does not
    /// have (the term is infinite).
    UnboundedTerm {
        /// Tree node (`None`: a standalone LP certificate).
        leaf: Option<usize>,
        /// The variable with the missing bound.
        var: usize,
    },
    /// A leaf's exact dual bound fails to dominate the incumbent.
    WeakBound {
        /// The offending tree node.
        leaf: usize,
        /// Exact bound vs required threshold.
        detail: String,
    },
    /// A Farkas ray fails to prove infeasibility (`y·b` does not exceed
    /// the box's maximum activity).
    FarkasGap {
        /// Tree node (`None`: a standalone LP certificate).
        leaf: Option<usize>,
        /// Exact `y·b` vs maximum activity.
        detail: String,
    },
    /// A claimed objective value differs from its exact recomputation.
    ObjectiveMismatch {
        /// Tree node (`None`: the incumbent).
        leaf: Option<usize>,
        /// Exact value vs claim.
        detail: String,
    },
    /// The branching tree is structurally invalid (missing child,
    /// fractional split, branch on a continuous variable, …).
    TreeMalformed {
        /// The offending node.
        node: usize,
        /// What is wrong.
        detail: String,
    },
    /// A presolve action is inconsistent with the original model.
    Presolve {
        /// Index into the action list (`None`: the variable mapping).
        index: Option<usize>,
        /// What is wrong.
        detail: String,
    },
    /// Replaying the certificate's presolve actions over the reduced
    /// incumbent disagrees with the reported solution.
    IncumbentMismatch {
        /// First disagreeing original-model variable.
        var: usize,
        /// Replayed vs reported value.
        detail: String,
    },
    /// A root-analysis probing fixing could not be re-derived by exact
    /// interval propagation (or is malformed).
    Analysis {
        /// Index into the certificate's probing log.
        index: usize,
        /// What failed.
        detail: String,
    },
    /// Optimality/infeasibility is claimed but the tree is incomplete
    /// (a node, time or iteration limit fired).
    Incomplete,
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn at(leaf: &Option<usize>) -> String {
            leaf.map_or_else(String::new, |l| format!(" at tree node {l}"))
        }
        match self {
            CertifyError::MissingCertificate => write!(f, "outcome carries no certificate"),
            CertifyError::Malformed { detail } => write!(f, "malformed certificate: {detail}"),
            CertifyError::BadValue { what } => write!(f, "non-finite certificate value: {what}"),
            CertifyError::RowViolation { leaf, row, detail } => {
                write!(f, "row {row} violated{}: {detail}", at(leaf))
            }
            CertifyError::BoundViolation { leaf, var, detail } => {
                write!(f, "bound of variable {var} violated{}: {detail}", at(leaf))
            }
            CertifyError::NotIntegral { leaf, var, value } => {
                write!(
                    f,
                    "integer variable {var} holds fractional value {value}{}",
                    at(leaf)
                )
            }
            CertifyError::DualSign { leaf, row } => {
                write!(
                    f,
                    "dual multiplier of row {row} has the wrong sign{}",
                    at(leaf)
                )
            }
            CertifyError::UnboundedTerm { leaf, var } => {
                write!(
                    f,
                    "dual aggregation over variable {var} is unbounded{}",
                    at(leaf)
                )
            }
            CertifyError::WeakBound { leaf, detail } => {
                write!(f, "dual bound at tree node {leaf} is too weak: {detail}")
            }
            CertifyError::FarkasGap { leaf, detail } => {
                write!(f, "Farkas ray proves nothing{}: {detail}", at(leaf))
            }
            CertifyError::ObjectiveMismatch { leaf, detail } => {
                write!(f, "objective mismatch{}: {detail}", at(leaf))
            }
            CertifyError::TreeMalformed { node, detail } => {
                write!(f, "branching tree invalid at node {node}: {detail}")
            }
            CertifyError::Presolve { index, detail } => match index {
                Some(i) => write!(f, "presolve action {i} rejected: {detail}"),
                None => write!(f, "presolve record rejected: {detail}"),
            },
            CertifyError::IncumbentMismatch { var, detail } => {
                write!(f, "postsolve replay disagrees at variable {var}: {detail}")
            }
            CertifyError::Analysis { index, detail } => {
                write!(f, "analysis fixing {index} rejected: {detail}")
            }
            CertifyError::Incomplete => {
                write!(f, "terminal verdict claimed on an incomplete tree")
            }
        }
    }
}

impl std::error::Error for CertifyError {}

// ---------------------------------------------------------------------------
// Rational view of a model
// ---------------------------------------------------------------------------

/// One exact constraint row: sparse coefficients, operator, right-hand side.
type RatRow = (Vec<(usize, BigRat)>, ConstraintOp, BigRat);

/// A model lowered to exact rationals: rows, internal minimisation-form
/// objective, and integrality flags.
struct RatModel {
    rows: Vec<RatRow>,
    /// Per-row `1 + Σ|aᵢⱼ|`, the row-norm scale for feasibility checks.
    row_scale: Vec<BigRat>,
    /// Internal minimisation-form structural costs (`sense`-signed).
    cost: Vec<BigRat>,
    n: usize,
    is_int: Vec<bool>,
    integral_objective: bool,
}

fn rat(v: f64, what: impl Fn() -> String) -> Result<BigRat, CertifyError> {
    BigRat::from_f64(v).ok_or_else(|| CertifyError::BadValue { what: what() })
}

impl RatModel {
    fn build(model: &Model) -> Result<Self, CertifyError> {
        let n = model.var_count();
        let sign = match model.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut cost = vec![BigRat::zero(); n];
        for (v, c) in model.objective().terms() {
            cost[v.index()] = rat(sign * c, || format!("objective coefficient of {v}"))?;
        }
        let mut rows = Vec::with_capacity(model.constraint_count());
        let mut row_scale = Vec::with_capacity(model.constraint_count());
        for (i, c) in model.constraints().iter().enumerate() {
            let mut terms = Vec::new();
            let mut scale = BigRat::one();
            for (v, a) in c.expr.terms() {
                let a = rat(a, || format!("row {i} coefficient of {v}"))?;
                scale = &scale + &a.abs();
                terms.push((v.index(), a));
            }
            rows.push((terms, c.op, rat(c.rhs, || format!("row {i} rhs"))?));
            row_scale.push(scale);
        }
        let is_int = (0..n)
            .map(|j| {
                matches!(
                    model.var_kind(crate::expr::VarId(j)),
                    VarKind::Integer | VarKind::Binary
                )
            })
            .collect();
        Ok(RatModel {
            rows,
            row_scale,
            cost,
            n,
            is_int,
            integral_objective: model.objective_is_integral(),
        })
    }

    /// Aggregated structural coefficients `y·Aⱼ` for row multipliers `y`,
    /// plus the rationalised multipliers themselves.
    fn aggregate(
        &self,
        mult: &[f64],
        leaf: Option<usize>,
    ) -> Result<(Vec<BigRat>, Vec<BigRat>), CertifyError> {
        if mult.len() != self.rows.len() {
            return Err(CertifyError::Malformed {
                detail: format!(
                    "multiplier vector has {} entries for {} rows",
                    mult.len(),
                    self.rows.len()
                ),
            });
        }
        let ys = mult
            .iter()
            .enumerate()
            .map(|(i, &y)| rat(y, || format!("multiplier of row {i} (leaf {leaf:?})")))
            .collect::<Result<Vec<_>, _>>()?;
        let mut agg = vec![BigRat::zero(); self.n];
        for ((terms, _, _), y) in self.rows.iter().zip(&ys) {
            if y.is_zero() {
                continue;
            }
            for (j, a) in terms {
                agg[*j] = &agg[*j] + &(y * a);
            }
        }
        Ok((ys, agg))
    }

    /// Checks the row-operator sign conditions that make slack terms of a
    /// dual aggregation vanish: `y ≤ 0` on `≤` rows, `y ≥ 0` on `≥` rows.
    fn check_signs(&self, ys: &[BigRat], leaf: Option<usize>) -> Result<(), CertifyError> {
        for (i, ((_, op, _), y)) in self.rows.iter().zip(ys).enumerate() {
            let bad = match op {
                ConstraintOp::Leq => y.is_positive(),
                ConstraintOp::Geq => y.is_negative(),
                ConstraintOp::Eq => false,
            };
            if bad {
                return Err(CertifyError::DualSign { leaf, row: i });
            }
        }
        Ok(())
    }

    /// The exact Lagrangian bound `L(y)` of the internal minimisation LP
    /// under box `[lower, upper]` — a valid lower bound for any sign-valid
    /// `y`.
    fn dual_bound(
        &self,
        lower: &[f64],
        upper: &[f64],
        duals: &[f64],
        leaf: Option<usize>,
    ) -> Result<BigRat, CertifyError> {
        let (ys, agg) = self.aggregate(duals, leaf)?;
        self.check_signs(&ys, leaf)?;
        let mut acc = BigRat::zero();
        for ((_, _, rhs), y) in self.rows.iter().zip(&ys) {
            acc = &acc + &(y * rhs);
        }
        for j in 0..self.n {
            let d = &self.cost[j] - &agg[j];
            if d.is_positive() {
                if !lower[j].is_finite() {
                    return Err(CertifyError::UnboundedTerm { leaf, var: j });
                }
                acc = &acc + &(&d * &rat(lower[j], || format!("lower bound of {j}"))?);
            } else if d.is_negative() {
                if !upper[j].is_finite() {
                    return Err(CertifyError::UnboundedTerm { leaf, var: j });
                }
                acc = &acc + &(&d * &rat(upper[j], || format!("upper bound of {j}"))?);
            }
        }
        Ok(acc)
    }

    /// Verifies that `farkas` proves the box `[lower, upper]` admits no
    /// point satisfying all rows: `y·b > max Σⱼ (y·Aⱼ)xⱼ` exactly.
    fn farkas_check(
        &self,
        lower: &[f64],
        upper: &[f64],
        farkas: &[f64],
        leaf: Option<usize>,
    ) -> Result<(), CertifyError> {
        let (ys, agg) = self.aggregate(farkas, leaf)?;
        self.check_signs(&ys, leaf)?;
        let mut lhs = BigRat::zero();
        for ((_, _, rhs), y) in self.rows.iter().zip(&ys) {
            lhs = &lhs + &(y * rhs);
        }
        let mut max_act = BigRat::zero();
        for (j, a) in agg.iter().enumerate() {
            if a.is_positive() {
                if !upper[j].is_finite() {
                    return Err(CertifyError::UnboundedTerm { leaf, var: j });
                }
                max_act = &max_act + &(a * &rat(upper[j], || format!("upper bound of {j}"))?);
            } else if a.is_negative() {
                if !lower[j].is_finite() {
                    return Err(CertifyError::UnboundedTerm { leaf, var: j });
                }
                max_act = &max_act + &(a * &rat(lower[j], || format!("lower bound of {j}"))?);
            }
        }
        if lhs > max_act {
            Ok(())
        } else {
            Err(CertifyError::FarkasGap {
                leaf,
                detail: format!(
                    "y·b = {} does not exceed the box's maximum activity {}",
                    lhs.to_f64(),
                    max_act.to_f64()
                ),
            })
        }
    }

    /// Exact primal feasibility of `x` under box `[lower, upper]`:
    /// bounds within `TOL`, rows within `TOL·(1 + Σ|aᵢⱼ|)`, and (when
    /// `ints` is true) exact integrality of integer variables.
    fn primal_check(
        &self,
        lower: &[f64],
        upper: &[f64],
        x: &[f64],
        ints: bool,
        leaf: Option<usize>,
    ) -> Result<(), CertifyError> {
        if x.len() != self.n {
            return Err(CertifyError::Malformed {
                detail: format!("point has {} entries for {} variables", x.len(), self.n),
            });
        }
        let tol = rat(TOL, || "tolerance".to_string())?;
        let xs = x
            .iter()
            .enumerate()
            .map(|(j, &v)| rat(v, || format!("value of variable {j}")))
            .collect::<Result<Vec<_>, _>>()?;
        for (j, xv) in xs.iter().enumerate() {
            if lower[j].is_finite() {
                let l = rat(lower[j], || format!("lower bound of {j}"))?;
                if *xv < &l - &tol {
                    return Err(CertifyError::BoundViolation {
                        leaf,
                        var: j,
                        detail: format!("{} < lower bound {}", xv.to_f64(), lower[j]),
                    });
                }
            }
            if upper[j].is_finite() {
                let u = rat(upper[j], || format!("upper bound of {j}"))?;
                if *xv > &u + &tol {
                    return Err(CertifyError::BoundViolation {
                        leaf,
                        var: j,
                        detail: format!("{} > upper bound {}", xv.to_f64(), upper[j]),
                    });
                }
            }
            if ints && self.is_int[j] && !xv.is_integer() {
                return Err(CertifyError::NotIntegral {
                    leaf,
                    var: j,
                    value: x[j],
                });
            }
        }
        for (i, (terms, op, rhs)) in self.rows.iter().enumerate() {
            let mut act = BigRat::zero();
            for (j, a) in terms {
                act = &act + &(a * &xs[*j]);
            }
            let rtol = &tol * &self.row_scale[i];
            let ok = match op {
                ConstraintOp::Leq => act <= rhs + &rtol,
                ConstraintOp::Geq => act >= rhs - &rtol,
                ConstraintOp::Eq => (&act - rhs).abs() <= rtol,
            };
            if !ok {
                return Err(CertifyError::RowViolation {
                    leaf,
                    row: i,
                    detail: format!("activity {} vs rhs {} ({op:?})", act.to_f64(), rhs.to_f64()),
                });
            }
        }
        Ok(())
    }

    /// Exact internal minimisation-form objective of `x` (no constant).
    fn internal_objective(&self, x: &[f64]) -> Result<BigRat, CertifyError> {
        let mut acc = BigRat::zero();
        for (j, c) in self.cost.iter().enumerate() {
            if !c.is_zero() {
                acc = &acc + &(c * &rat(x[j], || format!("value of variable {j}"))?);
            }
        }
        Ok(acc)
    }
}

// ---------------------------------------------------------------------------
// LP-level certification
// ---------------------------------------------------------------------------

/// Re-verifies a single-LP certificate against `model` under structural
/// bounds `[lower, upper]` (the bounds passed to the simplex solve, e.g.
/// from [`Model::to_sparse_lp`]).
///
/// The `objective` in an [`LpCertificate::Optimal`] is in internal
/// minimisation form (sense-signed, no constant), matching
/// [`crate::simplex::LpSolution::objective`].
///
/// # Errors
///
/// Returns the first [`CertifyError`] encountered; `Ok(())` means the
/// certificate is an exact proof (up to the documented tolerances).
pub fn certify_lp(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    cert: &LpCertificate,
) -> Result<(), CertifyError> {
    let rm = RatModel::build(model)?;
    if lower.len() != rm.n || upper.len() != rm.n {
        return Err(CertifyError::Malformed {
            detail: "bound vectors do not match the variable count".to_string(),
        });
    }
    match cert {
        LpCertificate::Optimal {
            duals,
            x,
            objective,
        } => {
            rm.primal_check(lower, upper, x, false, None)?;
            let obj = rm.internal_objective(x)?;
            let claimed = rat(*objective, || "claimed objective".to_string())?;
            let otol = {
                let mut scale = BigRat::one();
                for c in &rm.cost {
                    scale = &scale + &c.abs();
                }
                &rat(TOL, || "tolerance".to_string())? * &scale
            };
            if (&obj - &claimed).abs() > otol {
                return Err(CertifyError::ObjectiveMismatch {
                    leaf: None,
                    detail: format!("exact c·x = {} vs claimed {}", obj.to_f64(), objective),
                });
            }
            let bound = rm.dual_bound(lower, upper, duals, None)?;
            if bound < &obj - &otol {
                return Err(CertifyError::WeakBound {
                    leaf: 0,
                    detail: format!(
                        "L(y) = {} below primal value {}",
                        bound.to_f64(),
                        obj.to_f64()
                    ),
                });
            }
            Ok(())
        }
        LpCertificate::Infeasible { farkas } => rm.farkas_check(lower, upper, farkas, None),
    }
}

// ---------------------------------------------------------------------------
// MILP certification
// ---------------------------------------------------------------------------

/// Re-verifies a branch-and-bound outcome's certificate against the
/// **original** model in exact rational arithmetic.
///
/// What is proved depends on [`MilpOutcome::status`]:
///
/// * [`SolveStatus::Optimal`] — the incumbent is feasible in the original
///   model with the claimed objective, and the complete branching tree
///   shows no better solution of the reduced model exists.
/// * [`SolveStatus::Infeasible`] — every leaf of the complete tree is an
///   exact infeasibility (or dominated-bound, under an initial cutoff)
///   proof.
/// * [`SolveStatus::Feasible`] — the incumbent is feasible with the
///   claimed objective (no optimality claim to check).
///
/// # Errors
///
/// Returns the first [`CertifyError`] encountered, naming the violated
/// row, bound, leaf or presolve action.
pub fn certify_outcome(
    original: &Model,
    outcome: &MilpOutcome,
) -> Result<CertifySummary, CertifyError> {
    let cert = outcome
        .certificate
        .as_ref()
        .ok_or(CertifyError::MissingCertificate)?;
    if !matches!(
        outcome.status,
        SolveStatus::Optimal | SolveStatus::Feasible | SolveStatus::Infeasible
    ) {
        return Err(CertifyError::Malformed {
            detail: format!("status {:?} has no certifiable claim", outcome.status),
        });
    }
    let mut summary = CertifySummary {
        nodes: cert.tree.len(),
        ..CertifySummary::default()
    };

    // Presolve audit: mapping + per-action consistency with the original.
    if let Some(p) = &cert.presolve {
        summary.actions = p.actions.len();
        audit_presolve(original, &cert.reduced, p)?;
    } else if cert.reduced != *original {
        return Err(CertifyError::Malformed {
            detail: "no presolve record, but the tree model differs from the original".to_string(),
        });
    }

    let reduced_rm = RatModel::build(&cert.reduced)?;
    let (mut base_lower, mut base_upper): (Vec<f64>, Vec<f64>) = (0..cert.reduced.var_count())
        .map(|j| cert.reduced.var_bounds(crate::expr::VarId(j)))
        .unzip();

    // Root-analysis audit: re-derive every probing fixing by exact
    // interval propagation, folding each into the base bounds in
    // derivation order — the incumbent check and the tree walk below
    // then run under exactly the box the solver searched.
    summary.probe_fixings = cert.analysis.len();
    audit_analysis(
        &reduced_rm,
        &mut base_lower,
        &mut base_upper,
        &cert.analysis,
    )?;

    // Incumbent: replay the postsolve, then re-check everything exactly
    // against the original model.
    let mut incumbent_internal: Option<BigRat> = None;
    match (&outcome.best, &cert.incumbent_reduced) {
        (Some(best), Some(reduced_x)) => {
            reduced_rm.primal_check(&base_lower, &base_upper, reduced_x, true, None)?;
            incumbent_internal = Some(reduced_rm.internal_objective(reduced_x)?);
            let replayed = replay_restore(cert.presolve.as_ref(), original.var_count(), reduced_x)?;
            if replayed.len() != best.values().len() {
                return Err(CertifyError::Malformed {
                    detail: "restored incumbent length mismatch".to_string(),
                });
            }
            for (v, (a, b)) in replayed.iter().zip(best.values()).enumerate() {
                // NaN-safe: an incomparable (NaN) difference must also reject.
                let within = matches!(
                    (a - b).abs().partial_cmp(&REPLAY_TOL),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                );
                if !within {
                    return Err(CertifyError::IncumbentMismatch {
                        var: v,
                        detail: format!("replayed {a} vs reported {b}"),
                    });
                }
            }
            let original_rm = RatModel::build(original)?;
            original_rm.primal_check(
                &original_bounds(original).0,
                &original_bounds(original).1,
                best.values(),
                true,
                None,
            )?;
            // Exact original-model objective vs the reported value.
            let mut obj = rat(original.objective().constant(), || {
                "objective constant".to_string()
            })?;
            let mut scale = BigRat::one();
            for (v, c) in original.objective().terms() {
                let c = rat(c, || format!("objective coefficient of {v}"))?;
                scale = &scale + &c.abs();
                obj = &obj + &(&c * &rat(best.values()[v.index()], || format!("value of {v}"))?);
            }
            let otol = &rat(TOL, || "tolerance".to_string())? * &scale;
            let claimed = rat(best.objective, || "reported objective".to_string())?;
            if (&obj - &claimed).abs() > otol {
                return Err(CertifyError::ObjectiveMismatch {
                    leaf: None,
                    detail: format!(
                        "exact objective {} vs reported {}",
                        obj.to_f64(),
                        best.objective
                    ),
                });
            }
        }
        (None, None) => {}
        _ => {
            return Err(CertifyError::Malformed {
                detail: "incumbent present in exactly one of outcome and certificate".to_string(),
            });
        }
    }
    match outcome.status {
        SolveStatus::Optimal | SolveStatus::Feasible if incumbent_internal.is_none() => {
            return Err(CertifyError::Malformed {
                detail: "feasible verdict without an incumbent".to_string(),
            });
        }
        SolveStatus::Infeasible if incumbent_internal.is_some() => {
            return Err(CertifyError::Malformed {
                detail: "infeasible verdict with an incumbent".to_string(),
            });
        }
        _ => {}
    }

    // Tree audit: only terminal verdicts make a claim about the whole
    // search space.
    if matches!(
        outcome.status,
        SolveStatus::Optimal | SolveStatus::Infeasible
    ) {
        if !cert.complete {
            return Err(CertifyError::Incomplete);
        }
        let threshold = match outcome.status {
            SolveStatus::Optimal => incumbent_internal.clone(),
            _ => match cert.initial_cutoff {
                Some(c) => Some(rat(c, || "initial cutoff".to_string())?),
                None => None,
            },
        };
        summary.leaves = walk_tree(
            &reduced_rm,
            &base_lower,
            &base_upper,
            &cert.tree,
            threshold.as_ref(),
        )?;
    }
    Ok(summary)
}

/// Audits the root-analysis probing log. Each [`ProbeFixing`] claims
/// that fixing `var` to `probed` propagates to an empty domain, and that
/// `{probed, value}` are exactly the two points of the variable's
/// current domain — so every feasible point has `var = value`. The claim
/// is re-derived by [`exact_probe_refutes`], the exact-rational mirror
/// of the f64 presolve propagator: no feasibility tolerance, exact
/// floor/ceil, and more passes, hence at least as strong as the pass
/// that made the deduction. A fixing that fails to re-derive rejects the
/// whole certificate; one that succeeds is folded into the base bounds
/// before the next is audited (probing chains through earlier fixings).
fn audit_analysis(
    rm: &RatModel,
    base_lower: &mut [f64],
    base_upper: &mut [f64],
    fixings: &[crate::analyze::ProbeFixing],
) -> Result<(), CertifyError> {
    for (index, fx) in fixings.iter().enumerate() {
        let fail = |detail: String| CertifyError::Analysis { index, detail };
        if fx.var >= rm.n {
            return Err(fail(format!("variable {} out of range", fx.var)));
        }
        if !fx.value.is_finite() || !fx.probed.is_finite() {
            return Err(fail("non-finite fixing value".to_string()));
        }
        if !rm.is_int[fx.var] {
            return Err(fail(format!("variable {} is not integer", fx.var)));
        }
        // Refuting `probed` only proves `value` when those are the only
        // two points of the current (integer) domain.
        let (lb, ub) = (base_lower[fx.var], base_upper[fx.var]);
        let two_point_domain = fx.value.fract() == 0.0
            && fx.probed.fract() == 0.0
            && (fx.value - fx.probed).abs() == 1.0
            && fx.value.min(fx.probed) == lb
            && fx.value.max(fx.probed) == ub;
        if !two_point_domain {
            return Err(fail(format!(
                "domain [{lb}, {ub}] of variable {} is not exactly {{{}, {}}}",
                fx.var, fx.probed, fx.value
            )));
        }
        let mut lo: Vec<Option<BigRat>> = base_lower.iter().map(|&b| BigRat::from_f64(b)).collect();
        let mut up: Vec<Option<BigRat>> = base_upper.iter().map(|&b| BigRat::from_f64(b)).collect();
        lo[fx.var] = BigRat::from_f64(fx.probed);
        up[fx.var] = BigRat::from_f64(fx.probed);
        if !exact_probe_refutes(rm, &mut lo, &mut up) {
            return Err(fail(format!(
                "x{} = {} does not propagate to an empty domain, so x{} = {} is unproved",
                fx.var, fx.probed, fx.var, fx.value
            )));
        }
        base_lower[fx.var] = fx.value;
        base_upper[fx.var] = fx.value;
    }
    Ok(())
}

/// Exact interval propagation to a verdict: returns `true` when the box
/// (`None` = unbounded side) provably contains no feasible point. The
/// algorithm mirrors the f64 `presolve::Propagator` — row activity
/// bounds detect infeasibility, integer variables are tightened by exact
/// floor/ceil of the implied bound — but with zero tolerance, any-strict
/// improvement acceptance, and a higher pass cap, so it dominates every
/// deduction the f64 pass can soundly make.
fn exact_probe_refutes(
    rm: &RatModel,
    lower: &mut [Option<BigRat>],
    upper: &mut [Option<BigRat>],
) -> bool {
    const PASSES: usize = 24;
    for _ in 0..PASSES {
        let mut changed = false;
        for (terms, op, rhs) in &rm.rows {
            // Activity bounds with explicit infinity counting; `contrib`
            // caches each term's min/max contribution for the exclusion
            // step below.
            let mut min_fin = BigRat::zero();
            let mut max_fin = BigRat::zero();
            let mut min_inf = 0usize;
            let mut max_inf = 0usize;
            let mut contrib: Vec<(Option<BigRat>, Option<BigRat>)> =
                Vec::with_capacity(terms.len());
            for (v, a) in terms {
                let neg = a.is_negative();
                let (min_side, max_side) = if neg {
                    (&upper[*v], &lower[*v])
                } else {
                    (&lower[*v], &upper[*v])
                };
                let mn = min_side.as_ref().map(|b| a * b);
                let mx = max_side.as_ref().map(|b| a * b);
                match &mn {
                    Some(x) => min_fin = &min_fin + x,
                    None => min_inf += 1,
                }
                match &mx {
                    Some(x) => max_fin = &max_fin + x,
                    None => max_inf += 1,
                }
                contrib.push((mn, mx));
            }
            let check_low = !matches!(op, ConstraintOp::Geq);
            let check_high = !matches!(op, ConstraintOp::Leq);
            if (check_low && min_inf == 0 && min_fin > *rhs)
                || (check_high && max_inf == 0 && max_fin < *rhs)
            {
                return true;
            }
            // Integer tightenings from the implied per-variable bound.
            for (t, (v, a)) in terms.iter().enumerate() {
                let v = *v;
                if !rm.is_int[v] || a.is_zero() {
                    continue;
                }
                // ≤ side: a·x ≤ rhs − (min activity of the others).
                let others_min = match (min_inf, &contrib[t].0) {
                    (0, Some(own)) => Some(&min_fin - own),
                    (1, None) => Some(min_fin.clone()),
                    _ => None,
                };
                if check_low {
                    if let Some(others) = &others_min {
                        let b = &(rhs - others) / a;
                        if a.is_negative() {
                            let cand = b.ceil();
                            if lower[v].as_ref().is_none_or(|l| cand > *l) {
                                lower[v] = Some(cand);
                                changed = true;
                            }
                        } else {
                            let cand = b.floor();
                            if upper[v].as_ref().is_none_or(|u| cand < *u) {
                                upper[v] = Some(cand);
                                changed = true;
                            }
                        }
                    }
                }
                // ≥ side: a·x ≥ rhs − (max activity of the others).
                let others_max = match (max_inf, &contrib[t].1) {
                    (0, Some(own)) => Some(&max_fin - own),
                    (1, None) => Some(max_fin.clone()),
                    _ => None,
                };
                if check_high {
                    if let Some(others) = &others_max {
                        let b = &(rhs - others) / a;
                        if a.is_negative() {
                            let cand = b.floor();
                            if upper[v].as_ref().is_none_or(|u| cand < *u) {
                                upper[v] = Some(cand);
                                changed = true;
                            }
                        } else {
                            let cand = b.ceil();
                            if lower[v].as_ref().is_none_or(|l| cand > *l) {
                                lower[v] = Some(cand);
                                changed = true;
                            }
                        }
                    }
                }
                if let (Some(l), Some(u)) = (&lower[v], &upper[v]) {
                    if l > u {
                        return true;
                    }
                }
            }
        }
        if !changed {
            return false;
        }
    }
    false
}

fn original_bounds(model: &Model) -> (Vec<f64>, Vec<f64>) {
    (0..model.var_count())
        .map(|j| model.var_bounds(crate::expr::VarId(j)))
        .unzip()
}

/// Audits the presolve record against the original model: the forward
/// mapping must be an injection onto the reduced variables preserving
/// integrality and only tightening bounds, and every action must respect
/// the original bounds and kinds.
fn audit_presolve(
    original: &Model,
    reduced: &Model,
    p: &PresolveCertificate,
) -> Result<(), CertifyError> {
    let n = original.var_count();
    if p.original_vars != n || p.forward.len() != n {
        return Err(CertifyError::Presolve {
            index: None,
            detail: format!(
                "mapping covers {} variables, original has {n}",
                p.forward.len()
            ),
        });
    }
    let rn = reduced.var_count();
    let mut seen = vec![false; rn];
    let mut kept = 0usize;
    for (o, fwd) in p.forward.iter().enumerate() {
        let Some(r) = fwd else { continue };
        if *r >= rn || seen[*r] {
            return Err(CertifyError::Presolve {
                index: None,
                detail: format!("forward map sends variable {o} to invalid reduced slot {r}"),
            });
        }
        seen[*r] = true;
        kept += 1;
        let oid = crate::expr::VarId(o);
        let rid = crate::expr::VarId(*r);
        let o_int = matches!(original.var_kind(oid), VarKind::Integer | VarKind::Binary);
        let r_int = matches!(reduced.var_kind(rid), VarKind::Integer | VarKind::Binary);
        if o_int != r_int {
            return Err(CertifyError::Presolve {
                index: None,
                detail: format!("variable {o} changes integrality in the reduced model"),
            });
        }
        let (olb, oub) = original.var_bounds(oid);
        let (rlb, rub) = reduced.var_bounds(rid);
        if rlb < olb - TOL || rub > oub + TOL {
            return Err(CertifyError::Presolve {
                index: None,
                detail: format!(
                    "reduced bounds [{rlb}, {rub}] of variable {o} loosen original [{olb}, {oub}]"
                ),
            });
        }
    }
    if kept != rn {
        return Err(CertifyError::Presolve {
            index: None,
            detail: format!("forward map keeps {kept} variables, reduced model has {rn}"),
        });
    }
    for (i, action) in p.actions.iter().enumerate() {
        let reject = |detail: String| CertifyError::Presolve {
            index: Some(i),
            detail,
        };
        match action {
            PresolveAction::Fix { var, value } => {
                if *var >= n {
                    return Err(reject(format!("fixes out-of-range variable {var}")));
                }
                if p.forward[*var].is_some() {
                    return Err(reject(format!("fixes surviving variable {var}")));
                }
                if !value.is_finite() {
                    return Err(reject(format!(
                        "fixes variable {var} to non-finite {value}"
                    )));
                }
                let vid = crate::expr::VarId(*var);
                let (lb, ub) = original.var_bounds(vid);
                if *value < lb - TOL || *value > ub + TOL {
                    return Err(reject(format!(
                        "fixes variable {var} to {value} outside its bounds [{lb}, {ub}]"
                    )));
                }
                if matches!(original.var_kind(vid), VarKind::Integer | VarKind::Binary)
                    && value.fract() != 0.0
                {
                    return Err(reject(format!(
                        "fixes integer variable {var} to fractional {value}"
                    )));
                }
            }
            PresolveAction::Substitute {
                var,
                coeff,
                rhs,
                terms,
                lb,
                ub,
            } => {
                if *var >= n {
                    return Err(reject(format!("substitutes out-of-range variable {var}")));
                }
                if p.forward[*var].is_some() {
                    return Err(reject(format!("substitutes surviving variable {var}")));
                }
                if !coeff.is_finite() || *coeff == 0.0 {
                    return Err(reject(format!(
                        "substitution of variable {var} has unusable coefficient {coeff}"
                    )));
                }
                if !rhs.is_finite() {
                    return Err(reject(format!(
                        "substitution of variable {var} has non-finite rhs"
                    )));
                }
                for &(v, a) in terms {
                    if v >= n || v == *var || !a.is_finite() {
                        return Err(reject(format!(
                            "substitution of variable {var} references invalid term ({v}, {a})"
                        )));
                    }
                }
                let (olb, oub) = original.var_bounds(crate::expr::VarId(*var));
                if *lb < olb - TOL || *ub > oub + TOL || lb > ub {
                    return Err(reject(format!(
                        "substitution clamp [{lb}, {ub}] of variable {var} loosens [{olb}, {oub}]"
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Independently replays the certificate's postsolve record over the
/// reduced incumbent — the same arithmetic as `Postsolve::restore`, but
/// driven by the *certificate's* action list, so a corrupted action
/// surfaces as a mismatch with the reported solution or as an original-
/// model violation.
fn replay_restore(
    presolve: Option<&PresolveCertificate>,
    original_n: usize,
    reduced_x: &[f64],
) -> Result<Vec<f64>, CertifyError> {
    let Some(p) = presolve else {
        return Ok(reduced_x.to_vec());
    };
    let mut full = vec![f64::NAN; original_n];
    for (o, fwd) in p.forward.iter().enumerate() {
        if let Some(r) = fwd {
            let Some(&v) = reduced_x.get(*r) else {
                return Err(CertifyError::Malformed {
                    detail: "reduced incumbent shorter than the forward map".to_string(),
                });
            };
            full[o] = v;
        }
    }
    for action in p.actions.iter().rev() {
        match action {
            PresolveAction::Fix { var, value } => full[*var] = *value,
            PresolveAction::Substitute {
                var,
                coeff,
                rhs,
                terms,
                lb,
                ub,
            } => {
                let rest: f64 = terms.iter().map(|&(v, a)| a * full[v]).sum();
                full[*var] = ((rhs - rest) / coeff).clamp(*lb, *ub);
            }
        }
    }
    if let Some(v) = full.iter().position(|v| !v.is_finite()) {
        return Err(CertifyError::IncumbentMismatch {
            var: v,
            detail: "replayed restoration leaves the variable undefined".to_string(),
        });
    }
    Ok(full)
}

/// Replays the branching tree from the root, re-proving every leaf under
/// its accumulated bounds. Returns the number of leaves checked.
fn walk_tree(
    rm: &RatModel,
    base_lower: &[f64],
    base_upper: &[f64],
    tree: &[NodeCert],
    threshold: Option<&BigRat>,
) -> Result<usize, CertifyError> {
    if tree.is_empty() {
        return Err(CertifyError::TreeMalformed {
            node: 0,
            detail: "terminal verdict with an empty tree".to_string(),
        });
    }
    let mut children: Vec<Vec<(usize, bool)>> = vec![Vec::new(); tree.len()];
    for (i, node) in tree.iter().enumerate() {
        match node.parent {
            None => {
                if i != 0 {
                    return Err(CertifyError::TreeMalformed {
                        node: i,
                        detail: "non-root node without a parent".to_string(),
                    });
                }
            }
            Some((p, up)) => {
                if i == 0 || p >= i {
                    return Err(CertifyError::TreeMalformed {
                        node: i,
                        detail: "parent does not precede child".to_string(),
                    });
                }
                children[p].push((i, up));
            }
        }
    }
    let one = BigRat::one();
    let gap = rat(TOL, || "tolerance".to_string())?;
    let mut leaves = 0usize;
    let mut visited = 0usize;
    let mut stack: Vec<(usize, Vec<f64>, Vec<f64>)> =
        vec![(0, base_lower.to_vec(), base_upper.to_vec())];
    while let Some((idx, lower, upper)) = stack.pop() {
        visited += 1;
        let node = &tree[idx];
        match (&node.branch, &node.leaf) {
            (Some(_), Some(_)) => {
                return Err(CertifyError::TreeMalformed {
                    node: idx,
                    detail: "node is both a branch and a leaf".to_string(),
                });
            }
            (None, None) => {
                return Err(CertifyError::TreeMalformed {
                    node: idx,
                    detail: "unexpanded node in a complete tree".to_string(),
                });
            }
            (Some((j, floor)), None) => {
                if *j >= rm.n || !rm.is_int[*j] {
                    return Err(CertifyError::TreeMalformed {
                        node: idx,
                        detail: format!("branches on non-integer variable {j}"),
                    });
                }
                if !floor.is_finite() || floor.fract() != 0.0 {
                    return Err(CertifyError::TreeMalformed {
                        node: idx,
                        detail: format!("fractional split point {floor}"),
                    });
                }
                let kids = &children[idx];
                let (mut down, mut up) = (None, None);
                for &(c, is_up) in kids {
                    let slot = if is_up { &mut up } else { &mut down };
                    if slot.replace(c).is_some() {
                        return Err(CertifyError::TreeMalformed {
                            node: idx,
                            detail: "duplicate child direction".to_string(),
                        });
                    }
                }
                let (Some(d), Some(u)) = (down, up) else {
                    return Err(CertifyError::TreeMalformed {
                        node: idx,
                        detail: "branch node missing a child".to_string(),
                    });
                };
                let dl = lower.clone();
                let mut du = upper.clone();
                du[*j] = *floor;
                let mut ul = lower;
                let uu = upper;
                ul[*j] = *floor + 1.0;
                stack.push((d, dl, du));
                stack.push((u, ul, uu));
            }
            (None, Some(leaf)) => {
                if !children[idx].is_empty() {
                    return Err(CertifyError::TreeMalformed {
                        node: idx,
                        detail: "leaf node has children".to_string(),
                    });
                }
                leaves += 1;
                match leaf {
                    LeafCert::EmptyBox { var } => {
                        if *var >= rm.n || lower[*var] <= upper[*var] {
                            return Err(CertifyError::BoundViolation {
                                leaf: Some(idx),
                                var: *var,
                                detail: "claimed-empty domain is not empty".to_string(),
                            });
                        }
                    }
                    LeafCert::Infeasible { farkas } => {
                        rm.farkas_check(&lower, &upper, farkas, Some(idx))?;
                    }
                    LeafCert::Bound { duals, bound } => {
                        let Some(thr) = threshold else {
                            return Err(CertifyError::TreeMalformed {
                                node: idx,
                                detail: "bound-pruned leaf without an incumbent or initial cutoff"
                                    .to_string(),
                            });
                        };
                        let l = rm.dual_bound(&lower, &upper, duals, Some(idx))?;
                        // Strong duality: at the leaf's optimal basis the
                        // multipliers reproduce the LP objective the solver
                        // claims, up to accumulated float noise. A drifting
                        // recorded bound (or corrupted dual) fails here even
                        // when the mutated L(y) still clears the threshold.
                        let claimed = rat(*bound, || format!("leaf {idx} bound"))?;
                        let cons = rat(
                            1e-4 * (1.0 + bound.abs()) + 1e-6 * rm.rows.len() as f64,
                            || format!("leaf {idx} bound tolerance"),
                        )?;
                        if (&l - &claimed).abs() > cons {
                            return Err(CertifyError::ObjectiveMismatch {
                                leaf: Some(idx),
                                detail: format!(
                                    "exact dual bound L(y) = {} vs recorded node bound {}",
                                    l.to_f64(),
                                    bound
                                ),
                            });
                        }
                        let ok = if rm.integral_objective {
                            l > thr - &one
                        } else {
                            l >= thr - &gap
                        };
                        if !ok {
                            return Err(CertifyError::WeakBound {
                                leaf: idx,
                                detail: format!(
                                    "L(y) = {} vs incumbent threshold {}",
                                    l.to_f64(),
                                    thr.to_f64()
                                ),
                            });
                        }
                    }
                    LeafCert::Integral {
                        x,
                        duals,
                        objective,
                    } => {
                        let Some(thr) = threshold else {
                            return Err(CertifyError::TreeMalformed {
                                node: idx,
                                detail: "integral leaf in an infeasibility proof".to_string(),
                            });
                        };
                        rm.primal_check(&lower, &upper, x, true, Some(idx))?;
                        let obj = rm.internal_objective(x)?;
                        let claimed = rat(*objective, || format!("leaf {idx} objective"))?;
                        if (&obj - &claimed).abs() > gap {
                            return Err(CertifyError::ObjectiveMismatch {
                                leaf: Some(idx),
                                detail: format!(
                                    "exact c·x = {} vs claimed {}",
                                    obj.to_f64(),
                                    objective
                                ),
                            });
                        }
                        let l = rm.dual_bound(&lower, &upper, duals, Some(idx))?;
                        // Same strong-duality consistency as for pruned
                        // leaves: the multipliers must reproduce the leaf's
                        // own LP objective, not merely clear the threshold.
                        let cons = rat(
                            1e-4 * (1.0 + objective.abs()) + 1e-6 * rm.rows.len() as f64,
                            || format!("leaf {idx} bound tolerance"),
                        )?;
                        if (&l - &claimed).abs() > cons {
                            return Err(CertifyError::ObjectiveMismatch {
                                leaf: Some(idx),
                                detail: format!(
                                    "exact dual bound L(y) = {} vs integral leaf objective {}",
                                    l.to_f64(),
                                    objective
                                ),
                            });
                        }
                        let ok = if rm.integral_objective {
                            l > thr - &one
                        } else {
                            l >= thr - &gap
                        };
                        if !ok {
                            return Err(CertifyError::WeakBound {
                                leaf: idx,
                                detail: format!(
                                    "integral leaf bound L(y) = {} vs threshold {}",
                                    l.to_f64(),
                                    thr.to_f64()
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    if visited != tree.len() {
        return Err(CertifyError::TreeMalformed {
            node: 0,
            detail: format!(
                "{} of {} nodes unreachable from the root",
                tree.len() - visited,
                tree.len()
            ),
        });
    }
    Ok(leaves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::simplex::LpStatus;
    use crate::{MilpOptions, MilpSolver};

    fn certified() -> MilpSolver {
        MilpSolver::with_options(MilpOptions {
            certificate: true,
            ..MilpOptions::default()
        })
    }

    #[test]
    fn lp_optimal_certificate_verifies() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous_var("x", 0.0, 10.0);
        let y = m.continuous_var("y", 0.0, 10.0);
        m.add_geq(x + y, 3.0);
        m.set_objective(2.0 * x + y);
        let (lp, lower, upper) = m.to_sparse_lp();
        let mut engine = lp.engine();
        engine.set_certify(true);
        let (sol, _) = engine.solve(&lower, &upper, None, None);
        assert_eq!(sol.status, LpStatus::Optimal);
        let cert = engine.take_certificate().expect("certificate emitted");
        certify_lp(&m, &lower, &upper, &cert).unwrap();
    }

    #[test]
    fn lp_infeasible_farkas_verifies() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous_var("x", 0.0, 1.0);
        let y = m.continuous_var("y", 0.0, 1.0);
        m.add_geq(x + y, 3.0); // at most 2 in the box
        m.set_objective(LinExpr::from(x));
        let (lp, lower, upper) = m.to_sparse_lp();
        let mut engine = lp.engine();
        engine.set_certify(true);
        let (sol, _) = engine.solve(&lower, &upper, None, None);
        assert_eq!(sol.status, LpStatus::Infeasible);
        let cert = engine.take_certificate().expect("certificate emitted");
        assert!(matches!(
            cert,
            crate::simplex::LpCertificate::Infeasible { .. }
        ));
        certify_lp(&m, &lower, &upper, &cert).unwrap();
    }

    #[test]
    fn milp_optimal_certificate_verifies() {
        // Knapsack with a fractional relaxation: real branching happens.
        let mut m = Model::new(Sense::Maximize);
        let items: Vec<_> = (0..5).map(|i| m.binary_var(format!("x{i}"))).collect();
        let weights = [2.0, 3.0, 4.0, 5.0, 9.0];
        let values = [3.0, 4.0, 5.0, 8.0, 10.0];
        let mut w = LinExpr::new();
        let mut v = LinExpr::new();
        for (i, &x) in items.iter().enumerate() {
            w.add_term(x, weights[i]);
            v.add_term(x, values[i]);
        }
        m.add_leq(w, 10.0);
        m.set_objective(v);
        let out = certified().solve(&m).unwrap();
        assert_eq!(out.status, crate::SolveStatus::Optimal);
        let summary = certify_outcome(&m, &out).unwrap();
        assert!(summary.nodes >= 1);
        assert!(summary.leaves >= 1);
    }

    #[test]
    fn milp_infeasible_certificate_verifies() {
        // Presolve certifies this on its own; certificate mode must
        // re-prove it with a tree on the original model.
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        m.add_geq(x + y, 3.0);
        m.set_objective(x + y);
        let out = certified().solve(&m).unwrap();
        assert_eq!(out.status, crate::SolveStatus::Infeasible);
        let summary = certify_outcome(&m, &out).unwrap();
        assert!(summary.leaves >= 1);
    }

    #[test]
    fn presolve_solved_model_is_reproved() {
        // Presolve solves this outright; the certificate run must fall
        // back to a real tree proof on the original model.
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        m.add_geq(LinExpr::from(x), 1.0);
        m.set_objective(LinExpr::from(x));
        let out = certified().solve(&m).unwrap();
        assert_eq!(out.status, crate::SolveStatus::Optimal);
        let summary = certify_outcome(&m, &out).unwrap();
        assert!(summary.nodes >= 1);
    }

    #[test]
    fn presolve_reduction_audited_through_postsolve() {
        // A fixed variable (singleton row) plus a real binary core: the
        // certificate carries a presolve record with at least one action.
        let mut m = Model::new(Sense::Maximize);
        let z = m.integer_var("z", 1.0, 1.0);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        m.add_leq(2.0 * x + 2.0 * y + z, 4.0);
        m.set_objective(x + y + 3.0 * z);
        let out = certified().solve(&m).unwrap();
        assert_eq!(out.status, crate::SolveStatus::Optimal);
        let cert = out.certificate.as_ref().unwrap();
        if let Some(p) = &cert.presolve {
            assert!(!p.actions.is_empty() || p.forward.iter().all(Option::is_some));
        }
        certify_outcome(&m, &out).unwrap();
    }

    #[test]
    fn corrupting_a_dual_is_rejected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.integer_var("x", 0.0, 100.0);
        m.add_geq(LinExpr::from(x), 3.0);
        m.set_objective(2.0 * LinExpr::from(x));
        let out = certified().solve(&m).unwrap();
        let mut bad = out.clone();
        let cert = bad.certificate.as_mut().unwrap();
        let mut corrupted = false;
        for node in &mut cert.tree {
            if let Some(LeafCert::Integral { duals, .. } | LeafCert::Bound { duals, .. }) =
                &mut node.leaf
            {
                for d in duals.iter_mut() {
                    *d += 1.5;
                    corrupted = true;
                }
            }
        }
        if corrupted {
            assert!(certify_outcome(&m, &bad).is_err());
        }
        certify_outcome(&m, &out).unwrap();
    }

    #[test]
    fn missing_certificate_is_reported() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        m.set_objective(LinExpr::from(x));
        let out = MilpSolver::new().solve(&m).unwrap();
        assert_eq!(
            certify_outcome(&m, &out),
            Err(CertifyError::MissingCertificate)
        );
    }
}
