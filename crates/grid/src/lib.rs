//! Structural model of a microfluidic **fully programmable valve array**
//! (FPVA), the substrate of the DATE 2017 paper *"Testing Microfluidic Fully
//! Programmable Valve Arrays (FPVAs)"* by Liu et al.
//!
//! An FPVA is a regular `rows × cols` grid of *fluid cells*. Every pair of
//! orthogonally adjacent cells is separated by a *valve site*. A site either
//! carries a real, individually controllable [`ValveId`], is permanently open
//! (part of a transportation **channel** where no valve was built), or is a
//! permanent wall (adjacent to an **obstacle** region). Pressure enters and
//! leaves the chip through boundary [`Port`]s: sources are air-pressure
//! inputs, sinks are pressure meters.
//!
//! The crate provides:
//!
//! * [`Fpva`] — the immutable array description (the paper's "Inputs"),
//! * [`FpvaBuilder`] — ergonomic construction with channels, obstacles and
//!   ports,
//! * [`TestVector`] — one open/closed assignment for every valve (the
//!   paper's "Outputs"),
//! * [`layouts`] — the five benchmark arrays of Table I with valve counts
//!   matching the paper exactly (39, 176, 411, 744, 1704),
//! * [`render`] — ASCII rendering used to regenerate Fig. 8 and Fig. 9.
//!
//! # Example
//!
//! ```
//! use fpva_grid::{FpvaBuilder, PortKind, Side, TestVector};
//!
//! # fn main() -> Result<(), fpva_grid::GridError> {
//! // A 4x4 array with a source in the top-left and a sink in the
//! // bottom-right corner.
//! let fpva = FpvaBuilder::new(4, 4)
//!     .port(0, 0, Side::West, PortKind::Source)
//!     .port(3, 3, Side::East, PortKind::Sink)
//!     .build()?;
//! assert_eq!(fpva.valve_count(), 2 * 4 * 3);
//!
//! // All-closed chip: nothing can move.
//! let vector = TestVector::all_closed(fpva.valve_count());
//! assert_eq!(vector.open_count(), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod builder;
mod error;
mod geometry;
pub mod layouts;
pub mod render;
mod vector;

pub use array::{CellKind, EdgeKind, Fpva, Port, PortId, PortKind};
pub use builder::FpvaBuilder;
pub use error::GridError;
pub use geometry::{Axis, CellId, EdgeId, Side};
pub use vector::{TestVector, ValveId, ValveState};
