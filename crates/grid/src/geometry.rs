//! Cell, edge and side coordinates of the valve lattice.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Location of a fluid cell: `row` 0 is the top of the chip, `col` 0 the
/// left edge.
///
/// ```
/// use fpva_grid::CellId;
/// let c = CellId::new(2, 3);
/// assert_eq!((c.row, c.col), (2, 3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId {
    /// Row index, 0-based from the top.
    pub row: usize,
    /// Column index, 0-based from the left.
    pub col: usize,
}

impl CellId {
    /// Creates a cell id from row/column indices.
    pub const fn new(row: usize, col: usize) -> Self {
        CellId { row, col }
    }

    /// The neighbouring cell on the given side, or `None` when it would
    /// leave the `rows × cols` grid.
    pub fn neighbor(self, side: Side, rows: usize, cols: usize) -> Option<CellId> {
        match side {
            Side::North if self.row > 0 => Some(CellId::new(self.row - 1, self.col)),
            Side::South if self.row + 1 < rows => Some(CellId::new(self.row + 1, self.col)),
            Side::West if self.col > 0 => Some(CellId::new(self.row, self.col - 1)),
            Side::East if self.col + 1 < cols => Some(CellId::new(self.row, self.col + 1)),
            _ => None,
        }
    }

    /// Whether the cell lies on the chip boundary of a `rows × cols` grid.
    pub fn is_boundary(self, rows: usize, cols: usize) -> bool {
        self.row == 0 || self.col == 0 || self.row + 1 == rows || self.col + 1 == cols
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// One of the four sides of a cell (or of the chip).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Side {
    /// Towards row 0.
    North,
    /// Towards the last row.
    South,
    /// Towards the last column.
    East,
    /// Towards column 0.
    West,
}

impl Side {
    /// All four sides in a fixed order.
    pub const ALL: [Side; 4] = [Side::North, Side::South, Side::East, Side::West];

    /// The opposite side.
    ///
    /// ```
    /// use fpva_grid::Side;
    /// assert_eq!(Side::North.opposite(), Side::South);
    /// ```
    pub fn opposite(self) -> Side {
        match self {
            Side::North => Side::South,
            Side::South => Side::North,
            Side::East => Side::West,
            Side::West => Side::East,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Side::North => "north",
            Side::South => "south",
            Side::East => "east",
            Side::West => "west",
        };
        f.write_str(s)
    }
}

/// Axis of an internal edge (valve site) of the lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// Edge between `(r, c)` and `(r, c + 1)` — fluid crosses it moving
    /// east/west, so the physical valve is a vertical barrier.
    Horizontal,
    /// Edge between `(r, c)` and `(r + 1, c)` — fluid crosses it moving
    /// north/south.
    Vertical,
}

/// An internal edge of the lattice: the site between two orthogonally
/// adjacent cells where a valve may be built.
///
/// `cell` is the north-west endpoint: for [`Axis::Horizontal`] the edge
/// connects `cell` with the cell to its east, for [`Axis::Vertical`] with
/// the cell to its south.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId {
    /// North-west endpoint of the edge.
    pub cell: CellId,
    /// Direction of the second endpoint relative to `cell`.
    pub axis: Axis,
}

impl EdgeId {
    /// Horizontal edge between `(row, col)` and `(row, col + 1)`.
    pub const fn horizontal(row: usize, col: usize) -> Self {
        EdgeId {
            cell: CellId::new(row, col),
            axis: Axis::Horizontal,
        }
    }

    /// Vertical edge between `(row, col)` and `(row + 1, col)`.
    pub const fn vertical(row: usize, col: usize) -> Self {
        EdgeId {
            cell: CellId::new(row, col),
            axis: Axis::Vertical,
        }
    }

    /// The two cells joined by this edge.
    ///
    /// ```
    /// use fpva_grid::{CellId, EdgeId};
    /// let e = EdgeId::horizontal(1, 2);
    /// assert_eq!(e.endpoints(), (CellId::new(1, 2), CellId::new(1, 3)));
    /// ```
    pub fn endpoints(self) -> (CellId, CellId) {
        let a = self.cell;
        let b = match self.axis {
            Axis::Horizontal => CellId::new(a.row, a.col + 1),
            Axis::Vertical => CellId::new(a.row + 1, a.col),
        };
        (a, b)
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of the edge.
    pub fn other_endpoint(self, from: CellId) -> CellId {
        let (a, b) = self.endpoints();
        if from == a {
            b
        } else if from == b {
            a
        } else {
            panic!("cell {from} is not an endpoint of edge {self:?}");
        }
    }

    /// Whether `cell` is one of the two endpoints.
    pub fn touches(self, cell: CellId) -> bool {
        let (a, b) = self.endpoints();
        a == cell || b == cell
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (a, b) = self.endpoints();
        write!(f, "{a}-{b}")
    }
}

/// Dense edge indexing shared by [`crate::Fpva`] internals.
///
/// Horizontal edges come first (`rows * (cols - 1)` of them, row-major),
/// vertical edges after (`(rows - 1) * cols`, row-major).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EdgeIndexer {
    pub rows: usize,
    pub cols: usize,
}

impl EdgeIndexer {
    pub fn horizontal_count(self) -> usize {
        self.rows * self.cols.saturating_sub(1)
    }

    pub fn vertical_count(self) -> usize {
        self.rows.saturating_sub(1) * self.cols
    }

    pub fn count(self) -> usize {
        self.horizontal_count() + self.vertical_count()
    }

    pub fn index(self, e: EdgeId) -> usize {
        match e.axis {
            Axis::Horizontal => {
                debug_assert!(e.cell.row < self.rows && e.cell.col + 1 < self.cols);
                e.cell.row * (self.cols - 1) + e.cell.col
            }
            Axis::Vertical => {
                debug_assert!(e.cell.row + 1 < self.rows && e.cell.col < self.cols);
                self.horizontal_count() + e.cell.row * self.cols + e.cell.col
            }
        }
    }

    pub fn edge(self, index: usize) -> EdgeId {
        let h = self.horizontal_count();
        if index < h {
            EdgeId::horizontal(index / (self.cols - 1), index % (self.cols - 1))
        } else {
            let i = index - h;
            EdgeId::vertical(i / self.cols, i % self.cols)
        }
    }

    /// All edge ids in index order — the canonical edge enumeration
    /// behind `Fpva::edges`.
    pub fn iter(self) -> impl Iterator<Item = EdgeId> {
        (0..self.count()).map(move |i| self.edge(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_respects_bounds() {
        let c = CellId::new(0, 0);
        assert_eq!(c.neighbor(Side::North, 3, 3), None);
        assert_eq!(c.neighbor(Side::West, 3, 3), None);
        assert_eq!(c.neighbor(Side::South, 3, 3), Some(CellId::new(1, 0)));
        assert_eq!(c.neighbor(Side::East, 3, 3), Some(CellId::new(0, 1)));
        let d = CellId::new(2, 2);
        assert_eq!(d.neighbor(Side::South, 3, 3), None);
        assert_eq!(d.neighbor(Side::East, 3, 3), None);
    }

    #[test]
    fn boundary_detection() {
        assert!(CellId::new(0, 1).is_boundary(3, 3));
        assert!(CellId::new(2, 1).is_boundary(3, 3));
        assert!(CellId::new(1, 0).is_boundary(3, 3));
        assert!(!CellId::new(1, 1).is_boundary(3, 3));
    }

    #[test]
    fn endpoints_and_other() {
        let e = EdgeId::vertical(1, 1);
        let (a, b) = e.endpoints();
        assert_eq!(a, CellId::new(1, 1));
        assert_eq!(b, CellId::new(2, 1));
        assert_eq!(e.other_endpoint(a), b);
        assert_eq!(e.other_endpoint(b), a);
        assert!(e.touches(a) && e.touches(b));
        assert!(!e.touches(CellId::new(0, 0)));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_endpoint_panics_for_stranger() {
        EdgeId::horizontal(0, 0).other_endpoint(CellId::new(5, 5));
    }

    #[test]
    fn edge_indexer_roundtrip() {
        let ix = EdgeIndexer { rows: 4, cols: 5 };
        assert_eq!(ix.horizontal_count(), 4 * 4);
        assert_eq!(ix.vertical_count(), 3 * 5);
        assert_eq!(ix.count(), 31);
        for i in 0..ix.count() {
            let e = ix.edge(i);
            assert_eq!(ix.index(e), i, "roundtrip failed for {e:?}");
        }
    }

    #[test]
    fn edge_indexer_degenerate_sizes() {
        let ix = EdgeIndexer { rows: 1, cols: 1 };
        assert_eq!(ix.count(), 0);
        let row = EdgeIndexer { rows: 1, cols: 4 };
        assert_eq!(row.count(), 3);
        let col = EdgeIndexer { rows: 4, cols: 1 };
        assert_eq!(col.count(), 3);
    }

    #[test]
    fn sides_opposite_involution() {
        for s in Side::ALL {
            assert_eq!(s.opposite().opposite(), s);
            assert_ne!(s.opposite(), s);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(CellId::new(1, 2).to_string(), "(1,2)");
        assert_eq!(EdgeId::horizontal(0, 0).to_string(), "(0,0)-(0,1)");
        assert_eq!(Side::North.to_string(), "north");
    }
}
