//! The benchmark arrays of Table I of the paper.
//!
//! The paper specifies the dimensions and valve counts (39, 176, 411, 744
//! and 1704) of its five test arrays and states that they "contain long
//! channels for transportation and obstacle areas without valves", but does
//! not publish the exact layouts. The layouts below are crafted so that the
//! valve count of every array matches the paper **exactly** (asserted in
//! tests), the 20×20 array has three channels and two obstacles as shown in
//! the paper's Fig. 9, and every array has one pressure source in the
//! top-left corner and one pressure meter in the bottom-right corner.
//!
//! That corner port placement makes every straight grid line a valid
//! source/sink separator, which reproduces the paper's cut-set counts
//! `n_c = (rows − 1) + (cols − 1)` for all five arrays (8, 18, 28, 38, 58).

use crate::array::{Fpva, PortKind};
use crate::builder::FpvaBuilder;
use crate::geometry::Side;

/// A named Table I benchmark instance.
#[derive(Debug, Clone)]
pub struct Table1Entry {
    /// Human-readable name, e.g. `"10x10"`.
    pub name: &'static str,
    /// The paper's valve count for this array (column `n_v`).
    pub paper_valves: usize,
    /// The paper's flow-path vector count (column `n_p`).
    pub paper_flow_paths: usize,
    /// The paper's cut-set vector count (column `n_c`).
    pub paper_cut_sets: usize,
    /// The paper's control-leakage vector count (column `n_l`).
    pub paper_leakage: usize,
    /// The array itself.
    pub fpva: Fpva,
}

fn corner_ports(builder: FpvaBuilder, rows: usize, cols: usize) -> FpvaBuilder {
    builder.port(0, 0, Side::West, PortKind::Source).port(
        rows - 1,
        cols - 1,
        Side::East,
        PortKind::Sink,
    )
}

/// A full `rows × cols` array (no channels or obstacles) with corner ports.
/// The 10×10 instance of this is the array of the paper's Fig. 8.
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
pub fn full_array(rows: usize, cols: usize) -> Fpva {
    corner_ports(FpvaBuilder::new(rows, cols), rows, cols)
        .build()
        .expect("full array with corner ports is always valid")
}

/// Table I row 1: 5×5 array, 39 valves (one short channel).
pub fn table1_5x5() -> Fpva {
    corner_ports(FpvaBuilder::new(5, 5).channel_horizontal(2, 1, 2), 5, 5)
        .build()
        .expect("5x5 layout is valid")
}

/// Table I row 2: 10×10 array, 176 valves (one transportation channel).
pub fn table1_10x10() -> Fpva {
    corner_ports(FpvaBuilder::new(10, 10).channel_horizontal(4, 2, 6), 10, 10)
        .build()
        .expect("10x10 layout is valid")
}

/// Table I row 3: 15×15 array, 411 valves (one long channel).
pub fn table1_15x15() -> Fpva {
    corner_ports(
        FpvaBuilder::new(15, 15).channel_horizontal(7, 2, 11),
        15,
        15,
    )
    .build()
    .expect("15x15 layout is valid")
}

/// Table I row 4: 20×20 array, 744 valves — three channels and two
/// obstacles, matching the structure shown in the paper's Fig. 9.
pub fn table1_20x20() -> Fpva {
    corner_ports(
        FpvaBuilder::new(20, 20)
            .channel_horizontal(3, 2, 5)
            .channel_vertical(3, 14, 17)
            .channel_horizontal(17, 12, 14)
            .obstacle(8, 5, 8, 5)
            .obstacle(13, 14, 13, 14),
        20,
        20,
    )
    .build()
    .expect("20x20 layout is valid")
}

/// Table I row 5: 30×30 array, 1704 valves — three channels and two 2×2
/// obstacle blocks.
pub fn table1_30x30() -> Fpva {
    corner_ports(
        FpvaBuilder::new(30, 30)
            .channel_horizontal(4, 3, 7)
            .channel_vertical(24, 14, 18)
            .channel_horizontal(26, 2, 6)
            .obstacle(8, 8, 9, 9)
            .obstacle(20, 18, 21, 19),
        30,
        30,
    )
    .build()
    .expect("30x30 layout is valid")
}

/// The `examples/custom_biochip` chip: a 12×12 array with two transport
/// channels feeding a work area, a 2×2 sensor obstacle, one pressure
/// source and two meters on different edges — the "incomplete array with
/// fluidic-seas and obstacles" case the paper's method targets.
///
/// The second sink at the bottom-left corner is a known stress case:
/// every source→sinks cut detours around the horizontal channel, which
/// strands the valves straddled by the detour in `untestable_closed`.
/// `fpva-lint` flags exactly those valves, so the layout doubles as the
/// lint regression fixture (single source of truth with the example).
pub fn custom_biochip() -> Fpva {
    FpvaBuilder::new(12, 12)
        .channel_horizontal(2, 1, 6)
        .channel_vertical(9, 4, 8)
        .obstacle(6, 3, 7, 4)
        .port(0, 0, Side::West, PortKind::Source)
        .port(11, 11, Side::East, PortKind::Sink)
        .port(11, 0, Side::South, PortKind::Sink)
        .build()
        .expect("custom biochip layout is valid")
}

/// All five Table I instances, smallest first, with the paper's reported
/// vector counts attached.
pub fn table1() -> Vec<Table1Entry> {
    vec![
        Table1Entry {
            name: "5x5",
            paper_valves: 39,
            paper_flow_paths: 5,
            paper_cut_sets: 8,
            paper_leakage: 4,
            fpva: table1_5x5(),
        },
        Table1Entry {
            name: "10x10",
            paper_valves: 176,
            paper_flow_paths: 4,
            paper_cut_sets: 18,
            paper_leakage: 4,
            fpva: table1_10x10(),
        },
        Table1Entry {
            name: "15x15",
            paper_valves: 411,
            paper_flow_paths: 8,
            paper_cut_sets: 28,
            paper_leakage: 8,
            fpva: table1_15x15(),
        },
        Table1Entry {
            name: "20x20",
            paper_valves: 744,
            paper_flow_paths: 16,
            paper_cut_sets: 38,
            paper_leakage: 16,
            fpva: table1_20x20(),
        },
        Table1Entry {
            name: "30x30",
            paper_valves: 1704,
            paper_flow_paths: 20,
            paper_cut_sets: 58,
            paper_leakage: 20,
            fpva: table1_30x30(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::CellKind;

    #[test]
    fn valve_counts_match_paper_exactly() {
        for entry in table1() {
            assert_eq!(
                entry.fpva.valve_count(),
                entry.paper_valves,
                "{} valve count deviates from Table I",
                entry.name
            );
        }
    }

    #[test]
    fn full_array_counts() {
        assert_eq!(full_array(10, 10).valve_count(), 180);
        assert_eq!(full_array(5, 5).valve_count(), 40);
    }

    #[test]
    fn every_layout_has_corner_ports() {
        for entry in table1() {
            assert_eq!(entry.fpva.sources().count(), 1);
            assert_eq!(entry.fpva.sinks().count(), 1);
            let (_, src) = entry.fpva.sources().next().unwrap();
            assert_eq!((src.cell.row, src.cell.col), (0, 0));
        }
    }

    #[test]
    fn twenty_has_three_channels_two_obstacles() {
        let f = table1_20x20();
        let obstacle_cells = f
            .cells()
            .filter(|&c| f.cell_kind(c) == CellKind::Obstacle)
            .count();
        assert_eq!(obstacle_cells, 2);
        let channel_cells = f
            .cells()
            .filter(|&c| f.cell_kind(c) == CellKind::Channel)
            .count();
        assert_eq!(channel_cells, 4 + 4 + 3);
    }

    #[test]
    fn layouts_are_deterministic() {
        assert_eq!(table1_20x20(), table1_20x20());
        assert_eq!(table1_30x30(), table1_30x30());
    }
}
