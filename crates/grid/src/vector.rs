//! Test vectors: one open/closed state for every valve of the array.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a real (testable) valve.
///
/// Valve ids are assigned by [`crate::Fpva`] in edge-index order and are
/// contiguous in `0..valve_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ValveId(pub usize);

impl ValveId {
    /// The dense index of the valve.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ValveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Commanded state of a single valve.
///
/// *Open* means the control channel is vented and fluid may pass; *closed*
/// means the control channel is pressurised and the flow channel is squeezed
/// shut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValveState {
    /// Fluid may pass through the valve.
    Open,
    /// The valve blocks its flow channel.
    Closed,
}

impl ValveState {
    /// `true` for [`ValveState::Open`].
    pub fn is_open(self) -> bool {
        matches!(self, ValveState::Open)
    }

    /// The other state.
    pub fn toggled(self) -> ValveState {
        match self {
            ValveState::Open => ValveState::Closed,
            ValveState::Closed => ValveState::Open,
        }
    }
}

/// One test vector: the commanded state of every valve while pressure is
/// applied at the source ports and read at the sink ports.
///
/// Backed by a bit set (bit = 1 ⇔ open), so cloning and hashing stay cheap
/// even for the 1704-valve array of Table I.
///
/// ```
/// use fpva_grid::{TestVector, ValveId, ValveState};
/// let mut v = TestVector::all_closed(100);
/// v.set(ValveId(7), ValveState::Open);
/// assert!(v.is_open(ValveId(7)));
/// assert_eq!(v.open_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TestVector {
    len: usize,
    bits: Vec<u64>,
}

impl TestVector {
    /// A vector commanding every one of `valve_count` valves closed.
    pub fn all_closed(valve_count: usize) -> Self {
        TestVector {
            len: valve_count,
            bits: vec![0; valve_count.div_ceil(64)],
        }
    }

    /// A vector commanding every one of `valve_count` valves open.
    pub fn all_open(valve_count: usize) -> Self {
        let mut v = TestVector {
            len: valve_count,
            bits: vec![!0u64; valve_count.div_ceil(64)],
        };
        v.clear_tail();
        v
    }

    /// Builds a vector from the set of open valves.
    pub fn from_open_valves<I>(valve_count: usize, open: I) -> Self
    where
        I: IntoIterator<Item = ValveId>,
    {
        let mut v = TestVector::all_closed(valve_count);
        for id in open {
            v.set(id, ValveState::Open);
        }
        v
    }

    /// Number of valves covered by this vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector covers zero valves.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Commanded state of valve `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn state(&self, id: ValveId) -> ValveState {
        assert!(
            id.0 < self.len,
            "valve {id} out of range (len {})",
            self.len
        );
        if self.bits[id.0 / 64] >> (id.0 % 64) & 1 == 1 {
            ValveState::Open
        } else {
            ValveState::Closed
        }
    }

    /// `true` when valve `id` is commanded open.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn is_open(&self, id: ValveId) -> bool {
        self.state(id).is_open()
    }

    /// Sets the commanded state of valve `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set(&mut self, id: ValveId, state: ValveState) {
        assert!(
            id.0 < self.len,
            "valve {id} out of range (len {})",
            self.len
        );
        let mask = 1u64 << (id.0 % 64);
        match state {
            ValveState::Open => self.bits[id.0 / 64] |= mask,
            ValveState::Closed => self.bits[id.0 / 64] &= !mask,
        }
    }

    /// Flips the commanded state of valve `id` and returns the new state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn toggle(&mut self, id: ValveId) -> ValveState {
        let next = self.state(id).toggled();
        self.set(id, next);
        next
    }

    /// Number of valves commanded open.
    pub fn open_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the ids of all valves commanded open, ascending.
    pub fn iter_open(&self) -> impl Iterator<Item = ValveId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(ValveId(w * 64 + bit))
            })
        })
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.bits.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_closed_and_open() {
        let c = TestVector::all_closed(70);
        assert_eq!(c.open_count(), 0);
        assert_eq!(c.len(), 70);
        let o = TestVector::all_open(70);
        assert_eq!(o.open_count(), 70);
        for i in 0..70 {
            assert!(!c.is_open(ValveId(i)));
            assert!(o.is_open(ValveId(i)));
        }
    }

    #[test]
    fn set_and_toggle() {
        let mut v = TestVector::all_closed(65);
        v.set(ValveId(64), ValveState::Open);
        assert!(v.is_open(ValveId(64)));
        assert_eq!(v.toggle(ValveId(64)), ValveState::Closed);
        assert!(!v.is_open(ValveId(64)));
        assert_eq!(v.toggle(ValveId(0)), ValveState::Open);
        assert_eq!(v.open_count(), 1);
    }

    #[test]
    fn iter_open_ascending() {
        let v = TestVector::from_open_valves(200, [ValveId(3), ValveId(64), ValveId(199)]);
        let open: Vec<usize> = v.iter_open().map(ValveId::index).collect();
        assert_eq!(open, vec![3, 64, 199]);
    }

    #[test]
    fn all_open_does_not_overflow_len() {
        let v = TestVector::all_open(3);
        assert_eq!(v.open_count(), 3);
        let ids: Vec<usize> = v.iter_open().map(ValveId::index).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn empty_vector() {
        let v = TestVector::all_closed(0);
        assert!(v.is_empty());
        assert_eq!(v.iter_open().count(), 0);
        let o = TestVector::all_open(0);
        assert_eq!(o.open_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        TestVector::all_closed(10).is_open(ValveId(10));
    }

    #[test]
    fn equality_and_hash_agree() {
        use std::collections::HashSet;
        let a = TestVector::from_open_valves(128, [ValveId(1), ValveId(127)]);
        let mut b = TestVector::all_closed(128);
        b.set(ValveId(127), ValveState::Open);
        b.set(ValveId(1), ValveState::Open);
        assert_eq!(a, b);
        let set: HashSet<TestVector> = [a.clone(), b].into_iter().collect();
        assert_eq!(set.len(), 1);
        assert!(set.contains(&a));
    }

    #[test]
    fn toggled_state() {
        assert_eq!(ValveState::Open.toggled(), ValveState::Closed);
        assert!(ValveState::Open.is_open());
        assert!(!ValveState::Closed.is_open());
    }
}
