//! ASCII rendering of arrays, used to regenerate the paper's Fig. 8/9.
//!
//! The chip is drawn on a `(2·rows + 1) × (2·cols + 1)` character canvas:
//! cells sit at odd/odd coordinates, valve sites between them, and the chip
//! boundary is a frame with `S` (source) and `M` (pressure-meter) openings.
//!
//! ```
//! use fpva_grid::{layouts, render::render};
//! let art = render(&layouts::table1_5x5());
//! assert!(art.contains('S') && art.contains('M'));
//! ```

use crate::array::{CellKind, EdgeKind, Fpva, PortKind};
use crate::geometry::{Axis, CellId, EdgeId, Side};
use std::collections::HashMap;

/// Overlay marks for cells and edges (e.g. path indices, cut membership).
#[derive(Debug, Clone, Default)]
pub struct Decor {
    cell_marks: HashMap<CellId, char>,
    edge_marks: HashMap<EdgeId, char>,
}

impl Decor {
    /// An empty overlay.
    pub fn new() -> Self {
        Decor::default()
    }

    /// Marks a cell with `ch` (overrides the structural character).
    pub fn mark_cell(&mut self, cell: CellId, ch: char) -> &mut Self {
        self.cell_marks.insert(cell, ch);
        self
    }

    /// Marks an edge with `ch` (overrides the structural character).
    pub fn mark_edge(&mut self, edge: EdgeId, ch: char) -> &mut Self {
        self.edge_marks.insert(edge, ch);
        self
    }

    /// The mark on a cell, if any.
    pub fn cell_mark(&self, cell: CellId) -> Option<char> {
        self.cell_marks.get(&cell).copied()
    }

    /// The mark on an edge, if any.
    pub fn edge_mark(&self, edge: EdgeId) -> Option<char> {
        self.edge_marks.get(&edge).copied()
    }
}

fn structural_cell_char(kind: CellKind) -> char {
    match kind {
        CellKind::Normal => ' ',
        CellKind::Channel => '~',
        CellKind::Obstacle => '#',
    }
}

fn structural_edge_char(kind: EdgeKind, axis: Axis) -> char {
    match (kind, axis) {
        (EdgeKind::Valve, Axis::Horizontal) => '|',
        (EdgeKind::Valve, Axis::Vertical) => '-',
        (EdgeKind::Open, _) => '~',
        (EdgeKind::Wall, _) => '#',
    }
}

/// Renders the bare structure of the array.
pub fn render(fpva: &Fpva) -> String {
    render_with(fpva, &Decor::new())
}

/// Renders the array with an overlay of cell/edge marks.
pub fn render_with(fpva: &Fpva, decor: &Decor) -> String {
    let (rows, cols) = (fpva.rows(), fpva.cols());
    let height = 2 * rows + 1;
    let width = 2 * cols + 1;
    let mut canvas = vec![vec![' '; width]; height];

    // Frame.
    for (x, row) in canvas.iter_mut().enumerate() {
        for (y, ch) in row.iter_mut().enumerate() {
            let on_h = x == 0 || x == height - 1;
            let on_v = y == 0 || y == width - 1;
            if on_h && on_v {
                *ch = '+';
            } else if on_h {
                *ch = '-';
            } else if on_v {
                *ch = '|';
            }
        }
    }
    // Lattice crossings.
    for x in (2..height - 1).step_by(2) {
        for y in (2..width - 1).step_by(2) {
            canvas[x][y] = '+';
        }
    }
    // Cells.
    for cell in fpva.cells() {
        let ch = decor
            .cell_mark(cell)
            .unwrap_or_else(|| structural_cell_char(fpva.cell_kind(cell)));
        canvas[2 * cell.row + 1][2 * cell.col + 1] = ch;
    }
    // Internal edges.
    for (edge, kind) in fpva.edges() {
        let ch = decor
            .edge_mark(edge)
            .unwrap_or_else(|| structural_edge_char(kind, edge.axis));
        let (x, y) = match edge.axis {
            Axis::Horizontal => (2 * edge.cell.row + 1, 2 * edge.cell.col + 2),
            Axis::Vertical => (2 * edge.cell.row + 2, 2 * edge.cell.col + 1),
        };
        canvas[x][y] = ch;
    }
    // Port openings in the frame.
    for (_, port) in fpva.ports() {
        let (x, y) = match port.side {
            Side::North => (0, 2 * port.cell.col + 1),
            Side::South => (height - 1, 2 * port.cell.col + 1),
            Side::West => (2 * port.cell.row + 1, 0),
            Side::East => (2 * port.cell.row + 1, width - 1),
        };
        canvas[x][y] = match port.kind {
            PortKind::Source => 'S',
            PortKind::Sink => 'M',
        };
    }

    let mut out = String::with_capacity(height * (width + 1));
    for row in canvas {
        out.extend(row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FpvaBuilder;
    use crate::layouts;

    #[test]
    fn small_full_render() {
        let f = layouts::full_array(2, 2);
        let art = render(&f);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], "+---+");
        assert_eq!(lines[1], "S | |"); // source opening, cell, valve, cell, frame
        assert_eq!(lines[2], "|-+-|");
        assert_eq!(lines[3], "| | M");
        assert_eq!(lines[4], "+---+");
    }

    #[test]
    fn channels_and_obstacles_visible() {
        let f = FpvaBuilder::new(4, 4)
            .channel_horizontal(1, 0, 2)
            .obstacle(3, 3, 3, 3)
            .port(0, 0, crate::Side::North, crate::PortKind::Source)
            .port(3, 0, crate::Side::South, crate::PortKind::Sink)
            .build()
            .unwrap();
        let art = render(&f);
        assert!(art.contains('~'), "channel glyph missing:\n{art}");
        assert!(art.contains('#'), "obstacle glyph missing:\n{art}");
        assert!(art.contains('S') && art.contains('M'));
    }

    #[test]
    fn decor_overrides_structure() {
        let f = layouts::full_array(2, 2);
        let mut d = Decor::new();
        d.mark_cell(CellId::new(0, 0), '1');
        d.mark_edge(EdgeId::horizontal(0, 0), '1');
        let art = render_with(&f, &d);
        assert!(
            art.lines().nth(1).unwrap().starts_with("S11"),
            "overlay missing:\n{art}"
        );
        assert_eq!(d.cell_mark(CellId::new(0, 0)), Some('1'));
        assert_eq!(d.edge_mark(EdgeId::horizontal(0, 0)), Some('1'));
        assert_eq!(d.cell_mark(CellId::new(1, 1)), None);
    }

    #[test]
    fn canvas_dimensions() {
        let f = layouts::table1_5x5();
        let art = render(&f);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 11);
        assert!(lines.iter().all(|l| l.chars().count() == 11));
    }
}
