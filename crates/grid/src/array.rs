//! The immutable FPVA array description.

use crate::geometry::{CellId, EdgeId, EdgeIndexer, Side};
use crate::vector::{TestVector, ValveId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What occupies an internal edge (a valve site) of the lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// A real, individually controllable valve.
    Valve,
    /// No valve was built; the site is permanently open. Interior of a
    /// transportation channel ("fluidic sea").
    Open,
    /// Permanently closed; the site borders an obstacle region.
    Wall,
}

/// Role of a fluid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Ordinary reconfigurable cell.
    Normal,
    /// Cell inside a transportation channel (some of its edges are
    /// [`EdgeKind::Open`]).
    Channel,
    /// Cell inside an obstacle; fluid can never enter it and all its edges
    /// are [`EdgeKind::Wall`].
    Obstacle,
}

/// Whether a boundary port injects or observes pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PortKind {
    /// Air-pressure source connected to the flow layer.
    Source,
    /// Pressure meter ("sink" in the paper's terminology).
    Sink,
}

/// A boundary opening connecting a cell to external plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Port {
    /// The boundary cell the port opens into.
    pub cell: CellId,
    /// The chip side the opening faces; must point off-grid from `cell`.
    pub side: Side,
    /// Source or sink.
    pub kind: PortKind,
}

/// Dense identifier of a port, in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId(pub usize);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An immutable FPVA: the valve lattice plus channels, obstacles and ports.
///
/// Construct one with [`crate::FpvaBuilder`]. The structure corresponds to
/// the "Inputs" of the paper's problem formulation: the array architecture,
/// the valve sites that are conceptually always open (channels) or always
/// closed (obstacles), and the locations of pressure sources and meters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fpva {
    rows: usize,
    cols: usize,
    edge_kinds: Vec<EdgeKind>,
    cell_kinds: Vec<CellKind>,
    valve_of_edge: Vec<Option<ValveId>>,
    edge_of_valve: Vec<EdgeId>,
    ports: Vec<Port>,
}

impl Fpva {
    /// Crate-internal constructor; all validation happens in the builder.
    pub(crate) fn from_parts(
        rows: usize,
        cols: usize,
        edge_kinds: Vec<EdgeKind>,
        cell_kinds: Vec<CellKind>,
        ports: Vec<Port>,
    ) -> Self {
        let indexer = EdgeIndexer { rows, cols };
        debug_assert_eq!(edge_kinds.len(), indexer.count());
        debug_assert_eq!(cell_kinds.len(), rows * cols);
        let mut valve_of_edge = vec![None; edge_kinds.len()];
        let mut edge_of_valve = Vec::new();
        for (i, kind) in edge_kinds.iter().enumerate() {
            if *kind == EdgeKind::Valve {
                valve_of_edge[i] = Some(ValveId(edge_of_valve.len()));
                edge_of_valve.push(indexer.edge(i));
            }
        }
        Fpva {
            rows,
            cols,
            edge_kinds,
            cell_kinds,
            valve_of_edge,
            edge_of_valve,
            ports,
        }
    }

    /// Number of cell rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of cell columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of fluid cells (`rows * cols`), obstacles included.
    pub fn cell_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of real valves on the chip (the paper's `n_v`).
    pub fn valve_count(&self) -> usize {
        self.edge_of_valve.len()
    }

    /// Number of internal edges (valve sites) of the lattice, of any kind.
    pub fn edge_count(&self) -> usize {
        self.edge_kinds.len()
    }

    pub(crate) fn indexer(&self) -> EdgeIndexer {
        EdgeIndexer {
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Dense index of an edge, in `0..edge_count()`.
    pub fn edge_index(&self, e: EdgeId) -> usize {
        self.indexer().index(e)
    }

    /// The edge with the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= edge_count()`.
    pub fn edge_at(&self, index: usize) -> EdgeId {
        assert!(index < self.edge_count(), "edge index {index} out of range");
        self.indexer().edge(index)
    }

    /// Dense index of a cell, row-major.
    pub fn cell_index(&self, c: CellId) -> usize {
        debug_assert!(c.row < self.rows && c.col < self.cols);
        c.row * self.cols + c.col
    }

    /// The cell with the given dense (row-major) index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= cell_count()`.
    pub fn cell_at(&self, index: usize) -> CellId {
        assert!(index < self.cell_count(), "cell index {index} out of range");
        CellId::new(index / self.cols, index % self.cols)
    }

    /// What occupies the edge.
    pub fn edge_kind(&self, e: EdgeId) -> EdgeKind {
        self.edge_kinds[self.edge_index(e)]
    }

    /// Role of the cell.
    pub fn cell_kind(&self, c: CellId) -> CellKind {
        self.cell_kinds[self.cell_index(c)]
    }

    /// The valve occupying edge `e`, if the edge kind is [`EdgeKind::Valve`].
    pub fn valve_at(&self, e: EdgeId) -> Option<ValveId> {
        self.valve_of_edge[self.edge_index(e)]
    }

    /// The edge a valve sits on.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn edge_of(&self, v: ValveId) -> EdgeId {
        self.edge_of_valve[v.0]
    }

    /// The two cells separated by valve `v`.
    pub fn valve_endpoints(&self, v: ValveId) -> (CellId, CellId) {
        self.edge_of(v).endpoints()
    }

    /// Iterates over every valve id together with its edge.
    pub fn valves(&self) -> impl Iterator<Item = (ValveId, EdgeId)> + '_ {
        self.edge_of_valve
            .iter()
            .enumerate()
            .map(|(i, &e)| (ValveId(i), e))
    }

    /// Iterates over every internal edge with its kind.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, EdgeKind)> + '_ {
        self.indexer().iter().zip(self.edge_kinds.iter().copied())
    }

    /// Iterates over every cell id, row-major.
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cell_count()).map(|i| self.cell_at(i))
    }

    /// All ports in declaration order.
    pub fn ports(&self) -> impl Iterator<Item = (PortId, &Port)> {
        self.ports.iter().enumerate().map(|(i, p)| (PortId(i), p))
    }

    /// The port with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.0]
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// All pressure sources.
    pub fn sources(&self) -> impl Iterator<Item = (PortId, &Port)> {
        self.ports().filter(|(_, p)| p.kind == PortKind::Source)
    }

    /// All pressure meters (sinks).
    pub fn sinks(&self) -> impl Iterator<Item = (PortId, &Port)> {
        self.ports().filter(|(_, p)| p.kind == PortKind::Sink)
    }

    /// The internal edges incident to `cell`, with the neighbouring cell on
    /// the far side of each.
    pub fn neighbors(&self, cell: CellId) -> impl Iterator<Item = (EdgeId, CellId)> + '_ {
        Side::ALL.into_iter().filter_map(move |side| {
            let other = cell.neighbor(side, self.rows, self.cols)?;
            let edge = self
                .edge_between(cell, other)
                .expect("adjacent cells share an edge");
            Some((edge, other))
        })
    }

    /// The edge between two cells, or `None` when they are not orthogonally
    /// adjacent.
    pub fn edge_between(&self, a: CellId, b: CellId) -> Option<EdgeId> {
        let (nw, se) = if (a.row, a.col) <= (b.row, b.col) {
            (a, b)
        } else {
            (b, a)
        };
        if nw.row == se.row && nw.col + 1 == se.col {
            Some(EdgeId::horizontal(nw.row, nw.col))
        } else if nw.col == se.col && nw.row + 1 == se.row {
            Some(EdgeId::vertical(nw.row, nw.col))
        } else {
            None
        }
    }

    /// Whether fluid can cross edge `e` under test vector `vector` on a
    /// fault-free chip: channels are always passable, walls never, and a
    /// valve follows its commanded state.
    ///
    /// # Panics
    ///
    /// Panics if `vector` was built for a different valve count.
    pub fn edge_is_open(&self, e: EdgeId, vector: &TestVector) -> bool {
        match self.edge_kind(e) {
            EdgeKind::Open => true,
            EdgeKind::Wall => false,
            EdgeKind::Valve => {
                let v = self.valve_at(e).expect("valve edge has a valve id");
                vector.is_open(v)
            }
        }
    }

    /// Valves whose control channels are routed next to valve `v`'s: every
    /// valve on an edge touching either endpoint cell of `v`'s edge.
    ///
    /// This is the physical-adjacency relation used for control-layer
    /// leakage faults: leakage can only occur between control channels that
    /// run close to each other.
    pub fn valve_neighbors(&self, v: ValveId) -> Vec<ValveId> {
        let edge = self.edge_of(v);
        let (a, b) = edge.endpoints();
        let mut out = Vec::new();
        for cell in [a, b] {
            for (e, _) in self.neighbors(cell) {
                if e == edge {
                    continue;
                }
                if let Some(n) = self.valve_at(e) {
                    if !out.contains(&n) {
                        out.push(n);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Cells on the chip boundary, clockwise starting at `(0, 0)`.
    pub fn boundary_cells(&self) -> Vec<CellId> {
        let (rows, cols) = (self.rows, self.cols);
        let mut out = Vec::new();
        if rows == 1 {
            for c in 0..cols {
                out.push(CellId::new(0, c));
            }
            return out;
        }
        if cols == 1 {
            for r in 0..rows {
                out.push(CellId::new(r, 0));
            }
            return out;
        }
        for c in 0..cols {
            out.push(CellId::new(0, c));
        }
        for r in 1..rows {
            out.push(CellId::new(r, cols - 1));
        }
        for c in (0..cols - 1).rev() {
            out.push(CellId::new(rows - 1, c));
        }
        for r in (1..rows - 1).rev() {
            out.push(CellId::new(r, 0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FpvaBuilder;

    fn full(rows: usize, cols: usize) -> Fpva {
        FpvaBuilder::new(rows, cols)
            .port(0, 0, Side::West, PortKind::Source)
            .port(rows - 1, cols - 1, Side::East, PortKind::Sink)
            .build()
            .expect("valid layout")
    }

    #[test]
    fn full_grid_counts() {
        let f = full(4, 5);
        assert_eq!(f.cell_count(), 20);
        assert_eq!(f.edge_count(), 4 * 4 + 3 * 5);
        assert_eq!(f.valve_count(), f.edge_count());
        assert_eq!(f.sources().count(), 1);
        assert_eq!(f.sinks().count(), 1);
    }

    #[test]
    fn valve_edge_roundtrip() {
        let f = full(3, 3);
        for (v, e) in f.valves() {
            assert_eq!(f.valve_at(e), Some(v));
            assert_eq!(f.edge_of(v), e);
        }
    }

    #[test]
    fn neighbors_of_corner_and_center() {
        let f = full(3, 3);
        assert_eq!(f.neighbors(CellId::new(0, 0)).count(), 2);
        assert_eq!(f.neighbors(CellId::new(1, 1)).count(), 4);
        assert_eq!(f.neighbors(CellId::new(2, 1)).count(), 3);
    }

    #[test]
    fn edge_between_adjacency() {
        let f = full(3, 3);
        let a = CellId::new(1, 1);
        assert_eq!(
            f.edge_between(a, CellId::new(1, 2)),
            Some(EdgeId::horizontal(1, 1))
        );
        assert_eq!(
            f.edge_between(CellId::new(1, 2), a),
            Some(EdgeId::horizontal(1, 1))
        );
        assert_eq!(
            f.edge_between(a, CellId::new(2, 1)),
            Some(EdgeId::vertical(1, 1))
        );
        assert_eq!(f.edge_between(a, CellId::new(2, 2)), None);
        assert_eq!(f.edge_between(a, a), None);
    }

    #[test]
    fn edge_is_open_follows_vector() {
        let f = full(2, 2);
        let e = EdgeId::horizontal(0, 0);
        let v = f.valve_at(e).unwrap();
        let mut vec = TestVector::all_closed(f.valve_count());
        assert!(!f.edge_is_open(e, &vec));
        vec.set(v, crate::ValveState::Open);
        assert!(f.edge_is_open(e, &vec));
    }

    #[test]
    fn boundary_cells_cover_perimeter_once() {
        let f = full(4, 5);
        let b = f.boundary_cells();
        assert_eq!(b.len(), 2 * 4 + 2 * 5 - 4);
        let unique: std::collections::HashSet<_> = b.iter().copied().collect();
        assert_eq!(unique.len(), b.len());
        for c in &b {
            assert!(c.is_boundary(4, 5));
        }
        // Consecutive boundary cells are orthogonally adjacent (it is a cycle).
        for w in b.windows(2) {
            assert!(
                f.edge_between(w[0], w[1]).is_some(),
                "{} {} not adjacent",
                w[0],
                w[1]
            );
        }
        assert!(f.edge_between(b[0], *b.last().unwrap()).is_some());
    }

    #[test]
    fn boundary_cells_single_row() {
        let f = FpvaBuilder::new(1, 4)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 3, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        assert_eq!(f.boundary_cells().len(), 4);
    }

    #[test]
    fn valve_neighbors_center() {
        let f = full(3, 3);
        let e = EdgeId::horizontal(1, 0); // between (1,0) and (1,1)
        let v = f.valve_at(e).unwrap();
        let n = f.valve_neighbors(v);
        // (1,0) touches: V(0,0), V(1,0); (1,1) touches: V(0,1), V(1,1), H(1,1).
        assert_eq!(n.len(), 5);
        assert!(!n.contains(&v));
    }
}
