//! Construction and validation of [`Fpva`] layouts.

use crate::array::{CellKind, EdgeKind, Fpva, Port, PortKind};
use crate::error::GridError;
use crate::geometry::{CellId, EdgeIndexer, Side};

/// Builder for [`Fpva`] arrays.
///
/// Start from a full `rows × cols` valve lattice and carve out channels
/// (valve-free, always-open runs of cells), obstacles (valve-free,
/// always-closed regions) and boundary ports.
///
/// ```
/// use fpva_grid::{FpvaBuilder, PortKind, Side};
///
/// # fn main() -> Result<(), fpva_grid::GridError> {
/// let fpva = FpvaBuilder::new(5, 5)
///     .channel_horizontal(2, 1, 2) // removes 1 valve
///     .port(0, 0, Side::West, PortKind::Source)
///     .port(4, 4, Side::East, PortKind::Sink)
///     .build()?;
/// assert_eq!(fpva.valve_count(), 2 * 5 * 4 - 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FpvaBuilder {
    rows: usize,
    cols: usize,
    channels: Vec<ChannelSpec>,
    obstacles: Vec<ObstacleSpec>,
    ports: Vec<Port>,
}

#[derive(Debug, Clone, Copy)]
struct ChannelSpec {
    start: CellId,
    len: usize,
    horizontal: bool,
}

#[derive(Debug, Clone, Copy)]
struct ObstacleSpec {
    top_left: CellId,
    bottom_right: CellId,
}

impl FpvaBuilder {
    /// Starts a full `rows × cols` array with a valve on every internal
    /// edge and no ports.
    pub fn new(rows: usize, cols: usize) -> Self {
        FpvaBuilder {
            rows,
            cols,
            channels: Vec::new(),
            obstacles: Vec::new(),
            ports: Vec::new(),
        }
    }

    /// Declares a horizontal transportation channel spanning the cells
    /// `(row, col_start) ..= (row, col_end)`. The valves between consecutive
    /// channel cells are not built (the sites are permanently open), so the
    /// feature removes `col_end - col_start` valves.
    pub fn channel_horizontal(mut self, row: usize, col_start: usize, col_end: usize) -> Self {
        self.channels.push(ChannelSpec {
            start: CellId::new(row, col_start),
            len: col_end.saturating_sub(col_start) + 1,
            horizontal: true,
        });
        self
    }

    /// Declares a vertical transportation channel spanning the cells
    /// `(row_start, col) ..= (row_end, col)`; removes `row_end - row_start`
    /// valves.
    pub fn channel_vertical(mut self, col: usize, row_start: usize, row_end: usize) -> Self {
        self.channels.push(ChannelSpec {
            start: CellId::new(row_start, col),
            len: row_end.saturating_sub(row_start) + 1,
            horizontal: false,
        });
        self
    }

    /// Declares a rectangular obstacle covering the cells
    /// `(row0, col0) ..= (row1, col1)`. No valves are built on any edge
    /// incident to an obstacle cell; those sites are permanent walls.
    pub fn obstacle(mut self, row0: usize, col0: usize, row1: usize, col1: usize) -> Self {
        self.obstacles.push(ObstacleSpec {
            top_left: CellId::new(row0.min(row1), col0.min(col1)),
            bottom_right: CellId::new(row0.max(row1), col0.max(col1)),
        });
        self
    }

    /// Declares a boundary port on cell `(row, col)` opening through chip
    /// side `side`.
    pub fn port(mut self, row: usize, col: usize, side: Side, kind: PortKind) -> Self {
        self.ports.push(Port {
            cell: CellId::new(row, col),
            side,
            kind,
        });
        self
    }

    /// Validates the layout and produces the immutable [`Fpva`].
    ///
    /// # Errors
    ///
    /// Returns a [`GridError`] when the array is empty, a feature is out of
    /// bounds, a channel is shorter than two cells, channels/obstacles
    /// conflict, or a port is misplaced (not on the boundary, facing
    /// inward, on an obstacle, or duplicated).
    pub fn build(self) -> Result<Fpva, GridError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(GridError::EmptyArray);
        }
        let (rows, cols) = (self.rows, self.cols);
        let indexer = EdgeIndexer { rows, cols };
        let mut edge_kinds = vec![EdgeKind::Valve; indexer.count()];
        let mut cell_kinds = vec![CellKind::Normal; rows * cols];
        let in_bounds = |c: CellId| c.row < rows && c.col < cols;
        let cell_ix = |c: CellId| c.row * cols + c.col;

        // Obstacles first: they claim cells exclusively.
        for ob in &self.obstacles {
            if !in_bounds(ob.bottom_right) {
                return Err(GridError::OutOfBounds {
                    cell: ob.bottom_right,
                    rows,
                    cols,
                });
            }
            for r in ob.top_left.row..=ob.bottom_right.row {
                for c in ob.top_left.col..=ob.bottom_right.col {
                    let cell = CellId::new(r, c);
                    if cell_kinds[cell_ix(cell)] == CellKind::Obstacle {
                        return Err(GridError::RegionConflict { cell });
                    }
                    cell_kinds[cell_ix(cell)] = CellKind::Obstacle;
                }
            }
        }
        // Every edge incident to an obstacle cell is a wall.
        for (i, kind) in edge_kinds.iter_mut().enumerate() {
            let (a, b) = indexer.edge(i).endpoints();
            if cell_kinds[cell_ix(a)] == CellKind::Obstacle
                || cell_kinds[cell_ix(b)] == CellKind::Obstacle
            {
                *kind = EdgeKind::Wall;
            }
        }

        // Channels: mark cells and open the edges between consecutive cells.
        for ch in &self.channels {
            if ch.len < 2 {
                return Err(GridError::ChannelTooShort { start: ch.start });
            }
            let cells: Vec<CellId> = (0..ch.len)
                .map(|k| {
                    if ch.horizontal {
                        CellId::new(ch.start.row, ch.start.col + k)
                    } else {
                        CellId::new(ch.start.row + k, ch.start.col)
                    }
                })
                .collect();
            for &cell in &cells {
                if !in_bounds(cell) {
                    return Err(GridError::OutOfBounds { cell, rows, cols });
                }
                if cell_kinds[cell_ix(cell)] == CellKind::Obstacle {
                    return Err(GridError::RegionConflict { cell });
                }
                cell_kinds[cell_ix(cell)] = CellKind::Channel;
            }
            for pair in cells.windows(2) {
                let e = if ch.horizontal {
                    crate::geometry::EdgeId::horizontal(pair[0].row, pair[0].col)
                } else {
                    crate::geometry::EdgeId::vertical(pair[0].row, pair[0].col)
                };
                let i = indexer.index(e);
                if edge_kinds[i] == EdgeKind::Wall {
                    return Err(GridError::RegionConflict { cell: pair[0] });
                }
                edge_kinds[i] = EdgeKind::Open;
            }
        }

        // Ports.
        let mut seen: Vec<(CellId, Side)> = Vec::new();
        for p in &self.ports {
            if !in_bounds(p.cell) {
                return Err(GridError::OutOfBounds {
                    cell: p.cell,
                    rows,
                    cols,
                });
            }
            if p.cell.neighbor(p.side, rows, cols).is_some() {
                // The side points at another cell, not off-chip.
                return Err(GridError::PortNotOnBoundary {
                    cell: p.cell,
                    side: p.side,
                });
            }
            if cell_kinds[cell_ix(p.cell)] == CellKind::Obstacle {
                return Err(GridError::PortOnObstacle { cell: p.cell });
            }
            if seen.contains(&(p.cell, p.side)) {
                return Err(GridError::DuplicatePort {
                    cell: p.cell,
                    side: p.side,
                });
            }
            seen.push((p.cell, p.side));
        }

        Ok(Fpva::from_parts(
            rows, cols, edge_kinds, cell_kinds, self.ports,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::EdgeKind;
    use crate::geometry::EdgeId;

    #[test]
    fn empty_array_rejected() {
        assert_eq!(
            FpvaBuilder::new(0, 5).build().unwrap_err(),
            GridError::EmptyArray
        );
        assert_eq!(
            FpvaBuilder::new(5, 0).build().unwrap_err(),
            GridError::EmptyArray
        );
    }

    #[test]
    fn channel_removes_valves() {
        let f = FpvaBuilder::new(5, 5)
            .channel_horizontal(2, 1, 3)
            .build()
            .unwrap();
        assert_eq!(f.valve_count(), 40 - 2);
        assert_eq!(f.edge_kind(EdgeId::horizontal(2, 1)), EdgeKind::Open);
        assert_eq!(f.edge_kind(EdgeId::horizontal(2, 2)), EdgeKind::Open);
        assert_eq!(f.edge_kind(EdgeId::horizontal(2, 0)), EdgeKind::Valve);
        assert_eq!(f.cell_kind(CellId::new(2, 2)), CellKind::Channel);
    }

    #[test]
    fn vertical_channel_removes_valves() {
        let f = FpvaBuilder::new(6, 4)
            .channel_vertical(1, 0, 4)
            .build()
            .unwrap();
        assert_eq!(f.valve_count(), (6 * 3 + 5 * 4) - 4);
        assert_eq!(f.edge_kind(EdgeId::vertical(0, 1)), EdgeKind::Open);
        assert_eq!(f.edge_kind(EdgeId::vertical(3, 1)), EdgeKind::Open);
        assert_eq!(f.edge_kind(EdgeId::vertical(4, 1)), EdgeKind::Valve);
    }

    #[test]
    fn obstacle_walls_all_incident_edges() {
        let f = FpvaBuilder::new(5, 5).obstacle(2, 2, 2, 2).build().unwrap();
        // A 1x1 interior obstacle removes its 4 incident valves.
        assert_eq!(f.valve_count(), 40 - 4);
        assert_eq!(f.cell_kind(CellId::new(2, 2)), CellKind::Obstacle);
        assert_eq!(f.edge_kind(EdgeId::horizontal(2, 1)), EdgeKind::Wall);
        assert_eq!(f.edge_kind(EdgeId::horizontal(2, 2)), EdgeKind::Wall);
        assert_eq!(f.edge_kind(EdgeId::vertical(1, 2)), EdgeKind::Wall);
        assert_eq!(f.edge_kind(EdgeId::vertical(2, 2)), EdgeKind::Wall);
    }

    #[test]
    fn obstacle_block_edge_count() {
        // 2x2 interior obstacle: 4 internal edges + 8 perimeter edges.
        let f = FpvaBuilder::new(6, 6).obstacle(2, 2, 3, 3).build().unwrap();
        assert_eq!(f.valve_count(), 2 * 6 * 5 - 12);
    }

    #[test]
    fn channel_too_short() {
        let err = FpvaBuilder::new(5, 5)
            .channel_horizontal(0, 2, 2)
            .build()
            .unwrap_err();
        assert!(matches!(err, GridError::ChannelTooShort { .. }));
    }

    #[test]
    fn out_of_bounds_channel() {
        let err = FpvaBuilder::new(5, 5)
            .channel_horizontal(0, 3, 6)
            .build()
            .unwrap_err();
        assert!(matches!(err, GridError::OutOfBounds { .. }));
    }

    #[test]
    fn channel_through_obstacle_conflicts() {
        let err = FpvaBuilder::new(5, 5)
            .obstacle(2, 2, 2, 2)
            .channel_horizontal(2, 1, 3)
            .build()
            .unwrap_err();
        assert!(matches!(err, GridError::RegionConflict { .. }));
    }

    #[test]
    fn overlapping_obstacles_conflict() {
        let err = FpvaBuilder::new(5, 5)
            .obstacle(1, 1, 2, 2)
            .obstacle(2, 2, 3, 3)
            .build()
            .unwrap_err();
        assert!(matches!(err, GridError::RegionConflict { .. }));
    }

    #[test]
    fn port_must_face_off_chip() {
        let err = FpvaBuilder::new(5, 5)
            .port(0, 0, Side::East, PortKind::Source)
            .build()
            .unwrap_err();
        assert!(matches!(err, GridError::PortNotOnBoundary { .. }));
        // Interior cell: every side faces another cell.
        let err = FpvaBuilder::new(5, 5)
            .port(2, 2, Side::North, PortKind::Source)
            .build()
            .unwrap_err();
        assert!(matches!(err, GridError::PortNotOnBoundary { .. }));
    }

    #[test]
    fn port_on_obstacle_rejected() {
        let err = FpvaBuilder::new(5, 5)
            .obstacle(0, 0, 0, 0)
            .port(0, 0, Side::West, PortKind::Source)
            .build()
            .unwrap_err();
        assert!(matches!(err, GridError::PortOnObstacle { .. }));
    }

    #[test]
    fn duplicate_port_rejected() {
        let err = FpvaBuilder::new(5, 5)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 0, Side::West, PortKind::Sink)
            .build()
            .unwrap_err();
        assert!(matches!(err, GridError::DuplicatePort { .. }));
    }

    #[test]
    fn two_ports_same_cell_different_sides_ok() {
        let f = FpvaBuilder::new(5, 5)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 0, Side::North, PortKind::Sink)
            .build()
            .unwrap();
        assert_eq!(f.port_count(), 2);
    }

    #[test]
    fn one_by_one_array_builds() {
        let f = FpvaBuilder::new(1, 1)
            .port(0, 0, Side::West, PortKind::Source)
            .build()
            .unwrap();
        assert_eq!(f.valve_count(), 0);
        assert_eq!(f.cell_count(), 1);
    }
}
