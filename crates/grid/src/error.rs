//! Error type for layout construction.

use crate::geometry::{CellId, Side};
use std::error::Error;
use std::fmt;

/// Errors reported by [`crate::FpvaBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GridError {
    /// The array must have at least one row and one column.
    EmptyArray,
    /// A channel, obstacle or port refers to a cell outside the array.
    OutOfBounds {
        /// The offending cell.
        cell: CellId,
        /// Array rows.
        rows: usize,
        /// Array columns.
        cols: usize,
    },
    /// A channel must span at least two cells.
    ChannelTooShort {
        /// First cell of the channel.
        start: CellId,
    },
    /// Two features (channel/obstacle) disagree about an edge or cell.
    RegionConflict {
        /// A cell inside the conflicting region.
        cell: CellId,
    },
    /// A port was placed on a cell that is not on the chip boundary, or its
    /// side does not face off-chip.
    PortNotOnBoundary {
        /// Port cell.
        cell: CellId,
        /// Port side.
        side: Side,
    },
    /// A port was placed on an obstacle cell.
    PortOnObstacle {
        /// Port cell.
        cell: CellId,
    },
    /// Two ports occupy the same cell and side.
    DuplicatePort {
        /// Port cell.
        cell: CellId,
        /// Port side.
        side: Side,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::EmptyArray => write!(f, "array must have at least one row and one column"),
            GridError::OutOfBounds { cell, rows, cols } => {
                write!(f, "cell {cell} is outside the {rows}x{cols} array")
            }
            GridError::ChannelTooShort { start } => {
                write!(
                    f,
                    "channel starting at {start} must span at least two cells"
                )
            }
            GridError::RegionConflict { cell } => {
                write!(f, "conflicting channel/obstacle features at cell {cell}")
            }
            GridError::PortNotOnBoundary { cell, side } => {
                write!(
                    f,
                    "port at {cell} side {side} does not open through the chip boundary"
                )
            }
            GridError::PortOnObstacle { cell } => {
                write!(f, "port at {cell} is placed on an obstacle cell")
            }
            GridError::DuplicatePort { cell, side } => {
                write!(f, "duplicate port at {cell} side {side}")
            }
        }
    }
}

impl Error for GridError {}
