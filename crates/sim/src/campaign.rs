//! The random multi-fault injection experiment of Section IV.
//!
//! The paper injects one to five random faults into each Table I array,
//! applies the generated test vectors and checks detection; the process is
//! repeated 10 000 times per fault count. [`run`] reproduces that protocol
//! on a [`TestSuite`], spreading the trials over a scoped worker pool
//! ([`crate::exec`]) without giving up reproducibility: every trial draws
//! from its own RNG, seeded by [`trial_seed`] from
//! `(config.seed, fault_count, trial_index)`, so the campaign outcome is a
//! pure function of `(chip, suite, config)` — independent of thread count,
//! trial order and the order of [`CampaignConfig::fault_counts`].

use crate::bitsim::{
    BitFrontier, BitSimulator, KernelStats, LaneSet, LoweredChip, SimKernel, LANES,
};
use crate::exec;
use crate::fault::{Fault, FaultSet};
use crate::suite::TestSuite;
use fpva_grid::{Fpva, TestVector, ValveId, ValveState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Whether a control-leak `(actuator → victim)` is observable at all by
/// pressure metering: with the actuator closed, some source→sink pressure
/// must be able to reach the victim's edge. The reciprocal valve pairs of
/// port-less corner cells fail this (each hides the other), so injecting
/// them would unfairly penalise *any* pressure-based method — the paper's
/// included.
pub fn leak_is_observable(fpva: &Fpva, actuator: ValveId, victim: ValveId) -> bool {
    // Close actuator and victim, open everything else; check that the two
    // endpoint cells of the victim straddle the sources and sinks. One
    // vector serves both the forward propagation and the reverse search —
    // the graph is undirected, so "some sink reaches `cell`" and "`cell`
    // reaches some sink" coincide. (The former code rebuilt the vector
    // and a fresh visited buffer per sink, per endpoint — O(sinks ×
    // valves) allocations per injected leak on the Table I campaigns.)
    let mut vector = TestVector::all_open(fpva.valve_count());
    vector.set(actuator, ValveState::Closed);
    vector.set(victim, ValveState::Closed);
    let (u, v) = fpva.edge_of(victim).endpoints();
    // Source side: a goal-directed BFS that stops once both victim
    // endpoints are resolved (a fault-free `propagate` is exactly
    // open-edge reachability from the sources, but floods every cell).
    let sources: Vec<_> = fpva.sources().map(|(_, p)| p.cell).collect();
    let (mut at_u, mut at_v) = (false, false);
    bfs_visit(fpva, &sources, &vector, |cell| {
        at_u |= cell == u;
        at_v |= cell == v;
        at_u && at_v
    });
    // Which victim endpoints the source side pressurises decides which
    // the sink side still has to reach.
    let (need_v, need_u) = (at_u, at_v);
    if !need_u && !need_v {
        return false;
    }
    // Sink side: one multi-source BFS over the same vector, stopping as
    // soon as a needed endpoint is reached.
    let sinks: Vec<_> = fpva.sinks().map(|(_, p)| p.cell).collect();
    let mut observable = false;
    bfs_visit(fpva, &sinks, &vector, |cell| {
        observable = (need_v && cell == v) || (need_u && cell == u);
        observable
    });
    observable
}

/// Multi-source BFS from `starts` over a vector's open edges, invoking
/// `visit` on every dequeued cell; stops early once `visit` returns `true`.
fn bfs_visit(
    fpva: &Fpva,
    starts: &[fpva_grid::CellId],
    vector: &TestVector,
    mut visit: impl FnMut(fpva_grid::CellId) -> bool,
) {
    let mut seen = vec![false; fpva.cell_count()];
    let mut queue = std::collections::VecDeque::new();
    for &s in starts {
        let ix = fpva.cell_index(s);
        if !seen[ix] {
            seen[ix] = true;
            queue.push_back(s);
        }
    }
    while let Some(cell) = queue.pop_front() {
        if visit(cell) {
            return;
        }
        for (edge, next) in fpva.neighbors(cell) {
            if fpva.edge_is_open(edge, vector) && !seen[fpva.cell_index(next)] {
                seen[fpva.cell_index(next)] = true;
                queue.push_back(next);
            }
        }
    }
}

/// Pre-computed table of the control-leak pairs that pressure metering can
/// observe at all on one chip.
///
/// Building the table runs one [`leak_is_observable`] BFS per ordered
/// adjacent valve pair — **once** per chip, instead of once per redraw
/// inside the campaign's hot loop. The table is plain shared data
/// (`Send + Sync`), so one instance serves every worker of a parallel
/// campaign read-only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservableLeaks {
    pairs: Vec<(ValveId, ValveId)>,
}

impl ObservableLeaks {
    /// Scans every ordered adjacent `(actuator, victim)` pair of `fpva`
    /// and keeps the observable ones, in `(actuator, victim)` scan order.
    pub fn build(fpva: &Fpva) -> Self {
        Self::par_build(fpva, 1)
    }

    /// Like [`ObservableLeaks::build`], with the candidate-pair probes
    /// spread over `threads` workers (`0` = all CPUs). The resulting table
    /// is identical for every thread count.
    pub fn par_build(fpva: &Fpva, threads: usize) -> Self {
        Self::par_build_lowered(fpva, threads, &LoweredChip::build(fpva))
    }

    /// [`ObservableLeaks::par_build`] over an already-lowered chip, so a
    /// caller holding a [`ChipContext`]-style precomputation does not
    /// lower twice.
    ///
    /// The probes run on the bit-parallel kernel: [`LANES`] candidate
    /// pairs share one word, and two full-flood passes (forward from the
    /// sources, backward from the sinks) replace the per-pair goal-directed
    /// BFS of [`leak_is_observable`] — which stays as the scalar oracle,
    /// pinned equal by the unit tests. Undirected reachability makes the
    /// two formulations coincide: a pair is observable exactly when the
    /// sources reach one victim endpoint and the sinks reach the other.
    pub(crate) fn par_build_lowered(fpva: &Fpva, threads: usize, chip: &LoweredChip) -> Self {
        const PAIR_CHUNK: usize = 4 * LANES;
        let candidates: Vec<(ValveId, ValveId)> = fpva
            .valves()
            .flat_map(|(actuator, _)| {
                fpva.valve_neighbors(actuator)
                    .into_iter()
                    .map(move |victim| (actuator, victim))
            })
            .collect();
        let chunks = exec::run_chunked(threads, candidates.len(), PAIR_CHUNK, |range| {
            let mut fwd = BitFrontier::new(chip.cell_count());
            let mut bwd = BitFrontier::new(chip.cell_count());
            let mut open = LaneSet::zeros(chip.valve_count());
            let mut pairs = Vec::new();
            for block in candidates[range].chunks(LANES) {
                // Lane l: actuator and victim closed, everything else open.
                open.broadcast(|_| true);
                for (lane, &(actuator, victim)) in block.iter().enumerate() {
                    open.clear_lane(actuator.index(), lane);
                    open.clear_lane(victim.index(), lane);
                }
                fwd.propagate(chip, &open);
                bwd.propagate_from(chip, chip.sink_cells(), &open);
                for (lane, &(actuator, victim)) in block.iter().enumerate() {
                    let (u, w) = fpva.edge_of(victim).endpoints();
                    let (ui, wi) = (fpva.cell_index(u), fpva.cell_index(w));
                    let observable = (fwd.reached().lane(ui, lane) && bwd.reached().lane(wi, lane))
                        || (fwd.reached().lane(wi, lane) && bwd.reached().lane(ui, lane));
                    if observable {
                        pairs.push((actuator, victim));
                    }
                }
            }
            pairs
        });
        ObservableLeaks {
            pairs: chunks.concat(),
        }
    }

    /// The observable `(actuator, victim)` pairs, in scan order.
    pub fn pairs(&self) -> &[(ValveId, ValveId)] {
        &self.pairs
    }

    /// Number of observable pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when no adjacent leak on this chip is observable.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The ordered adjacent `(actuator, victim)` pairs of `fpva` that no
    /// pressure metering can observe — the complement of this table over
    /// the full adjacent-pair scan. A non-empty result means some leak
    /// faults are untestable by construction on this chip; `fpva-lint`
    /// surfaces them as zero-observability diagnostics.
    ///
    /// Pass the same `fpva` the table was built from.
    pub fn unobservable_pairs(&self, fpva: &Fpva) -> Vec<(ValveId, ValveId)> {
        let observable: std::collections::BTreeSet<_> = self.pairs.iter().copied().collect();
        let mut out = Vec::new();
        for a in 0..fpva.valve_count() {
            let actuator = ValveId(a);
            for victim in fpva.valve_neighbors(actuator) {
                if !observable.contains(&(actuator, victim)) {
                    out.push((actuator, victim));
                }
            }
        }
        out
    }
}

/// Derives the seed of one trial's private RNG from the campaign seed, the
/// row's fault count and the trial index (SplitMix64-style finalisers with
/// distinct odd multipliers per coordinate).
///
/// Giving every trial its own generator is what makes campaign results
/// independent of trial order, row order and thread count: the former
/// implementation threaded one sequential `StdRng` stream through all rows
/// and trials, so the same seed produced different per-row results
/// whenever `fault_counts` was reordered or subset — and would have
/// produced thread-count-dependent results under any parallel split.
pub fn trial_seed(seed: u64, fault_count: usize, trial: usize) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut h = mix(seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    h = mix(h ^ (fault_count as u64).wrapping_mul(0xA24B_AED4_963E_E407));
    mix(h ^ (trial as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25))
}

/// Parameters of a fault-injection campaign.
///
/// # Determinism contract
///
/// For a fixed `(chip, suite)`, the rows returned by [`run`] are a pure
/// function of this configuration's `seed`, `trials`,
/// `include_control_leaks` and the *set* of `fault_counts`: each row
/// depends only on its own fault count (trial `i` of fault count `k` uses
/// the RNG seeded by [`trial_seed`]`(seed, k, i)`). In particular the
/// results do **not** change with [`CampaignConfig::threads`], with the
/// ordering of `fault_counts`, when `fault_counts` is subset, or with the
/// [`CampaignConfig::kernel`] — the bit-parallel kernel packs trials into
/// lanes but derives each trial's faults from the same per-trial RNG and
/// evaluates the same detection predicate, so rows match the scalar
/// oracle byte for byte.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Trials per fault count (the paper uses 10 000).
    pub trials: usize,
    /// Numbers of simultaneous faults to inject (the paper uses 1..=5).
    pub fault_counts: Vec<usize>,
    /// RNG seed, for reproducible campaigns.
    pub seed: u64,
    /// Whether control-layer leak faults are part of the mix (in addition
    /// to stuck-at-0/1).
    pub include_control_leaks: bool,
    /// Worker threads for the trial sweep: `1` runs serial on the calling
    /// thread, `0` uses one worker per available CPU. Results are
    /// identical for every value (see the determinism contract above).
    pub threads: usize,
    /// Simulation kernel: the word-parallel bitset BFS (default) or the
    /// scalar per-trial BFS oracle. Rows are identical either way.
    pub kernel: SimKernel,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 10_000,
            fault_counts: vec![1, 2, 3, 4, 5],
            seed: 0xF97A_2017,
            include_control_leaks: true,
            threads: 1,
            kernel: SimKernel::default(),
        }
    }
}

/// Per-chip precomputed campaign state: the observable-leak table and the
/// bit-parallel lowered adjacency, built **once** per chip and shared
/// read-only by any number of [`run_in`] calls (and their workers). A
/// campaign service re-running suites against the same chip should build
/// this once instead of paying the per-[`run`] setup each time.
#[derive(Debug, Clone)]
pub struct ChipContext {
    leaks: ObservableLeaks,
    lowered: LoweredChip,
}

impl ChipContext {
    /// Builds the context serially; see [`ChipContext::par_build`].
    pub fn build(fpva: &Fpva) -> Self {
        Self::par_build(fpva, 1)
    }

    /// Builds the context with the leak-table probes spread over
    /// `threads` workers (`0` = all CPUs); the result is identical for
    /// every thread count.
    pub fn par_build(fpva: &Fpva, threads: usize) -> Self {
        let lowered = LoweredChip::build(fpva);
        let leaks = ObservableLeaks::par_build_lowered(fpva, threads, &lowered);
        ChipContext { leaks, lowered }
    }

    /// The chip's observable control-leak table.
    pub fn leaks(&self) -> &ObservableLeaks {
        &self.leaks
    }

    /// The chip's adjacency, lowered for the bit-parallel kernel.
    pub fn lowered(&self) -> &LoweredChip {
        &self.lowered
    }
}

/// Outcome for one fault count.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Number of simultaneous faults injected per trial.
    pub fault_count: usize,
    /// Trials run.
    pub trials: usize,
    /// Trials in which the suite detected the fault set.
    pub detected: usize,
    /// Up to [`MAX_RECORDED_ESCAPES`] fault sets that escaped, in trial
    /// order, for diagnosis.
    pub escapes: Vec<FaultSet>,
}

/// How many escaping fault sets a [`CampaignRow`] records verbatim.
pub const MAX_RECORDED_ESCAPES: usize = 8;

impl CampaignRow {
    /// Fraction of trials detected, in `[0, 1]`, or `None` when no trials
    /// ran — an empty campaign says nothing about the suite, so reporting
    /// a number (the old code said `1.0`, which reads as "fully detected"
    /// in bench output) would be misleading.
    pub fn detection_rate(&self) -> Option<f64> {
        if self.trials == 0 {
            return None;
        }
        Some(self.detected as f64 / self.trials as f64)
    }

    /// `true` when every trial was detected (the paper's reported result).
    pub fn all_detected(&self) -> bool {
        self.detected == self.trials
    }
}

/// Draws one random fault set with exactly `count` distinct faults.
///
/// Convenience wrapper around [`random_fault_set_from`] that scans the
/// chip's observable-leak table on every call — prefer building one
/// [`ObservableLeaks`] and reusing it when drawing many sets.
///
/// # Panics
///
/// As [`random_fault_set_from`].
pub fn random_fault_set(
    fpva: &Fpva,
    rng: &mut impl Rng,
    count: usize,
    include_control_leaks: bool,
) -> FaultSet {
    let leaks = include_control_leaks.then(|| ObservableLeaks::build(fpva));
    random_fault_set_from(fpva, rng, count, leaks.as_ref())
}

/// Draws one random fault set with exactly `count` distinct faults, taking
/// control-leak candidates from a pre-built [`ObservableLeaks`] table
/// (`None` disables leak faults).
///
/// Mix: stuck-at-0 and stuck-at-1 each ~40 %, control leaks ~20 % (when a
/// non-empty table is supplied). Leak pairs are drawn uniformly from the
/// observable table, so an unobservable leak can never be injected *and*
/// never costs a redraw; the only redraws left are genuine non-progress
/// (duplicate faults and stuck-at-0/1 conflicts on one valve), which is
/// what the stall bound counts. The former per-redraw observability BFS
/// both dominated campaign runtime and — because its total attempt bound
/// counted unobservable redraws as failures — could spuriously panic on
/// leak-heavy small arrays.
///
/// # Panics
///
/// Panics if the array has no valves, if `count` exceeds the number of
/// distinct compatible faults this chip supports (one stuck-at per valve
/// plus the observable leak pairs), or if drawing stalls without progress
/// for an implausible number of consecutive attempts.
pub fn random_fault_set_from(
    fpva: &Fpva,
    rng: &mut impl Rng,
    count: usize,
    leaks: Option<&ObservableLeaks>,
) -> FaultSet {
    let nv = fpva.valve_count();
    assert!(nv > 0, "cannot inject faults into an array without valves");
    let n_leaks = leaks.map_or(0, ObservableLeaks::len);
    assert!(
        count <= nv + n_leaks,
        "cannot build {count} distinct compatible faults: this array supports \
         at most {nv} stuck-at faults plus {n_leaks} observable leaks"
    );
    let mut faults: Vec<Fault> = Vec::with_capacity(count);
    let mut stalled = 0usize;
    while faults.len() < count {
        assert!(
            stalled < 10_000 * (count + 1),
            "fault drawing made no progress for {stalled} attempts \
             (requested {count} of at most {})",
            nv + n_leaks
        );
        let kind = if n_leaks > 0 {
            rng.gen_range(0..5)
        } else {
            rng.gen_range(0..4)
        };
        let fault = match kind {
            0 | 1 => Fault::StuckAt0(ValveId(rng.gen_range(0..nv))),
            2 | 3 => Fault::StuckAt1(ValveId(rng.gen_range(0..nv))),
            _ => {
                let (actuator, victim) =
                    leaks.expect("kind 4 implies a table").pairs()[rng.gen_range(0..n_leaks)];
                Fault::ControlLeak { actuator, victim }
            }
        };
        let conflict = match fault {
            Fault::StuckAt0(v) => faults.contains(&Fault::StuckAt1(v)),
            Fault::StuckAt1(v) => faults.contains(&Fault::StuckAt0(v)),
            Fault::ControlLeak { .. } => false,
        };
        if conflict || faults.contains(&fault) {
            stalled += 1;
            continue;
        }
        stalled = 0;
        faults.push(fault);
    }
    FaultSet::try_from_faults(faults).expect("construction avoids conflicts")
}

/// Runs the full campaign: for every entry of
/// [`CampaignConfig::fault_counts`], injects random fault sets
/// [`CampaignConfig::trials`] times and counts detections, chunking the
/// trials over [`CampaignConfig::threads`] workers.
///
/// See the determinism contract on [`CampaignConfig`]: the returned rows
/// are byte-identical for every thread count and `fault_counts` ordering.
///
/// # Panics
///
/// Panics if the array has no valves, or if a row's fault count exceeds
/// the chip's distinct-fault capacity (see [`random_fault_set_from`]).
pub fn run(fpva: &Fpva, suite: &TestSuite, config: &CampaignConfig) -> Vec<CampaignRow> {
    run_with_stats(fpva, suite, config).0
}

/// [`run`], additionally reporting the kernel's work counters (blocks,
/// word-parallel and scalar BFS passes) summed over all rows. The stats,
/// like the rows, are identical for every thread count.
pub fn run_with_stats(
    fpva: &Fpva,
    suite: &TestSuite,
    config: &CampaignConfig,
) -> (Vec<CampaignRow>, KernelStats) {
    // The leak table's pair sweep and the adjacency lowering are pure
    // overhead when no trial will ever use them.
    let draws_faults = config.trials > 0 && !config.fault_counts.is_empty();
    let leaks = (config.include_control_leaks && draws_faults)
        .then(|| ObservableLeaks::par_build(fpva, config.threads));
    let lowered =
        (config.kernel == SimKernel::BitParallel && draws_faults).then(|| LoweredChip::build(fpva));
    run_inner(fpva, suite, config, leaks.as_ref(), lowered.as_ref())
}

/// [`run_with_stats`] against a pre-built [`ChipContext`], skipping the
/// per-run leak-table and adjacency-lowering setup entirely — the
/// entry point for repeated campaigns over one chip (and for benchmarks
/// that want to time the simulation kernel, not the setup).
pub fn run_in(
    fpva: &Fpva,
    suite: &TestSuite,
    config: &CampaignConfig,
    ctx: &ChipContext,
) -> (Vec<CampaignRow>, KernelStats) {
    let leaks = config.include_control_leaks.then(|| ctx.leaks());
    run_inner(fpva, suite, config, leaks, Some(ctx.lowered()))
}

fn run_inner(
    fpva: &Fpva,
    suite: &TestSuite,
    config: &CampaignConfig,
    leaks: Option<&ObservableLeaks>,
    lowered: Option<&LoweredChip>,
) -> (Vec<CampaignRow>, KernelStats) {
    let mut stats = KernelStats::default();
    let rows = config
        .fault_counts
        .iter()
        .map(|&fault_count| {
            let (row, row_stats) = run_row(fpva, suite, config, leaks, lowered, fault_count);
            stats.merge(&row_stats);
            row
        })
        .collect();
    (rows, stats)
}

/// Trials per work chunk of the scalar kernel. Fixed (not derived from the
/// thread count) so the chunk decomposition itself is deterministic; small
/// enough that the pool load-balances even on slow chips, large enough to
/// amortise dispatch.
const TRIAL_CHUNK: usize = 32;

/// Trials per work chunk of the bit-parallel kernel: a multiple of
/// [`LANES`] so every block but a chunk's (and the row's) last is fully
/// packed. The decomposition still never affects the rows — detection is
/// per-trial and escapes merge in trial order — which the lane-packing
/// differential tests pin down.
const TRIAL_CHUNK_BITS: usize = 2 * LANES;

fn run_row(
    fpva: &Fpva,
    suite: &TestSuite,
    config: &CampaignConfig,
    leaks: Option<&ObservableLeaks>,
    lowered: Option<&LoweredChip>,
    fault_count: usize,
) -> (CampaignRow, KernelStats) {
    let chunk_size = match config.kernel {
        SimKernel::Scalar => TRIAL_CHUNK,
        SimKernel::BitParallel => TRIAL_CHUNK_BITS,
    };
    let chunks = exec::run_chunked(config.threads, config.trials, chunk_size, |trials| {
        let mut stats = KernelStats::default();
        let mut detected = 0usize;
        let mut escapes = Vec::new();
        let draw = |trial: usize| {
            let mut rng = StdRng::seed_from_u64(trial_seed(config.seed, fault_count, trial));
            random_fault_set_from(fpva, &mut rng, fault_count, leaks)
        };
        match lowered {
            // Bit-parallel: draw the chunk's fault sets with their
            // per-trial RNGs (identical to the scalar draws), pack 64
            // consecutive trials per block and push each block through
            // one word-parallel detection sweep.
            Some(chip) if config.kernel == SimKernel::BitParallel => {
                let sets: Vec<FaultSet> = trials.map(draw).collect();
                let mut sim = BitSimulator::new(chip);
                for block in sets.chunks(LANES) {
                    let mask = sim.detect_block(suite, block);
                    for (lane, set) in block.iter().enumerate() {
                        if mask >> lane & 1 == 1 {
                            detected += 1;
                        } else if escapes.len() < MAX_RECORDED_ESCAPES {
                            escapes.push(set.clone());
                        }
                    }
                }
                stats = sim.stats();
            }
            _ => {
                for trial in trials {
                    let faults = draw(trial);
                    match suite.first_detecting_vector(fpva, &faults) {
                        Some(ix) => {
                            detected += 1;
                            stats.scalar_passes += ix + 1;
                        }
                        None => {
                            stats.scalar_passes += suite.len();
                            if escapes.len() < MAX_RECORDED_ESCAPES {
                                escapes.push(faults);
                            }
                        }
                    }
                }
            }
        }
        (detected, escapes, stats)
    });
    // Chunks arrive in trial order; keeping each chunk's first
    // MAX_RECORDED_ESCAPES and truncating the concatenation yields exactly
    // the first MAX_RECORDED_ESCAPES escapes of the whole row, independent
    // of the chunk decomposition.
    let mut detected = 0usize;
    let mut escapes = Vec::new();
    let mut stats = KernelStats::default();
    for (chunk_detected, chunk_escapes, chunk_stats) in chunks {
        detected += chunk_detected;
        stats.merge(&chunk_stats);
        escapes.extend(
            chunk_escapes
                .into_iter()
                .take(MAX_RECORDED_ESCAPES - escapes.len()),
        );
    }
    let row = CampaignRow {
        fault_count,
        trials: config.trials,
        detected,
        escapes,
    };
    (row, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpva_grid::{layouts, FpvaBuilder, PortKind, Side, TestVector};

    #[test]
    fn random_fault_sets_have_requested_size() {
        let f = layouts::table1_5x5();
        let mut rng = StdRng::seed_from_u64(7);
        for count in 1..=5 {
            let set = random_fault_set(&f, &mut rng, count, true);
            assert_eq!(set.len(), count);
        }
    }

    #[test]
    fn random_fault_sets_never_conflict() {
        let f = layouts::table1_5x5();
        let leaks = ObservableLeaks::build(&f);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let set = random_fault_set_from(&f, &mut rng, 5, Some(&leaks));
            // try_from_faults re-validates.
            assert!(FaultSet::try_from_faults(set.faults().to_vec()).is_ok());
        }
    }

    #[test]
    fn observable_table_matches_per_pair_probe() {
        let f = layouts::table1_5x5();
        let table = ObservableLeaks::build(&f);
        assert!(!table.is_empty());
        for &(a, b) in table.pairs() {
            assert!(leak_is_observable(&f, a, b));
        }
        let probed: usize = f
            .valves()
            .map(|(a, _)| {
                f.valve_neighbors(a)
                    .into_iter()
                    .filter(|&b| leak_is_observable(&f, a, b))
                    .count()
            })
            .sum();
        assert_eq!(table.len(), probed);
        assert_eq!(table, ObservableLeaks::par_build(&f, 4));
    }

    #[test]
    fn unobservable_pairs_complement_the_observable_table() {
        let f = layouts::table1_5x5();
        let table = ObservableLeaks::build(&f);
        let unobservable = table.unobservable_pairs(&f);
        let total: usize = f.valves().map(|(a, _)| f.valve_neighbors(a).len()).sum();
        assert_eq!(table.len() + unobservable.len(), total);
        for (a, b) in unobservable {
            assert!(!leak_is_observable(&f, a, b));
        }
    }

    #[test]
    fn leak_heavy_small_array_draws_do_not_stall() {
        // A series pipeline has adjacent valves but no observable leak at
        // all; the old attempt bound counted every unobservable redraw as
        // a failure and could spuriously panic here. With the table, the
        // leak kind is simply never drawn.
        let f = FpvaBuilder::new(1, 4)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 3, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        let leaks = ObservableLeaks::build(&f);
        assert!(leaks.is_empty());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            // count == valve count: the full stuck-at capacity, reachable
            // only because redraws are bounded by non-progress alone.
            let set = random_fault_set_from(&f, &mut rng, 3, Some(&leaks));
            assert_eq!(set.len(), 3);
            assert!(set
                .faults()
                .iter()
                .all(|fault| !matches!(fault, Fault::ControlLeak { .. })));
        }
    }

    #[test]
    #[should_panic(expected = "distinct compatible faults")]
    fn over_capacity_request_panics_upfront() {
        let f = FpvaBuilder::new(1, 4)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 3, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // 3 valves, no observable leaks: 4 distinct faults cannot exist.
        random_fault_set(&f, &mut rng, 4, true);
    }

    fn small_suite(f: &Fpva) -> TestSuite {
        TestSuite::new(
            f,
            vec![
                TestVector::all_open(f.valve_count()),
                TestVector::all_closed(f.valve_count()),
            ],
        )
    }

    #[test]
    fn campaign_is_reproducible() {
        let f = layouts::table1_5x5();
        let suite = small_suite(&f);
        let config = CampaignConfig {
            trials: 50,
            fault_counts: vec![1, 2],
            ..Default::default()
        };
        let a = run(&f, &suite, &config);
        let b = run(&f, &suite, &config);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|row| row.trials == 50));
    }

    #[test]
    fn rows_do_not_depend_on_fault_count_ordering() {
        // Regression: rows used to consume one shared sequential RNG
        // stream, so [2, 1] and [1, 2] gave different per-row results for
        // the same seed.
        let f = layouts::table1_5x5();
        let suite = small_suite(&f);
        let config = |fault_counts| CampaignConfig {
            trials: 40,
            fault_counts,
            ..Default::default()
        };
        let forward = run(&f, &suite, &config(vec![1, 2]));
        let reversed = run(&f, &suite, &config(vec![2, 1]));
        assert_eq!(forward[0], reversed[1]);
        assert_eq!(forward[1], reversed[0]);
        // Subsetting must not change a row either.
        let only_two = run(&f, &suite, &config(vec![2]));
        assert_eq!(only_two[0], forward[1]);
    }

    #[test]
    fn rows_do_not_depend_on_thread_count() {
        let f = layouts::table1_5x5();
        let suite = small_suite(&f);
        let config = |threads| CampaignConfig {
            trials: 70, // spans several TRIAL_CHUNK chunks
            fault_counts: vec![1, 3],
            threads,
            ..Default::default()
        };
        let serial = run(&f, &suite, &config(1));
        for threads in [0, 2, 8] {
            assert_eq!(
                run(&f, &suite, &config(threads)),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn trial_seeds_are_pairwise_distinct() {
        let mut seen = std::collections::HashSet::new();
        for fault_count in 1..=5 {
            for trial in 0..200 {
                assert!(seen.insert(trial_seed(0xF97A_2017, fault_count, trial)));
            }
        }
    }

    #[test]
    fn weak_suite_misses_faults() {
        // A suite with no vectors detects nothing.
        let f = layouts::table1_5x5();
        let suite = TestSuite::new(&f, vec![]);
        let config = CampaignConfig {
            trials: 20,
            fault_counts: vec![1],
            ..Default::default()
        };
        let rows = run(&f, &suite, &config);
        assert_eq!(rows[0].detected, 0);
        assert_eq!(rows[0].detection_rate(), Some(0.0));
        assert!(!rows[0].all_detected());
        assert_eq!(rows[0].escapes.len(), MAX_RECORDED_ESCAPES.min(20));
    }

    #[test]
    fn detection_rate_bounds() {
        let row = CampaignRow {
            fault_count: 1,
            trials: 4,
            detected: 3,
            escapes: vec![],
        };
        assert!((row.detection_rate().unwrap() - 0.75).abs() < 1e-12);
        let empty = CampaignRow {
            fault_count: 1,
            trials: 0,
            detected: 0,
            escapes: vec![],
        };
        // No trials say nothing about the suite — explicitly not 1.0.
        assert_eq!(empty.detection_rate(), None);
        assert!(empty.all_detected(), "vacuously true on zero trials");
    }
}
