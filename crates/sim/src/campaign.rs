//! The random multi-fault injection experiment of Section IV.
//!
//! The paper injects one to five random faults into each Table I array,
//! applies the generated test vectors and checks detection; the process is
//! repeated 10 000 times per fault count. [`run`] reproduces that protocol
//! on a [`TestSuite`].

use crate::fault::{Fault, FaultSet};
use crate::suite::TestSuite;
use fpva_grid::{Fpva, TestVector, ValveId, ValveState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Whether a control-leak `(actuator → victim)` is observable at all by
/// pressure metering: with the actuator closed, some source→sink pressure
/// must be able to reach the victim's edge. The reciprocal valve pairs of
/// port-less corner cells fail this (each hides the other), so injecting
/// them would unfairly penalise *any* pressure-based method — the paper's
/// included.
pub fn leak_is_observable(fpva: &Fpva, actuator: ValveId, victim: ValveId) -> bool {
    // Close actuator and victim, open everything else; check that the two
    // endpoint cells of the victim straddle the sources and sinks. One
    // vector serves both the forward propagation and the reverse search —
    // the graph is undirected, so "some sink reaches `cell`" and "`cell`
    // reaches some sink" coincide. (The former code rebuilt the vector
    // and a fresh visited buffer per sink, per endpoint — O(sinks ×
    // valves) allocations per injected leak on the Table I campaigns.)
    let mut vector = TestVector::all_open(fpva.valve_count());
    vector.set(actuator, ValveState::Closed);
    vector.set(victim, ValveState::Closed);
    let (u, v) = fpva.edge_of(victim).endpoints();
    // Source side: a goal-directed BFS that stops once both victim
    // endpoints are resolved (a fault-free `propagate` is exactly
    // open-edge reachability from the sources, but floods every cell).
    let sources: Vec<_> = fpva.sources().map(|(_, p)| p.cell).collect();
    let (mut at_u, mut at_v) = (false, false);
    bfs_visit(fpva, &sources, &vector, |cell| {
        at_u |= cell == u;
        at_v |= cell == v;
        at_u && at_v
    });
    // Which victim endpoints the source side pressurises decides which
    // the sink side still has to reach.
    let (need_v, need_u) = (at_u, at_v);
    if !need_u && !need_v {
        return false;
    }
    // Sink side: one multi-source BFS over the same vector, stopping as
    // soon as a needed endpoint is reached.
    let sinks: Vec<_> = fpva.sinks().map(|(_, p)| p.cell).collect();
    let mut observable = false;
    bfs_visit(fpva, &sinks, &vector, |cell| {
        observable = (need_v && cell == v) || (need_u && cell == u);
        observable
    });
    observable
}

/// Multi-source BFS from `starts` over a vector's open edges, invoking
/// `visit` on every dequeued cell; stops early once `visit` returns `true`.
fn bfs_visit(
    fpva: &Fpva,
    starts: &[fpva_grid::CellId],
    vector: &TestVector,
    mut visit: impl FnMut(fpva_grid::CellId) -> bool,
) {
    let mut seen = vec![false; fpva.cell_count()];
    let mut queue = std::collections::VecDeque::new();
    for &s in starts {
        let ix = fpva.cell_index(s);
        if !seen[ix] {
            seen[ix] = true;
            queue.push_back(s);
        }
    }
    while let Some(cell) = queue.pop_front() {
        if visit(cell) {
            return;
        }
        for (edge, next) in fpva.neighbors(cell) {
            if fpva.edge_is_open(edge, vector) && !seen[fpva.cell_index(next)] {
                seen[fpva.cell_index(next)] = true;
                queue.push_back(next);
            }
        }
    }
}

/// Parameters of a fault-injection campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Trials per fault count (the paper uses 10 000).
    pub trials: usize,
    /// Numbers of simultaneous faults to inject (the paper uses 1..=5).
    pub fault_counts: Vec<usize>,
    /// RNG seed, for reproducible campaigns.
    pub seed: u64,
    /// Whether control-layer leak faults are part of the mix (in addition
    /// to stuck-at-0/1).
    pub include_control_leaks: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 10_000,
            fault_counts: vec![1, 2, 3, 4, 5],
            seed: 0xF97A_2017,
            include_control_leaks: true,
        }
    }
}

/// Outcome for one fault count.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Number of simultaneous faults injected per trial.
    pub fault_count: usize,
    /// Trials run.
    pub trials: usize,
    /// Trials in which the suite detected the fault set.
    pub detected: usize,
    /// Up to [`MAX_RECORDED_ESCAPES`] fault sets that escaped, for
    /// diagnosis.
    pub escapes: Vec<FaultSet>,
}

/// How many escaping fault sets a [`CampaignRow`] records verbatim.
pub const MAX_RECORDED_ESCAPES: usize = 8;

impl CampaignRow {
    /// Fraction of trials detected, in `[0, 1]`.
    pub fn detection_rate(&self) -> f64 {
        if self.trials == 0 {
            return 1.0;
        }
        self.detected as f64 / self.trials as f64
    }

    /// `true` when every trial was detected (the paper's reported result).
    pub fn all_detected(&self) -> bool {
        self.detected == self.trials
    }
}

/// Draws one random fault set with exactly `count` distinct faults.
///
/// Mix: stuck-at-0 and stuck-at-1 each ~40 %, control leaks ~20 % (when
/// enabled). Leak victims are drawn from the physically adjacent valves of
/// the actuator. Conflicting stuck-at pairs on the same valve are re-drawn.
///
/// # Panics
///
/// Panics if the array has no valves, or if `count` exceeds the number of
/// distinct faults that can be built for this array.
pub fn random_fault_set(
    fpva: &Fpva,
    rng: &mut impl Rng,
    count: usize,
    include_control_leaks: bool,
) -> FaultSet {
    let nv = fpva.valve_count();
    assert!(nv > 0, "cannot inject faults into an array without valves");
    let mut faults: Vec<Fault> = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while faults.len() < count {
        attempts += 1;
        assert!(
            attempts < 10_000 * (count + 1),
            "unable to build {count} compatible faults; array too small?"
        );
        let kind = if include_control_leaks {
            rng.gen_range(0..5)
        } else {
            rng.gen_range(0..4)
        };
        let valve = ValveId(rng.gen_range(0..nv));
        let fault = match kind {
            0 | 1 => Fault::StuckAt0(valve),
            2 | 3 => Fault::StuckAt1(valve),
            _ => {
                let neighbors = fpva.valve_neighbors(valve);
                if neighbors.is_empty() {
                    continue;
                }
                let victim = neighbors[rng.gen_range(0..neighbors.len())];
                if !leak_is_observable(fpva, valve, victim) {
                    continue;
                }
                Fault::ControlLeak {
                    actuator: valve,
                    victim,
                }
            }
        };
        if faults.contains(&fault) {
            continue;
        }
        let conflict = match fault {
            Fault::StuckAt0(v) => faults.contains(&Fault::StuckAt1(v)),
            Fault::StuckAt1(v) => faults.contains(&Fault::StuckAt0(v)),
            Fault::ControlLeak { .. } => false,
        };
        if conflict {
            continue;
        }
        faults.push(fault);
    }
    FaultSet::try_from_faults(faults).expect("construction avoids conflicts")
}

/// Runs the full campaign: for every entry of
/// [`CampaignConfig::fault_counts`], injects random fault sets
/// [`CampaignConfig::trials`] times and counts detections.
///
/// # Panics
///
/// Panics if the array has no valves.
pub fn run(fpva: &Fpva, suite: &TestSuite, config: &CampaignConfig) -> Vec<CampaignRow> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    config
        .fault_counts
        .iter()
        .map(|&fault_count| {
            let mut detected = 0usize;
            let mut escapes = Vec::new();
            for _ in 0..config.trials {
                let faults =
                    random_fault_set(fpva, &mut rng, fault_count, config.include_control_leaks);
                if suite.detects(fpva, &faults) {
                    detected += 1;
                } else if escapes.len() < MAX_RECORDED_ESCAPES {
                    escapes.push(faults);
                }
            }
            CampaignRow {
                fault_count,
                trials: config.trials,
                detected,
                escapes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpva_grid::{layouts, TestVector};

    #[test]
    fn random_fault_sets_have_requested_size() {
        let f = layouts::table1_5x5();
        let mut rng = StdRng::seed_from_u64(7);
        for count in 1..=5 {
            let set = random_fault_set(&f, &mut rng, count, true);
            assert_eq!(set.len(), count);
        }
    }

    #[test]
    fn random_fault_sets_never_conflict() {
        let f = layouts::table1_5x5();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let set = random_fault_set(&f, &mut rng, 5, true);
            // try_from_faults re-validates.
            assert!(FaultSet::try_from_faults(set.faults().to_vec()).is_ok());
        }
    }

    #[test]
    fn campaign_is_reproducible() {
        let f = layouts::table1_5x5();
        let suite = TestSuite::new(
            &f,
            vec![
                TestVector::all_open(f.valve_count()),
                TestVector::all_closed(f.valve_count()),
            ],
        );
        let config = CampaignConfig {
            trials: 50,
            fault_counts: vec![1, 2],
            ..Default::default()
        };
        let a = run(&f, &suite, &config);
        let b = run(&f, &suite, &config);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|row| row.trials == 50));
    }

    #[test]
    fn weak_suite_misses_faults() {
        // A suite with no vectors detects nothing.
        let f = layouts::table1_5x5();
        let suite = TestSuite::new(&f, vec![]);
        let config = CampaignConfig {
            trials: 20,
            fault_counts: vec![1],
            ..Default::default()
        };
        let rows = run(&f, &suite, &config);
        assert_eq!(rows[0].detected, 0);
        assert_eq!(rows[0].detection_rate(), 0.0);
        assert!(!rows[0].all_detected());
        assert_eq!(rows[0].escapes.len(), MAX_RECORDED_ESCAPES.min(20));
    }

    #[test]
    fn detection_rate_bounds() {
        let row = CampaignRow {
            fault_count: 1,
            trials: 4,
            detected: 3,
            escapes: vec![],
        };
        assert!((row.detection_rate() - 0.75).abs() < 1e-12);
        let empty = CampaignRow {
            fault_count: 1,
            trials: 0,
            detected: 0,
            escapes: vec![],
        };
        assert_eq!(empty.detection_rate(), 1.0);
    }
}
