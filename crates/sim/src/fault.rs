//! The component-level fault model of the paper (Section II).

use crate::error::SimError;
use fpva_grid::{Fpva, TestVector, ValveId, ValveState};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One manufacturing fault, per the fault model of Hu et al. (TCAD'14)
/// adopted by the paper:
///
/// * a **break in a flow channel** is equivalent to the valve at the
///   channel entrance never opening → [`Fault::StuckAt0`];
/// * a **leaking flow channel** and a **break in a control channel** both
///   leave a valve unable to close → [`Fault::StuckAt1`];
/// * a **leaking control channel** makes two valves close simultaneously
///   because they share pressure in the control layer →
///   [`Fault::ControlLeak`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fault {
    /// The valve can never open (it behaves as permanently closed).
    StuckAt0(ValveId),
    /// The valve can never close (it behaves as permanently open).
    StuckAt1(ValveId),
    /// Whenever `actuator` is commanded closed, control-layer pressure
    /// leaks to `victim`'s control channel and closes `victim` too.
    ControlLeak {
        /// The valve whose control channel leaks.
        actuator: ValveId,
        /// The valve that erroneously closes with it.
        victim: ValveId,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::StuckAt0(v) => write!(f, "stuck-at-0 at {v}"),
            Fault::StuckAt1(v) => write!(f, "stuck-at-1 at {v}"),
            Fault::ControlLeak { actuator, victim } => {
                write!(f, "control leak {actuator} -> {victim}")
            }
        }
    }
}

/// A validated collection of simultaneous faults on one chip.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultSet {
    faults: Vec<Fault>,
}

impl FaultSet {
    /// The empty (fault-free) set.
    pub fn new() -> Self {
        FaultSet::default()
    }

    /// Builds a fault set, rejecting physically meaningless combinations.
    ///
    /// # Errors
    ///
    /// * [`SimError::ConflictingStuckAt`] when a valve is listed both
    ///   stuck-at-0 and stuck-at-1,
    /// * [`SimError::SelfLeak`] when a control leak names itself as victim.
    pub fn try_from_faults(faults: Vec<Fault>) -> Result<Self, SimError> {
        for f in &faults {
            if let Fault::ControlLeak { actuator, victim } = f {
                if actuator == victim {
                    return Err(SimError::SelfLeak { valve: *actuator });
                }
            }
        }
        for f in &faults {
            if let Fault::StuckAt0(v) = f {
                if faults.contains(&Fault::StuckAt1(*v)) {
                    return Err(SimError::ConflictingStuckAt { valve: *v });
                }
            }
        }
        Ok(FaultSet { faults })
    }

    /// The faults in this set.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` for a fault-free chip.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Computes the *effective* (physical) state of every valve when the
    /// chip is driven with `vector`:
    ///
    /// 1. every valve starts at its commanded state;
    /// 2. control leaks force their victim closed whenever the actuator is
    ///    commanded closed;
    /// 3. stuck-at faults override everything (a broken valve does not care
    ///    about control pressure).
    ///
    /// # Panics
    ///
    /// Panics if `vector.len()` differs from `fpva.valve_count()` or a
    /// fault references a valve outside the array.
    pub fn effective_states(&self, fpva: &Fpva, vector: &TestVector) -> EffectiveStates {
        assert_eq!(
            vector.len(),
            fpva.valve_count(),
            "vector/array size mismatch"
        );
        let mut open: Vec<bool> = (0..fpva.valve_count())
            .map(|i| vector.is_open(ValveId(i)))
            .collect();
        for f in &self.faults {
            if let Fault::ControlLeak { actuator, victim } = f {
                if !vector.is_open(*actuator) {
                    open[victim.index()] = false;
                }
            }
        }
        for f in &self.faults {
            match f {
                Fault::StuckAt0(v) => open[v.index()] = false,
                Fault::StuckAt1(v) => open[v.index()] = true,
                Fault::ControlLeak { .. } => {}
            }
        }
        EffectiveStates { open }
    }
}

impl FromIterator<Fault> for FaultSet {
    /// Collects faults without validation — prefer
    /// [`FaultSet::try_from_faults`] when the faults come from outside the
    /// crate.
    fn from_iter<I: IntoIterator<Item = Fault>>(iter: I) -> Self {
        FaultSet {
            faults: iter.into_iter().collect(),
        }
    }
}

/// Physical open/closed state of every valve under one vector and fault
/// set (output of [`FaultSet::effective_states`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectiveStates {
    open: Vec<bool>,
}

impl EffectiveStates {
    /// Physical state of valve `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn state(&self, v: ValveId) -> ValveState {
        if self.open[v.index()] {
            ValveState::Open
        } else {
            ValveState::Closed
        }
    }

    /// `true` when valve `v` is physically open.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn is_open(&self, v: ValveId) -> bool {
        self.open[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpva_grid::layouts;

    fn fixture() -> Fpva {
        layouts::full_array(3, 3)
    }

    #[test]
    fn fault_free_states_follow_vector() {
        let f = fixture();
        let mut vec = TestVector::all_closed(f.valve_count());
        vec.set(ValveId(2), ValveState::Open);
        let eff = FaultSet::new().effective_states(&f, &vec);
        assert!(eff.is_open(ValveId(2)));
        assert!(!eff.is_open(ValveId(0)));
    }

    #[test]
    fn stuck_at_0_overrides_open_command() {
        let f = fixture();
        let set = FaultSet::try_from_faults(vec![Fault::StuckAt0(ValveId(1))]).unwrap();
        let eff = set.effective_states(&f, &TestVector::all_open(f.valve_count()));
        assert!(!eff.is_open(ValveId(1)));
        assert!(eff.is_open(ValveId(0)));
    }

    #[test]
    fn stuck_at_1_overrides_close_command() {
        let f = fixture();
        let set = FaultSet::try_from_faults(vec![Fault::StuckAt1(ValveId(1))]).unwrap();
        let eff = set.effective_states(&f, &TestVector::all_closed(f.valve_count()));
        assert!(eff.is_open(ValveId(1)));
        assert_eq!(eff.state(ValveId(0)), ValveState::Closed);
    }

    #[test]
    fn control_leak_closes_victim_only_when_actuator_closed() {
        let f = fixture();
        let set = FaultSet::try_from_faults(vec![Fault::ControlLeak {
            actuator: ValveId(0),
            victim: ValveId(1),
        }])
        .unwrap();
        // Actuator commanded closed -> victim drags closed.
        let mut vec = TestVector::all_open(f.valve_count());
        vec.set(ValveId(0), ValveState::Closed);
        let eff = set.effective_states(&f, &vec);
        assert!(!eff.is_open(ValveId(1)));
        // Actuator commanded open -> no leak pressure, victim behaves.
        let eff = set.effective_states(&f, &TestVector::all_open(f.valve_count()));
        assert!(eff.is_open(ValveId(1)));
    }

    #[test]
    fn stuck_at_1_beats_control_leak() {
        let f = fixture();
        let set = FaultSet::try_from_faults(vec![
            Fault::ControlLeak {
                actuator: ValveId(0),
                victim: ValveId(1),
            },
            Fault::StuckAt1(ValveId(1)),
        ])
        .unwrap();
        let eff = set.effective_states(&f, &TestVector::all_closed(f.valve_count()));
        assert!(
            eff.is_open(ValveId(1)),
            "a valve that cannot close stays open"
        );
    }

    #[test]
    fn conflicting_stuck_at_rejected() {
        let err = FaultSet::try_from_faults(vec![
            Fault::StuckAt0(ValveId(3)),
            Fault::StuckAt1(ValveId(3)),
        ])
        .unwrap_err();
        assert_eq!(err, SimError::ConflictingStuckAt { valve: ValveId(3) });
    }

    #[test]
    fn self_leak_rejected() {
        let err = FaultSet::try_from_faults(vec![Fault::ControlLeak {
            actuator: ValveId(3),
            victim: ValveId(3),
        }])
        .unwrap_err();
        assert_eq!(err, SimError::SelfLeak { valve: ValveId(3) });
    }

    #[test]
    fn display_impls() {
        assert_eq!(Fault::StuckAt0(ValveId(2)).to_string(), "stuck-at-0 at v2");
        assert_eq!(Fault::StuckAt1(ValveId(2)).to_string(), "stuck-at-1 at v2");
        assert_eq!(
            Fault::ControlLeak {
                actuator: ValveId(1),
                victim: ValveId(2)
            }
            .to_string(),
            "control leak v1 -> v2"
        );
    }
}
