//! Deterministic scoped-thread execution for embarrassingly parallel
//! sweeps.
//!
//! The campaign of [`crate::campaign`] and the pairwise audit of
//! [`crate::audit`] both iterate over a large index space of independent
//! work items. [`run_chunked`] splits such a space into fixed-size
//! contiguous chunks, hands chunks to a pool of scoped workers
//! ([`std::thread::scope`], no external dependencies) and returns the
//! per-chunk results **in chunk order** — so as long as each item's result
//! is a pure function of its index, the merged output is byte-identical
//! for every thread count, including the serial fallback.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a user-facing thread-count knob: `0` means "one worker per
/// available CPU", anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    match threads {
        0 => std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
        t => t,
    }
}

/// Runs `work` over the index space `0..n` split into contiguous chunks of
/// `chunk_size` (the last chunk may be shorter), using up to `threads`
/// scoped workers (`0` = all CPUs), and returns the chunk results in chunk
/// order.
///
/// Workers pull chunk indices from a shared atomic counter, so load is
/// balanced dynamically; determinism is unaffected because results are
/// placed by chunk index, not completion order. With `threads <= 1` (after
/// [`resolve_threads`]) or a single chunk the work runs inline on the
/// calling thread — same results, no pool.
///
/// # Panics
///
/// Panics if `work` panics on any worker (the scope joins every worker
/// before returning, so a panicking chunk never goes unnoticed; the
/// original payload is reported on the worker's stderr).
pub fn run_chunked<R, F>(threads: usize, n: usize, chunk_size: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let chunk_size = chunk_size.max(1);
    let n_chunks = n.div_ceil(chunk_size);
    let chunk_range = |c: usize| c * chunk_size..(c * chunk_size + chunk_size).min(n);
    let threads = resolve_threads(threads).min(n_chunks.max(1));
    if threads <= 1 || n_chunks <= 1 {
        return (0..n_chunks).map(|c| work(chunk_range(c))).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let result = work(chunk_range(c));
                *slots[c]
                    .lock()
                    .expect("no worker panicked holding the slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panicked holding the slot")
                .expect("every chunk index was claimed and completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_means_all_cpus() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn chunks_cover_the_range_in_order() {
        let chunks = run_chunked(1, 10, 4, std::iter::Iterator::collect::<Vec<_>>);
        assert_eq!(chunks, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]);
    }

    #[test]
    fn empty_range_yields_no_chunks() {
        let chunks = run_chunked(4, 0, 16, |r| r.len());
        assert!(chunks.is_empty());
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let sweep = |threads| run_chunked(threads, 103, 7, std::iter::Iterator::sum::<usize>);
        let serial = sweep(1);
        for threads in [2, 3, 8] {
            assert_eq!(sweep(threads), serial, "threads={threads}");
        }
        assert_eq!(serial.iter().sum::<usize>(), (0..103).sum::<usize>());
    }

    #[test]
    fn chunk_size_larger_than_input_runs_inline_as_one_chunk() {
        let chunks = run_chunked(8, 5, 100, std::iter::Iterator::collect::<Vec<_>>);
        assert_eq!(chunks, vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn more_workers_than_chunks_is_fine() {
        let chunks = run_chunked(64, 5, 2, |r| r.start);
        assert_eq!(chunks, vec![0, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        run_chunked(2, 8, 1, |r| {
            if r.start == 5 {
                panic!("boom");
            }
            r.start
        });
    }
}
