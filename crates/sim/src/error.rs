//! Error type of the simulator.

use fpva_grid::ValveId;
use std::error::Error;
use std::fmt;

/// Errors reported when assembling fault sets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The same valve appears both stuck-at-0 and stuck-at-1, which is not
    /// physically meaningful.
    ConflictingStuckAt {
        /// The over-constrained valve.
        valve: ValveId,
    },
    /// A control-leak fault names the same valve as actuator and victim.
    SelfLeak {
        /// The valve.
        valve: ValveId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ConflictingStuckAt { valve } => {
                write!(f, "valve {valve} cannot be both stuck-at-0 and stuck-at-1")
            }
            SimError::SelfLeak { valve } => {
                write!(
                    f,
                    "control-leak fault on valve {valve} names itself as victim"
                )
            }
        }
    }
}

impl Error for SimError {}
