//! Pressure propagation through the flow layer.

use crate::fault::FaultSet;
use fpva_grid::{CellId, EdgeKind, Fpva, PortKind, TestVector};
use std::collections::VecDeque;

/// Which cells carry test pressure under one vector/fault combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pressure {
    pressurised: Vec<bool>,
    cols: usize,
}

impl Pressure {
    /// `true` when test pressure reaches `cell`.
    pub fn at(&self, cell: CellId) -> bool {
        self.pressurised[cell.row * self.cols + cell.col]
    }

    /// Number of pressurised cells.
    pub fn pressurised_count(&self) -> usize {
        self.pressurised.iter().filter(|&&p| p).count()
    }
}

/// Readings of all pressure meters (sink ports), in port order.
///
/// Two responses are comparable with `==`; a faulty chip is *detected* by a
/// vector exactly when its response differs from the fault-free one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Response {
    readings: Vec<bool>,
}

impl Response {
    /// Meter readings in sink-port order (`true` = pressure present).
    pub fn readings(&self) -> &[bool] {
        &self.readings
    }

    /// `true` when any meter sees pressure.
    pub fn any_pressure(&self) -> bool {
        self.readings.iter().any(|&r| r)
    }
}

/// Simulates one test application: pressure is applied at every source
/// port and spreads through every physically open valve site; the returned
/// [`Pressure`] marks the reached cells.
///
/// Physical valve states come from [`FaultSet::effective_states`]: commands
/// from `vector`, then control leaks, then stuck-at overrides. Channels are
/// always passable, walls never.
///
/// # Panics
///
/// Panics if `vector.len() != fpva.valve_count()` or a fault references a
/// valve outside the array.
pub fn propagate(fpva: &Fpva, vector: &TestVector, faults: &FaultSet) -> Pressure {
    let eff = faults.effective_states(fpva, vector);
    let cols = fpva.cols();
    let mut pressurised = vec![false; fpva.cell_count()];
    let mut queue = VecDeque::new();
    for (_, port) in fpva.ports() {
        if port.kind == PortKind::Source {
            let ix = fpva.cell_index(port.cell);
            if !pressurised[ix] {
                pressurised[ix] = true;
                queue.push_back(port.cell);
            }
        }
    }
    while let Some(cell) = queue.pop_front() {
        for (edge, next) in fpva.neighbors(cell) {
            let passable = match fpva.edge_kind(edge) {
                EdgeKind::Open => true,
                EdgeKind::Wall => false,
                EdgeKind::Valve => {
                    eff.is_open(fpva.valve_at(edge).expect("valve edge has a valve id"))
                }
            };
            if passable {
                let ix = fpva.cell_index(next);
                if !pressurised[ix] {
                    pressurised[ix] = true;
                    queue.push_back(next);
                }
            }
        }
    }
    Pressure { pressurised, cols }
}

impl Pressure {
    /// Reads every sink-port meter off this pressure map.
    pub fn response(&self, fpva: &Fpva) -> Response {
        let readings = fpva.sinks().map(|(_, p)| self.at(p.cell)).collect();
        Response { readings }
    }
}

/// Convenience: propagate and read the meters in one call.
pub fn respond(fpva: &Fpva, vector: &TestVector, faults: &FaultSet) -> Response {
    propagate(fpva, vector, faults).response(fpva)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use fpva_grid::{layouts, FpvaBuilder, Side, ValveId, ValveState};

    #[test]
    fn all_open_pressurises_everything_reachable() {
        let f = layouts::full_array(3, 3);
        let p = propagate(&f, &TestVector::all_open(f.valve_count()), &FaultSet::new());
        assert_eq!(p.pressurised_count(), 9);
        assert!(p.response(&f).any_pressure());
    }

    #[test]
    fn all_closed_confines_pressure_to_source_cell() {
        let f = layouts::full_array(3, 3);
        let p = propagate(
            &f,
            &TestVector::all_closed(f.valve_count()),
            &FaultSet::new(),
        );
        assert_eq!(p.pressurised_count(), 1);
        assert!(p.at(CellId::new(0, 0)));
        assert!(!p.response(&f).any_pressure());
    }

    #[test]
    fn single_open_path_reaches_sink() {
        // 1x3 row: open both valves -> pressure crosses to the sink.
        let f = FpvaBuilder::new(1, 3)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 2, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        let mut v = TestVector::all_closed(f.valve_count());
        for (id, _) in f.valves() {
            v.set(id, ValveState::Open);
        }
        assert!(respond(&f, &v, &FaultSet::new()).any_pressure());
        // Close the first valve: no pressure at the sink.
        let mut v2 = v.clone();
        v2.set(ValveId(0), ValveState::Closed);
        assert!(!respond(&f, &v2, &FaultSet::new()).any_pressure());
    }

    #[test]
    fn stuck_at_0_blocks_a_path() {
        let f = FpvaBuilder::new(1, 3)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 2, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        let v = TestVector::all_open(f.valve_count());
        let faults = FaultSet::try_from_faults(vec![Fault::StuckAt0(ValveId(1))]).unwrap();
        assert!(!respond(&f, &v, &faults).any_pressure());
    }

    #[test]
    fn stuck_at_1_leaks_through_a_cut() {
        let f = FpvaBuilder::new(1, 3)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 2, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        let v = TestVector::all_closed(f.valve_count());
        let faults = FaultSet::try_from_faults(vec![
            Fault::StuckAt1(ValveId(0)),
            Fault::StuckAt1(ValveId(1)),
        ])
        .unwrap();
        assert!(respond(&f, &v, &faults).any_pressure());
    }

    #[test]
    fn walls_stop_pressure() {
        // Obstacle splits a 1x3 row; its incident edges are walls.
        let f = FpvaBuilder::new(1, 3)
            .obstacle(0, 1, 0, 1)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 2, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        assert_eq!(f.valve_count(), 0);
        let v = TestVector::all_open(0);
        assert!(!respond(&f, &v, &FaultSet::new()).any_pressure());
    }

    #[test]
    fn channels_conduct_pressure_without_valves() {
        let f = FpvaBuilder::new(1, 3)
            .channel_horizontal(0, 0, 2)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 2, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        assert_eq!(f.valve_count(), 0);
        assert!(respond(&f, &TestVector::all_open(0), &FaultSet::new()).any_pressure());
    }

    #[test]
    fn masking_scenario_fig5a_second_path_hides_stuck_at_0() {
        // Fig. 5(a): two parallel open rows between source and sink mask a
        // stuck-at-0 on one of them.
        let f = FpvaBuilder::new(2, 3)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 2, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        let v = TestVector::all_open(f.valve_count());
        let golden = respond(&f, &v, &FaultSet::new());
        // Break one valve on the top row; the detour through row 1 still
        // delivers pressure: the fault is masked for this vector.
        let top = f.valve_at(fpva_grid::EdgeId::horizontal(0, 0)).unwrap();
        let faults = FaultSet::try_from_faults(vec![Fault::StuckAt0(top)]).unwrap();
        assert_eq!(respond(&f, &v, &faults), golden);
    }

    #[test]
    fn response_order_is_stable() {
        let f = FpvaBuilder::new(2, 2)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 1, Side::East, PortKind::Sink)
            .port(1, 1, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        let mut v = TestVector::all_closed(f.valve_count());
        v.set(
            f.valve_at(fpva_grid::EdgeId::horizontal(0, 0)).unwrap(),
            ValveState::Open,
        );
        let r = respond(&f, &v, &FaultSet::new());
        assert_eq!(r.readings(), &[true, false]);
    }
}
