//! A test-vector suite with pre-computed golden responses.

use crate::fault::FaultSet;
use crate::pressure::{respond, Response};
use fpva_grid::{Fpva, TestVector};

/// A set of test vectors together with the sink responses of a fault-free
/// chip, ready for fault-detection queries.
///
/// A fault set is **detected** when at least one vector's faulty response
/// differs from the golden response — exactly the pass/fail criterion the
/// paper's pressure meters implement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestSuite {
    vectors: Vec<TestVector>,
    expected: Vec<Response>,
}

impl TestSuite {
    /// Builds the suite and computes the golden response of every vector.
    ///
    /// # Panics
    ///
    /// Panics if any vector's length differs from `fpva.valve_count()`.
    pub fn new(fpva: &Fpva, vectors: Vec<TestVector>) -> Self {
        let expected = vectors
            .iter()
            .map(|v| respond(fpva, v, &FaultSet::new()))
            .collect();
        TestSuite { vectors, expected }
    }

    /// The vectors, in application order.
    pub fn vectors(&self) -> &[TestVector] {
        &self.vectors
    }

    /// Golden responses, parallel to [`TestSuite::vectors`].
    pub fn expected(&self) -> &[Response] {
        &self.expected
    }

    /// Number of vectors (the paper's `N` when the suite is complete).
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// `true` when the suite has no vectors.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Appends more vectors, computing their golden responses.
    ///
    /// # Panics
    ///
    /// Panics if any vector's length differs from `fpva.valve_count()`.
    pub fn extend(&mut self, fpva: &Fpva, vectors: impl IntoIterator<Item = TestVector>) {
        for v in vectors {
            self.expected.push(respond(fpva, &v, &FaultSet::new()));
            self.vectors.push(v);
        }
    }

    /// Index of the first vector whose faulty response deviates from
    /// golden, or `None` when the fault set escapes the whole suite.
    ///
    /// # Panics
    ///
    /// Panics if a fault references a valve outside the array.
    pub fn first_detecting_vector(&self, fpva: &Fpva, faults: &FaultSet) -> Option<usize> {
        self.vectors
            .iter()
            .zip(&self.expected)
            .position(|(v, golden)| respond(fpva, v, faults) != *golden)
    }

    /// `true` when some vector detects the fault set.
    ///
    /// # Panics
    ///
    /// Panics if a fault references a valve outside the array.
    pub fn detects(&self, fpva: &Fpva, faults: &FaultSet) -> bool {
        self.first_detecting_vector(fpva, faults).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use fpva_grid::{FpvaBuilder, PortKind, Side, ValveId, ValveState};

    fn line3() -> Fpva {
        FpvaBuilder::new(1, 3)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 2, Side::East, PortKind::Sink)
            .build()
            .unwrap()
    }

    #[test]
    fn golden_suite_detects_nothing_on_fault_free_chip() {
        let f = line3();
        let suite = TestSuite::new(
            &f,
            vec![
                TestVector::all_open(f.valve_count()),
                TestVector::all_closed(f.valve_count()),
            ],
        );
        assert_eq!(suite.len(), 2);
        assert!(!suite.detects(&f, &FaultSet::new()));
    }

    #[test]
    fn path_vector_detects_stuck_at_0() {
        let f = line3();
        let suite = TestSuite::new(&f, vec![TestVector::all_open(f.valve_count())]);
        let faults = FaultSet::try_from_faults(vec![Fault::StuckAt0(ValveId(0))]).unwrap();
        assert_eq!(suite.first_detecting_vector(&f, &faults), Some(0));
    }

    #[test]
    fn cut_vector_detects_stuck_at_1() {
        let f = line3();
        // Cut = both valves closed; a single stuck-at-1 is NOT enough to
        // leak across two closed valves, two are.
        let suite = TestSuite::new(&f, vec![TestVector::all_closed(f.valve_count())]);
        let one = FaultSet::try_from_faults(vec![Fault::StuckAt1(ValveId(0))]).unwrap();
        assert!(!suite.detects(&f, &one));
        // Close only valve 1 (cut of size 1): one stuck-at-1 leaks through.
        let mut cut = TestVector::all_open(f.valve_count());
        cut.set(ValveId(1), ValveState::Closed);
        let suite = TestSuite::new(&f, vec![cut]);
        let leak = FaultSet::try_from_faults(vec![Fault::StuckAt1(ValveId(1))]).unwrap();
        assert!(suite.detects(&f, &leak));
    }

    #[test]
    fn extend_keeps_golden_in_sync() {
        let f = line3();
        let mut suite = TestSuite::new(&f, vec![TestVector::all_closed(f.valve_count())]);
        suite.extend(&f, [TestVector::all_open(f.valve_count())]);
        assert_eq!(suite.len(), 2);
        assert_eq!(suite.expected().len(), 2);
        let faults = FaultSet::try_from_faults(vec![Fault::StuckAt0(ValveId(1))]).unwrap();
        assert_eq!(suite.first_detecting_vector(&f, &faults), Some(1));
    }
}
