//! Word-parallel (PPSFP-style) fault simulation kernel.
//!
//! The scalar path ([`crate::propagate`]/[`crate::respond`]) answers "does pressure reach the
//! sinks?" for **one** `(vector, fault set)` combination per BFS. Campaigns
//! and audits ask that question for thousands of fault scenarios against
//! the *same* vector, so this module packs [`LANES`] scenarios into one
//! `u64` per graph element and propagates all of them through a single
//! bitset BFS — the classic parallel-pattern/parallel-fault answer from
//! VLSI ATPG, transplanted to valve-array pressure propagation:
//!
//! * [`LoweredChip`] — the chip's cell adjacency lowered once per chip into
//!   a flat CSR table (wall edges dropped, channel edges marked
//!   always-open, valve edges tagged with their dense valve index),
//! * [`LaneSet`] — one `u64` lane word per element of some universe
//!   (per valve: "which scenarios hold this valve open"; per cell: "which
//!   scenarios pressurise this cell"),
//! * [`BitFrontier`] — the reusable bitset-BFS worklist: seeds a lane word
//!   at the source cells and saturates reachability with word-wide
//!   AND/OR over the lowered adjacency,
//! * [`BitSimulator`] — the batch detector built on top: applies every
//!   suite vector to up to [`LANES`] fault sets at once and reports the
//!   detected lanes as a bitmask, plus [`KernelStats`] counters.
//!
//! # Scalar-oracle invariant
//!
//! For every `(vector, fault set)` the lane bit computed here equals the
//! scalar result of [`crate::respond`] compared against the
//! suite's golden response — byte for byte, not approximately. The scalar
//! path stays in the tree as the oracle: the differential campaign tests
//! run both kernels over the Table I layouts and assert identical
//! [`crate::campaign::CampaignRow`]s, and the unit tests below check the
//! per-scenario reachability sets themselves. Anything observable may
//! *only* differ in speed.

use crate::fault::{Fault, FaultSet};
use crate::suite::TestSuite;
use fpva_grid::{EdgeKind, Fpva, PortKind, TestVector};
use std::collections::VecDeque;

/// Scenarios packed per machine word.
pub const LANES: usize = 64;

/// Gate marker for an always-open (channel) edge in the lowered adjacency.
const OPEN_GATE: u32 = u32::MAX;

/// A chip's adjacency pre-lowered for the bitset kernel: flat CSR arrays
/// built **once** per chip (next to [`crate::campaign::ObservableLeaks`] in
/// a campaign) and shared read-only by every worker.
///
/// Wall edges are dropped at lowering time, channel edges carry an
/// always-open marker, and valve edges carry the dense valve index — so
/// the BFS inner loop is a word AND against the per-valve lane word, with
/// no `EdgeKind` dispatch or `EdgeId` arithmetic left on the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredChip {
    cell_count: usize,
    valve_count: usize,
    /// CSR row starts: cell `c`'s neighbours live at
    /// `adj_start[c]..adj_start[c + 1]`.
    adj_start: Vec<u32>,
    /// Neighbour cell index of each adjacency entry.
    adj_next: Vec<u32>,
    /// Gate of each adjacency entry: [`OPEN_GATE`] or a valve index.
    adj_gate: Vec<u32>,
    /// Source-port cells (deduplicated, in port order).
    sources: Vec<u32>,
    /// Sink-port cells in port declaration order — parallel to the
    /// readings of a [`crate::Response`], duplicates kept.
    sinks: Vec<u32>,
}

impl LoweredChip {
    /// Lowers `fpva`'s adjacency. Cost is one scan over the cells and
    /// edges; do it once per chip, not per campaign row.
    pub fn build(fpva: &Fpva) -> Self {
        let cell_count = fpva.cell_count();
        let mut adj_start = Vec::with_capacity(cell_count + 1);
        let mut adj_next = Vec::new();
        let mut adj_gate = Vec::new();
        adj_start.push(0);
        for ci in 0..cell_count {
            let cell = fpva.cell_at(ci);
            for (edge, next) in fpva.neighbors(cell) {
                let gate = match fpva.edge_kind(edge) {
                    EdgeKind::Wall => continue,
                    EdgeKind::Open => OPEN_GATE,
                    EdgeKind::Valve => {
                        let v = fpva.valve_at(edge).expect("valve edge has a valve id");
                        u32::try_from(v.index()).expect("valve index fits u32")
                    }
                };
                adj_next.push(u32::try_from(fpva.cell_index(next)).expect("cell fits u32"));
                adj_gate.push(gate);
            }
            adj_start.push(u32::try_from(adj_next.len()).expect("adjacency fits u32"));
        }
        let mut sources = Vec::new();
        let mut sinks = Vec::new();
        for (_, port) in fpva.ports() {
            let ci = u32::try_from(fpva.cell_index(port.cell)).expect("cell fits u32");
            match port.kind {
                PortKind::Source => {
                    if !sources.contains(&ci) {
                        sources.push(ci);
                    }
                }
                PortKind::Sink => sinks.push(ci),
            }
        }
        LoweredChip {
            cell_count,
            valve_count: fpva.valve_count(),
            adj_start,
            adj_next,
            adj_gate,
            sources,
            sinks,
        }
    }

    /// Number of fluid cells of the lowered chip.
    pub fn cell_count(&self) -> usize {
        self.cell_count
    }

    /// Number of valves of the lowered chip.
    pub fn valve_count(&self) -> usize {
        self.valve_count
    }

    /// Dense cell indices of the source ports (deduplicated).
    pub fn source_cells(&self) -> &[u32] {
        &self.sources
    }

    /// Dense cell indices of the sink ports, in port declaration order
    /// (one entry per sink port, so the slice is parallel to golden
    /// response readings).
    pub fn sink_cells(&self) -> &[u32] {
        &self.sinks
    }
}

/// One `u64` lane word per element of some universe — per valve ("which
/// scenarios hold this valve open") or per cell ("which scenarios reach
/// this cell"). Bit `l` of word `i` belongs to scenario lane `l`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneSet {
    words: Vec<u64>,
}

impl LaneSet {
    /// All-zero lane words over `len` elements.
    pub fn zeros(len: usize) -> Self {
        LaneSet {
            words: vec![0; len],
        }
    }

    /// Number of elements (words), not lanes.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when the universe has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The lane word of element `i`.
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// Clears every word to zero.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Re-shapes recycled scratch to `len` all-zero words without
    /// reallocating when capacity suffices.
    fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len, 0);
    }

    /// Broadcasts a per-element predicate to all 64 lanes: element `i`
    /// becomes all-ones when `pred(i)`, all-zeros otherwise.
    pub fn broadcast(&mut self, pred: impl Fn(usize) -> bool) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w = if pred(i) { !0 } else { 0 };
        }
    }

    /// Sets lane `lane` of element `i`.
    pub fn set_lane(&mut self, i: usize, lane: usize) {
        debug_assert!(lane < LANES);
        self.words[i] |= 1 << lane;
    }

    /// Clears lane `lane` of element `i`.
    pub fn clear_lane(&mut self, i: usize, lane: usize) {
        debug_assert!(lane < LANES);
        self.words[i] &= !(1 << lane);
    }

    /// `true` when lane `lane` of element `i` is set.
    pub fn lane(&self, i: usize, lane: usize) -> bool {
        debug_assert!(lane < LANES);
        self.words[i] >> lane & 1 == 1
    }
}

/// Reusable bitset-BFS state: the per-cell reached [`LaneSet`] plus the
/// worklist. One propagation floods **all 64 lanes at once** — the inner
/// loop is `reached[cell] & open[valve]` per adjacency entry, i.e. the
/// per-scenario BFS of [`crate::propagate`] collapsed into
/// word-wide AND/OR.
#[derive(Debug, Clone)]
pub struct BitFrontier {
    reached: LaneSet,
    queue: VecDeque<u32>,
    queued: Vec<bool>,
}

impl BitFrontier {
    /// Fresh frontier for a chip with `cells` fluid cells.
    pub fn new(cells: usize) -> Self {
        BitFrontier {
            reached: LaneSet::zeros(cells),
            queue: VecDeque::new(),
            queued: vec![false; cells],
        }
    }

    /// Floods reachability from the chip's source cells: lane `l` of cell
    /// `c` ends up set exactly when scenario `l` (whose open valves are
    /// lane `l` of `open`) lets pressure travel from some source to `c`.
    ///
    /// `open` must hold one word per valve of `chip`. Source cells are
    /// pressurised in every lane, mirroring the scalar propagation.
    pub fn propagate(&mut self, chip: &LoweredChip, open: &LaneSet) {
        self.propagate_from(chip, chip.source_cells(), open);
    }

    /// Like [`BitFrontier::propagate`], seeded at an arbitrary cell set —
    /// the graph is undirected, so seeding at the sinks computes "which
    /// scenarios let this cell reach a sink" (used by the
    /// observable-leak precomputation).
    ///
    /// # Panics
    ///
    /// Panics if `open` was not sized for `chip`'s valve count or the
    /// frontier for its cell count.
    pub fn propagate_from(&mut self, chip: &LoweredChip, seeds: &[u32], open: &LaneSet) {
        assert_eq!(open.len(), chip.valve_count, "open-lane/valve mismatch");
        assert_eq!(
            self.reached.len(),
            chip.cell_count,
            "frontier/chip mismatch"
        );
        self.reached.clear();
        self.queue.clear();
        for &s in seeds {
            let si = s as usize;
            if self.reached.words[si] == 0 {
                self.reached.words[si] = !0;
                self.queued[si] = true;
                self.queue.push_back(s);
            }
        }
        while let Some(c) = self.queue.pop_front() {
            let ci = c as usize;
            self.queued[ci] = false;
            let w = self.reached.words[ci];
            let lo = chip.adj_start[ci] as usize;
            let hi = chip.adj_start[ci + 1] as usize;
            for k in lo..hi {
                let gate = chip.adj_gate[k];
                let pass = if gate == OPEN_GATE {
                    w
                } else {
                    w & open.words[gate as usize]
                };
                let ni = chip.adj_next[k] as usize;
                let new = pass & !self.reached.words[ni];
                if new != 0 {
                    self.reached.words[ni] |= new;
                    if !self.queued[ni] {
                        self.queued[ni] = true;
                        self.queue.push_back(chip.adj_next[k]);
                    }
                }
            }
        }
    }

    /// Re-shapes recycled scratch for a chip with `cells` fluid cells.
    /// The queue is empty and `queued` all-false whenever a frontier is
    /// at rest (every propagation drains its own worklist), so only the
    /// sizes need fixing up.
    fn reset(&mut self, cells: usize) {
        self.reached.reset(cells);
        self.queue.clear();
        self.queued.clear();
        self.queued.resize(cells, false);
    }

    /// The per-cell reached lanes of the last propagation.
    pub fn reached(&self) -> &LaneSet {
        &self.reached
    }

    /// Lane word of one cell (by dense cell index).
    pub fn lanes_at(&self, cell: usize) -> u64 {
        self.reached.word(cell)
    }
}

/// Which simulation kernel a campaign or audit runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimKernel {
    /// One BFS per `(vector, fault set)` — the original path, kept as the
    /// differential oracle.
    Scalar,
    /// [`LANES`] fault scenarios per word through one bitset BFS per
    /// vector (this module). Produces byte-identical results.
    #[default]
    BitParallel,
}

/// Work counters of a campaign/audit run, for throughput reporting.
///
/// All counters are a pure function of `(chip, suite, config)` — chunk
/// decomposition and early exits are deterministic — so stats, like rows,
/// are identical for every thread count *within* one kernel. Across
/// kernels only the results match; the stats are exactly what differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// 64-lane scenario blocks simulated by the bit-parallel kernel.
    pub blocks: usize,
    /// Word-parallel bitset-BFS passes (one per vector per live block).
    pub word_passes: usize,
    /// Live scenario lanes simulated by the bit-parallel kernel (partial
    /// trailing blocks count only their occupied lanes).
    pub lanes: usize,
    /// Scalar BFS passes (vector applications) by the scalar kernel.
    pub scalar_passes: usize,
}

impl KernelStats {
    /// Accumulates another counter set into this one (used to merge
    /// per-chunk stats in worker-pool order).
    pub fn merge(&mut self, other: &KernelStats) {
        self.blocks += other.blocks;
        self.word_passes += other.word_passes;
        self.lanes += other.lanes;
        self.scalar_passes += other.scalar_passes;
    }
}

/// Recycled [`BitSimulator`] scratch: the per-valve open lanes and the
/// BFS frontier, parked between simulator lifetimes.
struct Scratch {
    open: LaneSet,
    frontier: BitFrontier,
}

/// Per-thread pool of retired scratch buffers. Campaign and audit chunks
/// construct one short-lived `BitSimulator` per work item inside the
/// worker closures; without the pool every chunk re-allocates the lane
/// words and the frontier from cold. Bounded so a burst of simulators
/// cannot pin memory.
const SCRATCH_POOL_CAP: usize = 8;
thread_local! {
    static SCRATCH_POOL: std::cell::RefCell<Vec<Scratch>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Batch fault-detection engine: owns the scratch buffers ([`LaneSet`] of
/// per-valve open lanes + [`BitFrontier`]) so a worker can push thousands
/// of scenario blocks through without reallocating. The buffers outlive
/// the simulator itself: dropping one parks them in a per-thread pool and
/// the next construction on that thread re-shapes them instead of
/// allocating, so per-chunk simulators in campaign workers stop paying an
/// allocation per block. Recycling is invisible in the results — every
/// propagation fully overwrites the scratch it reads.
#[derive(Debug)]
pub struct BitSimulator<'c> {
    chip: &'c LoweredChip,
    open: LaneSet,
    frontier: BitFrontier,
    stats: KernelStats,
}

impl<'c> BitSimulator<'c> {
    /// A simulator (with fresh scratch state) over one lowered chip,
    /// recycling this thread's pooled buffers when available.
    pub fn new(chip: &'c LoweredChip) -> Self {
        let recycled = SCRATCH_POOL.with(|pool| pool.borrow_mut().pop());
        let (open, frontier) = match recycled {
            Some(mut s) => {
                s.open.reset(chip.valve_count());
                s.frontier.reset(chip.cell_count());
                (s.open, s.frontier)
            }
            None => (
                LaneSet::zeros(chip.valve_count()),
                BitFrontier::new(chip.cell_count()),
            ),
        };
        BitSimulator {
            chip,
            open,
            frontier,
            stats: KernelStats::default(),
        }
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Loads the effective per-valve lane words for one vector and up to
    /// [`LANES`] fault sets, replicating [`FaultSet::effective_states`]
    /// per lane: commanded state broadcast, then control leaks force their
    /// victim closed when the actuator is commanded closed, then stuck-at
    /// faults override everything.
    fn load_open_lanes(&mut self, vector: &TestVector, sets: &[FaultSet]) {
        self.open
            .broadcast(|i| vector.is_open(fpva_grid::ValveId(i)));
        for (lane, set) in sets.iter().enumerate() {
            for fault in set.faults() {
                if let Fault::ControlLeak { actuator, victim } = fault {
                    if !vector.is_open(*actuator) {
                        self.open.clear_lane(victim.index(), lane);
                    }
                }
            }
            for fault in set.faults() {
                match fault {
                    Fault::StuckAt0(v) => self.open.clear_lane(v.index(), lane),
                    Fault::StuckAt1(v) => self.open.set_lane(v.index(), lane),
                    Fault::ControlLeak { .. } => {}
                }
            }
        }
    }

    /// Applies every vector of `suite` to up to [`LANES`] fault sets at
    /// once and returns the detected lanes as a bitmask: bit `l` is set
    /// exactly when some vector's response under `sets[l]` deviates from
    /// the suite's golden response — the same criterion as
    /// [`TestSuite::detects`], evaluated for all lanes per pass. Vectors
    /// stop being applied once every lane is detected (the word-level
    /// analogue of the scalar early exit; the result is unaffected).
    ///
    /// Bits at and above `sets.len()` are always zero.
    ///
    /// # Panics
    ///
    /// Panics if `sets.len() > LANES`, if the suite's vectors were built
    /// for a different valve count than the lowered chip, or if a fault
    /// references a valve outside the chip.
    pub fn detect_block(&mut self, suite: &TestSuite, sets: &[FaultSet]) -> u64 {
        assert!(sets.len() <= LANES, "at most {LANES} fault sets per block");
        if sets.is_empty() {
            return 0;
        }
        let live = if sets.len() == LANES {
            !0
        } else {
            (1u64 << sets.len()) - 1
        };
        self.stats.blocks += 1;
        self.stats.lanes += sets.len();
        let mut detected = 0u64;
        for (vector, golden) in suite.vectors().iter().zip(suite.expected()) {
            if detected == live {
                break;
            }
            assert_eq!(
                vector.len(),
                self.chip.valve_count(),
                "vector/chip size mismatch"
            );
            self.load_open_lanes(vector, sets);
            self.frontier.propagate(self.chip, &self.open);
            self.stats.word_passes += 1;
            let mut differs = 0u64;
            for (s, &cell) in self.chip.sink_cells().iter().enumerate() {
                let lanes = self.frontier.lanes_at(cell as usize);
                let gold = if golden.readings()[s] { !0u64 } else { 0 };
                differs |= lanes ^ gold;
            }
            detected |= differs & live;
        }
        detected
    }
}

impl Drop for BitSimulator<'_> {
    fn drop(&mut self) {
        let open = std::mem::replace(&mut self.open, LaneSet { words: Vec::new() });
        let frontier = std::mem::replace(
            &mut self.frontier,
            BitFrontier {
                reached: LaneSet { words: Vec::new() },
                queue: VecDeque::new(),
                queued: Vec::new(),
            },
        );
        SCRATCH_POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < SCRATCH_POOL_CAP {
                pool.push(Scratch { open, frontier });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpva_grid::{layouts, FpvaBuilder, Side, TestVector, ValveId, ValveState};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn line3() -> Fpva {
        FpvaBuilder::new(1, 3)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 2, Side::East, PortKind::Sink)
            .build()
            .unwrap()
    }

    #[test]
    fn lowering_drops_walls_and_tags_valves() {
        let f = FpvaBuilder::new(1, 3)
            .obstacle(0, 1, 0, 1)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 2, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        let chip = LoweredChip::build(&f);
        assert_eq!(chip.cell_count(), 3);
        assert_eq!(chip.valve_count(), 0);
        // Both edges border the obstacle: all adjacency entries dropped.
        assert_eq!(chip.adj_next.len(), 0);
        assert_eq!(chip.source_cells(), &[0]);
        assert_eq!(chip.sink_cells(), &[2]);
    }

    #[test]
    fn channel_edges_are_always_open_gates() {
        let f = FpvaBuilder::new(1, 3)
            .channel_horizontal(0, 0, 2)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 2, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        let chip = LoweredChip::build(&f);
        assert!(chip.adj_gate.iter().all(|&g| g == OPEN_GATE));
        let mut sim = BitSimulator::new(&chip);
        let suite = TestSuite::new(&f, vec![TestVector::all_open(0)]);
        // Channels conduct in every lane; a fault-free block detects
        // nothing.
        assert_eq!(sim.detect_block(&suite, &[FaultSet::new()]), 0);
    }

    /// Exhaustive oracle check on a small chip: every vector × a batch of
    /// random fault sets, bit lanes vs scalar responses.
    #[test]
    fn propagation_matches_scalar_oracle_on_random_scenarios() {
        let f = layouts::full_array(3, 4);
        let chip = LoweredChip::build(&f);
        let mut frontier = BitFrontier::new(chip.cell_count());
        let mut rng = StdRng::seed_from_u64(11);
        for round in 0..8 {
            // A random vector and 64 random fault sets.
            let mut vector = TestVector::all_closed(f.valve_count());
            for (v, _) in f.valves() {
                if rng.gen_range(0..2) == 1 {
                    vector.set(v, ValveState::Open);
                }
            }
            let sets: Vec<FaultSet> = (0..LANES)
                .map(|_| crate::campaign::random_fault_set(&f, &mut rng, round % 4 + 1, true))
                .collect();
            let mut sim = BitSimulator::new(&chip);
            sim.load_open_lanes(&vector, &sets);
            frontier.propagate(&chip, &sim.open);
            for (lane, set) in sets.iter().enumerate() {
                let scalar = crate::pressure::propagate(&f, &vector, set);
                for ci in 0..f.cell_count() {
                    assert_eq!(
                        frontier.reached().lane(ci, lane),
                        scalar.at(f.cell_at(ci)),
                        "round {round} lane {lane} cell {ci}: {set:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn detect_block_matches_suite_detects() {
        let f = layouts::table1_5x5();
        let chip = LoweredChip::build(&f);
        let suite = TestSuite::new(
            &f,
            vec![
                TestVector::all_open(f.valve_count()),
                TestVector::all_closed(f.valve_count()),
            ],
        );
        let mut rng = StdRng::seed_from_u64(5);
        // 70 sets: one full block plus a partial one.
        let sets: Vec<FaultSet> = (0..70)
            .map(|i| crate::campaign::random_fault_set(&f, &mut rng, i % 5 + 1, true))
            .collect();
        let mut sim = BitSimulator::new(&chip);
        for block in sets.chunks(LANES) {
            let mask = sim.detect_block(&suite, block);
            for (lane, set) in block.iter().enumerate() {
                assert_eq!(
                    mask >> lane & 1 == 1,
                    suite.detects(&f, set),
                    "lane {lane}: {set:?}"
                );
            }
            // Dead lanes of a partial block must be zero.
            if block.len() < LANES {
                assert_eq!(mask >> block.len(), 0);
            }
        }
        let stats = sim.stats();
        assert_eq!(stats.blocks, 2);
        assert_eq!(stats.lanes, 70);
        assert!(stats.word_passes >= 2);
    }

    #[test]
    fn empty_block_detects_nothing() {
        let f = line3();
        let chip = LoweredChip::build(&f);
        let suite = TestSuite::new(&f, vec![TestVector::all_open(f.valve_count())]);
        let mut sim = BitSimulator::new(&chip);
        assert_eq!(sim.detect_block(&suite, &[]), 0);
        assert_eq!(sim.stats(), KernelStats::default());
    }

    #[test]
    fn stuck_at_lanes_detected_independently() {
        let f = line3();
        let chip = LoweredChip::build(&f);
        // All-open path vector: a stuck-at-0 anywhere on the series line
        // kills the sink reading; a stuck-at-1 is invisible.
        let suite = TestSuite::new(&f, vec![TestVector::all_open(f.valve_count())]);
        let sets = [
            FaultSet::try_from_faults(vec![Fault::StuckAt0(ValveId(0))]).unwrap(),
            FaultSet::try_from_faults(vec![Fault::StuckAt1(ValveId(0))]).unwrap(),
            FaultSet::new(),
            FaultSet::try_from_faults(vec![Fault::StuckAt0(ValveId(1))]).unwrap(),
        ];
        let mut sim = BitSimulator::new(&chip);
        assert_eq!(sim.detect_block(&suite, &sets), 0b1001);
    }

    #[test]
    fn control_leak_follows_actuator_command_per_lane() {
        // 2x2 array; leak actuator commanded closed drags the victim
        // closed only in the lane carrying the leak.
        let f = layouts::full_array(2, 2);
        let chip = LoweredChip::build(&f);
        let a = ValveId(0);
        let v = f.valve_neighbors(a)[0];
        let mut vector = TestVector::all_open(f.valve_count());
        vector.set(a, ValveState::Closed);
        let leak = FaultSet::try_from_faults(vec![Fault::ControlLeak {
            actuator: a,
            victim: v,
        }])
        .unwrap();
        let mut sim = BitSimulator::new(&chip);
        sim.load_open_lanes(&vector, std::slice::from_ref(&leak));
        // Lane 0 carries the leak: victim closed. Lane 1 is fault-free:
        // victim follows its open command.
        assert!(!sim.open.lane(v.index(), 0));
        assert!(sim.open.lane(v.index(), 1));
        // With the actuator commanded open the leak is dormant.
        sim.load_open_lanes(&TestVector::all_open(f.valve_count()), &[leak]);
        assert!(sim.open.lane(v.index(), 0));
    }

    #[test]
    fn frontier_is_reusable_across_propagations() {
        let f = line3();
        let chip = LoweredChip::build(&f);
        let mut frontier = BitFrontier::new(chip.cell_count());
        let mut open = LaneSet::zeros(chip.valve_count());
        open.broadcast(|_| true);
        frontier.propagate(&chip, &open);
        assert_eq!(frontier.lanes_at(2), !0);
        open.broadcast(|_| false);
        frontier.propagate(&chip, &open);
        assert_eq!(frontier.lanes_at(2), 0, "stale lanes must be cleared");
        assert_eq!(frontier.lanes_at(0), !0, "sources stay pressurised");
    }

    #[test]
    fn scratch_is_recycled_across_simulators() {
        let f = layouts::table1_5x5();
        let chip = LoweredChip::build(&f);
        let suite = TestSuite::new(&f, vec![TestVector::all_open(f.valve_count())]);
        let set = FaultSet::new();
        let ptr = {
            let mut sim = BitSimulator::new(&chip);
            sim.detect_block(&suite, std::slice::from_ref(&set));
            sim.open.words.as_ptr()
        };
        // Drop parked the buffers in the thread-local pool; the next
        // simulator on this thread must pick them up, not allocate.
        let sim = BitSimulator::new(&chip);
        assert_eq!(sim.open.words.as_ptr(), ptr, "lane scratch reallocated");
    }

    #[test]
    fn recycled_scratch_reshapes_to_a_different_chip() {
        // Park scratch sized for a 4x4, then simulate a 1x3: the recycled
        // buffers must re-shape and produce correct (clean) results.
        let big = LoweredChip::build(&layouts::full_array(4, 4));
        drop(BitSimulator::new(&big));
        let f = line3();
        let chip = LoweredChip::build(&f);
        let suite = TestSuite::new(&f, vec![TestVector::all_open(f.valve_count())]);
        let mut sim = BitSimulator::new(&chip);
        assert_eq!(sim.open.len(), chip.valve_count());
        assert_eq!(
            sim.detect_block(
                &suite,
                &[
                    FaultSet::new(),
                    FaultSet::try_from_faults(vec![Fault::StuckAt0(ValveId(0))]).unwrap(),
                ]
            ),
            0b10
        );
    }

    #[test]
    fn lane_set_bit_ops() {
        let mut set = LaneSet::zeros(3);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        set.set_lane(1, 63);
        assert!(set.lane(1, 63));
        assert_eq!(set.word(1), 1 << 63);
        set.clear_lane(1, 63);
        assert_eq!(set.word(1), 0);
        set.broadcast(|i| i == 2);
        assert_eq!(set.word(2), !0);
        set.clear();
        assert_eq!(set.word(2), 0);
    }
}
