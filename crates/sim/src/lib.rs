//! Behavioural simulator for FPVA chips under manufacturing faults.
//!
//! The paper (Liu et al., DATE 2017) evaluates its test vectors by applying
//! them to chips with randomly injected manufacturing defects and checking
//! whether the pressure readings at the sink ports deviate from a fault-free
//! ("golden") chip. This crate is that evaluation engine:
//!
//! * [`Fault`]/[`FaultSet`] — the paper's component-level fault model:
//!   stuck-at-0 (valve cannot open: broken flow channel), stuck-at-1 (valve
//!   cannot close: leaking flow channel / broken control channel) and
//!   control-layer leakage (two valves actuate together),
//! * [`propagate`] — pressure propagation from the source ports through
//!   every passable valve site (the physical behaviour of test pressure in
//!   the flow layer),
//! * [`TestSuite`] — a vector set with pre-computed golden responses and
//!   fault-detection queries,
//! * [`campaign`] — the random multi-fault injection experiment of
//!   Section IV (10 000 trials of 1–5 faults), deterministic for every
//!   thread count via per-trial seed derivation,
//! * [`audit`] — exhaustive single-fault and pairwise two-fault coverage
//!   audits used to check the paper's two-fault detection guarantee,
//! * [`exec`] — the scoped worker pool the campaign and the pairwise
//!   audit share (fixed-size chunks, merged in chunk order, so results
//!   never depend on the thread count).
//!
//! # Example
//!
//! ```
//! use fpva_grid::{layouts, TestVector};
//! use fpva_sim::{Fault, FaultSet, TestSuite};
//!
//! # fn main() -> Result<(), fpva_sim::SimError> {
//! let fpva = layouts::table1_5x5();
//! // One all-open vector: a stuck-at-0 fault kills the pressure path.
//! let suite = TestSuite::new(&fpva, vec![TestVector::all_open(fpva.valve_count())]);
//! let fault = FaultSet::try_from_faults(vec![Fault::StuckAt0(fpva_grid::ValveId(0))])?;
//! // The 5x5 array is well connected, so one closed valve is *not*
//! // detectable by the all-open vector alone:
//! assert!(!suite.detects(&fpva, &fault));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod campaign;
mod error;
pub mod exec;
mod fault;
mod pressure;
mod suite;

pub use audit::CoverageReport;
pub use campaign::{CampaignConfig, CampaignRow, ObservableLeaks};
pub use error::SimError;
pub use fault::{EffectiveStates, Fault, FaultSet};
pub use pressure::{propagate, respond, Pressure, Response};
pub use suite::TestSuite;
