//! Behavioural simulator for FPVA chips under manufacturing faults.
//!
//! The paper (Liu et al., DATE 2017) evaluates its test vectors by applying
//! them to chips with randomly injected manufacturing defects and checking
//! whether the pressure readings at the sink ports deviate from a fault-free
//! ("golden") chip. This crate is that evaluation engine:
//!
//! * [`Fault`]/[`FaultSet`] — the paper's component-level fault model:
//!   stuck-at-0 (valve cannot open: broken flow channel), stuck-at-1 (valve
//!   cannot close: leaking flow channel / broken control channel) and
//!   control-layer leakage (two valves actuate together),
//! * [`propagate`] — pressure propagation from the source ports through
//!   every passable valve site (the physical behaviour of test pressure in
//!   the flow layer),
//! * [`TestSuite`] — a vector set with pre-computed golden responses and
//!   fault-detection queries,
//! * [`campaign`] — the random multi-fault injection experiment of
//!   Section IV (10 000 trials of 1–5 faults), deterministic for every
//!   thread count via per-trial seed derivation,
//! * [`audit`] — exhaustive single-fault and pairwise two-fault coverage
//!   audits used to check the paper's two-fault detection guarantee,
//! * [`bitsim`] — the bit-parallel (PPSFP-style) simulation kernel: 64
//!   fault scenarios per `u64` word, one bitset BFS per vector,
//! * [`exec`] — the scoped worker pool the campaign and the pairwise
//!   audit share (fixed-size chunks, merged in chunk order, so results
//!   never depend on the thread count).
//!
//! # Architecture
//!
//! ## The determinism contract
//!
//! Campaign rows are a **pure function of `(chip, suite, config)`** —
//! byte-identical across thread counts, `fault_counts` ordering and
//! subsetting, chunk decomposition, lane packing and kernel choice. The
//! contract has three load-bearing pieces:
//!
//! 1. **Per-trial RNG derivation.** No RNG stream is ever shared: trial
//!    `i` of fault count `k` seeds its own `StdRng` with
//!    [`campaign::trial_seed`]`(seed, k, i)` (SplitMix64-style finalisers
//!    with distinct odd multipliers per coordinate), so a trial's fault
//!    set depends on nothing but its coordinates. This is what makes any
//!    `(fault_count, trial)` range independently schedulable.
//! 2. **Chunk-ordered merge.** [`exec::run_chunked`] splits an index
//!    space into *fixed-size* contiguous chunks (never derived from the
//!    thread count), lets workers claim chunks dynamically, and returns
//!    results **in chunk order**. Merging is therefore deterministic:
//!    detections add up commutatively, and keeping each chunk's first
//!    [`campaign::MAX_RECORDED_ESCAPES`] escapes and truncating the
//!    ordered concatenation yields exactly the first escapes of the whole
//!    row.
//! 3. **Precomputation outside the hot loop.** [`ObservableLeaks`] scans
//!    every ordered adjacent valve pair once per chip (so leak draws are
//!    table lookups, not BFS probes), and [`bitsim::LoweredChip`] lowers
//!    the cell adjacency once per chip into flat CSR arrays. Both are
//!    plain shared data (`Send + Sync`), built once and read by every
//!    worker; [`campaign::ChipContext`] bundles them for reuse across
//!    runs.
//!
//! ## The bit-parallel lane layout
//!
//! The default kernel ([`SimKernel::BitParallel`]) packs
//! [`bitsim::LANES`] = 64 fault scenarios into one `u64` per graph
//! element: lane `l` of the per-valve word says "scenario `l` holds this
//! valve open" (commanded state broadcast, then control-leak victims
//! cleared, then stuck-at overrides — the per-lane replica of
//! [`FaultSet::effective_states`]), and lane `l` of the per-cell word
//! says "scenario `l` pressurises this cell". One bitset BFS
//! ([`bitsim::BitFrontier`]) then floods all 64 scenarios through the
//! lowered adjacency at once — the inner loop is a word-wide AND against
//! the valve's lane word and an OR into the neighbour cell. A campaign
//! chunk packs consecutive trials into lanes (only the trailing block of
//! a row is partial), so 64 per-trial BFS traversals collapse into one.
//!
//! **Scalar-oracle invariant:** the scalar path ([`propagate`],
//! [`TestSuite::detects`], [`campaign::leak_is_observable`]) is retained
//! unchanged and is the oracle — the bit-parallel kernel must reproduce
//! its results *byte for byte* (same rows, same escapes, same
//! observable-leak table), never just statistically. Differential tests
//! (unit, integration and proptest) pin this on every Table I layout and
//! the multi-sink example chip; only [`KernelStats`] may differ between
//! kernels.
//!
//! # Example
//!
//! ```
//! use fpva_grid::{layouts, TestVector};
//! use fpva_sim::{Fault, FaultSet, TestSuite};
//!
//! # fn main() -> Result<(), fpva_sim::SimError> {
//! let fpva = layouts::table1_5x5();
//! // One all-open vector: a stuck-at-0 fault kills the pressure path.
//! let suite = TestSuite::new(&fpva, vec![TestVector::all_open(fpva.valve_count())]);
//! let fault = FaultSet::try_from_faults(vec![Fault::StuckAt0(fpva_grid::ValveId(0))])?;
//! // The 5x5 array is well connected, so one closed valve is *not*
//! // detectable by the all-open vector alone:
//! assert!(!suite.detects(&fpva, &fault));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod bitsim;
pub mod campaign;
mod error;
pub mod exec;
mod fault;
mod pressure;
mod suite;

pub use audit::CoverageReport;
pub use bitsim::{BitFrontier, BitSimulator, KernelStats, LaneSet, LoweredChip, SimKernel};
pub use campaign::{CampaignConfig, CampaignRow, ChipContext, ObservableLeaks};
pub use error::SimError;
pub use fault::{EffectiveStates, Fault, FaultSet};
pub use pressure::{propagate, respond, Pressure, Response};
pub use suite::TestSuite;
