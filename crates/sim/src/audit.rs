//! Exhaustive coverage audits.
//!
//! The campaign in [`crate::campaign`] samples the fault space; the audits
//! here enumerate it. [`single_fault_coverage`] checks every stuck-at fault
//! (2·n_v of them), [`leak_coverage`] every physically adjacent control
//! leak, and [`two_fault_audit`] every (stuck-at-0, stuck-at-1) pair — the
//! combination Section III-A identifies as the dangerous mutually masking
//! case and the paper's "any two faults" guarantee is about. The pairwise
//! sweep is quadratic in the valve count, so it runs on the same scoped
//! worker pool ([`crate::exec`]) as the campaign.

use crate::bitsim::{BitSimulator, KernelStats, LoweredChip, SimKernel, LANES};
use crate::exec;
use crate::fault::{Fault, FaultSet};
use crate::suite::TestSuite;
use fpva_grid::{Fpva, ValveId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a fault-universe sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport<F> {
    /// Faults (or fault pairs) examined.
    pub total: usize,
    /// The ones no vector detected.
    pub undetected: Vec<F>,
    /// Work counters of the kernel that ran the sweep. Identical across
    /// thread counts (but not across kernels — that is the point of the
    /// counters); `total`/`undetected` are identical across both.
    pub stats: KernelStats,
}

impl<F> CoverageReport<F> {
    /// Detected fraction, in `[0, 1]`, or `None` when the examined
    /// universe was empty — a sweep over nothing says nothing, so
    /// reporting a number (the old code said `1.0`, which reads as "fully
    /// covered" in bench output) would be misleading.
    pub fn coverage(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        Some((self.total - self.undetected.len()) as f64 / self.total as f64)
    }

    /// `true` when everything was detected.
    pub fn is_complete(&self) -> bool {
        self.undetected.is_empty()
    }
}

/// Checks every single stuck-at-0 and stuck-at-1 fault, on the default
/// (bit-parallel) kernel.
pub fn single_fault_coverage(fpva: &Fpva, suite: &TestSuite) -> CoverageReport<Fault> {
    single_fault_coverage_with(fpva, suite, SimKernel::default())
}

/// [`single_fault_coverage`] on an explicit kernel. `total`/`undetected`
/// are identical for both kernels; the scalar path is the differential
/// oracle.
pub fn single_fault_coverage_with(
    fpva: &Fpva,
    suite: &TestSuite,
    kernel: SimKernel,
) -> CoverageReport<Fault> {
    let universe: Vec<Fault> = fpva
        .valves()
        .flat_map(|(v, _)| [Fault::StuckAt0(v), Fault::StuckAt1(v)])
        .collect();
    sweep_universe(fpva, suite, kernel, universe)
}

/// Checks every control-leak fault between physically adjacent valves
/// (ordered pairs: the leak direction matters), on the default
/// (bit-parallel) kernel.
pub fn leak_coverage(fpva: &Fpva, suite: &TestSuite) -> CoverageReport<Fault> {
    leak_coverage_with(fpva, suite, SimKernel::default())
}

/// [`leak_coverage`] on an explicit kernel.
pub fn leak_coverage_with(
    fpva: &Fpva,
    suite: &TestSuite,
    kernel: SimKernel,
) -> CoverageReport<Fault> {
    let universe: Vec<Fault> = fpva
        .valves()
        .flat_map(|(actuator, _)| {
            fpva.valve_neighbors(actuator)
                .into_iter()
                .map(move |victim| Fault::ControlLeak { actuator, victim })
        })
        .collect();
    sweep_universe(fpva, suite, kernel, universe)
}

/// Serial sweep over an explicit single-fault universe: scalar per-fault
/// detection, or [`LANES`] faults per word on the bit-parallel kernel.
fn sweep_universe(
    fpva: &Fpva,
    suite: &TestSuite,
    kernel: SimKernel,
    universe: Vec<Fault>,
) -> CoverageReport<Fault> {
    let total = universe.len();
    let mut undetected = Vec::new();
    let mut stats = KernelStats::default();
    match kernel {
        SimKernel::Scalar => {
            for fault in universe {
                let set = FaultSet::try_from_faults(vec![fault]).expect("single fault is valid");
                match suite.first_detecting_vector(fpva, &set) {
                    Some(ix) => stats.scalar_passes += ix + 1,
                    None => {
                        stats.scalar_passes += suite.len();
                        undetected.push(fault);
                    }
                }
            }
        }
        SimKernel::BitParallel => {
            let chip = LoweredChip::build(fpva);
            let mut sim = BitSimulator::new(&chip);
            for block in universe.chunks(LANES) {
                let sets: Vec<FaultSet> = block
                    .iter()
                    .map(|&fault| {
                        FaultSet::try_from_faults(vec![fault]).expect("single fault is valid")
                    })
                    .collect();
                let mask = sim.detect_block(suite, &sets);
                for (lane, &fault) in block.iter().enumerate() {
                    if mask >> lane & 1 == 0 {
                        undetected.push(fault);
                    }
                }
            }
            stats = sim.stats();
        }
    }
    CoverageReport {
        total,
        undetected,
        stats,
    }
}

/// Ordered pairs per work chunk of [`two_fault_audit`]. Fixed so the chunk
/// decomposition — and with it the `undetected` ordering — never depends
/// on the thread count.
const PAIR_CHUNK: usize = 512;

/// Checks every (stuck-at-0, stuck-at-1) pair on distinct valves — the
/// mutual-masking scenario of the paper's Fig. 5(c)/(d) — spreading the
/// O(n_v²) sweep over `threads` workers (`1` = serial on the calling
/// thread, `0` = all CPUs), on the default (bit-parallel) kernel. The
/// report is identical for every thread count, with `undetected` in the
/// serial scan order (outer stuck-at-0 valve, inner stuck-at-1 valve).
/// Exhaustive even on the large arrays given enough threads;
/// [`two_fault_audit_sampled`] remains the cheap alternative.
pub fn two_fault_audit(
    fpva: &Fpva,
    suite: &TestSuite,
    threads: usize,
) -> CoverageReport<(Fault, Fault)> {
    two_fault_audit_with(fpva, suite, threads, SimKernel::default())
}

/// [`two_fault_audit`] on an explicit kernel. `total`/`undetected` are
/// identical for both kernels; the bit-parallel one packs [`LANES`]
/// consecutive pairs of the scan order per word (the pair-chunk size is a
/// multiple of [`LANES`], so only a chunk's trailing block can be
/// partial).
pub fn two_fault_audit_with(
    fpva: &Fpva,
    suite: &TestSuite,
    threads: usize,
    kernel: SimKernel,
) -> CoverageReport<(Fault, Fault)> {
    let nv = fpva.valve_count();
    let total = nv * nv.saturating_sub(1);
    // Pair index -> (a, b), b skipping the diagonal; matches the nested
    // `for a { for b }` scan order.
    let pair_at = |p: usize| {
        let a = p / (nv - 1);
        let r = p % (nv - 1);
        let b = if r >= a { r + 1 } else { r };
        (Fault::StuckAt0(ValveId(a)), Fault::StuckAt1(ValveId(b)))
    };
    let lowered = (kernel == SimKernel::BitParallel && total > 0).then(|| LoweredChip::build(fpva));
    let chunks = exec::run_chunked(threads, total, PAIR_CHUNK, |pairs| {
        let mut stats = KernelStats::default();
        let mut undetected = Vec::new();
        match &lowered {
            Some(chip) => {
                let mut sim = BitSimulator::new(chip);
                let mut block_pairs = Vec::with_capacity(LANES);
                let mut sets = Vec::with_capacity(LANES);
                let mut p = pairs.start;
                while p < pairs.end {
                    block_pairs.clear();
                    sets.clear();
                    for q in p..pairs.end.min(p + LANES) {
                        let pair = pair_at(q);
                        block_pairs.push(pair);
                        sets.push(
                            FaultSet::try_from_faults(vec![pair.0, pair.1])
                                .expect("distinct valves cannot conflict"),
                        );
                    }
                    let mask = sim.detect_block(suite, &sets);
                    for (lane, &pair) in block_pairs.iter().enumerate() {
                        if mask >> lane & 1 == 0 {
                            undetected.push(pair);
                        }
                    }
                    p += LANES;
                }
                stats = sim.stats();
            }
            None => {
                for p in pairs {
                    let pair = pair_at(p);
                    let set = FaultSet::try_from_faults(vec![pair.0, pair.1])
                        .expect("distinct valves cannot conflict");
                    match suite.first_detecting_vector(fpva, &set) {
                        Some(ix) => stats.scalar_passes += ix + 1,
                        None => {
                            stats.scalar_passes += suite.len();
                            undetected.push(pair);
                        }
                    }
                }
            }
        }
        (undetected, stats)
    });
    let mut undetected = Vec::new();
    let mut stats = KernelStats::default();
    for (chunk_undetected, chunk_stats) in chunks {
        undetected.extend(chunk_undetected);
        stats.merge(&chunk_stats);
    }
    CoverageReport {
        total,
        undetected,
        stats,
    }
}

/// Randomly samples `samples` (stuck-at-0, stuck-at-1) pairs; reproducible
/// via `seed`.
///
/// # Panics
///
/// Panics if the array has fewer than two valves.
pub fn two_fault_audit_sampled(
    fpva: &Fpva,
    suite: &TestSuite,
    samples: usize,
    seed: u64,
) -> CoverageReport<(Fault, Fault)> {
    let nv = fpva.valve_count();
    assert!(nv >= 2, "two-fault audit needs at least two valves");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut undetected = Vec::new();
    let mut stats = KernelStats::default();
    for _ in 0..samples {
        let a = ValveId(rng.gen_range(0..nv));
        let b = loop {
            let b = ValveId(rng.gen_range(0..nv));
            if b != a {
                break b;
            }
        };
        let pair = (Fault::StuckAt0(a), Fault::StuckAt1(b));
        let set = FaultSet::try_from_faults(vec![pair.0, pair.1])
            .expect("distinct valves cannot conflict");
        match suite.first_detecting_vector(fpva, &set) {
            Some(ix) => stats.scalar_passes += ix + 1,
            None => {
                stats.scalar_passes += suite.len();
                undetected.push(pair);
            }
        }
    }
    CoverageReport {
        total: samples,
        undetected,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpva_grid::{FpvaBuilder, PortKind, Side, TestVector, ValveState};

    /// 1x4 pipeline: valves v0, v1, v2 in series.
    fn line4() -> Fpva {
        FpvaBuilder::new(1, 4)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 3, Side::East, PortKind::Sink)
            .build()
            .unwrap()
    }

    /// A complete suite for the pipeline: the all-open "path" vector covers
    /// stuck-at-0 on every valve; per-valve cuts cover stuck-at-1.
    fn complete_suite(f: &Fpva) -> TestSuite {
        let mut vectors = vec![TestVector::all_open(f.valve_count())];
        for (v, _) in f.valves() {
            let mut cut = TestVector::all_open(f.valve_count());
            cut.set(v, ValveState::Closed);
            vectors.push(cut);
        }
        TestSuite::new(f, vectors)
    }

    #[test]
    fn complete_suite_covers_all_single_faults() {
        let f = line4();
        let suite = complete_suite(&f);
        let report = single_fault_coverage(&f, &suite);
        assert_eq!(report.total, 2 * 3);
        assert!(report.is_complete(), "undetected: {:?}", report.undetected);
        assert_eq!(report.coverage(), Some(1.0));
    }

    #[test]
    fn missing_cut_vector_shows_up_as_undetected() {
        let f = line4();
        // Only the all-open vector: stuck-at-1 faults cannot be seen.
        let suite = TestSuite::new(&f, vec![TestVector::all_open(f.valve_count())]);
        let report = single_fault_coverage(&f, &suite);
        assert_eq!(report.undetected.len(), 3);
        assert!(report
            .undetected
            .iter()
            .all(|fault| matches!(fault, Fault::StuckAt1(_))));
        assert!((report.coverage().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_fault_pairs_on_pipeline() {
        let f = line4();
        let suite = complete_suite(&f);
        let report = two_fault_audit(&f, &suite, 1);
        assert_eq!(report.total, 3 * 2);
        // On a series pipeline the all-open vector always exposes the
        // stuck-at-0 (there is no detour), so every pair is caught.
        assert!(report.is_complete(), "undetected: {:?}", report.undetected);
    }

    #[test]
    fn two_fault_audit_is_thread_count_invariant() {
        let f = line4();
        // The pathless suite leaves pairs undetected, exercising the
        // chunk-ordered merge of the `undetected` list.
        let suite = TestSuite::new(&f, vec![TestVector::all_closed(f.valve_count())]);
        let serial = two_fault_audit(&f, &suite, 1);
        assert!(!serial.is_complete());
        for threads in [0, 2, 8] {
            assert_eq!(
                two_fault_audit(&f, &suite, threads),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn two_fault_audit_handles_tiny_arrays() {
        let f = FpvaBuilder::new(1, 2)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 1, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        assert_eq!(f.valve_count(), 1);
        let suite = complete_suite(&f);
        let report = two_fault_audit(&f, &suite, 4);
        assert_eq!(report.total, 0);
        assert_eq!(report.coverage(), None);
        assert!(report.is_complete());
    }

    #[test]
    fn sampled_audit_is_reproducible() {
        let f = line4();
        let suite = complete_suite(&f);
        let a = two_fault_audit_sampled(&f, &suite, 25, 9);
        let b = two_fault_audit_sampled(&f, &suite, 25, 9);
        assert_eq!(a, b);
        assert_eq!(a.total, 25);
    }

    #[test]
    fn leak_coverage_counts_ordered_adjacent_pairs() {
        let f = line4();
        let suite = complete_suite(&f);
        let report = leak_coverage(&f, &suite);
        // v0-v1, v1-v0, v1-v2, v2-v1: 4 ordered adjacent pairs.
        assert_eq!(report.total, 4);
        // On a series pipeline every leak is inherently unobservable:
        // commanding the actuator closed already removes all pressure, so
        // the victim's drag-closure changes nothing. The audit must report
        // all four pairs as undetected (and the campaign generator skips
        // such pairs via the `ObservableLeaks` table).
        assert_eq!(
            report.undetected.len(),
            4,
            "undetected: {:?}",
            report.undetected
        );
        for (a, _) in f.valves() {
            for b in f.valve_neighbors(a) {
                assert!(
                    !crate::campaign::leak_is_observable(&f, a, b),
                    "series-pipeline pair ({a},{b}) cannot be observable"
                );
            }
        }
    }

    #[test]
    fn empty_report_coverage_is_explicitly_undefined() {
        let report: CoverageReport<Fault> = CoverageReport {
            total: 0,
            undetected: vec![],
            stats: KernelStats::default(),
        };
        assert_eq!(report.coverage(), None);
        assert!(report.is_complete());
    }

    /// Every audit, bit-parallel vs the scalar oracle: identical verdicts.
    #[test]
    fn audits_agree_across_kernels() {
        let f = line4();
        for suite in [
            complete_suite(&f),
            TestSuite::new(&f, vec![TestVector::all_open(f.valve_count())]),
            TestSuite::new(&f, vec![TestVector::all_closed(f.valve_count())]),
            TestSuite::new(&f, vec![]),
        ] {
            for (bit, scalar) in [
                (
                    single_fault_coverage_with(&f, &suite, SimKernel::BitParallel),
                    single_fault_coverage_with(&f, &suite, SimKernel::Scalar),
                ),
                (
                    leak_coverage_with(&f, &suite, SimKernel::BitParallel),
                    leak_coverage_with(&f, &suite, SimKernel::Scalar),
                ),
            ] {
                assert_eq!(bit.total, scalar.total);
                assert_eq!(bit.undetected, scalar.undetected);
                assert_eq!(bit.stats.scalar_passes, 0);
                assert_eq!(scalar.stats.blocks, 0);
            }
            let bit = two_fault_audit_with(&f, &suite, 2, SimKernel::BitParallel);
            let scalar = two_fault_audit_with(&f, &suite, 2, SimKernel::Scalar);
            assert_eq!(bit.total, scalar.total);
            assert_eq!(bit.undetected, scalar.undetected);
        }
    }
}
