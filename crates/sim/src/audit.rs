//! Exhaustive coverage audits.
//!
//! The campaign in [`crate::campaign`] samples the fault space; the audits
//! here enumerate it. [`single_fault_coverage`] checks every stuck-at fault
//! (2·n_v of them), [`leak_coverage`] every physically adjacent control
//! leak, and [`two_fault_audit`] every (stuck-at-0, stuck-at-1) pair — the
//! combination Section III-A identifies as the dangerous mutually masking
//! case and the paper's "any two faults" guarantee is about. The pairwise
//! sweep is quadratic in the valve count, so it runs on the same scoped
//! worker pool ([`crate::exec`]) as the campaign.

use crate::exec;
use crate::fault::{Fault, FaultSet};
use crate::suite::TestSuite;
use fpva_grid::{Fpva, ValveId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a fault-universe sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport<F> {
    /// Faults (or fault pairs) examined.
    pub total: usize,
    /// The ones no vector detected.
    pub undetected: Vec<F>,
}

impl<F> CoverageReport<F> {
    /// Detected fraction, in `[0, 1]`, or `None` when the examined
    /// universe was empty — a sweep over nothing says nothing, so
    /// reporting a number (the old code said `1.0`, which reads as "fully
    /// covered" in bench output) would be misleading.
    pub fn coverage(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        Some((self.total - self.undetected.len()) as f64 / self.total as f64)
    }

    /// `true` when everything was detected.
    pub fn is_complete(&self) -> bool {
        self.undetected.is_empty()
    }
}

/// Checks every single stuck-at-0 and stuck-at-1 fault.
pub fn single_fault_coverage(fpva: &Fpva, suite: &TestSuite) -> CoverageReport<Fault> {
    let mut undetected = Vec::new();
    let mut total = 0usize;
    for (v, _) in fpva.valves() {
        for fault in [Fault::StuckAt0(v), Fault::StuckAt1(v)] {
            total += 1;
            let set = FaultSet::try_from_faults(vec![fault]).expect("single fault is valid");
            if !suite.detects(fpva, &set) {
                undetected.push(fault);
            }
        }
    }
    CoverageReport { total, undetected }
}

/// Checks every control-leak fault between physically adjacent valves
/// (ordered pairs: the leak direction matters).
pub fn leak_coverage(fpva: &Fpva, suite: &TestSuite) -> CoverageReport<Fault> {
    let mut undetected = Vec::new();
    let mut total = 0usize;
    for (actuator, _) in fpva.valves() {
        for victim in fpva.valve_neighbors(actuator) {
            total += 1;
            let fault = Fault::ControlLeak { actuator, victim };
            let set = FaultSet::try_from_faults(vec![fault]).expect("leak pair is valid");
            if !suite.detects(fpva, &set) {
                undetected.push(fault);
            }
        }
    }
    CoverageReport { total, undetected }
}

/// Ordered pairs per work chunk of [`two_fault_audit`]. Fixed so the chunk
/// decomposition — and with it the `undetected` ordering — never depends
/// on the thread count.
const PAIR_CHUNK: usize = 512;

/// Checks every (stuck-at-0, stuck-at-1) pair on distinct valves — the
/// mutual-masking scenario of the paper's Fig. 5(c)/(d) — spreading the
/// O(n_v²) sweep over `threads` workers (`1` = serial on the calling
/// thread, `0` = all CPUs). The report is identical for every thread
/// count, with `undetected` in the serial scan order (outer stuck-at-0
/// valve, inner stuck-at-1 valve). Exhaustive even on the large arrays
/// given enough threads; [`two_fault_audit_sampled`] remains the cheap
/// alternative.
pub fn two_fault_audit(
    fpva: &Fpva,
    suite: &TestSuite,
    threads: usize,
) -> CoverageReport<(Fault, Fault)> {
    let nv = fpva.valve_count();
    let total = nv * nv.saturating_sub(1);
    let chunks = exec::run_chunked(threads, total, PAIR_CHUNK, |pairs| {
        let mut undetected = Vec::new();
        for p in pairs {
            // Pair index -> (a, b), b skipping the diagonal; matches the
            // nested `for a { for b }` scan order.
            let a = p / (nv - 1);
            let r = p % (nv - 1);
            let b = if r >= a { r + 1 } else { r };
            let pair = (Fault::StuckAt0(ValveId(a)), Fault::StuckAt1(ValveId(b)));
            let set = FaultSet::try_from_faults(vec![pair.0, pair.1])
                .expect("distinct valves cannot conflict");
            if !suite.detects(fpva, &set) {
                undetected.push(pair);
            }
        }
        undetected
    });
    CoverageReport {
        total,
        undetected: chunks.concat(),
    }
}

/// Randomly samples `samples` (stuck-at-0, stuck-at-1) pairs; reproducible
/// via `seed`.
///
/// # Panics
///
/// Panics if the array has fewer than two valves.
pub fn two_fault_audit_sampled(
    fpva: &Fpva,
    suite: &TestSuite,
    samples: usize,
    seed: u64,
) -> CoverageReport<(Fault, Fault)> {
    let nv = fpva.valve_count();
    assert!(nv >= 2, "two-fault audit needs at least two valves");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut undetected = Vec::new();
    for _ in 0..samples {
        let a = ValveId(rng.gen_range(0..nv));
        let b = loop {
            let b = ValveId(rng.gen_range(0..nv));
            if b != a {
                break b;
            }
        };
        let pair = (Fault::StuckAt0(a), Fault::StuckAt1(b));
        let set = FaultSet::try_from_faults(vec![pair.0, pair.1])
            .expect("distinct valves cannot conflict");
        if !suite.detects(fpva, &set) {
            undetected.push(pair);
        }
    }
    CoverageReport {
        total: samples,
        undetected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpva_grid::{FpvaBuilder, PortKind, Side, TestVector, ValveState};

    /// 1x4 pipeline: valves v0, v1, v2 in series.
    fn line4() -> Fpva {
        FpvaBuilder::new(1, 4)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 3, Side::East, PortKind::Sink)
            .build()
            .unwrap()
    }

    /// A complete suite for the pipeline: the all-open "path" vector covers
    /// stuck-at-0 on every valve; per-valve cuts cover stuck-at-1.
    fn complete_suite(f: &Fpva) -> TestSuite {
        let mut vectors = vec![TestVector::all_open(f.valve_count())];
        for (v, _) in f.valves() {
            let mut cut = TestVector::all_open(f.valve_count());
            cut.set(v, ValveState::Closed);
            vectors.push(cut);
        }
        TestSuite::new(f, vectors)
    }

    #[test]
    fn complete_suite_covers_all_single_faults() {
        let f = line4();
        let suite = complete_suite(&f);
        let report = single_fault_coverage(&f, &suite);
        assert_eq!(report.total, 2 * 3);
        assert!(report.is_complete(), "undetected: {:?}", report.undetected);
        assert_eq!(report.coverage(), Some(1.0));
    }

    #[test]
    fn missing_cut_vector_shows_up_as_undetected() {
        let f = line4();
        // Only the all-open vector: stuck-at-1 faults cannot be seen.
        let suite = TestSuite::new(&f, vec![TestVector::all_open(f.valve_count())]);
        let report = single_fault_coverage(&f, &suite);
        assert_eq!(report.undetected.len(), 3);
        assert!(report
            .undetected
            .iter()
            .all(|fault| matches!(fault, Fault::StuckAt1(_))));
        assert!((report.coverage().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_fault_pairs_on_pipeline() {
        let f = line4();
        let suite = complete_suite(&f);
        let report = two_fault_audit(&f, &suite, 1);
        assert_eq!(report.total, 3 * 2);
        // On a series pipeline the all-open vector always exposes the
        // stuck-at-0 (there is no detour), so every pair is caught.
        assert!(report.is_complete(), "undetected: {:?}", report.undetected);
    }

    #[test]
    fn two_fault_audit_is_thread_count_invariant() {
        let f = line4();
        // The pathless suite leaves pairs undetected, exercising the
        // chunk-ordered merge of the `undetected` list.
        let suite = TestSuite::new(&f, vec![TestVector::all_closed(f.valve_count())]);
        let serial = two_fault_audit(&f, &suite, 1);
        assert!(!serial.is_complete());
        for threads in [0, 2, 8] {
            assert_eq!(
                two_fault_audit(&f, &suite, threads),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn two_fault_audit_handles_tiny_arrays() {
        let f = FpvaBuilder::new(1, 2)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 1, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        assert_eq!(f.valve_count(), 1);
        let suite = complete_suite(&f);
        let report = two_fault_audit(&f, &suite, 4);
        assert_eq!(report.total, 0);
        assert_eq!(report.coverage(), None);
        assert!(report.is_complete());
    }

    #[test]
    fn sampled_audit_is_reproducible() {
        let f = line4();
        let suite = complete_suite(&f);
        let a = two_fault_audit_sampled(&f, &suite, 25, 9);
        let b = two_fault_audit_sampled(&f, &suite, 25, 9);
        assert_eq!(a, b);
        assert_eq!(a.total, 25);
    }

    #[test]
    fn leak_coverage_counts_ordered_adjacent_pairs() {
        let f = line4();
        let suite = complete_suite(&f);
        let report = leak_coverage(&f, &suite);
        // v0-v1, v1-v0, v1-v2, v2-v1: 4 ordered adjacent pairs.
        assert_eq!(report.total, 4);
        // On a series pipeline every leak is inherently unobservable:
        // commanding the actuator closed already removes all pressure, so
        // the victim's drag-closure changes nothing. The audit must report
        // all four pairs as undetected (and the campaign generator skips
        // such pairs via the `ObservableLeaks` table).
        assert_eq!(
            report.undetected.len(),
            4,
            "undetected: {:?}",
            report.undetected
        );
        for (a, _) in f.valves() {
            for b in f.valve_neighbors(a) {
                assert!(
                    !crate::campaign::leak_is_observable(&f, a, b),
                    "series-pipeline pair ({a},{b}) cannot be observable"
                );
            }
        }
    }

    #[test]
    fn empty_report_coverage_is_explicitly_undefined() {
        let report: CoverageReport<Fault> = CoverageReport {
            total: 0,
            undetected: vec![],
        };
        assert_eq!(report.coverage(), None);
        assert!(report.is_complete());
    }
}
