//! Hierarchical path construction (Section III-B-4 of the paper).
//!
//! The paper partitions the array into subblocks (5×5 in its evaluation),
//! solves the path problem per block and stitches subpaths along the
//! top-level flow directions. This module implements that decomposition
//! for the corner-port arrays of Table I as **block bands**:
//!
//! * one flow path per *row band* of `block_size` rows — it descends the
//!   west boundary column, serpentines through the whole band (covering
//!   every horizontal valve of those rows, exactly the subpaths of the
//!   paper's Fig. 7(b) concatenated across the block row) and descends the
//!   east boundary column to the sink;
//! * one flow path per *column band*, mirrored.
//!
//! Bands whose serpentine is blocked (obstacles) or ends off the sink
//! (partial bands of even width) are skipped, and a greedy fix-up stage
//! covers whatever is left — the hierarchical trade-off the paper reports:
//! a few more vectors than the direct model, far better scalability.

use crate::cover::CoverageTracker;
use crate::error::AtpgError;
use crate::heuristic::{cover_remaining, serpentine_cells, PathCover};
use crate::path::FlowPath;
use fpva_grid::{CellId, CellKind, Fpva, PortId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the hierarchical engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Subblock edge length. `None` (the default) derives it from the
    /// array dimensions via [`HierarchyConfig::derived_block_size`]; a
    /// `Some` value overrides the derivation (the paper evaluates with a
    /// fixed 5).
    pub block_size: Option<usize>,
    /// Seed for the greedy fix-up stage.
    pub seed: u64,
    /// Routing attempts per valve in the fix-up stage.
    pub tries: usize,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            block_size: None,
            seed: 0x11EA_2017,
            tries: 64,
        }
    }
}

impl HierarchyConfig {
    /// Band height derived from the array size, per the Fig. 8 trade-off:
    /// each band of `b` rows contributes one flow path, so the band count
    /// (and with it the vector count) falls as `b` grows, while the
    /// paper's per-block solve cost argument caps how far `b` may grow
    /// with the array. Half the geometric-mean edge length reproduces the
    /// paper's choice of 5 on the 10×10 evaluation array and keeps small
    /// arrays at that floor.
    pub fn derived_block_size(rows: usize, cols: usize) -> usize {
        let half_mean = ((rows * cols) as f64).sqrt() / 2.0;
        (half_mean.round() as usize).clamp(5, 15)
    }

    /// The band height to use for `fpva`: the explicit override when
    /// set; otherwise [`HierarchyConfig::derived_block_size`] — unless
    /// the array contains obstacle cells, where the derivation falls
    /// back to the paper's 5. A band whose serpentine crosses an
    /// obstacle is skipped wholesale and its valves fall to the greedy
    /// fix-up, so on obstacled arrays a taller band *loses* coverage and
    /// time instead of saving paths (measured: the Table I 20×20 and
    /// 30×30 go incomplete at their derived heights).
    pub fn resolved_block_size(&self, fpva: &Fpva) -> usize {
        if let Some(block) = self.block_size {
            return block.max(1);
        }
        let has_obstacles = fpva
            .cells()
            .any(|c| fpva.cell_kind(c) == CellKind::Obstacle);
        if has_obstacles {
            5
        } else {
            Self::derived_block_size(fpva.rows(), fpva.cols())
        }
    }
}

fn ports(fpva: &Fpva) -> Result<(PortId, PortId), AtpgError> {
    let source = fpva
        .sources()
        .next()
        .map(|(id, _)| id)
        .ok_or(AtpgError::MissingPorts)?;
    let sink = fpva
        .sinks()
        .next()
        .map(|(id, _)| id)
        .ok_or(AtpgError::MissingPorts)?;
    Ok((source, sink))
}

/// Cell sequence of the row-band path for rows `r0..=r1`: descend column 0
/// from the top, serpentine the band, then route to the bottom-right sink.
fn row_band_cells(fpva: &Fpva, r0: usize, r1: usize) -> Vec<CellId> {
    let (rows, cols) = (fpva.rows(), fpva.cols());
    let mut cells: Vec<CellId> = (0..r0).map(|r| CellId::new(r, 0)).collect();
    let band = serpentine_cells(r0, r1, cols);
    let ends_east = (r1 - r0).is_multiple_of(2);
    cells.extend(band);
    if ends_east {
        // Band ends at (r1, cols-1): descend the east column to the sink.
        cells.extend((r1 + 1..rows).map(|r| CellId::new(r, cols - 1)));
    } else {
        // Band ends at (r1, 0): keep descending the west column, then run
        // east along the bottom row.
        cells.extend((r1 + 1..rows).map(|r| CellId::new(r, 0)));
        cells.extend((1..cols).map(|c| CellId::new(rows - 1, c)));
    }
    cells
}

/// Attempts to build all band paths; invalid bands are silently skipped
/// (their valves fall through to the fix-up stage).
fn band_paths(fpva: &Fpva, block_size: usize) -> Result<Vec<FlowPath>, AtpgError> {
    let (source, sink) = ports(fpva)?;
    let (rows, cols) = (fpva.rows(), fpva.cols());
    let mut paths = Vec::new();
    // Row bands.
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + block_size - 1).min(rows - 1);
        let cells = row_band_cells(fpva, r0, r1);
        if let Ok(p) = FlowPath::new(fpva, source, sink, cells) {
            paths.push(p);
        }
        r0 = r1 + 1;
    }
    // Column bands: build on the transposed geometry, then mirror.
    let mut c0 = 0;
    while c0 < cols {
        let c1 = (c0 + block_size - 1).min(cols - 1);
        let cells = col_band_cells(fpva, c0, c1);
        if let Ok(p) = FlowPath::new(fpva, source, sink, cells) {
            paths.push(p);
        }
        c0 = c1 + 1;
    }
    Ok(paths)
}

/// Mirror image of [`row_band_cells`] for a column band `c0..=c1`.
fn col_band_cells(fpva: &Fpva, c0: usize, c1: usize) -> Vec<CellId> {
    let (rows, cols) = (fpva.rows(), fpva.cols());
    let mut cells: Vec<CellId> = (0..c0).map(|c| CellId::new(0, c)).collect();
    // Column serpentine: column c0 heads south, c0+1 north, ...
    for (k, col) in (c0..=c1).enumerate() {
        if k % 2 == 0 {
            cells.extend((0..rows).map(|r| CellId::new(r, col)));
        } else {
            cells.extend((0..rows).rev().map(|r| CellId::new(r, col)));
        }
    }
    let ends_south = (c1 - c0).is_multiple_of(2);
    if ends_south {
        cells.extend((c1 + 1..cols).map(|c| CellId::new(rows - 1, c)));
    } else {
        cells.extend((c1 + 1..cols).map(|c| CellId::new(0, c)));
        cells.extend((1..rows).map(|r| CellId::new(r, cols - 1)));
    }
    cells
}

/// Hierarchical path cover: band paths plus a greedy fix-up for valves the
/// bands miss.
///
/// # Errors
///
/// Returns [`AtpgError::MissingPorts`] when the array lacks a source or a
/// sink port.
pub fn hierarchical_cover(fpva: &Fpva, config: &HierarchyConfig) -> Result<PathCover, AtpgError> {
    let block = config.resolved_block_size(fpva);
    let mut paths = band_paths(fpva, block)?;
    let mut tracker = CoverageTracker::new(fpva);
    for p in &paths {
        tracker.cover_all(p.valves(fpva));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let uncovered = cover_remaining(fpva, &mut tracker, &mut paths, &mut rng, config.tries)?;
    Ok(PathCover { paths, uncovered })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpva_grid::layouts;

    fn assert_complete(fpva: &Fpva, cover: &PathCover) {
        assert!(cover.is_complete(), "uncovered: {:?}", cover.uncovered);
        let mut tracker = CoverageTracker::new(fpva);
        for p in &cover.paths {
            tracker.cover_all(p.valves(fpva));
        }
        assert!(tracker.is_complete());
    }

    #[test]
    fn full_10x10_needs_exactly_four_band_paths() {
        // The paper's Fig. 8(b): hierarchical model with 5x5 blocks on the
        // full 10x10 array yields 4 paths.
        let f = layouts::full_array(10, 10);
        let cover = hierarchical_cover(&f, &HierarchyConfig::default()).unwrap();
        assert_eq!(cover.paths.len(), 4);
        assert_complete(&f, &cover);
    }

    #[test]
    fn bands_handle_partial_blocks() {
        // 7 rows with block size 5: a 5-band and a 2-band.
        let f = layouts::full_array(7, 7);
        let cover = hierarchical_cover(&f, &HierarchyConfig::default()).unwrap();
        assert_complete(&f, &cover);
    }

    #[test]
    fn all_table1_layouts_covered() {
        for entry in layouts::table1() {
            let cover = hierarchical_cover(&entry.fpva, &HierarchyConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            assert_complete(&entry.fpva, &cover);
            // Sanity: vector count stays in the paper's order of magnitude
            // (Table I reports 4..=20 flow paths for these arrays).
            assert!(
                cover.paths.len() <= 2 * entry.paper_flow_paths + 8,
                "{}: {} paths vs paper {}",
                entry.name,
                cover.paths.len(),
                entry.paper_flow_paths
            );
        }
    }

    #[test]
    fn derived_block_size_tracks_array_dims() {
        assert_eq!(HierarchyConfig::derived_block_size(5, 5), 5);
        assert_eq!(HierarchyConfig::derived_block_size(10, 10), 5);
        assert_eq!(HierarchyConfig::derived_block_size(15, 15), 8);
        assert_eq!(HierarchyConfig::derived_block_size(30, 30), 15);
        // Obstacled arrays fall back to the paper's 5.
        let obstacled = layouts::table1_30x30();
        assert_eq!(
            HierarchyConfig::default().resolved_block_size(&obstacled),
            5
        );
        // Explicit override always wins.
        let cfg = HierarchyConfig {
            block_size: Some(7),
            ..Default::default()
        };
        assert_eq!(cfg.resolved_block_size(&obstacled), 7);
    }

    #[test]
    fn derived_bands_do_not_regress_30x30_path_count_or_time() {
        // The Fig. 8 trade-off on the obstacle-free 30×30: the derived
        // band height must yield no more paths (it yields far fewer) and
        // no more generation work than the historical fixed 5.
        let f = layouts::full_array(30, 30);
        let fixed = HierarchyConfig {
            block_size: Some(5),
            ..Default::default()
        };
        let t0 = std::time::Instant::now();
        let fixed_cover = hierarchical_cover(&f, &fixed).unwrap();
        let fixed_time = t0.elapsed();
        let t0 = std::time::Instant::now();
        let auto_cover = hierarchical_cover(&f, &HierarchyConfig::default()).unwrap();
        let auto_time = t0.elapsed();
        assert_complete(&f, &auto_cover);
        assert!(
            auto_cover.paths.len() <= fixed_cover.paths.len(),
            "derived bands produce {} paths vs fixed-5's {}",
            auto_cover.paths.len(),
            fixed_cover.paths.len()
        );
        // Time comparison with generous slack: fewer, longer bands do
        // strictly less serpentine construction, but absolute wall-clock
        // asserts are flaky — require only "not grossly slower".
        assert!(
            auto_time <= fixed_time * 4 + std::time::Duration::from_millis(250),
            "derived bands took {auto_time:?} vs fixed-5's {fixed_time:?}"
        );
    }

    #[test]
    fn block_size_one_still_works() {
        let f = layouts::full_array(3, 3);
        let config = HierarchyConfig {
            block_size: Some(1),
            ..Default::default()
        };
        let cover = hierarchical_cover(&f, &config).unwrap();
        assert_complete(&f, &cover);
    }

    #[test]
    fn paths_are_simple_and_end_at_ports() {
        let f = layouts::table1_20x20();
        let cover = hierarchical_cover(&f, &HierarchyConfig::default()).unwrap();
        for p in &cover.paths {
            let unique: std::collections::HashSet<_> = p.cells().iter().collect();
            assert_eq!(unique.len(), p.len());
            assert_eq!(p.cells()[0], CellId::new(0, 0));
            assert_eq!(*p.cells().last().unwrap(), CellId::new(19, 19));
        }
    }
}
