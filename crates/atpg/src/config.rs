//! Generator configuration.

use crate::ilp_model::PathIlpConfig;

/// Which flow-path engine [`crate::Atpg`] uses.
#[derive(Debug, Clone, Default)]
pub enum PathEngine {
    /// Block-band hierarchical construction (the paper's scalable mode);
    /// the default.
    #[default]
    Hierarchical,
    /// Direct greedy randomized cover of the whole array.
    Greedy,
    /// The paper's exact ILP (constraints (1)–(8)); practical for small
    /// arrays/subblocks. Falls back to [`PathEngine::Greedy`] when the
    /// solver hits its limits.
    Ilp(PathIlpConfig),
}

/// Which cut-set engine [`crate::Atpg`] uses. Only one engine exists
/// today; the enum keeps the configuration forward-compatible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum CutEngine {
    /// Straight dual-lattice lines with channel detours and targeted
    /// fix-up cuts; reproduces Table I's `n_c`.
    #[default]
    StraightLines,
}

/// Full configuration of [`crate::Atpg`].
#[derive(Debug, Clone)]
pub struct AtpgConfig {
    /// Flow-path engine.
    pub path_engine: PathEngine,
    /// Cut-set engine.
    pub cut_engine: CutEngine,
    /// Subblock edge length for the hierarchical engine. `None` derives
    /// the band height from the array dimensions
    /// ([`crate::hierarchy::HierarchyConfig::derived_block_size`]); the
    /// paper evaluates with a fixed 5.
    pub block_size: Option<usize>,
    /// Whether to generate the control-leakage vectors.
    pub leakage: bool,
    /// Seed for the randomized stages.
    pub seed: u64,
    /// Routing attempts per valve in randomized searches.
    pub tries: usize,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            path_engine: PathEngine::default(),
            cut_engine: CutEngine::default(),
            block_size: None,
            leakage: true,
            seed: 0xDA7E_2017,
            tries: 64,
        }
    }
}
