//! Control-layer leakage test vectors.
//!
//! The paper states that control-layer leakage "can also be detected by
//! adapting the valve coverage problem" but omits the construction for
//! space. This module implements the documented adaptation (DESIGN.md §4):
//!
//! A leak fault `(a → b)` closes victim `b` whenever actuator `a` is
//! commanded closed. A **path-shaped vector** detects the pair exactly when
//! `b` lies on the (only) active pressure path while `a` is commanded
//! closed — the leak then erroneously closes `b` and the sink reading
//! disappears. Since a flow-path vector closes every off-path valve, the
//! flow-path suite already covers every pair with `a` off-path and `b`
//! on-path; what remains are pairs where every path through `b` also
//! carries `a`. For each such pair the generator routes an extra simple
//! path through `b` that avoids `a`.
//!
//! Physical adjacency (control channels routed next to each other —
//! [`fpva_grid::Fpva::valve_neighbors`]) bounds the pair universe, which
//! keeps the extra-vector count in the order of the flow-path count, as in
//! the paper's Table I (`n_l ≈ n_p`).

use crate::connectivity::{
    endpoint_ports, path_through_edge, reachable_from, sink_cells, source_cells,
};
use crate::error::AtpgError;
use crate::path::FlowPath;
use fpva_grid::{EdgeId, Fpva, PortId, ValveId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet, VecDeque};

/// Certifies that the ordered pair `(actuator, victim)` can never be
/// exposed by any pressure-based vector: with the actuator's edge closed,
/// no source→sink route can cross the victim's edge at all (the victim's
/// behaviour is unobservable).
///
/// The canonical case is the two valves of a port-less corner cell: each
/// is the only route to the other, so closing one hides the other. The
/// paper's pressure-metering methodology cannot test such a pair either.
pub fn pair_untestable(fpva: &Fpva, actuator: ValveId, victim: ValveId) -> bool {
    let blocked: HashSet<EdgeId> = [fpva.edge_of(actuator), fpva.edge_of(victim)]
        .into_iter()
        .collect();
    let from_sources = reachable_from(fpva, &source_cells(fpva), &blocked);
    let from_sinks = reachable_from(fpva, &sink_cells(fpva), &blocked);
    let (u, v) = fpva.edge_of(victim).endpoints();
    let (ui, vi) = (fpva.cell_index(u), fpva.cell_index(v));
    let forward = from_sources[ui] && from_sinks[vi];
    let backward = from_sources[vi] && from_sinks[ui];
    !(forward || backward)
}

/// Output of [`leakage_vectors`].
#[derive(Debug, Clone)]
pub struct LeakageCover {
    /// Extra path-shaped vectors dedicated to leakage (the paper's `n_l`).
    pub paths: Vec<FlowPath>,
    /// Adjacent ordered pairs `(actuator, victim)` that no vector covers
    /// (victim unreachable without crossing the actuator); empty on the
    /// paper's layouts.
    pub uncovered_pairs: Vec<(ValveId, ValveId)>,
}

impl LeakageCover {
    /// `true` when every adjacent ordered pair is covered.
    pub fn is_complete(&self) -> bool {
        self.uncovered_pairs.is_empty()
    }
}

fn ports(fpva: &Fpva) -> Result<(PortId, PortId), AtpgError> {
    let source = fpva
        .sources()
        .next()
        .map(|(id, _)| id)
        .ok_or(AtpgError::MissingPorts)?;
    let sink = fpva
        .sinks()
        .next()
        .map(|(id, _)| id)
        .ok_or(AtpgError::MissingPorts)?;
    Ok((source, sink))
}

/// Generates the dedicated control-leakage vectors given the already
/// generated flow paths.
///
/// # Errors
///
/// Returns [`AtpgError::MissingPorts`] when the array lacks ports.
pub fn leakage_vectors(
    fpva: &Fpva,
    flow_paths: &[FlowPath],
    seed: u64,
    tries: usize,
) -> Result<LeakageCover, AtpgError> {
    ports(fpva)?; // Fail fast when the chip has no source or no sink.
    let mut rng = StdRng::seed_from_u64(seed);

    // Valve sets of the existing path vectors.
    let mut path_sets: Vec<HashSet<ValveId>> = flow_paths
        .iter()
        .map(|p| p.valves(fpva).into_iter().collect())
        .collect();

    // A pair (a, b) is covered iff some path-shaped vector has b on the
    // path and a off it.
    let pair_covered = |sets: &[HashSet<ValveId>], a: ValveId, b: ValveId| {
        sets.iter().any(|s| s.contains(&b) && !s.contains(&a))
    };

    // `pending_victims` is a multiset of the victim valves still in `todo`
    // (victims repeat across pairs), kept in sync with every queue edit so
    // the routing preference below is an O(1) lookup instead of a rescan
    // of the whole queue per expanded edge.
    let mut todo: VecDeque<(ValveId, ValveId)> = VecDeque::new();
    let mut pending_victims: HashMap<ValveId, usize> = HashMap::new();
    for (a, _) in fpva.valves() {
        for b in fpva.valve_neighbors(a) {
            if !pair_covered(&path_sets, a, b) {
                todo.push_back((a, b));
                *pending_victims.entry(b).or_insert(0) += 1;
            }
        }
    }
    fn drop_victim(pending: &mut HashMap<ValveId, usize>, v: ValveId) {
        match pending.get_mut(&v) {
            Some(n) if *n > 1 => *n -= 1,
            _ => {
                pending.remove(&v);
            }
        }
    }

    let mut extra_paths: Vec<FlowPath> = Vec::new();
    let mut uncovered: Vec<(ValveId, ValveId)> = Vec::new();
    while let Some(&(a, b)) = todo.front() {
        let avoid: HashSet<EdgeId> = [fpva.edge_of(a)].into_iter().collect();
        // Prefer steps that knock out other pending victims, so one extra
        // vector covers many pairs at once.
        let prefer = |e: EdgeId| {
            fpva.valve_at(e)
                .is_some_and(|v| pending_victims.contains_key(&v))
        };
        // Escalate the retry budget before declaring the pair untestable:
        // routing around channels occasionally needs more restarts.
        let found = path_through_edge(fpva, fpva.edge_of(b), &avoid, &prefer, &mut rng, tries)
            .or_else(|| {
                if pair_untestable(fpva, a, b) {
                    None
                } else {
                    path_through_edge(
                        fpva,
                        fpva.edge_of(b),
                        &avoid,
                        &|_| false,
                        &mut rng,
                        8 * tries,
                    )
                }
            });
        match found {
            Some(cells) => {
                // The search may terminate at any source/sink pair, so the
                // ports must be read off the path itself.
                let (src, snk) =
                    endpoint_ports(fpva, &cells).expect("search endpoints are port cells");
                let path = FlowPath::new(fpva, src, snk, cells)
                    .expect("search yields validated simple paths");
                path_sets.push(path.valves(fpva).into_iter().collect());
                extra_paths.push(path);
                let newest = &path_sets[path_sets.len() - 1..];
                todo.retain(|&(x, y)| {
                    let keep = !pair_covered(newest, x, y);
                    if !keep {
                        drop_victim(&mut pending_victims, y);
                    }
                    keep
                });
            }
            None => {
                uncovered.push((a, b));
                todo.pop_front();
                drop_victim(&mut pending_victims, b);
            }
        }
    }
    Ok(LeakageCover {
        paths: extra_paths,
        uncovered_pairs: uncovered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::greedy_cover;
    use fpva_grid::layouts;
    use fpva_sim::{audit, TestSuite};

    #[test]
    fn leak_pairs_all_covered_on_5x5_except_corner_pockets() {
        let f = layouts::table1_5x5();
        let cover = greedy_cover(&f, 7, 48).unwrap();
        assert!(cover.is_complete());
        let leak = leakage_vectors(&f, &cover.paths, 3, 48).unwrap();
        // The two port-less corner cells each contribute a reciprocal pair
        // of physically untestable leaks (4 pairs total).
        assert_eq!(leak.uncovered_pairs.len(), 4, "{:?}", leak.uncovered_pairs);
        for &(a, b) in &leak.uncovered_pairs {
            assert!(
                pair_untestable(&f, a, b),
                "({a},{b}) reported but not certified"
            );
        }

        // Ground truth via simulation: path + leak vectors detect every
        // adjacent control-leak fault except exactly those pairs.
        let mut vectors: Vec<_> = cover.paths.iter().map(|p| p.to_vector(&f)).collect();
        vectors.extend(leak.paths.iter().map(|p| p.to_vector(&f)));
        let suite = TestSuite::new(&f, vectors);
        let report = audit::leak_coverage(&f, &suite);
        assert_eq!(
            report.undetected.len(),
            4,
            "undetected: {:?}",
            report.undetected
        );
        for fault in &report.undetected {
            let fpva_sim::Fault::ControlLeak { actuator, victim } = fault else {
                panic!("unexpected fault kind {fault:?}")
            };
            assert!(leak.uncovered_pairs.contains(&(*actuator, *victim)));
        }
    }

    #[test]
    fn extra_vector_count_is_moderate() {
        let f = layouts::table1_10x10();
        let cover = greedy_cover(&f, 7, 48).unwrap();
        let leak = leakage_vectors(&f, &cover.paths, 3, 48).unwrap();
        // Paper reports n_l = 4 for the 10x10; allow headroom but stay in
        // the same order of magnitude (not O(n_v)).
        assert!(
            leak.paths.len() <= 24,
            "{} leakage vectors",
            leak.paths.len()
        );
        // Only the corner-pocket pairs may remain uncovered.
        for &(a, b) in &leak.uncovered_pairs {
            assert!(
                pair_untestable(&f, a, b),
                "({a},{b}) reported but not certified"
            );
        }
    }

    #[test]
    fn untestable_certificate_matches_corner_geometry() {
        let f = layouts::table1_5x5();
        let leak = leakage_vectors(&f, &greedy_cover(&f, 7, 48).unwrap().paths, 3, 48).unwrap();
        for &(a, b) in &leak.uncovered_pairs {
            // Every reported pair touches one of the two port-less corner
            // cells (0,4) or (4,0).
            let cells: Vec<_> = [f.edge_of(a).endpoints(), f.edge_of(b).endpoints()]
                .into_iter()
                .flat_map(|(x, y)| [x, y])
                .collect();
            let corner = cells.iter().any(|c| {
                (c.row == 0 && c.col == f.cols() - 1) || (c.row == f.rows() - 1 && c.col == 0)
            });
            assert!(corner, "pair ({a},{b}) does not touch a corner pocket");
        }
        // And a clearly testable pair is not certified untestable.
        assert!(!pair_untestable(
            &f,
            fpva_grid::ValveId(0),
            fpva_grid::ValveId(4)
        ));
    }

    #[test]
    fn multi_sink_chips_route_to_any_sink() {
        // Regression: with more than one sink, the leakage search may end
        // at a sink other than the chip's first; the generator used to
        // pair every path with the first ports and panic on validation.
        use fpva_grid::{FpvaBuilder, PortKind, Side};
        let f = FpvaBuilder::new(6, 6)
            .port(0, 0, Side::West, PortKind::Source)
            .port(5, 5, Side::East, PortKind::Sink)
            .port(5, 0, Side::South, PortKind::Sink)
            .build()
            .unwrap();
        let cover = greedy_cover(&f, 7, 48).unwrap();
        let leak = leakage_vectors(&f, &cover.paths, 3, 48).unwrap();
        for &(a, b) in &leak.uncovered_pairs {
            assert!(
                pair_untestable(&f, a, b),
                "({a},{b}) reported but not certified"
            );
        }
        // Every generated extra path must end at one of the two sinks.
        for p in &leak.paths {
            let last = *p.cells().last().unwrap();
            assert!(
                f.sinks().any(|(_, port)| port.cell == last),
                "path ends off-sink at {last}"
            );
        }
    }

    #[test]
    fn repair_queue_rework_preserves_cover_and_terminates_promptly() {
        // Reference: the original quadratic repair loop (Vec + `remove(0)`
        // + whole-queue rescan inside `prefer`), kept verbatim so the
        // reworked queue can be checked for identical output. Any
        // divergence in pair order or routing preference would shift RNG
        // consumption and change the generated paths.
        fn reference_leakage_vectors(
            fpva: &Fpva,
            flow_paths: &[FlowPath],
            seed: u64,
            tries: usize,
        ) -> LeakageCover {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut path_sets: Vec<HashSet<ValveId>> = flow_paths
                .iter()
                .map(|p| p.valves(fpva).into_iter().collect())
                .collect();
            let pair_covered = |sets: &[HashSet<ValveId>], a: ValveId, b: ValveId| {
                sets.iter().any(|s| s.contains(&b) && !s.contains(&a))
            };
            let mut todo: Vec<(ValveId, ValveId)> = Vec::new();
            for (a, _) in fpva.valves() {
                for b in fpva.valve_neighbors(a) {
                    if !pair_covered(&path_sets, a, b) {
                        todo.push((a, b));
                    }
                }
            }
            let mut extra_paths: Vec<FlowPath> = Vec::new();
            let mut uncovered: Vec<(ValveId, ValveId)> = Vec::new();
            while let Some(&(a, b)) = todo.first() {
                let avoid: HashSet<EdgeId> = [fpva.edge_of(a)].into_iter().collect();
                let prefer = |e: EdgeId| {
                    fpva.valve_at(e)
                        .is_some_and(|v| todo.iter().any(|&(_, y)| y == v))
                };
                let found =
                    path_through_edge(fpva, fpva.edge_of(b), &avoid, &prefer, &mut rng, tries)
                        .or_else(|| {
                            if pair_untestable(fpva, a, b) {
                                None
                            } else {
                                path_through_edge(
                                    fpva,
                                    fpva.edge_of(b),
                                    &avoid,
                                    &|_| false,
                                    &mut rng,
                                    8 * tries,
                                )
                            }
                        });
                match found {
                    Some(cells) => {
                        let (src, snk) = endpoint_ports(fpva, &cells).unwrap();
                        let path = FlowPath::new(fpva, src, snk, cells).unwrap();
                        path_sets.push(path.valves(fpva).into_iter().collect());
                        extra_paths.push(path);
                        todo.retain(|&(x, y)| {
                            !pair_covered(&path_sets[path_sets.len() - 1..], x, y)
                        });
                    }
                    None => {
                        uncovered.push((a, b));
                        todo.remove(0);
                    }
                }
            }
            LeakageCover {
                paths: extra_paths,
                uncovered_pairs: uncovered,
            }
        }

        // No pre-existing flow paths: every adjacent ordered pair starts
        // uncovered, the many-pairs regime the old loop handled
        // quadratically.
        let f = layouts::full_array(6, 6);
        let t0 = std::time::Instant::now();
        let fast = leakage_vectors(&f, &[], 11, 32).unwrap();
        let elapsed = t0.elapsed();
        let slow = reference_leakage_vectors(&f, &[], 11, 32);
        assert_eq!(fast.paths, slow.paths);
        assert_eq!(fast.uncovered_pairs, slow.uncovered_pairs);
        assert!(!fast.paths.is_empty());
        assert!(
            elapsed < std::time::Duration::from_secs(30),
            "repair took {elapsed:?}"
        );
    }

    #[test]
    fn already_complete_cover_needs_no_extras() {
        // With two disjoint-ish paths every adjacent pair is usually
        // separable; verify on a tiny array where we can reason: 1x3
        // pipeline has pairs (v0,v1), (v1,v0); every path contains both
        // valves, so extras are impossible — pairs must be reported.
        use fpva_grid::{FpvaBuilder, PortKind, Side};
        let f = FpvaBuilder::new(1, 3)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 2, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        let cover = greedy_cover(&f, 1, 16).unwrap();
        let leak = leakage_vectors(&f, &cover.paths, 1, 16).unwrap();
        assert_eq!(leak.uncovered_pairs.len(), 2, "series pairs are untestable");
        assert!(leak.paths.is_empty());
    }
}
