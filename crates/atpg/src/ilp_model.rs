//! The paper's ILP formulation of flow-path construction (Section III-B,
//! constraints (1)–(8)), solved with the in-workspace
//! [`fpva_ilp`] branch-and-bound solver.
//!
//! For each candidate path `m` the model has:
//!
//! * a binary `v[m][e]` per passable edge — "path m crosses site e"
//!   (constraint-variable `vᵐᵢⱼ` of the paper),
//! * a binary `c[m][cell]` per non-obstacle cell — "path m passes the
//!   cell" (`cᵐᵢⱼ`),
//! * a binary `pe[m][port]` per boundary port — paths enter at a source
//!   and leave at a sink,
//! * an integer flow `f[m][e] ∈ [−M, M]` per edge plus an injection
//!   `fp[m][src]` — the disjoint-loop exclusion of constraints (3)/(4):
//!   every on-path cell absorbs one unit that must originate at a source
//!   port, so a loop disconnected from the source cannot satisfy flow
//!   conservation (paper's equation (5) argument).
//!
//! Constraint (1) becomes "2·c = Σ incident v + Σ ports", constraint (2)
//! the coverage requirement, and the minimisation over the number of
//! paths (7)–(8) is realised by probing increasing path counts `k` and
//! returning the first feasible cover (the paper likewise re-solves with
//! increased `n_p` when infeasible).

use crate::error::AtpgError;
use crate::heuristic::PathCover;
use crate::path::FlowPath;
use fpva_grid::{CellId, CellKind, EdgeId, EdgeKind, Fpva, PortId, PortKind};
use fpva_ilp::{LinExpr, MilpOptions, MilpSolver, Model, Sense, SolveStatus, VarId};
use std::collections::BTreeMap;
use std::time::Duration;

/// Tuning of the exact engine.
#[derive(Debug, Clone)]
pub struct PathIlpConfig {
    /// Largest path count probed before giving up.
    pub max_paths: usize,
    /// Wall-clock budget per feasibility probe.
    pub time_limit: Duration,
    /// Node budget per feasibility probe.
    pub node_limit: usize,
    /// Solve each probe in proof-logging mode and audit the returned
    /// certificate with [`fpva_ilp::certify_outcome`] in exact rational
    /// arithmetic. Certified probes disable `stop_at_first` (a terminal
    /// verdict needs a complete tree), so expect more nodes per probe.
    pub certify: bool,
}

impl Default for PathIlpConfig {
    fn default() -> Self {
        PathIlpConfig {
            max_paths: 8,
            time_limit: Duration::from_secs(20),
            node_limit: 200_000,
            certify: false,
        }
    }
}

/// Variable handles for one candidate path. `BTreeMap` keeps lookup *and*
/// iteration deterministic (path extraction walks these maps).
struct PathVars {
    v: BTreeMap<EdgeId, VarId>,
    f: BTreeMap<EdgeId, VarId>,
    pe: BTreeMap<PortId, VarId>,
    fp: BTreeMap<PortId, VarId>,
    c: BTreeMap<CellId, VarId>,
}

/// Builds the feasibility model "cover all valves with exactly `k` paths".
fn build_model(fpva: &Fpva, k: usize) -> (Model, Vec<PathVars>) {
    let mut model = Model::new(Sense::Minimize);
    let cells: Vec<CellId> = fpva
        .cells()
        .filter(|&c| fpva.cell_kind(c) != CellKind::Obstacle)
        .collect();
    let passable: Vec<EdgeId> = fpva
        .edges()
        .filter(|&(_, kind)| kind != EdgeKind::Wall)
        .map(|(e, _)| e)
        .collect();
    let big_m = cells.len() as f64 + 1.0;

    let mut all_vars = Vec::with_capacity(k);
    for m in 0..k {
        let mut v = BTreeMap::new();
        let mut f = BTreeMap::new();
        for &e in &passable {
            v.insert(e, model.binary_var(format!("v{m}_{e}")));
            // The paper declares f integer; continuous flow carries the
            // same disjoint-loop exclusion argument (equation (5) is a pure
            // balance identity) and keeps branching confined to v/pe.
            f.insert(e, model.continuous_var(format!("f{m}_{e}"), -big_m, big_m));
        }
        let mut pe = BTreeMap::new();
        let mut fp = BTreeMap::new();
        for (pid, port) in fpva.ports() {
            pe.insert(pid, model.binary_var(format!("pe{m}_{pid}")));
            if port.kind == PortKind::Source {
                fp.insert(
                    pid,
                    model.continuous_var(format!("fp{m}_{pid}"), 0.0, big_m),
                );
            }
        }
        let mut c = BTreeMap::new();
        for &cell in &cells {
            // c is determined by the degree identity (1): 2c = Σv + Σpe,
            // so integrality of v/pe forces c ∈ {0, 1} without branching.
            c.insert(cell, model.continuous_var(format!("c{m}_{cell}"), 0.0, 1.0));
        }

        // Constraint (1): an on-path cell is crossed by exactly two of its
        // incident sites (ports count as sites).
        for &cell in &cells {
            let mut deg = LinExpr::new();
            for (e, _) in fpva.neighbors(cell) {
                if let Some(&var) = v.get(&e) {
                    deg.add_term(var, 1.0);
                }
            }
            for (pid, port) in fpva.ports() {
                if port.cell == cell {
                    deg.add_term(pe[&pid], 1.0);
                }
            }
            deg.add_term(c[&cell], -2.0);
            model.add_eq(deg, 0.0);
        }
        // Each path uses exactly one source opening and one sink opening.
        let mut srcs = LinExpr::new();
        let mut snks = LinExpr::new();
        for (pid, port) in fpva.ports() {
            match port.kind {
                PortKind::Source => srcs.add_term(pe[&pid], 1.0),
                PortKind::Sink => snks.add_term(pe[&pid], 1.0),
            };
        }
        model.add_eq(srcs, 1.0);
        model.add_eq(snks, 1.0);

        // Constraint (3): flow only on used sites.
        for &e in &passable {
            model.add_leq(LinExpr::from(f[&e]) - big_m * v[&e], 0.0);
            model.add_geq(LinExpr::from(f[&e]) + big_m * v[&e], 0.0);
        }
        for (pid, &fvar) in &fp {
            model.add_leq(LinExpr::from(fvar) - big_m * pe[pid], 0.0);
        }
        // Constraint (4): every on-path cell absorbs one unit. Canonical
        // edge orientation: positive flow runs from the north-west endpoint
        // to the other one.
        for &cell in &cells {
            let mut balance = LinExpr::new();
            for (e, _) in fpva.neighbors(cell) {
                let Some(&fvar) = f.get(&e) else { continue };
                let (a, _) = e.endpoints();
                // +f into the far endpoint, -f out of the near one.
                if cell == a {
                    balance.add_term(fvar, -1.0);
                } else {
                    balance.add_term(fvar, 1.0);
                }
            }
            for (pid, port) in fpva.ports() {
                if port.kind == PortKind::Source && port.cell == cell {
                    balance.add_term(fp[&pid], 1.0);
                }
            }
            balance.add_term(c[&cell], -1.0);
            model.add_eq(balance, 0.0);
        }

        all_vars.push(PathVars { v, f, pe, fp, c });
    }

    // Channel contiguity (the validator's no-bypass rule, implied by the
    // paper's Fig. 5(a) masking argument but absent from constraints
    // (1)–(8)): pressure spreads freely inside an always-open channel
    // component, so a path that leaves such a component and re-enters it
    // closes an implicit loop. A simple path visiting a component `C` in
    // `k` contiguous runs crosses C's boundary exactly `2k − t` times,
    // where `t` counts the path's endpoints (used port openings) inside
    // C — so contiguity (`k ≤ 1`) is exactly, for every multi-cell open
    // component C and every path m:
    //     Σ_{e ∈ δ(C)} v[m][e] + Σ_{ports p, cell(p) ∈ C} pe[m][p] ≤ 2.
    // Omitting the endpoint term would let a path that starts *and* ends
    // inside C split its visit in two on just 2 crossings.
    // (PR 4's engine never solved the channelled probes fast enough to
    // surface any of this; with the LU basis the k=2 probe on
    // `table1_5x5` otherwise returns a bypass "cover" the extractor must
    // reject.)
    let components = crate::connectivity::open_components(fpva);
    let mut comp_sizes: BTreeMap<usize, usize> = BTreeMap::new();
    for &cell in &cells {
        *comp_sizes
            .entry(components[fpva.cell_index(cell)])
            .or_insert(0) += 1;
    }
    for (&comp, &size) in &comp_sizes {
        if size < 2 {
            continue;
        }
        let boundary: Vec<EdgeId> = passable
            .iter()
            .copied()
            .filter(|&e| {
                let (a, b) = e.endpoints();
                (components[fpva.cell_index(a)] == comp) != (components[fpva.cell_index(b)] == comp)
            })
            .collect();
        for vars in &all_vars {
            let mut crossings = LinExpr::new();
            for &e in &boundary {
                crossings.add_term(vars.v[&e], 1.0);
            }
            for (pid, port) in fpva.ports() {
                if components[fpva.cell_index(port.cell)] == comp {
                    crossings.add_term(vars.pe[&pid], 1.0);
                }
            }
            model.add_leq(crossings, 2.0);
        }
    }

    // Constraint (2): every real valve covered by some path.
    for (_, e) in fpva.valves() {
        let mut cover = LinExpr::new();
        for vars in &all_vars {
            cover.add_term(vars.v[&e], 1.0);
        }
        model.add_geq(cover, 1.0);
    }

    // The probe is a pure feasibility question, but solving it with a
    // zero objective leaves the LP relaxation with no guidance at all:
    // fractional flow smears across the array and branch-and-bound has to
    // enumerate its way to integrality. Minimising the total number of
    // crossed sites pulls the relaxation towards short, consolidated
    // paths (any feasible integer point is still a valid cover, and
    // `stop_at_first` keeps the early-exit behaviour).
    let mut total_sites = LinExpr::new();
    for vars in &all_vars {
        for &var in vars.v.values() {
            total_sites.add_term(var, 1.0);
        }
    }
    model.set_objective(total_sites);

    // The k candidate paths are interchangeable, which makes the search
    // tree k!-fold symmetric. Ordering them by non-increasing length is
    // valid for every cover (relabel the paths) and prunes the mirrored
    // subtrees.
    for pair in all_vars.windows(2) {
        let mut diff = LinExpr::new();
        for &var in pair[0].v.values() {
            diff.add_term(var, 1.0);
        }
        for &var in pair[1].v.values() {
            diff.add_term(var, -1.0);
        }
        model.add_geq(diff, 0.0);
    }

    (model, all_vars)
}

/// Reconstructs the cell sequence of path `m` from a solved model.
fn extract_path(
    fpva: &Fpva,
    sol: &fpva_ilp::Solution,
    vars: &PathVars,
) -> Result<FlowPath, AtpgError> {
    let source = vars
        .pe
        .iter()
        .find(|(pid, &var)| fpva.port(**pid).kind == PortKind::Source && sol.is_set(var))
        .map(|(pid, _)| *pid)
        .ok_or_else(|| AtpgError::Solver {
            reason: "path without source port".into(),
        })?;
    let sink = vars
        .pe
        .iter()
        .find(|(pid, &var)| fpva.port(**pid).kind == PortKind::Sink && sol.is_set(var))
        .map(|(pid, _)| *pid)
        .ok_or_else(|| AtpgError::Solver {
            reason: "path without sink port".into(),
        })?;
    let goal = fpva.port(sink).cell;
    let mut cells = vec![fpva.port(source).cell];
    let mut prev_edge: Option<EdgeId> = None;
    loop {
        let cur = *cells.last().expect("non-empty");
        if cur == goal && (cells.len() > 1 || fpva.port(source).cell == goal) {
            break;
        }
        let next = fpva
            .neighbors(cur)
            .find(|&(e, _)| {
                Some(e) != prev_edge && vars.v.get(&e).is_some_and(|&var| sol.is_set(var))
            })
            .ok_or_else(|| AtpgError::Solver {
                reason: format!("path dead-ends at {cur}"),
            })?;
        prev_edge = Some(next.0);
        cells.push(next.1);
        if cells.len() > fpva.cell_count() + 1 {
            return Err(AtpgError::Solver {
                reason: "path extraction cycled".into(),
            });
        }
    }
    let _ = &vars.c; // c is implied by the walk; kept for debugging models
    FlowPath::new(fpva, source, sink, cells)
}

/// Aggregate solver effort of one [`min_path_cover_ilp_with_stats`] run,
/// exposed so callers (notably the `ablation` binary) can attribute
/// ILP-vs-greedy outcomes honestly: a probe that burned its budget is a
/// *limit hit*, not evidence about cover existence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IlpCoverStats {
    /// Feasibility probes attempted (one per candidate path count `k`).
    pub probes: usize,
    /// Probes that ended on a node/time limit without a definite answer.
    pub limit_probes: usize,
    /// Branch-and-bound nodes processed across all probes.
    pub nodes: usize,
    /// Nodes whose LP relaxation was cut short by the deadline or pivot
    /// budget (see `fpva_ilp::SolveStats::limit_nodes`).
    pub limit_nodes: usize,
    /// Simplex pivots across all probes.
    pub lp_iterations: usize,
    /// Full sparse-LU basis refactorizations across all probes.
    pub refactorizations: usize,
    /// Forrest–Tomlin basis updates applied in place across all probes.
    pub ft_updates: usize,
    /// Forrest–Tomlin updates rejected by the stability test.
    pub rejected_updates: usize,
    /// Dual simplex pivots across all probes' warm re-solves (child
    /// nodes restoring feasibility from the parent basis dually instead
    /// of restarting primal phase 1).
    pub dual_pivots: usize,
    /// Node LP solves started from a usable warm basis across all probes.
    pub warm_resolves: usize,
    /// Node LP solves whose warm basis was rejected into a cold slack
    /// start across all probes (should stay at or near zero).
    pub cold_restarts: usize,
    /// Constraints eliminated by static presolve across all probes.
    pub presolve_rows: usize,
    /// Variables eliminated by static presolve across all probes.
    pub presolve_cols: usize,
    /// Bounds tightened by static presolve across all probes.
    pub presolve_tightenings: usize,
    /// Integer bounds tightened by per-node propagation across all probes.
    pub node_tightenings: usize,
    /// Nodes pruned by propagation alone (no LP solved) across all probes.
    pub propagation_prunes: usize,
    /// Probes whose certificate passed the exact-arithmetic audit
    /// (zero unless [`PathIlpConfig::certify`] is set).
    pub certified_probes: usize,
    /// Branch-and-bound leaves re-proved exactly across all audited
    /// certificates.
    pub certificate_leaves: usize,
    /// Presolve actions audited across all certified probes.
    pub certificate_actions: usize,
    /// Probes whose certificate was rejected (or missing) — any non-zero
    /// value means a solver verdict could not be proven.
    pub certificate_failures: usize,
    /// Root-analysis probing propagation runs across all probes (see
    /// [`fpva_ilp::AnalysisStats`]).
    pub analysis_probes: usize,
    /// Variables fixed by root probing across all probes.
    pub probe_fixings: usize,
    /// Implications harvested from root probing across all probes.
    pub implications: usize,
    /// Bounds lifted from two-sided probes across all probes (always
    /// zero in certify mode).
    pub lifted_bounds: usize,
    /// Distinct conflict-graph edges across all probes.
    pub conflict_edges: usize,
    /// Symmetry orbits (size ≥ 2) of interchangeable binaries across all
    /// probes.
    pub orbit_count: usize,
    /// Binaries in those orbits across all probes.
    pub orbit_vars: usize,
    /// Fixings propagated to orbit mates without probing them across all
    /// probes (always zero in certify mode).
    pub orbit_fixings: usize,
    /// Probing fixings re-derived exactly across all audited
    /// certificates.
    pub certificate_fixings: usize,
}

/// Builds the paper's "cover all valves with exactly `k` paths" model
/// without solving it — the entry point static analyses (`fpva-lint`,
/// presolve diagnostics) use to audit generated models.
pub fn cover_model(fpva: &Fpva, k: usize) -> Model {
    build_model(fpva, k).0
}

/// The constraint count [`cover_model`] is expected to produce for
/// `fpva` with `k` paths, derived structurally from the chip: per path,
/// two rows per passable edge (flow gating), two rows per non-obstacle
/// cell (degree + balance), one row per source port (injection gating),
/// two port-opening rows, and one contiguity row per multi-cell open
/// component; globally, one cover row per valve and `k − 1` symmetry
/// rows. `fpva-lint` checks the generated model against this formula —
/// a mismatch means model generation and chip structure disagree.
pub fn expected_constraint_count(fpva: &Fpva, k: usize) -> usize {
    let cells = fpva
        .cells()
        .filter(|&c| fpva.cell_kind(c) != CellKind::Obstacle)
        .count();
    let edges = fpva
        .edges()
        .filter(|&(_, kind)| kind != EdgeKind::Wall)
        .count();
    let sources = fpva.sources().count();
    let components = crate::connectivity::open_components(fpva);
    let mut comp_sizes: BTreeMap<usize, usize> = BTreeMap::new();
    for cell in fpva.cells() {
        if fpva.cell_kind(cell) != CellKind::Obstacle {
            *comp_sizes
                .entry(components[fpva.cell_index(cell)])
                .or_insert(0) += 1;
        }
    }
    let multi_cell = comp_sizes.values().filter(|&&s| s >= 2).count();
    k * (2 * cells + 2 * edges + 2 + sources + multi_cell) + fpva.valve_count() + (k - 1)
}

/// Lower bound on the number of paths any exact valve cover needs, from
/// the cut-set counting argument behind the paper's `(m−1)+(n−1)`
/// formula: a simple path visiting `t ≤ cell_count` cells traverses at
/// most `t − 1` lattice edges, and every valve sits on a lattice edge,
/// so one path covers at most `cell_count − 1` valves. The probe loop
/// starts here, and `fpva-lint` audits the model at this `k` (any
/// smaller `k` is provably infeasible — presolve or the certified root
/// analysis proves it).
pub fn min_cover_paths(fpva: &Fpva) -> usize {
    let per_path = fpva.cell_count().saturating_sub(1).max(1);
    fpva.valve_count().div_ceil(per_path).max(1)
}

/// One candidate automorphism of the `rows × cols` cell lattice: the
/// dihedral maps that send the grid onto itself. Non-square grids only
/// admit the three maps that preserve the axis lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GridMap {
    FlipRows,
    FlipCols,
    Rot180,
    Transpose,
    AntiTranspose,
    Rot90,
    Rot270,
}

impl GridMap {
    fn candidates(rows: usize, cols: usize) -> Vec<GridMap> {
        let mut maps = vec![GridMap::FlipRows, GridMap::FlipCols, GridMap::Rot180];
        if rows == cols {
            maps.extend([
                GridMap::Transpose,
                GridMap::AntiTranspose,
                GridMap::Rot90,
                GridMap::Rot270,
            ]);
        }
        maps
    }

    fn apply(self, c: CellId, rows: usize, cols: usize) -> CellId {
        let (r, k) = (c.row, c.col);
        match self {
            GridMap::FlipRows => CellId::new(rows - 1 - r, k),
            GridMap::FlipCols => CellId::new(r, cols - 1 - k),
            GridMap::Rot180 => CellId::new(rows - 1 - r, cols - 1 - k),
            GridMap::Transpose => CellId::new(k, r),
            GridMap::AntiTranspose => CellId::new(cols - 1 - k, rows - 1 - r),
            GridMap::Rot90 => CellId::new(k, rows - 1 - r),
            GridMap::Rot270 => CellId::new(cols - 1 - k, r),
        }
    }
}

/// Checks a candidate grid map against the chip structure (cell kinds,
/// edge kinds, port placement) and, if it passes, returns the induced
/// port bijection. Port `Side` is deliberately ignored — the cover model
/// only uses a port's cell and kind, so a map that relocates the opening
/// to another side of the same image cell is still a model automorphism.
fn chip_automorphism(fpva: &Fpva, g: GridMap) -> Option<BTreeMap<PortId, PortId>> {
    let (rows, cols) = (fpva.rows(), fpva.cols());
    for cell in fpva.cells() {
        if fpva.cell_kind(cell) != fpva.cell_kind(g.apply(cell, rows, cols)) {
            return None;
        }
    }
    for (e, kind) in fpva.edges() {
        let (a, b) = e.endpoints();
        let img = fpva.edge_between(g.apply(a, rows, cols), g.apply(b, rows, cols))?;
        if fpva.edge_kind(img) != kind {
            return None;
        }
    }
    // Ports grouped by (cell, kind): groups must map onto groups of equal
    // size; within a group the ports are model-interchangeable, so they
    // match positionally in id order.
    let mut groups: BTreeMap<(CellId, PortKind), Vec<PortId>> = BTreeMap::new();
    for (pid, port) in fpva.ports() {
        groups.entry((port.cell, port.kind)).or_default().push(pid);
    }
    let mut map = BTreeMap::new();
    for ((cell, kind), pids) in &groups {
        let image = groups.get(&(g.apply(*cell, rows, cols), *kind))?;
        if image.len() != pids.len() {
            return None;
        }
        for (&p, &q) in pids.iter().zip(image) {
            map.insert(p, q);
        }
    }
    Some(map)
}

/// Builds the signed variable permutation a chip automorphism induces on
/// the cover model: each path maps onto itself (so the path-ordering
/// rows are preserved exactly), site/cell/port binaries permute
/// spatially, and a flow variable picks up a sign flip whenever the map
/// reverses its edge's canonical north-west orientation. Soundness does
/// not rest on this construction — the solver re-verifies every
/// generator structurally ([`fpva_ilp::analyze::verify_automorphism`])
/// before using it.
fn model_generator(
    fpva: &Fpva,
    g: GridMap,
    ports: &BTreeMap<PortId, PortId>,
    model: &Model,
    vars: &[PathVars],
) -> fpva_ilp::SignedPerm {
    let (rows, cols) = (fpva.rows(), fpva.cols());
    let mut perm: fpva_ilp::SignedPerm = (0..model.var_count()).map(|i| (i, false)).collect();
    let mut set = |a: VarId, b: VarId, flip: bool| perm[a.index()] = (b.index(), flip);
    for pv in vars {
        for (&e, &var) in &pv.v {
            let (a, b) = e.endpoints();
            let img = fpva
                .edge_between(g.apply(a, rows, cols), g.apply(b, rows, cols))
                .expect("chip automorphism maps edges to edges");
            set(var, pv.v[&img], false);
            // Positive flow runs NW endpoint → other endpoint; the image
            // flow flips sign when the NW endpoint lands on the image's
            // far endpoint.
            let flip = g.apply(a, rows, cols) == img.endpoints().1;
            set(pv.f[&e], pv.f[&img], flip);
        }
        for (&p, &var) in &pv.pe {
            set(var, pv.pe[&ports[&p]], false);
        }
        for (&p, &var) in &pv.fp {
            set(var, pv.fp[&ports[&p]], false);
        }
        for (&cell, &var) in &pv.c {
            set(var, pv.c[&g.apply(cell, rows, cols)], false);
        }
    }
    perm
}

/// Chip-level symmetry survey for one cover model, as reported by the
/// `fpva-lint` `symmetry` check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SymmetryReport {
    /// Dihedral grid maps compatible with the grid shape.
    pub candidates: usize,
    /// Candidates surviving the chip-structure filter (cell kinds, edge
    /// kinds, port placement) *and* exact structural verification on the
    /// generated model.
    pub verified: usize,
    /// Chip-compatible candidates the model verification rejected — the
    /// model under-breaks or over-breaks the chip's apparent symmetry.
    pub rejected: usize,
    /// Orbits (size ≥ 2) of interchangeable binaries under the verified
    /// generators.
    pub orbit_count: usize,
    /// Binaries in those orbits.
    pub orbit_vars: usize,
    /// Total binaries of the model.
    pub binaries: usize,
}

/// Detects grid automorphisms of `fpva`, lifts each to a signed variable
/// permutation of the `k`-path cover model, and keeps those that pass
/// exact structural verification. The result feeds
/// [`fpva_ilp::MilpOptions::symmetry`] (orbit-aware branching and orbit
/// fixing) and the lint `symmetry` check.
pub fn symmetry_generators(fpva: &Fpva, k: usize) -> Vec<fpva_ilp::SignedPerm> {
    let (model, vars) = build_model(fpva, k);
    cover_symmetry(fpva, &model, &vars).0
}

/// Like [`symmetry_generators`], additionally reporting the survey
/// counters.
pub fn symmetry_report(fpva: &Fpva, k: usize) -> SymmetryReport {
    let (model, vars) = build_model(fpva, k);
    let (generators, mut report) = cover_symmetry(fpva, &model, &vars);
    let (orbit_count, orbit_vars) = fpva_ilp::analyze::orbit_summary(&model, &generators);
    report.orbit_count = orbit_count;
    report.orbit_vars = orbit_vars;
    report
}

fn cover_symmetry(
    fpva: &Fpva,
    model: &Model,
    vars: &[PathVars],
) -> (Vec<fpva_ilp::SignedPerm>, SymmetryReport) {
    let candidates = GridMap::candidates(fpva.rows(), fpva.cols());
    let mut report = SymmetryReport {
        candidates: candidates.len(),
        binaries: vars
            .iter()
            .map(|pv| pv.v.len() + pv.pe.len())
            .sum::<usize>(),
        ..SymmetryReport::default()
    };
    let mut generators = Vec::new();
    for g in candidates {
        let Some(ports) = chip_automorphism(fpva, g) else {
            continue;
        };
        let perm = model_generator(fpva, g, &ports, model, vars);
        if fpva_ilp::analyze::verify_automorphism(model, &perm) {
            report.verified += 1;
            generators.push(perm);
        } else {
            report.rejected += 1;
        }
    }
    (generators, report)
}

/// Probes increasing path counts `k = lb, lb+1, …` and returns the first
/// feasible exact cover — the paper's minimisation strategy "(7)–(8), then
/// increase n_p when infeasible" run in the opposite (sound) direction.
///
/// # Errors
///
/// * [`AtpgError::MissingPorts`] — no source or sink;
/// * [`AtpgError::Solver`] — every probe up to
///   [`PathIlpConfig::max_paths`] was infeasible or hit its limit.
pub fn min_path_cover_ilp(fpva: &Fpva, config: &PathIlpConfig) -> Result<PathCover, AtpgError> {
    min_path_cover_ilp_with_stats(fpva, config).0
}

/// Like [`min_path_cover_ilp`], additionally reporting per-run solver
/// statistics (returned even when the cover search fails).
pub fn min_path_cover_ilp_with_stats(
    fpva: &Fpva,
    config: &PathIlpConfig,
) -> (Result<PathCover, AtpgError>, IlpCoverStats) {
    let mut stats = IlpCoverStats::default();
    if fpva.sources().next().is_none() || fpva.sinks().next().is_none() {
        return (Err(AtpgError::MissingPorts), stats);
    }
    if fpva.valve_count() == 0 {
        return (
            Ok(PathCover {
                paths: Vec::new(),
                uncovered: Vec::new(),
            }),
            stats,
        );
    }
    let lb = min_cover_paths(fpva);
    let mut limited = false;
    for k in lb..=config.max_paths {
        let (model, vars) = build_model(fpva, k);
        // Grid automorphisms of the chip, lifted to the model's variable
        // space. The solver re-verifies each claim structurally (and
        // re-maps it through its own presolve) before trusting it.
        let (symmetry, _) = cover_symmetry(fpva, &model, &vars);
        let solver = MilpSolver::with_options(MilpOptions {
            time_limit: Some(config.time_limit),
            node_limit: Some(config.node_limit),
            // A certified probe needs the whole tree as a proof; an
            // uncertified one can stop at the first cover.
            stop_at_first: !config.certify,
            certificate: config.certify,
            symmetry,
            ..MilpOptions::default()
        });
        let outcome = match solver.solve(&model) {
            Ok(outcome) => outcome,
            Err(e) => {
                return (
                    Err(AtpgError::Solver {
                        reason: e.to_string(),
                    }),
                    stats,
                )
            }
        };
        stats.probes += 1;
        stats.nodes += outcome.stats.nodes;
        stats.limit_nodes += outcome.stats.limit_nodes;
        stats.lp_iterations += outcome.stats.lp_iterations;
        stats.refactorizations += outcome.stats.refactorizations;
        stats.ft_updates += outcome.stats.ft_updates;
        stats.rejected_updates += outcome.stats.rejected_updates;
        stats.dual_pivots += outcome.stats.dual_pivots;
        stats.warm_resolves += outcome.stats.warm_resolves;
        stats.cold_restarts += outcome.stats.cold_restarts;
        stats.presolve_rows += outcome.stats.presolve_rows;
        stats.presolve_cols += outcome.stats.presolve_cols;
        stats.presolve_tightenings += outcome.stats.presolve_tightenings;
        stats.node_tightenings += outcome.stats.node_tightenings;
        stats.propagation_prunes += outcome.stats.propagation_prunes;
        stats.analysis_probes += outcome.stats.analysis.probes;
        stats.probe_fixings += outcome.stats.analysis.probe_fixings;
        stats.implications += outcome.stats.analysis.implications;
        stats.lifted_bounds += outcome.stats.analysis.lifted_bounds;
        stats.conflict_edges += outcome.stats.analysis.conflict_edges;
        stats.orbit_count += outcome.stats.analysis.orbit_count;
        stats.orbit_vars += outcome.stats.analysis.orbit_vars;
        stats.orbit_fixings += outcome.stats.analysis.orbit_fixings;
        if config.certify
            && matches!(
                outcome.status,
                SolveStatus::Optimal | SolveStatus::Feasible | SolveStatus::Infeasible
            )
        {
            match fpva_ilp::certify_outcome(&model, &outcome) {
                Ok(summary) => {
                    stats.certified_probes += 1;
                    stats.certificate_leaves += summary.leaves;
                    stats.certificate_actions += summary.actions;
                    stats.certificate_fixings += summary.probe_fixings;
                }
                Err(_) => stats.certificate_failures += 1,
            }
        }
        match outcome.status {
            SolveStatus::Optimal | SolveStatus::Feasible => {
                let sol = outcome.best.expect("feasible outcome has incumbent");
                let paths = match vars
                    .iter()
                    .map(|pv| extract_path(fpva, &sol, pv))
                    .collect::<Result<Vec<_>, _>>()
                {
                    Ok(paths) => paths,
                    Err(e) => return (Err(e), stats),
                };
                return (
                    Ok(PathCover {
                        paths,
                        uncovered: Vec::new(),
                    }),
                    stats,
                );
            }
            SolveStatus::Infeasible => continue,
            SolveStatus::Unknown | SolveStatus::Unbounded => {
                stats.limit_probes += 1;
                limited = true;
                continue;
            }
        }
    }
    let reason = if limited {
        format!(
            "no cover proven within limits up to {} paths",
            config.max_paths
        )
    } else {
        format!("no cover exists with up to {} paths", config.max_paths)
    };
    (Err(AtpgError::Solver { reason }), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::CoverageTracker;
    use fpva_grid::{layouts, FpvaBuilder, Side};

    fn assert_exact_cover(fpva: &Fpva, cover: &PathCover) {
        let mut tracker = CoverageTracker::new(fpva);
        for p in &cover.paths {
            tracker.cover_all(p.valves(fpva));
        }
        assert!(tracker.is_complete(), "{} uncovered", tracker.remaining());
    }

    #[test]
    fn pipeline_needs_one_path() {
        let f = FpvaBuilder::new(1, 4)
            .port(0, 0, Side::West, fpva_grid::PortKind::Source)
            .port(0, 3, Side::East, fpva_grid::PortKind::Sink)
            .build()
            .unwrap();
        let cover = min_path_cover_ilp(&f, &PathIlpConfig::default()).unwrap();
        assert_eq!(cover.paths.len(), 1);
        assert_exact_cover(&f, &cover);
    }

    #[test]
    fn two_by_two_needs_two_paths() {
        let f = layouts::full_array(2, 2);
        let cover = min_path_cover_ilp(&f, &PathIlpConfig::default()).unwrap();
        // 4 valves, longest simple corner-to-corner path covers 3 of them.
        assert_eq!(cover.paths.len(), 2);
        assert_exact_cover(&f, &cover);
    }

    #[test]
    fn three_by_three_exact() {
        let f = layouts::full_array(3, 3);
        let cover = min_path_cover_ilp(&f, &PathIlpConfig::default()).unwrap();
        assert_exact_cover(&f, &cover);
        assert!(cover.paths.len() <= 3, "{} paths", cover.paths.len());
        for p in &cover.paths {
            let unique: std::collections::HashSet<_> = p.cells().iter().collect();
            assert_eq!(unique.len(), p.len(), "ILP path must be simple");
        }
    }

    #[test]
    fn channels_are_usable_but_not_covered() {
        let f = FpvaBuilder::new(1, 4)
            .channel_horizontal(0, 1, 2)
            .port(0, 0, Side::West, fpva_grid::PortKind::Source)
            .port(0, 3, Side::East, fpva_grid::PortKind::Sink)
            .build()
            .unwrap();
        assert_eq!(f.valve_count(), 2);
        let cover = min_path_cover_ilp(&f, &PathIlpConfig::default()).unwrap();
        assert_eq!(cover.paths.len(), 1);
        assert_exact_cover(&f, &cover);
    }

    #[test]
    fn expected_constraint_count_matches_generated_models() {
        for (fpva, k) in [
            (layouts::full_array(3, 3), 1),
            (layouts::full_array(4, 4), 2),
            (layouts::table1_5x5(), 2),
        ] {
            let model = cover_model(&fpva, k);
            assert_eq!(
                model.constraint_count(),
                expected_constraint_count(&fpva, k),
                "structural formula out of sync for k={k}"
            );
        }
    }

    #[test]
    fn min_cover_paths_never_exceeds_first_feasible_k() {
        // The cut-set lower bound must stay a *lower* bound: on every
        // Table I layout it may not exceed the path count the paper
        // reports as feasible, otherwise the probe loop would start
        // past the optimum and return an inflated cover.
        for entry in layouts::table1() {
            let lb = min_cover_paths(&entry.fpva);
            assert!(
                lb <= entry.paper_flow_paths,
                "table1_{}: lower bound {lb} exceeds the paper's {} paths",
                entry.name,
                entry.paper_flow_paths
            );
            assert!(lb >= 1, "table1_{}: bound must stay positive", entry.name);
        }
        // Exact values on chips small enough to reason about by hand.
        // full 2x2: 4 valves, 4 cells, ceil(4/3) = 2 — the counting
        // argument alone already forces the known two-path optimum.
        assert_eq!(min_cover_paths(&layouts::full_array(2, 2)), 2);
        assert_eq!(min_cover_paths(&layouts::full_array(3, 3)), 2);
        let pipeline = FpvaBuilder::new(1, 4)
            .port(0, 0, Side::West, fpva_grid::PortKind::Source)
            .port(0, 3, Side::East, fpva_grid::PortKind::Sink)
            .build()
            .unwrap();
        assert_eq!(min_cover_paths(&pipeline), 1);
    }

    #[test]
    fn valveless_array_needs_no_paths() {
        let f = FpvaBuilder::new(1, 2)
            .channel_horizontal(0, 0, 1)
            .port(0, 0, Side::West, fpva_grid::PortKind::Source)
            .port(0, 1, Side::East, fpva_grid::PortKind::Sink)
            .build()
            .unwrap();
        let cover = min_path_cover_ilp(&f, &PathIlpConfig::default()).unwrap();
        assert!(cover.paths.is_empty());
    }
}
