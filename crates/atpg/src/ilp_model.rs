//! The paper's ILP formulation of flow-path construction (Section III-B,
//! constraints (1)–(8)), solved with the in-workspace
//! [`fpva_ilp`] branch-and-bound solver.
//!
//! For each candidate path `m` the model has:
//!
//! * a binary `v[m][e]` per passable edge — "path m crosses site e"
//!   (constraint-variable `vᵐᵢⱼ` of the paper),
//! * a binary `c[m][cell]` per non-obstacle cell — "path m passes the
//!   cell" (`cᵐᵢⱼ`),
//! * a binary `pe[m][port]` per boundary port — paths enter at a source
//!   and leave at a sink,
//! * an integer flow `f[m][e] ∈ [−M, M]` per edge plus an injection
//!   `fp[m][src]` — the disjoint-loop exclusion of constraints (3)/(4):
//!   every on-path cell absorbs one unit that must originate at a source
//!   port, so a loop disconnected from the source cannot satisfy flow
//!   conservation (paper's equation (5) argument).
//!
//! Constraint (1) becomes "2·c = Σ incident v + Σ ports", constraint (2)
//! the coverage requirement, and the minimisation over the number of
//! paths (7)–(8) is realised by probing increasing path counts `k` and
//! returning the first feasible cover (the paper likewise re-solves with
//! increased `n_p` when infeasible).

use crate::error::AtpgError;
use crate::heuristic::PathCover;
use crate::path::FlowPath;
use fpva_grid::{CellId, CellKind, EdgeId, EdgeKind, Fpva, PortId, PortKind};
use fpva_ilp::{LinExpr, MilpOptions, MilpSolver, Model, Sense, SolveStatus, VarId};
use std::collections::BTreeMap;
use std::time::Duration;

/// Tuning of the exact engine.
#[derive(Debug, Clone)]
pub struct PathIlpConfig {
    /// Largest path count probed before giving up.
    pub max_paths: usize,
    /// Wall-clock budget per feasibility probe.
    pub time_limit: Duration,
    /// Node budget per feasibility probe.
    pub node_limit: usize,
    /// Solve each probe in proof-logging mode and audit the returned
    /// certificate with [`fpva_ilp::certify_outcome`] in exact rational
    /// arithmetic. Certified probes disable `stop_at_first` (a terminal
    /// verdict needs a complete tree), so expect more nodes per probe.
    pub certify: bool,
}

impl Default for PathIlpConfig {
    fn default() -> Self {
        PathIlpConfig {
            max_paths: 8,
            time_limit: Duration::from_secs(20),
            node_limit: 200_000,
            certify: false,
        }
    }
}

/// Variable handles for one candidate path. `BTreeMap` keeps lookup *and*
/// iteration deterministic (path extraction walks these maps).
struct PathVars {
    v: BTreeMap<EdgeId, VarId>,
    pe: BTreeMap<PortId, VarId>,
    c: BTreeMap<CellId, VarId>,
}

/// Builds the feasibility model "cover all valves with exactly `k` paths".
fn build_model(fpva: &Fpva, k: usize) -> (Model, Vec<PathVars>) {
    let mut model = Model::new(Sense::Minimize);
    let cells: Vec<CellId> = fpva
        .cells()
        .filter(|&c| fpva.cell_kind(c) != CellKind::Obstacle)
        .collect();
    let passable: Vec<EdgeId> = fpva
        .edges()
        .filter(|&(_, kind)| kind != EdgeKind::Wall)
        .map(|(e, _)| e)
        .collect();
    let big_m = cells.len() as f64 + 1.0;

    let mut all_vars = Vec::with_capacity(k);
    for m in 0..k {
        let mut v = BTreeMap::new();
        let mut f = BTreeMap::new();
        for &e in &passable {
            v.insert(e, model.binary_var(format!("v{m}_{e}")));
            // The paper declares f integer; continuous flow carries the
            // same disjoint-loop exclusion argument (equation (5) is a pure
            // balance identity) and keeps branching confined to v/pe.
            f.insert(e, model.continuous_var(format!("f{m}_{e}"), -big_m, big_m));
        }
        let mut pe = BTreeMap::new();
        let mut fp = BTreeMap::new();
        for (pid, port) in fpva.ports() {
            pe.insert(pid, model.binary_var(format!("pe{m}_{pid}")));
            if port.kind == PortKind::Source {
                fp.insert(
                    pid,
                    model.continuous_var(format!("fp{m}_{pid}"), 0.0, big_m),
                );
            }
        }
        let mut c = BTreeMap::new();
        for &cell in &cells {
            // c is determined by the degree identity (1): 2c = Σv + Σpe,
            // so integrality of v/pe forces c ∈ {0, 1} without branching.
            c.insert(cell, model.continuous_var(format!("c{m}_{cell}"), 0.0, 1.0));
        }

        // Constraint (1): an on-path cell is crossed by exactly two of its
        // incident sites (ports count as sites).
        for &cell in &cells {
            let mut deg = LinExpr::new();
            for (e, _) in fpva.neighbors(cell) {
                if let Some(&var) = v.get(&e) {
                    deg.add_term(var, 1.0);
                }
            }
            for (pid, port) in fpva.ports() {
                if port.cell == cell {
                    deg.add_term(pe[&pid], 1.0);
                }
            }
            deg.add_term(c[&cell], -2.0);
            model.add_eq(deg, 0.0);
        }
        // Each path uses exactly one source opening and one sink opening.
        let mut srcs = LinExpr::new();
        let mut snks = LinExpr::new();
        for (pid, port) in fpva.ports() {
            match port.kind {
                PortKind::Source => srcs.add_term(pe[&pid], 1.0),
                PortKind::Sink => snks.add_term(pe[&pid], 1.0),
            };
        }
        model.add_eq(srcs, 1.0);
        model.add_eq(snks, 1.0);

        // Constraint (3): flow only on used sites.
        for &e in &passable {
            model.add_leq(LinExpr::from(f[&e]) - big_m * v[&e], 0.0);
            model.add_geq(LinExpr::from(f[&e]) + big_m * v[&e], 0.0);
        }
        for (pid, &fvar) in &fp {
            model.add_leq(LinExpr::from(fvar) - big_m * pe[pid], 0.0);
        }
        // Constraint (4): every on-path cell absorbs one unit. Canonical
        // edge orientation: positive flow runs from the north-west endpoint
        // to the other one.
        for &cell in &cells {
            let mut balance = LinExpr::new();
            for (e, _) in fpva.neighbors(cell) {
                let Some(&fvar) = f.get(&e) else { continue };
                let (a, _) = e.endpoints();
                // +f into the far endpoint, -f out of the near one.
                if cell == a {
                    balance.add_term(fvar, -1.0);
                } else {
                    balance.add_term(fvar, 1.0);
                }
            }
            for (pid, port) in fpva.ports() {
                if port.kind == PortKind::Source && port.cell == cell {
                    balance.add_term(fp[&pid], 1.0);
                }
            }
            balance.add_term(c[&cell], -1.0);
            model.add_eq(balance, 0.0);
        }

        all_vars.push(PathVars { v, pe, c });
    }

    // Channel contiguity (the validator's no-bypass rule, implied by the
    // paper's Fig. 5(a) masking argument but absent from constraints
    // (1)–(8)): pressure spreads freely inside an always-open channel
    // component, so a path that leaves such a component and re-enters it
    // closes an implicit loop. A simple path visiting a component `C` in
    // `k` contiguous runs crosses C's boundary exactly `2k − t` times,
    // where `t` counts the path's endpoints (used port openings) inside
    // C — so contiguity (`k ≤ 1`) is exactly, for every multi-cell open
    // component C and every path m:
    //     Σ_{e ∈ δ(C)} v[m][e] + Σ_{ports p, cell(p) ∈ C} pe[m][p] ≤ 2.
    // Omitting the endpoint term would let a path that starts *and* ends
    // inside C split its visit in two on just 2 crossings.
    // (PR 4's engine never solved the channelled probes fast enough to
    // surface any of this; with the LU basis the k=2 probe on
    // `table1_5x5` otherwise returns a bypass "cover" the extractor must
    // reject.)
    let components = crate::connectivity::open_components(fpva);
    let mut comp_sizes: BTreeMap<usize, usize> = BTreeMap::new();
    for &cell in &cells {
        *comp_sizes
            .entry(components[fpva.cell_index(cell)])
            .or_insert(0) += 1;
    }
    for (&comp, &size) in &comp_sizes {
        if size < 2 {
            continue;
        }
        let boundary: Vec<EdgeId> = passable
            .iter()
            .copied()
            .filter(|&e| {
                let (a, b) = e.endpoints();
                (components[fpva.cell_index(a)] == comp) != (components[fpva.cell_index(b)] == comp)
            })
            .collect();
        for vars in &all_vars {
            let mut crossings = LinExpr::new();
            for &e in &boundary {
                crossings.add_term(vars.v[&e], 1.0);
            }
            for (pid, port) in fpva.ports() {
                if components[fpva.cell_index(port.cell)] == comp {
                    crossings.add_term(vars.pe[&pid], 1.0);
                }
            }
            model.add_leq(crossings, 2.0);
        }
    }

    // Constraint (2): every real valve covered by some path.
    for (_, e) in fpva.valves() {
        let mut cover = LinExpr::new();
        for vars in &all_vars {
            cover.add_term(vars.v[&e], 1.0);
        }
        model.add_geq(cover, 1.0);
    }

    // The probe is a pure feasibility question, but solving it with a
    // zero objective leaves the LP relaxation with no guidance at all:
    // fractional flow smears across the array and branch-and-bound has to
    // enumerate its way to integrality. Minimising the total number of
    // crossed sites pulls the relaxation towards short, consolidated
    // paths (any feasible integer point is still a valid cover, and
    // `stop_at_first` keeps the early-exit behaviour).
    let mut total_sites = LinExpr::new();
    for vars in &all_vars {
        for &var in vars.v.values() {
            total_sites.add_term(var, 1.0);
        }
    }
    model.set_objective(total_sites);

    // The k candidate paths are interchangeable, which makes the search
    // tree k!-fold symmetric. Ordering them by non-increasing length is
    // valid for every cover (relabel the paths) and prunes the mirrored
    // subtrees.
    for pair in all_vars.windows(2) {
        let mut diff = LinExpr::new();
        for &var in pair[0].v.values() {
            diff.add_term(var, 1.0);
        }
        for &var in pair[1].v.values() {
            diff.add_term(var, -1.0);
        }
        model.add_geq(diff, 0.0);
    }

    (model, all_vars)
}

/// Reconstructs the cell sequence of path `m` from a solved model.
fn extract_path(
    fpva: &Fpva,
    sol: &fpva_ilp::Solution,
    vars: &PathVars,
) -> Result<FlowPath, AtpgError> {
    let source = vars
        .pe
        .iter()
        .find(|(pid, &var)| fpva.port(**pid).kind == PortKind::Source && sol.is_set(var))
        .map(|(pid, _)| *pid)
        .ok_or_else(|| AtpgError::Solver {
            reason: "path without source port".into(),
        })?;
    let sink = vars
        .pe
        .iter()
        .find(|(pid, &var)| fpva.port(**pid).kind == PortKind::Sink && sol.is_set(var))
        .map(|(pid, _)| *pid)
        .ok_or_else(|| AtpgError::Solver {
            reason: "path without sink port".into(),
        })?;
    let goal = fpva.port(sink).cell;
    let mut cells = vec![fpva.port(source).cell];
    let mut prev_edge: Option<EdgeId> = None;
    loop {
        let cur = *cells.last().expect("non-empty");
        if cur == goal && (cells.len() > 1 || fpva.port(source).cell == goal) {
            break;
        }
        let next = fpva
            .neighbors(cur)
            .find(|&(e, _)| {
                Some(e) != prev_edge && vars.v.get(&e).is_some_and(|&var| sol.is_set(var))
            })
            .ok_or_else(|| AtpgError::Solver {
                reason: format!("path dead-ends at {cur}"),
            })?;
        prev_edge = Some(next.0);
        cells.push(next.1);
        if cells.len() > fpva.cell_count() + 1 {
            return Err(AtpgError::Solver {
                reason: "path extraction cycled".into(),
            });
        }
    }
    let _ = &vars.c; // c is implied by the walk; kept for debugging models
    FlowPath::new(fpva, source, sink, cells)
}

/// Aggregate solver effort of one [`min_path_cover_ilp_with_stats`] run,
/// exposed so callers (notably the `ablation` binary) can attribute
/// ILP-vs-greedy outcomes honestly: a probe that burned its budget is a
/// *limit hit*, not evidence about cover existence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IlpCoverStats {
    /// Feasibility probes attempted (one per candidate path count `k`).
    pub probes: usize,
    /// Probes that ended on a node/time limit without a definite answer.
    pub limit_probes: usize,
    /// Branch-and-bound nodes processed across all probes.
    pub nodes: usize,
    /// Nodes whose LP relaxation was cut short by the deadline or pivot
    /// budget (see `fpva_ilp::SolveStats::limit_nodes`).
    pub limit_nodes: usize,
    /// Simplex pivots across all probes.
    pub lp_iterations: usize,
    /// Full sparse-LU basis refactorizations across all probes.
    pub refactorizations: usize,
    /// Forrest–Tomlin basis updates applied in place across all probes.
    pub ft_updates: usize,
    /// Forrest–Tomlin updates rejected by the stability test.
    pub rejected_updates: usize,
    /// Dual simplex pivots across all probes' warm re-solves (child
    /// nodes restoring feasibility from the parent basis dually instead
    /// of restarting primal phase 1).
    pub dual_pivots: usize,
    /// Node LP solves started from a usable warm basis across all probes.
    pub warm_resolves: usize,
    /// Node LP solves whose warm basis was rejected into a cold slack
    /// start across all probes (should stay at or near zero).
    pub cold_restarts: usize,
    /// Constraints eliminated by static presolve across all probes.
    pub presolve_rows: usize,
    /// Variables eliminated by static presolve across all probes.
    pub presolve_cols: usize,
    /// Bounds tightened by static presolve across all probes.
    pub presolve_tightenings: usize,
    /// Integer bounds tightened by per-node propagation across all probes.
    pub node_tightenings: usize,
    /// Nodes pruned by propagation alone (no LP solved) across all probes.
    pub propagation_prunes: usize,
    /// Probes whose certificate passed the exact-arithmetic audit
    /// (zero unless [`PathIlpConfig::certify`] is set).
    pub certified_probes: usize,
    /// Branch-and-bound leaves re-proved exactly across all audited
    /// certificates.
    pub certificate_leaves: usize,
    /// Presolve actions audited across all certified probes.
    pub certificate_actions: usize,
    /// Probes whose certificate was rejected (or missing) — any non-zero
    /// value means a solver verdict could not be proven.
    pub certificate_failures: usize,
}

/// Builds the paper's "cover all valves with exactly `k` paths" model
/// without solving it — the entry point static analyses (`fpva-lint`,
/// presolve diagnostics) use to audit generated models.
pub fn cover_model(fpva: &Fpva, k: usize) -> Model {
    build_model(fpva, k).0
}

/// The constraint count [`cover_model`] is expected to produce for
/// `fpva` with `k` paths, derived structurally from the chip: per path,
/// two rows per passable edge (flow gating), two rows per non-obstacle
/// cell (degree + balance), one row per source port (injection gating),
/// two port-opening rows, and one contiguity row per multi-cell open
/// component; globally, one cover row per valve and `k − 1` symmetry
/// rows. `fpva-lint` checks the generated model against this formula —
/// a mismatch means model generation and chip structure disagree.
pub fn expected_constraint_count(fpva: &Fpva, k: usize) -> usize {
    let cells = fpva
        .cells()
        .filter(|&c| fpva.cell_kind(c) != CellKind::Obstacle)
        .count();
    let edges = fpva
        .edges()
        .filter(|&(_, kind)| kind != EdgeKind::Wall)
        .count();
    let sources = fpva.sources().count();
    let components = crate::connectivity::open_components(fpva);
    let mut comp_sizes: BTreeMap<usize, usize> = BTreeMap::new();
    for cell in fpva.cells() {
        if fpva.cell_kind(cell) != CellKind::Obstacle {
            *comp_sizes
                .entry(components[fpva.cell_index(cell)])
                .or_insert(0) += 1;
        }
    }
    let multi_cell = comp_sizes.values().filter(|&&s| s >= 2).count();
    k * (2 * cells + 2 * edges + 2 + sources + multi_cell) + fpva.valve_count() + (k - 1)
}

/// Lower bound on the number of paths any exact valve cover needs: a
/// simple path visits at most `cell_count + 1` valve sites. The probe
/// loop starts here, and `fpva-lint` audits the model at this `k` (any
/// smaller `k` is provably infeasible — presolve certifies it).
pub fn min_cover_paths(fpva: &Fpva) -> usize {
    fpva.valve_count().div_ceil(fpva.cell_count() + 1).max(1)
}

/// Probes increasing path counts `k = lb, lb+1, …` and returns the first
/// feasible exact cover — the paper's minimisation strategy "(7)–(8), then
/// increase n_p when infeasible" run in the opposite (sound) direction.
///
/// # Errors
///
/// * [`AtpgError::MissingPorts`] — no source or sink;
/// * [`AtpgError::Solver`] — every probe up to
///   [`PathIlpConfig::max_paths`] was infeasible or hit its limit.
pub fn min_path_cover_ilp(fpva: &Fpva, config: &PathIlpConfig) -> Result<PathCover, AtpgError> {
    min_path_cover_ilp_with_stats(fpva, config).0
}

/// Like [`min_path_cover_ilp`], additionally reporting per-run solver
/// statistics (returned even when the cover search fails).
pub fn min_path_cover_ilp_with_stats(
    fpva: &Fpva,
    config: &PathIlpConfig,
) -> (Result<PathCover, AtpgError>, IlpCoverStats) {
    let mut stats = IlpCoverStats::default();
    if fpva.sources().next().is_none() || fpva.sinks().next().is_none() {
        return (Err(AtpgError::MissingPorts), stats);
    }
    if fpva.valve_count() == 0 {
        return (
            Ok(PathCover {
                paths: Vec::new(),
                uncovered: Vec::new(),
            }),
            stats,
        );
    }
    let lb = min_cover_paths(fpva);
    let mut limited = false;
    for k in lb..=config.max_paths {
        let (model, vars) = build_model(fpva, k);
        let solver = MilpSolver::with_options(MilpOptions {
            time_limit: Some(config.time_limit),
            node_limit: Some(config.node_limit),
            // A certified probe needs the whole tree as a proof; an
            // uncertified one can stop at the first cover.
            stop_at_first: !config.certify,
            certificate: config.certify,
            ..MilpOptions::default()
        });
        let outcome = match solver.solve(&model) {
            Ok(outcome) => outcome,
            Err(e) => {
                return (
                    Err(AtpgError::Solver {
                        reason: e.to_string(),
                    }),
                    stats,
                )
            }
        };
        stats.probes += 1;
        stats.nodes += outcome.stats.nodes;
        stats.limit_nodes += outcome.stats.limit_nodes;
        stats.lp_iterations += outcome.stats.lp_iterations;
        stats.refactorizations += outcome.stats.refactorizations;
        stats.ft_updates += outcome.stats.ft_updates;
        stats.rejected_updates += outcome.stats.rejected_updates;
        stats.dual_pivots += outcome.stats.dual_pivots;
        stats.warm_resolves += outcome.stats.warm_resolves;
        stats.cold_restarts += outcome.stats.cold_restarts;
        stats.presolve_rows += outcome.stats.presolve_rows;
        stats.presolve_cols += outcome.stats.presolve_cols;
        stats.presolve_tightenings += outcome.stats.presolve_tightenings;
        stats.node_tightenings += outcome.stats.node_tightenings;
        stats.propagation_prunes += outcome.stats.propagation_prunes;
        if config.certify
            && matches!(
                outcome.status,
                SolveStatus::Optimal | SolveStatus::Feasible | SolveStatus::Infeasible
            )
        {
            match fpva_ilp::certify_outcome(&model, &outcome) {
                Ok(summary) => {
                    stats.certified_probes += 1;
                    stats.certificate_leaves += summary.leaves;
                    stats.certificate_actions += summary.actions;
                }
                Err(_) => stats.certificate_failures += 1,
            }
        }
        match outcome.status {
            SolveStatus::Optimal | SolveStatus::Feasible => {
                let sol = outcome.best.expect("feasible outcome has incumbent");
                let paths = match vars
                    .iter()
                    .map(|pv| extract_path(fpva, &sol, pv))
                    .collect::<Result<Vec<_>, _>>()
                {
                    Ok(paths) => paths,
                    Err(e) => return (Err(e), stats),
                };
                return (
                    Ok(PathCover {
                        paths,
                        uncovered: Vec::new(),
                    }),
                    stats,
                );
            }
            SolveStatus::Infeasible => continue,
            SolveStatus::Unknown | SolveStatus::Unbounded => {
                stats.limit_probes += 1;
                limited = true;
                continue;
            }
        }
    }
    let reason = if limited {
        format!(
            "no cover proven within limits up to {} paths",
            config.max_paths
        )
    } else {
        format!("no cover exists with up to {} paths", config.max_paths)
    };
    (Err(AtpgError::Solver { reason }), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::CoverageTracker;
    use fpva_grid::{layouts, FpvaBuilder, Side};

    fn assert_exact_cover(fpva: &Fpva, cover: &PathCover) {
        let mut tracker = CoverageTracker::new(fpva);
        for p in &cover.paths {
            tracker.cover_all(p.valves(fpva));
        }
        assert!(tracker.is_complete(), "{} uncovered", tracker.remaining());
    }

    #[test]
    fn pipeline_needs_one_path() {
        let f = FpvaBuilder::new(1, 4)
            .port(0, 0, Side::West, fpva_grid::PortKind::Source)
            .port(0, 3, Side::East, fpva_grid::PortKind::Sink)
            .build()
            .unwrap();
        let cover = min_path_cover_ilp(&f, &PathIlpConfig::default()).unwrap();
        assert_eq!(cover.paths.len(), 1);
        assert_exact_cover(&f, &cover);
    }

    #[test]
    fn two_by_two_needs_two_paths() {
        let f = layouts::full_array(2, 2);
        let cover = min_path_cover_ilp(&f, &PathIlpConfig::default()).unwrap();
        // 4 valves, longest simple corner-to-corner path covers 3 of them.
        assert_eq!(cover.paths.len(), 2);
        assert_exact_cover(&f, &cover);
    }

    #[test]
    fn three_by_three_exact() {
        let f = layouts::full_array(3, 3);
        let cover = min_path_cover_ilp(&f, &PathIlpConfig::default()).unwrap();
        assert_exact_cover(&f, &cover);
        assert!(cover.paths.len() <= 3, "{} paths", cover.paths.len());
        for p in &cover.paths {
            let unique: std::collections::HashSet<_> = p.cells().iter().collect();
            assert_eq!(unique.len(), p.len(), "ILP path must be simple");
        }
    }

    #[test]
    fn channels_are_usable_but_not_covered() {
        let f = FpvaBuilder::new(1, 4)
            .channel_horizontal(0, 1, 2)
            .port(0, 0, Side::West, fpva_grid::PortKind::Source)
            .port(0, 3, Side::East, fpva_grid::PortKind::Sink)
            .build()
            .unwrap();
        assert_eq!(f.valve_count(), 2);
        let cover = min_path_cover_ilp(&f, &PathIlpConfig::default()).unwrap();
        assert_eq!(cover.paths.len(), 1);
        assert_exact_cover(&f, &cover);
    }

    #[test]
    fn expected_constraint_count_matches_generated_models() {
        for (fpva, k) in [
            (layouts::full_array(3, 3), 1),
            (layouts::full_array(4, 4), 2),
            (layouts::table1_5x5(), 2),
        ] {
            let model = cover_model(&fpva, k);
            assert_eq!(
                model.constraint_count(),
                expected_constraint_count(&fpva, k),
                "structural formula out of sync for k={k}"
            );
        }
    }

    #[test]
    fn valveless_array_needs_no_paths() {
        let f = FpvaBuilder::new(1, 2)
            .channel_horizontal(0, 0, 1)
            .port(0, 0, Side::West, fpva_grid::PortKind::Source)
            .port(0, 1, Side::East, fpva_grid::PortKind::Sink)
            .build()
            .unwrap();
        let cover = min_path_cover_ilp(&f, &PathIlpConfig::default()).unwrap();
        assert!(cover.paths.is_empty());
    }
}
