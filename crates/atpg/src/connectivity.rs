//! Graph utilities over the valve lattice: reachability and randomized
//! simple-path search. These are the workhorses behind the greedy path
//! cover, the leakage generator and cut-set validation.

use fpva_grid::{CellId, EdgeId, EdgeKind, Fpva, PortId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// Whether fluid could ever cross this edge on a fault-free chip (i.e. the
/// edge is a valve or an always-open channel site, not a wall).
pub fn edge_passable(fpva: &Fpva, edge: EdgeId) -> bool {
    fpva.edge_kind(edge) != EdgeKind::Wall
}

/// Resolves the source and sink ports whose cells are the endpoints of a
/// search result. [`path_through_edge`] routes between *arbitrary*
/// source/sink pairs, so callers must not assume the chip's first ports;
/// on multi-port chips that assumption rejects (or mis-labels) every path
/// that terminates elsewhere.
pub fn endpoint_ports(fpva: &Fpva, cells: &[CellId]) -> Option<(PortId, PortId)> {
    let first = *cells.first()?;
    let last = *cells.last()?;
    let source = fpva
        .sources()
        .find(|(_, p)| p.cell == first)
        .map(|(id, _)| id)?;
    let sink = fpva
        .sinks()
        .find(|(_, p)| p.cell == last)
        .map(|(id, _)| id)?;
    Some((source, sink))
}

/// Component id per cell (indexed by [`Fpva::cell_index`]) where cells
/// joined by always-open channel edges share a component. Cells outside
/// channels are singleton components.
///
/// Pressure spreads freely inside such a component, so a flow path that
/// visits one component in two separate stretches has an implicit bypass
/// loop through the channel — [`crate::FlowPath`] rejects that.
pub fn open_components(fpva: &Fpva) -> Vec<usize> {
    let mut comp = vec![usize::MAX; fpva.cell_count()];
    let mut next = 0usize;
    for cell in fpva.cells() {
        let ix = fpva.cell_index(cell);
        if comp[ix] != usize::MAX {
            continue;
        }
        comp[ix] = next;
        let mut queue = std::collections::VecDeque::from([cell]);
        while let Some(c) = queue.pop_front() {
            for (edge, n) in fpva.neighbors(c) {
                if fpva.edge_kind(edge) == EdgeKind::Open {
                    let ni = fpva.cell_index(n);
                    if comp[ni] == usize::MAX {
                        comp[ni] = next;
                        queue.push_back(n);
                    }
                }
            }
        }
        next += 1;
    }
    comp
}

/// Rewrites a simple path so that every open component is visited in one
/// contiguous run: between the first entry into a component and the last
/// exit from it, the detour outside is replaced by the in-component route
/// (always-open edges, so the replacement is physically equivalent — the
/// detour segment was a pressure bypass anyway). Returns the repaired
/// simple path.
pub fn repair_contiguity(fpva: &Fpva, components: &[usize], mut cells: Vec<CellId>) -> Vec<CellId> {
    'outer: loop {
        // Locate a component whose occurrences are non-contiguous.
        let comp_of = |c: CellId| components[fpva.cell_index(c)];
        for i in 0..cells.len() {
            let c = comp_of(cells[i]);
            let first = cells
                .iter()
                .position(|&x| comp_of(x) == c)
                .expect("present");
            if first < i {
                continue; // handled when scanning `first`
            }
            let last = cells
                .iter()
                .rposition(|&x| comp_of(x) == c)
                .expect("present");
            let gap = (first..=last).any(|k| comp_of(cells[k]) != c);
            if !gap {
                continue;
            }
            // Splice: prefix ..=first, in-component route, suffix last.. .
            let inner = path_within_component(fpva, components, c, cells[first], cells[last]);
            let mut repaired = cells[..first].to_vec();
            repaired.extend(inner);
            repaired.extend(cells[last + 1..].iter().copied());
            cells = repaired;
            continue 'outer;
        }
        return cells;
    }
}

/// BFS route between two cells of one open component using only the
/// component's always-open edges.
///
/// # Panics
///
/// Panics if the cells are not in component `comp` (components are
/// connected by construction, so a route always exists).
fn path_within_component(
    fpva: &Fpva,
    components: &[usize],
    comp: usize,
    from: CellId,
    to: CellId,
) -> Vec<CellId> {
    assert_eq!(components[fpva.cell_index(from)], comp);
    assert_eq!(components[fpva.cell_index(to)], comp);
    let mut prev: Vec<Option<CellId>> = vec![None; fpva.cell_count()];
    let mut seen = vec![false; fpva.cell_count()];
    seen[fpva.cell_index(from)] = true;
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(c) = queue.pop_front() {
        if c == to {
            let mut path = vec![c];
            let mut cur = c;
            while let Some(p) = prev[fpva.cell_index(cur)] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return path;
        }
        for (edge, n) in fpva.neighbors(c) {
            if fpva.edge_kind(edge) == EdgeKind::Open
                && components[fpva.cell_index(n)] == comp
                && !seen[fpva.cell_index(n)]
            {
                seen[fpva.cell_index(n)] = true;
                prev[fpva.cell_index(n)] = Some(c);
                queue.push_back(n);
            }
        }
    }
    panic!("open component {comp} is not connected");
}

/// Checks the channel-contiguity rule: the cells of every open component
/// appear as one contiguous run of `cells`.
pub fn components_contiguous(fpva: &Fpva, components: &[usize], cells: &[CellId]) -> bool {
    let mut closed: HashSet<usize> = HashSet::new();
    let mut current = usize::MAX;
    for &cell in cells {
        let c = components[fpva.cell_index(cell)];
        if c == current {
            continue;
        }
        if current != usize::MAX {
            closed.insert(current);
        }
        if closed.contains(&c) {
            return false;
        }
        current = c;
    }
    true
}

/// Cells of all source ports.
pub fn source_cells(fpva: &Fpva) -> Vec<CellId> {
    fpva.sources().map(|(_, p)| p.cell).collect()
}

/// Cells of all sink ports.
pub fn sink_cells(fpva: &Fpva) -> Vec<CellId> {
    fpva.sinks().map(|(_, p)| p.cell).collect()
}

/// BFS over passable edges, skipping `blocked` edges. Returns a
/// `cell_count()`-sized reachability mask.
pub fn reachable_from(fpva: &Fpva, starts: &[CellId], blocked: &HashSet<EdgeId>) -> Vec<bool> {
    let mut seen = vec![false; fpva.cell_count()];
    let mut queue = std::collections::VecDeque::new();
    for &s in starts {
        let ix = fpva.cell_index(s);
        if !seen[ix] {
            seen[ix] = true;
            queue.push_back(s);
        }
    }
    while let Some(cell) = queue.pop_front() {
        for (edge, next) in fpva.neighbors(cell) {
            if edge_passable(fpva, edge) && !blocked.contains(&edge) {
                let ix = fpva.cell_index(next);
                if !seen[ix] {
                    seen[ix] = true;
                    queue.push_back(next);
                }
            }
        }
    }
    seen
}

/// Randomized depth-first search for a simple path `start → goal` over
/// passable edges.
///
/// * `avoid` edges are never crossed;
/// * `visited` cells are never entered (the caller threads this through to
///   concatenate segments into one simple path); on success the cells of
///   the returned path are added to it;
/// * neighbour order is randomly shuffled but edges for which `prefer`
///   returns `true` are tried first — the greedy cover passes "edge's valve
///   still uncovered" here, which makes the search naturally serpentine
///   through unexplored array regions.
///
/// The search gives up after a work budget proportional to the array size
/// rather than backtracking exhaustively (which would be exponential when
/// the goal has been walled off); the caller retries with fresh
/// randomness instead.
///
/// Returns the cell sequence `start ..= goal`, or `None` when the search
/// exhausts its budget (the caller typically retries with fresh
/// randomness).
pub fn random_simple_path(
    fpva: &Fpva,
    start: CellId,
    goal: CellId,
    avoid: &HashSet<EdgeId>,
    visited: &mut HashSet<CellId>,
    prefer: &dyn Fn(EdgeId) -> bool,
    rng: &mut impl Rng,
) -> Option<Vec<CellId>> {
    if visited.contains(&start) {
        return None;
    }
    // Expansion budget: enough to walk the whole array with moderate
    // backtracking, but far below exponential enumeration.
    let mut budget = 16 * fpva.cell_count() + 64;
    // Cheap pre-check: is the goal even reachable around `visited`?
    {
        let mut seen = vec![false; fpva.cell_count()];
        let mut queue = std::collections::VecDeque::new();
        seen[fpva.cell_index(start)] = true;
        queue.push_back(start);
        let mut found = start == goal;
        while let Some(cell) = queue.pop_front() {
            if found {
                break;
            }
            for (edge, next) in fpva.neighbors(cell) {
                if edge_passable(fpva, edge)
                    && !avoid.contains(&edge)
                    && !visited.contains(&next)
                    && !seen[fpva.cell_index(next)]
                {
                    if next == goal {
                        found = true;
                        break;
                    }
                    seen[fpva.cell_index(next)] = true;
                    queue.push_back(next);
                }
            }
        }
        if !found {
            return None;
        }
    }
    // Iterative DFS: stack of (cell, remaining neighbour choices).
    let mut path: Vec<CellId> = vec![start];
    let mut choice_stack: Vec<Vec<(EdgeId, CellId)>> = Vec::new();
    visited.insert(start);
    let mut order_buffer: Vec<(EdgeId, CellId)> = Vec::new();

    let expand = |cell: CellId,
                  visited: &HashSet<CellId>,
                  rng: &mut dyn rand::RngCore,
                  buf: &mut Vec<(EdgeId, CellId)>| {
        buf.clear();
        for (edge, next) in fpva.neighbors(cell) {
            if edge_passable(fpva, edge) && !avoid.contains(&edge) && !visited.contains(&next) {
                buf.push((edge, next));
            }
        }
        buf.shuffle(rng);
        // Stable partition: preferred edges first (tried last-in-first-out,
        // so push preferred LAST).
        buf.sort_by_key(|&(e, _)| prefer(e));
    };

    if start == goal {
        return Some(path);
    }
    expand(start, visited, rng, &mut order_buffer);
    choice_stack.push(order_buffer.clone());

    while let Some(choices) = choice_stack.last_mut() {
        if budget == 0 {
            // Unwind whatever this attempt consumed and give up.
            for cell in path {
                visited.remove(&cell);
            }
            return None;
        }
        budget -= 1;
        let Some((_, next)) = choices.pop() else {
            // Backtrack.
            let dead = path.pop().expect("path nonempty while stack nonempty");
            visited.remove(&dead);
            choice_stack.pop();
            continue;
        };
        if visited.contains(&next) {
            continue;
        }
        visited.insert(next);
        path.push(next);
        if next == goal {
            return Some(path);
        }
        expand(next, visited, rng, &mut order_buffer);
        choice_stack.push(order_buffer.clone());
    }
    None
}

/// Searches for a simple source→sink path crossing `edge`, avoiding the
/// `avoid` edges. Tries both orientations of `edge` and up to `tries`
/// random restarts.
///
/// Returns the cell sequence (first cell = a source-port cell, last = a
/// sink-port cell), or `None` when no attempt succeeds — which, after
/// enough tries on these well-connected lattices, is strong evidence the
/// valve cannot lie on any simple source→sink path.
pub fn path_through_edge(
    fpva: &Fpva,
    edge: EdgeId,
    avoid: &HashSet<EdgeId>,
    prefer: &dyn Fn(EdgeId) -> bool,
    rng: &mut impl Rng,
    tries: usize,
) -> Option<Vec<CellId>> {
    if !edge_passable(fpva, edge) || avoid.contains(&edge) {
        return None;
    }
    let sources = source_cells(fpva);
    let sinks = sink_cells(fpva);
    let (a, b) = edge.endpoints();
    for attempt in 0..tries {
        let (u, v) = if attempt % 2 == 0 { (a, b) } else { (b, a) };
        let src = sources[rng.gen_range(0..sources.len())];
        let snk = sinks[rng.gen_range(0..sinks.len())];
        let mut visited: HashSet<CellId> = HashSet::new();
        // Segment 1: source -> u (must not consume v, or the path could
        // not continue across the edge).
        visited.insert(v);
        let Some(seg1) = random_simple_path(fpva, src, u, avoid, &mut visited, prefer, rng) else {
            continue;
        };
        visited.remove(&v);
        // Segment 2: v -> sink, avoiding everything segment 1 used.
        let Some(seg2) = random_simple_path(fpva, v, snk, avoid, &mut visited, prefer, rng) else {
            continue;
        };
        let mut cells = seg1;
        cells.extend(seg2);
        // Channel-bypass repair: splice out detours that re-enter an open
        // component. The repair may remove the requested edge, in which
        // case this attempt failed and the next one re-randomises.
        let comps = open_components(fpva);
        if !components_contiguous(fpva, &comps, &cells) {
            cells = repair_contiguity(fpva, &comps, cells);
        }
        let crosses = cells
            .windows(2)
            .any(|w| fpva.edge_between(w[0], w[1]) == Some(edge));
        if !crosses {
            continue;
        }
        debug_assert!(components_contiguous(fpva, &comps, &cells));
        return Some(cells);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpva_grid::{layouts, FpvaBuilder, PortKind, Side};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reachability_full_grid() {
        let f = layouts::full_array(3, 3);
        let seen = reachable_from(&f, &[CellId::new(0, 0)], &HashSet::new());
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn reachability_respects_blocked_edges() {
        let f = layouts::full_array(1, 3);
        let blocked: HashSet<EdgeId> = [EdgeId::horizontal(0, 1)].into_iter().collect();
        let seen = reachable_from(&f, &[CellId::new(0, 0)], &blocked);
        assert!(seen[f.cell_index(CellId::new(0, 1))]);
        assert!(!seen[f.cell_index(CellId::new(0, 2))]);
    }

    #[test]
    fn obstacles_block_reachability() {
        let f = FpvaBuilder::new(3, 3)
            .obstacle(0, 1, 2, 1)
            .port(0, 0, Side::West, PortKind::Source)
            .port(2, 2, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        let seen = reachable_from(&f, &[CellId::new(0, 0)], &HashSet::new());
        assert!(
            !seen[f.cell_index(CellId::new(0, 2))],
            "obstacle column splits the array"
        );
    }

    #[test]
    fn random_path_reaches_goal_and_is_simple() {
        let f = layouts::full_array(4, 4);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let mut visited = HashSet::new();
            let path = random_simple_path(
                &f,
                CellId::new(0, 0),
                CellId::new(3, 3),
                &HashSet::new(),
                &mut visited,
                &|_| false,
                &mut rng,
            )
            .expect("full grid is connected");
            assert_eq!(path[0], CellId::new(0, 0));
            assert_eq!(*path.last().unwrap(), CellId::new(3, 3));
            let unique: HashSet<_> = path.iter().collect();
            assert_eq!(unique.len(), path.len(), "path must be simple");
            for w in path.windows(2) {
                assert!(f.edge_between(w[0], w[1]).is_some());
            }
        }
    }

    #[test]
    fn path_through_every_edge_of_small_grid() {
        let f = layouts::full_array(3, 3);
        let mut rng = StdRng::seed_from_u64(11);
        for (_, edge) in f.valves() {
            let cells = path_through_edge(&f, edge, &HashSet::new(), &|_| false, &mut rng, 64)
                .unwrap_or_else(|| panic!("no path through {edge}"));
            let crossed = cells
                .windows(2)
                .any(|w| f.edge_between(w[0], w[1]) == Some(edge));
            assert!(crossed, "returned path skips the requested edge {edge}");
        }
    }

    #[test]
    fn path_through_edge_respects_avoid() {
        let f = layouts::full_array(1, 3);
        let mut rng = StdRng::seed_from_u64(5);
        // A 1x3 pipeline: avoiding edge 0 makes edge 1 unreachable.
        let avoid: HashSet<EdgeId> = [EdgeId::horizontal(0, 0)].into_iter().collect();
        let got = path_through_edge(
            &f,
            EdgeId::horizontal(0, 1),
            &avoid,
            &|_| false,
            &mut rng,
            16,
        );
        assert!(got.is_none());
    }

    #[test]
    fn open_components_group_channel_cells() {
        let f = FpvaBuilder::new(3, 4)
            .channel_horizontal(1, 0, 2)
            .port(0, 0, Side::North, PortKind::Source)
            .port(2, 3, Side::South, PortKind::Sink)
            .build()
            .unwrap();
        let comps = open_components(&f);
        let id = |r, c| comps[f.cell_index(CellId::new(r, c))];
        assert_eq!(id(1, 0), id(1, 1));
        assert_eq!(id(1, 1), id(1, 2));
        assert_ne!(id(1, 0), id(1, 3));
        assert_ne!(id(0, 0), id(1, 0));
        // Singleton components are all distinct.
        assert_ne!(id(0, 0), id(0, 1));
    }

    #[test]
    fn contiguity_rule_accepts_single_pass() {
        let f = FpvaBuilder::new(3, 4)
            .channel_horizontal(1, 0, 2)
            .port(0, 0, Side::North, PortKind::Source)
            .port(2, 3, Side::South, PortKind::Sink)
            .build()
            .unwrap();
        let comps = open_components(&f);
        // Straight pass through the channel: fine.
        let pass: Vec<CellId> = vec![
            CellId::new(0, 0),
            CellId::new(1, 0),
            CellId::new(1, 1),
            CellId::new(2, 1),
        ];
        assert!(components_contiguous(&f, &comps, &pass));
        // Leave the channel and come back: bypass loop, rejected.
        let reenter: Vec<CellId> = vec![
            CellId::new(1, 0),
            CellId::new(0, 0),
            CellId::new(0, 1),
            CellId::new(1, 1),
        ];
        assert!(!components_contiguous(&f, &comps, &reenter));
    }

    #[test]
    fn path_through_edge_respects_channel_contiguity() {
        use rand::SeedableRng;
        // Vertical channel: paths crossing it twice are rejected, so every
        // returned path must be contiguous per component.
        let f = FpvaBuilder::new(5, 5)
            .channel_vertical(2, 1, 3)
            .port(0, 0, Side::West, PortKind::Source)
            .port(4, 4, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        let comps = open_components(&f);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for (_, edge) in f.valves() {
            if let Some(cells) =
                path_through_edge(&f, edge, &HashSet::new(), &|_| false, &mut rng, 64)
            {
                assert!(
                    components_contiguous(&f, &comps, &cells),
                    "path through {edge} re-enters the channel"
                );
            }
        }
    }

    #[test]
    fn preference_biases_first_steps() {
        // With a strong preference for uncovered (here: vertical) edges the
        // first move from the corner should be south rather than east.
        let f = layouts::full_array(3, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut visited = HashSet::new();
        let path = random_simple_path(
            &f,
            CellId::new(0, 0),
            CellId::new(2, 2),
            &HashSet::new(),
            &mut visited,
            &|e| e.axis == fpva_grid::Axis::Vertical,
            &mut rng,
        )
        .unwrap();
        assert_eq!(
            path[1],
            CellId::new(1, 0),
            "preferred (vertical) edge tried first"
        );
    }
}
