//! Simple source→sink flow paths (Section III-A/B of the paper).

use crate::error::AtpgError;
use fpva_grid::{
    CellId, EdgeId, EdgeKind, Fpva, PortId, PortKind, TestVector, ValveId, ValveState,
};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A *flow path*: a simple (loop- and branch-free) sequence of cells from a
/// source port to a sink port.
///
/// Opening exactly the valves along one flow path and closing everything
/// else yields a test vector whose fault-free response shows pressure at
/// the path's sink; a stuck-at-0 valve on the path removes that pressure.
/// Simplicity matters: a second parallel route would mask the fault
/// (paper's Fig. 5(a)), which is why paths are validated to be simple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowPath {
    source: PortId,
    sink: PortId,
    cells: Vec<CellId>,
}

impl FlowPath {
    /// Builds and validates a flow path.
    ///
    /// # Errors
    ///
    /// Returns [`AtpgError::InvalidPath`] unless all of the following hold:
    /// the cell list is non-empty and free of repetitions; the first cell
    /// carries source port `source` and the last carries sink port `sink`;
    /// consecutive cells are orthogonally adjacent; and no traversed edge
    /// is a wall.
    pub fn new(
        fpva: &Fpva,
        source: PortId,
        sink: PortId,
        cells: Vec<CellId>,
    ) -> Result<Self, AtpgError> {
        let invalid = |reason: String| AtpgError::InvalidPath { reason };
        if cells.is_empty() {
            return Err(invalid("empty cell list".into()));
        }
        let src_port = fpva.port(source);
        let snk_port = fpva.port(sink);
        if src_port.kind != PortKind::Source {
            return Err(invalid(format!("port {source} is not a source")));
        }
        if snk_port.kind != PortKind::Sink {
            return Err(invalid(format!("port {sink} is not a sink")));
        }
        if cells[0] != src_port.cell {
            return Err(invalid(format!(
                "path starts at {} but source port opens into {}",
                cells[0], src_port.cell
            )));
        }
        if *cells.last().expect("non-empty") != snk_port.cell {
            return Err(invalid(format!(
                "path ends at {} but sink port opens into {}",
                cells.last().expect("non-empty"),
                snk_port.cell
            )));
        }
        let mut seen = HashSet::with_capacity(cells.len());
        for &c in &cells {
            if c.row >= fpva.rows() || c.col >= fpva.cols() {
                return Err(invalid(format!("cell {c} outside the array")));
            }
            if !seen.insert(c) {
                return Err(invalid(format!("cell {c} repeats; path must be simple")));
            }
        }
        for pair in cells.windows(2) {
            let Some(edge) = fpva.edge_between(pair[0], pair[1]) else {
                return Err(invalid(format!(
                    "cells {} and {} are not adjacent",
                    pair[0], pair[1]
                )));
            };
            if fpva.edge_kind(edge) == EdgeKind::Wall {
                return Err(invalid(format!("edge {edge} is a wall")));
            }
        }
        // Channel contiguity: pressure spreads freely through always-open
        // channel sites, so revisiting a channel component after leaving it
        // creates an implicit loop that can mask stuck-at-0 faults on the
        // path (the same interference the paper's Fig. 5(a) forbids).
        let comps = crate::connectivity::open_components(fpva);
        if !crate::connectivity::components_contiguous(fpva, &comps, &cells) {
            return Err(invalid(
                "path re-enters a transportation channel, creating a pressure bypass loop".into(),
            ));
        }
        Ok(FlowPath {
            source,
            sink,
            cells,
        })
    }

    /// The source port the path starts from.
    pub fn source(&self) -> PortId {
        self.source
    }

    /// The sink port the path ends at.
    pub fn sink(&self) -> PortId {
        self.sink
    }

    /// The cells visited, source end first.
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Number of cells on the path.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` for a single-cell path (source and sink on the same cell).
    pub fn is_empty(&self) -> bool {
        false // a validated path always has at least one cell
    }

    /// The lattice edges traversed, in order.
    pub fn edges(&self, fpva: &Fpva) -> Vec<EdgeId> {
        self.cells
            .windows(2)
            .map(|p| fpva.edge_between(p[0], p[1]).expect("validated adjacency"))
            .collect()
    }

    /// The real valves traversed (edges of kind `Valve`), in order.
    /// Channel edges on the path carry no valve and are skipped.
    pub fn valves(&self, fpva: &Fpva) -> Vec<ValveId> {
        self.edges(fpva)
            .into_iter()
            .filter_map(|e| fpva.valve_at(e))
            .collect()
    }

    /// The test vector realising this path: path valves open, every other
    /// valve closed.
    pub fn to_vector(&self, fpva: &Fpva) -> TestVector {
        let mut v = TestVector::all_closed(fpva.valve_count());
        for valve in self.valves(fpva) {
            v.set(valve, ValveState::Open);
        }
        v
    }

    /// Whether the path passes through the given valve.
    pub fn covers(&self, fpva: &Fpva, valve: ValveId) -> bool {
        let edge = fpva.edge_of(valve);
        self.cells
            .windows(2)
            .any(|p| fpva.edge_between(p[0], p[1]) == Some(edge))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpva_grid::{layouts, FpvaBuilder, Side};

    fn grid3() -> Fpva {
        layouts::full_array(3, 3)
    }

    fn ports(f: &Fpva) -> (PortId, PortId) {
        let src = f.sources().next().unwrap().0;
        let snk = f.sinks().next().unwrap().0;
        (src, snk)
    }

    fn cells(spec: &[(usize, usize)]) -> Vec<CellId> {
        spec.iter().map(|&(r, c)| CellId::new(r, c)).collect()
    }

    #[test]
    fn straight_diagonal_path() {
        let f = grid3();
        let (src, snk) = ports(&f);
        let p = FlowPath::new(
            &f,
            src,
            snk,
            cells(&[(0, 0), (0, 1), (1, 1), (2, 1), (2, 2)]),
        )
        .expect("valid path");
        assert_eq!(p.len(), 5);
        assert_eq!(p.edges(&f).len(), 4);
        assert_eq!(p.valves(&f).len(), 4);
        let vec = p.to_vector(&f);
        assert_eq!(vec.open_count(), 4);
        assert!(p.covers(&f, p.valves(&f)[0]));
    }

    #[test]
    fn rejects_wrong_endpoints() {
        let f = grid3();
        let (src, snk) = ports(&f);
        let err = FlowPath::new(&f, src, snk, cells(&[(0, 1), (0, 2)])).unwrap_err();
        assert!(matches!(err, AtpgError::InvalidPath { .. }));
        let err = FlowPath::new(&f, src, snk, cells(&[(0, 0), (0, 1)])).unwrap_err();
        assert!(matches!(err, AtpgError::InvalidPath { .. }));
    }

    #[test]
    fn rejects_repeats_and_gaps() {
        let f = grid3();
        let (src, snk) = ports(&f);
        // Repetition.
        let err = FlowPath::new(
            &f,
            src,
            snk,
            cells(&[(0, 0), (0, 1), (0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]),
        )
        .unwrap_err();
        assert!(matches!(err, AtpgError::InvalidPath { .. }));
        // Gap (diagonal step).
        let err = FlowPath::new(&f, src, snk, cells(&[(0, 0), (1, 1), (2, 2)])).unwrap_err();
        assert!(matches!(err, AtpgError::InvalidPath { .. }));
    }

    #[test]
    fn rejects_wall_edges() {
        let f = FpvaBuilder::new(1, 3)
            .obstacle(0, 1, 0, 1)
            .port(0, 0, Side::West, fpva_grid::PortKind::Source)
            .port(0, 2, Side::East, fpva_grid::PortKind::Sink)
            .build()
            .unwrap();
        let (src, snk) = ports(&f);
        let err = FlowPath::new(&f, src, snk, cells(&[(0, 0), (0, 1), (0, 2)])).unwrap_err();
        assert!(matches!(err, AtpgError::InvalidPath { .. }));
    }

    #[test]
    fn channel_edges_carry_no_valves() {
        let f = FpvaBuilder::new(1, 4)
            .channel_horizontal(0, 1, 2)
            .port(0, 0, Side::West, fpva_grid::PortKind::Source)
            .port(0, 3, Side::East, fpva_grid::PortKind::Sink)
            .build()
            .unwrap();
        let (src, snk) = ports(&f);
        let p = FlowPath::new(&f, src, snk, cells(&[(0, 0), (0, 1), (0, 2), (0, 3)])).unwrap();
        assert_eq!(p.edges(&f).len(), 3);
        assert_eq!(p.valves(&f).len(), 2, "the channel edge carries no valve");
    }

    #[test]
    fn single_cell_path_when_ports_share_cell() {
        let f = FpvaBuilder::new(1, 1)
            .port(0, 0, Side::West, fpva_grid::PortKind::Source)
            .port(0, 0, Side::East, fpva_grid::PortKind::Sink)
            .build()
            .unwrap();
        let (src, snk) = ports(&f);
        let p = FlowPath::new(&f, src, snk, cells(&[(0, 0)])).unwrap();
        assert_eq!(p.len(), 1);
        assert!(p.valves(&f).is_empty());
        assert!(!p.is_empty());
    }

    #[test]
    fn source_sink_port_roles_enforced() {
        let f = grid3();
        let (src, snk) = ports(&f);
        let err = FlowPath::new(&f, snk, src, cells(&[(2, 2), (0, 0)])).unwrap_err();
        assert!(matches!(err, AtpgError::InvalidPath { .. }));
    }
}
