//! Cut-set generation (Section III-C of the paper).
//!
//! A *cut-set* is a set of valves whose simultaneous closure separates all
//! source ports from all sink ports; if a pressure meter still reads
//! pressure while a cut-set is closed, some valve is stuck-at-1. Cut-sets
//! start and end at the chip boundary (paper's observation in Fig. 7(d)).
//!
//! Geometrically a cut-set is a **path in the dual lattice**: a curve of
//! corner points crossing valve sites. On the corner-port Table I arrays,
//! straight vertical/horizontal grid lines are valid cuts — yielding
//! exactly the paper's `n_c = (rows − 1) + (cols − 1)` counts — and when a
//! transportation channel crosses a line (the channel site cannot be
//! closed), the dual search detours around it.
//!
//! The two-fault masking pattern of the paper's Fig. 5(c)/(d) is excluded
//! per constraint (9): whenever both dual endpoints of a valve lie on the
//! cut curve, that valve must itself join the cut-set — otherwise one
//! stuck-at-0 fault at that valve could "repair" the cut and mask a
//! stuck-at-1 inside it.

use crate::connectivity::{reachable_from, sink_cells, source_cells};
use crate::error::AtpgError;
use fpva_grid::{Axis, CellId, EdgeId, EdgeKind, Fpva, TestVector, ValveId, ValveState};
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};

/// A validated cut-set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CutSet {
    valves: Vec<ValveId>,
}

impl CutSet {
    /// Builds a cut-set after checking that closing `valves` (on an
    /// otherwise all-open chip) disconnects every source port from every
    /// sink port.
    ///
    /// # Errors
    ///
    /// [`AtpgError::NotSeparating`] when some sink is still reachable.
    pub fn new(fpva: &Fpva, mut valves: Vec<ValveId>) -> Result<Self, AtpgError> {
        valves.sort_unstable();
        valves.dedup();
        let blocked: HashSet<EdgeId> = valves.iter().map(|&v| fpva.edge_of(v)).collect();
        let reach = reachable_from(fpva, &source_cells(fpva), &blocked);
        for sink in sink_cells(fpva) {
            if reach[fpva.cell_index(sink)] {
                return Err(AtpgError::NotSeparating { reached_sink: sink });
            }
        }
        Ok(CutSet { valves })
    }

    /// The valves of the cut, ascending.
    pub fn valves(&self) -> &[ValveId] {
        &self.valves
    }

    /// Number of valves in the cut.
    pub fn len(&self) -> usize {
        self.valves.len()
    }

    /// `true` when the cut has no valves (possible when walls alone already
    /// separate the ports).
    pub fn is_empty(&self) -> bool {
        self.valves.is_empty()
    }

    /// The test vector realising the cut: cut valves closed, every other
    /// valve open.
    pub fn to_vector(&self, fpva: &Fpva) -> TestVector {
        let mut v = TestVector::all_open(fpva.valve_count());
        for &valve in &self.valves {
            v.set(valve, ValveState::Closed);
        }
        v
    }

    /// Whether the cut contains `valve`.
    pub fn covers(&self, valve: ValveId) -> bool {
        self.valves.binary_search(&valve).is_ok()
    }
}

/// A corner point of the lattice: `(i, j)` with `0 ≤ i ≤ rows`,
/// `0 ≤ j ≤ cols`.
type Corner = (usize, usize);

/// The lattice edge crossed when the cut curve moves between two adjacent
/// corners, or `None` for moves along the chip boundary.
fn crossing(fpva: &Fpva, a: Corner, b: Corner) -> Option<EdgeId> {
    let (rows, cols) = (fpva.rows(), fpva.cols());
    let ((i0, j0), (i1, j1)) = if a <= b { (a, b) } else { (b, a) };
    if j0 == j1 && i1 == i0 + 1 {
        // Vertical move at column boundary j0: crosses H(i0, j0-1).
        if j0 >= 1 && j0 < cols {
            Some(EdgeId::horizontal(i0, j0 - 1))
        } else {
            None
        }
    } else if i0 == i1 && j1 == j0 + 1 {
        // Horizontal move at row boundary i0: crosses V(i0-1, j0).
        if i0 >= 1 && i0 < rows {
            Some(EdgeId::vertical(i0 - 1, j0))
        } else {
            None
        }
    } else {
        None
    }
}

fn corner_neighbors(fpva: &Fpva, c: Corner) -> Vec<Corner> {
    let (rows, cols) = (fpva.rows(), fpva.cols());
    let mut out = Vec::with_capacity(4);
    if c.0 > 0 {
        out.push((c.0 - 1, c.1));
    }
    if c.0 < rows {
        out.push((c.0 + 1, c.1));
    }
    if c.1 > 0 {
        out.push((c.0, c.1 - 1));
    }
    if c.1 < cols {
        out.push((c.0, c.1 + 1));
    }
    out
}

/// May the cut curve take this move? Boundary moves are free; interior
/// moves must cross a closable site (a valve) or an existing wall — never
/// an always-open channel site.
fn move_allowed(fpva: &Fpva, a: Corner, b: Corner) -> bool {
    match crossing(fpva, a, b) {
        None => true,
        Some(edge) => fpva.edge_kind(edge) != EdgeKind::Open,
    }
}

/// Dijkstra in the dual lattice from `start` to the exact corner `goal`,
/// with per-move costs from `cost`. Used for the straight-line cuts: moves
/// off the intended grid line are penalised so a channel produces a *local*
/// detour around its end instead of sliding the whole curve onto the
/// neighbouring line (which would collapse two cuts into one).
fn dual_dijkstra(
    fpva: &Fpva,
    start: Corner,
    goal: Corner,
    cost: impl Fn(Corner, Corner) -> usize,
) -> Option<Vec<Corner>> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let cols = fpva.cols() + 1;
    let index = |c: Corner| c.0 * cols + c.1;
    let n = (fpva.rows() + 1) * cols;
    let mut dist = vec![usize::MAX; n];
    let mut prev: Vec<Option<Corner>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[index(start)] = 0;
    heap.push(Reverse((0usize, start)));
    while let Some(Reverse((d, c))) = heap.pop() {
        if c == goal {
            let mut path = vec![c];
            let mut cur = c;
            while let Some(p) = prev[index(cur)] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        if d > dist[index(c)] {
            continue;
        }
        for nb in corner_neighbors(fpva, c) {
            if !move_allowed(fpva, c, nb) {
                continue;
            }
            let nd = d + cost(c, nb);
            if nd < dist[index(nb)] {
                dist[index(nb)] = nd;
                prev[index(nb)] = Some(c);
                heap.push(Reverse((nd, nb)));
            }
        }
    }
    None
}

/// BFS in the dual lattice from `start` to `goal`, avoiding `forbidden`
/// corners. Returns the corner sequence.
fn dual_bfs(
    fpva: &Fpva,
    start: Corner,
    goal: impl Fn(Corner) -> bool,
    forbidden: &HashSet<Corner>,
) -> Option<Vec<Corner>> {
    if forbidden.contains(&start) {
        return None;
    }
    let cols = fpva.cols() + 1;
    let index = |c: Corner| c.0 * cols + c.1;
    let mut prev: Vec<Option<Corner>> = vec![None; (fpva.rows() + 1) * cols];
    let mut seen = vec![false; (fpva.rows() + 1) * cols];
    let mut queue = VecDeque::new();
    seen[index(start)] = true;
    queue.push_back(start);
    while let Some(c) = queue.pop_front() {
        if goal(c) {
            let mut path = vec![c];
            let mut cur = c;
            while let Some(p) = prev[index(cur)] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for n in corner_neighbors(fpva, c) {
            if !seen[index(n)] && !forbidden.contains(&n) && move_allowed(fpva, c, n) {
                seen[index(n)] = true;
                prev[index(n)] = Some(c);
                queue.push_back(n);
            }
        }
    }
    None
}

fn crossed_valves(fpva: &Fpva, corners: &[Corner]) -> Vec<ValveId> {
    corners
        .windows(2)
        .filter_map(|w| crossing(fpva, w[0], w[1]))
        .filter_map(|e| fpva.valve_at(e))
        .collect()
}

/// Applies the paper's constraint (9) to a cut curve: every valve whose
/// *both* dual endpoints lie on the curve is added to the returned valve
/// set, so that no single stuck-at-0 valve can re-form the cut and mask a
/// stuck-at-1 inside it (Fig. 5(c)/(d)).
fn apply_masking_constraint(fpva: &Fpva, corners: &[Corner], valves: &mut Vec<ValveId>) {
    let on_curve: HashSet<Corner> = corners.iter().copied().collect();
    for (valve, edge) in fpva.valves() {
        if valves.contains(&valve) {
            continue;
        }
        let (p, q) = dual_endpoints(edge);
        if on_curve.contains(&p) && on_curve.contains(&q) {
            valves.push(valve);
        }
    }
}

/// The two corner points bounding a lattice edge's crossing segment.
fn dual_endpoints(edge: EdgeId) -> (Corner, Corner) {
    let CellId { row, col } = edge.cell;
    match edge.axis {
        // H(r, c) separates cells (r,c)/(r,c+1): segment at column boundary
        // c+1 from corner (r, c+1) to (r+1, c+1).
        Axis::Horizontal => ((row, col + 1), (row + 1, col + 1)),
        // V(r, c): segment at row boundary r+1 from (r+1, c) to (r+1, c+1).
        Axis::Vertical => ((row + 1, col), (row + 1, col + 1)),
    }
}

/// Valves of a cut curve that violate constraint (9) — used by tests and
/// audits; the generators below always repair violations instead.
pub fn masking_violations(fpva: &Fpva, cut: &CutSet, curve: &[Corner]) -> Vec<ValveId> {
    let on_curve: HashSet<Corner> = curve.iter().copied().collect();
    fpva.valves()
        .filter(|&(v, edge)| {
            if cut.covers(v) {
                return false;
            }
            let (p, q) = dual_endpoints(edge);
            on_curve.contains(&p) && on_curve.contains(&q)
        })
        .map(|(v, _)| v)
        .collect()
}

/// Generates the straight-line cut family: one cut per interior column
/// boundary (vertical lines) and one per interior row boundary (horizontal
/// lines), with dual-lattice detours around channels and the constraint-(9)
/// repair applied. Degenerate curves that fail to separate are dropped.
///
/// On the Table I arrays this produces exactly
/// `(rows − 1) + (cols − 1)` cut-sets — the paper's `n_c` column.
pub fn straight_line_cuts(fpva: &Fpva) -> Result<Vec<CutSet>, AtpgError> {
    if fpva.sources().next().is_none() || fpva.sinks().next().is_none() {
        return Err(AtpgError::MissingPorts);
    }
    let (rows, cols) = (fpva.rows(), fpva.cols());
    let mut cuts: Vec<CutSet> = Vec::new();
    let mut seen: HashSet<Vec<ValveId>> = HashSet::new();
    let mut push_curve = |curve: Option<Vec<Corner>>| {
        let Some(curve) = curve else { return };
        let mut valves = crossed_valves(fpva, &curve);
        apply_masking_constraint(fpva, &curve, &mut valves);
        if let Ok(cut) = CutSet::new(fpva, valves) {
            if seen.insert(cut.valves().to_vec()) {
                cuts.push(cut);
            }
        }
    };
    for j in 1..cols {
        // Vertical moves on the intended column boundary cost 1,
        // everything else 2 (keeps detours local).
        let cost = move |a: Corner, b: Corner| -> usize {
            if a.1 == j && b.1 == j {
                1
            } else {
                2
            }
        };
        push_curve(dual_dijkstra(fpva, (0, j), (rows, j), cost));
    }
    for i in 1..rows {
        let cost = move |a: Corner, b: Corner| -> usize {
            if a.0 == i && b.0 == i {
                1
            } else {
                2
            }
        };
        push_curve(dual_dijkstra(fpva, (i, 0), (i, cols), cost));
    }
    Ok(cuts)
}

/// A cut forced through the given valve's dual segment: the curve runs
/// from one endpoint of the segment to the chip boundary, and from the
/// other endpoint to the boundary avoiding the first half. Used to cover
/// valves the straight-line family misses.
pub fn cut_through_valve(fpva: &Fpva, valve: ValveId) -> Option<CutSet> {
    let (rows, cols) = (fpva.rows(), fpva.cols());
    let edge = fpva.edge_of(valve);
    let (p, q) = dual_endpoints(edge);
    // The curve must leave sources and sinks on opposite sides; which pair
    // of boundary sides achieves that depends on the port placement, so
    // probe all combinations and keep the first separating curve.
    type SideGoal = fn(Corner, usize, usize) -> bool;
    let sides: [SideGoal; 4] = [
        |c, _, _| c.0 == 0,
        |c, rows, _| c.0 == rows,
        |c, _, _| c.1 == 0,
        |c, _, cols| c.1 == cols,
    ];
    for g1 in sides {
        for g2 in sides {
            let mut forbidden: HashSet<Corner> = HashSet::new();
            forbidden.insert(q);
            let Some(half1) = dual_bfs(fpva, p, |c| g1(c, rows, cols), &forbidden) else {
                continue;
            };
            forbidden.remove(&q);
            forbidden.extend(half1.iter().copied());
            let Some(half2) = dual_bfs(fpva, q, |c| g2(c, rows, cols), &forbidden) else {
                continue;
            };
            // Assemble: boundary <- half1 reversed, p, q, half2 -> boundary.
            let mut curve: Vec<Corner> = half1.into_iter().rev().collect();
            curve.extend(half2);
            let mut valves = crossed_valves(fpva, &curve);
            valves.push(valve);
            apply_masking_constraint(fpva, &curve, &mut valves);
            let Ok(cut) = CutSet::new(fpva, valves) else {
                continue;
            };
            // The cut must be *minimal through `valve`*: a stuck-at-1 at
            // `valve` is only observable if opening it alone reconnects a
            // source to a sink. Otherwise try the next curve shape.
            let blocked: HashSet<EdgeId> = cut
                .valves()
                .iter()
                .filter(|&&v| v != valve)
                .map(|&v| fpva.edge_of(v))
                .collect();
            let reach = reachable_from(fpva, &source_cells(fpva), &blocked);
            let reconnects = sink_cells(fpva).iter().any(|&s| reach[fpva.cell_index(s)]);
            if reconnects {
                return Some(cut);
            }
        }
    }
    None
}

/// Result of [`cut_cover`].
#[derive(Debug, Clone)]
pub struct CutCover {
    /// The generated cut-sets.
    pub cuts: Vec<CutSet>,
    /// Valves in no cut-set (their stuck-at-1 fault is untestable by
    /// cut vectors); empty on the paper's layouts.
    pub uncovered: Vec<ValveId>,
}

impl CutCover {
    /// `true` when every valve is in at least one cut.
    pub fn is_complete(&self) -> bool {
        self.uncovered.is_empty()
    }
}

/// Valves of `cut` whose stuck-at-1 fault the cut vector *exposes*:
/// opening that valve alone (everything else as commanded) reconnects a
/// source to a sink. Valves the cut merely contains redundantly (e.g.
/// added by the constraint-(9) repair) are not exposed by it.
pub fn exposed_valves(fpva: &Fpva, cut: &CutSet) -> Vec<ValveId> {
    let sources = source_cells(fpva);
    let sinks = sink_cells(fpva);
    cut.valves()
        .iter()
        .copied()
        .filter(|&v| {
            let blocked: HashSet<EdgeId> = cut
                .valves()
                .iter()
                .filter(|&&w| w != v)
                .map(|&w| fpva.edge_of(w))
                .collect();
            let reach = reachable_from(fpva, &sources, &blocked);
            sinks.iter().any(|&s| reach[fpva.cell_index(s)])
        })
        .collect()
}

/// The full cut-set generator: straight-line cuts plus targeted cuts for
/// any valve whose stuck-at-1 fault the lines do not *expose* (membership
/// in a cut is not enough — see [`exposed_valves`]).
///
/// # Errors
///
/// Returns [`AtpgError::MissingPorts`] when the array lacks ports.
pub fn cut_cover(fpva: &Fpva) -> Result<CutCover, AtpgError> {
    let mut cuts = straight_line_cuts(fpva)?;
    let mut exposed = vec![false; fpva.valve_count()];
    for cut in &cuts {
        for v in exposed_valves(fpva, cut) {
            exposed[v.index()] = true;
        }
    }
    let mut uncovered = Vec::new();
    for (v, _) in fpva.valves() {
        if !exposed[v.index()] {
            if let Some(cut) = cut_through_valve(fpva, v) {
                // cut_through_valve guarantees minimality through `v`.
                exposed[v.index()] = true;
                for w in exposed_valves(fpva, &cut) {
                    exposed[w.index()] = true;
                }
                cuts.push(cut);
            } else {
                uncovered.push(v);
            }
        }
    }
    Ok(CutCover { cuts, uncovered })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpva_grid::{layouts, FpvaBuilder, PortKind, Side};

    #[test]
    fn straight_cut_counts_match_table1() {
        for entry in layouts::table1() {
            let cuts = straight_line_cuts(&entry.fpva).unwrap();
            assert_eq!(
                cuts.len(),
                entry.paper_cut_sets,
                "{}: cut count deviates from Table I",
                entry.name
            );
        }
    }

    #[test]
    fn cuts_cover_every_valve_on_table1_arrays() {
        for entry in layouts::table1() {
            let cover = cut_cover(&entry.fpva).unwrap();
            assert!(
                cover.is_complete(),
                "{}: uncovered {:?}",
                entry.name,
                cover.uncovered
            );
        }
    }

    #[test]
    fn cut_vectors_block_all_pressure() {
        use fpva_sim::{respond, FaultSet};
        let f = layouts::table1_5x5();
        for cut in straight_line_cuts(&f).unwrap() {
            let vec = cut.to_vector(&f);
            let r = respond(&f, &vec, &FaultSet::new());
            assert!(!r.any_pressure(), "cut {:?} leaks", cut.valves());
        }
    }

    #[test]
    fn invalid_cut_rejected() {
        let f = layouts::full_array(3, 3);
        // A single valve never separates a 3x3 grid.
        let err = CutSet::new(&f, vec![ValveId(0)]).unwrap_err();
        assert!(matches!(err, AtpgError::NotSeparating { .. }));
    }

    #[test]
    fn full_column_line_is_a_cut() {
        let f = layouts::full_array(3, 3);
        // Vertical line between columns 0 and 1: H(0,0), H(1,0), H(2,0).
        let valves: Vec<ValveId> = (0..3)
            .map(|r| f.valve_at(EdgeId::horizontal(r, 0)).unwrap())
            .collect();
        let cut = CutSet::new(&f, valves).unwrap();
        assert_eq!(cut.len(), 3);
        assert!(!cut.is_empty());
    }

    #[test]
    fn straight_cuts_have_no_masking_violations_on_full_grid() {
        let f = layouts::full_array(4, 4);
        // Regenerate the curves to audit them.
        for j in 1..4 {
            let curve = dual_bfs(&f, (0, j), |c| c.0 == 4, &HashSet::new()).unwrap();
            let mut valves = crossed_valves(&f, &curve);
            apply_masking_constraint(&f, &curve, &mut valves);
            let cut = CutSet::new(&f, valves).unwrap();
            assert!(masking_violations(&f, &cut, &curve).is_empty());
        }
    }

    #[test]
    fn channel_detour_still_separates() {
        // Channel crossing every vertical line of its columns.
        let f = FpvaBuilder::new(3, 4)
            .channel_horizontal(1, 0, 3)
            .port(0, 0, Side::West, PortKind::Source)
            .port(2, 3, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        let cuts = straight_line_cuts(&f).unwrap();
        assert!(!cuts.is_empty());
        use fpva_sim::{respond, FaultSet};
        for cut in &cuts {
            assert!(!respond(&f, &cut.to_vector(&f), &FaultSet::new()).any_pressure());
        }
    }

    #[test]
    fn cut_through_specific_valve() {
        let f = layouts::full_array(4, 4);
        for (v, _) in f.valves() {
            let cut = cut_through_valve(&f, v).unwrap_or_else(|| panic!("no cut through {v}"));
            assert!(cut.covers(v));
        }
    }

    #[test]
    fn permanently_split_chip_exposes_no_stuck_at_1() {
        // Obstacle spanning a full column splits the chip for good: the
        // meters can never see pressure, so no stuck-at-1 fault is
        // observable and cut_cover must report every valve as uncovered
        // rather than fabricate useless cuts.
        let f = FpvaBuilder::new(3, 5)
            .obstacle(0, 2, 2, 2)
            .port(0, 0, Side::West, PortKind::Source)
            .port(2, 4, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        let cover = cut_cover(&f).unwrap();
        assert!(!cover.is_complete());
        assert_eq!(cover.uncovered.len(), f.valve_count());
    }

    #[test]
    fn exposure_ignores_redundant_members() {
        // A cut with one redundant valve: v is in the cut but opening it
        // does not reconnect anything.
        let f = layouts::full_array(2, 2);
        // Close all 4 valves: a valid cut; opening any single one does not
        // reconnect (0,0) to (1,1)... except it does via two hops? No: one
        // open valve joins only two cells; reaching the sink from the
        // source needs two open valves. So nothing is exposed.
        let all: Vec<ValveId> = f.valves().map(|(v, _)| v).collect();
        let cut = CutSet::new(&f, all).unwrap();
        assert!(exposed_valves(&f, &cut).is_empty());
        // The two-valve cut {H(0,0), V(0,0)} isolates the source cell and
        // exposes both members.
        let tight = CutSet::new(
            &f,
            vec![
                f.valve_at(EdgeId::horizontal(0, 0)).unwrap(),
                f.valve_at(EdgeId::vertical(0, 0)).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(exposed_valves(&f, &tight).len(), 2);
    }
}
