//! End-to-end test-plan generation: the paper's "Outputs".

use crate::config::{AtpgConfig, CutEngine, PathEngine};
use crate::cutset::{cut_cover, CutSet};
use crate::error::AtpgError;
use crate::heuristic::{greedy_cover, PathCover};
use crate::hierarchy::{hierarchical_cover, HierarchyConfig};
use crate::ilp_model::min_path_cover_ilp;
use crate::leakage::leakage_vectors;
use crate::path::FlowPath;
use fpva_grid::{Fpva, TestVector, ValveId};
use fpva_sim::TestSuite;
use std::time::{Duration, Instant};

/// Per-phase generation timings and diagnostics (the paper's `t_p`, `t_c`,
/// `t_l`, `T` columns).
#[derive(Debug, Clone, Default)]
pub struct GenerationStats {
    /// Flow-path generation time (`t_p`).
    pub t_paths: Duration,
    /// Cut-set generation time (`t_c`).
    pub t_cuts: Duration,
    /// Control-leakage generation time (`t_l`).
    pub t_leakage: Duration,
    /// Which path engine actually produced the paths (the ILP engine falls
    /// back to greedy on solver limits).
    pub path_engine_used: &'static str,
}

impl GenerationStats {
    /// Total generation time (`T`).
    pub fn total(&self) -> Duration {
        self.t_paths + self.t_cuts + self.t_leakage
    }
}

/// A complete FPVA test plan: flow paths, cut-sets and control-leakage
/// vectors, with everything needed to apply or audit them.
#[derive(Debug, Clone)]
pub struct TestPlan {
    flow_paths: Vec<FlowPath>,
    cut_sets: Vec<CutSet>,
    leakage_paths: Vec<FlowPath>,
    untestable_open: Vec<ValveId>,
    untestable_closed: Vec<ValveId>,
    untestable_pairs: Vec<(ValveId, ValveId)>,
    stats: GenerationStats,
}

impl TestPlan {
    /// The flow paths (`n_p = flow_paths().len()`).
    pub fn flow_paths(&self) -> &[FlowPath] {
        &self.flow_paths
    }

    /// The cut-sets (`n_c`).
    pub fn cut_sets(&self) -> &[CutSet] {
        &self.cut_sets
    }

    /// The dedicated control-leakage paths (`n_l`).
    pub fn leakage_paths(&self) -> &[FlowPath] {
        &self.leakage_paths
    }

    /// Valves whose stuck-at-0 fault no flow path can expose (empty on the
    /// paper's layouts).
    pub fn untestable_open(&self) -> &[ValveId] {
        &self.untestable_open
    }

    /// Valves whose stuck-at-1 fault no cut-set can expose.
    pub fn untestable_closed(&self) -> &[ValveId] {
        &self.untestable_closed
    }

    /// Adjacent control-leak pairs no vector can expose.
    pub fn untestable_pairs(&self) -> &[(ValveId, ValveId)] {
        &self.untestable_pairs
    }

    /// Generation statistics.
    pub fn stats(&self) -> &GenerationStats {
        &self.stats
    }

    /// Total vector count (the paper's `N = n_p + n_c + n_l`).
    pub fn vector_count(&self) -> usize {
        self.flow_paths.len() + self.cut_sets.len() + self.leakage_paths.len()
    }

    /// All vectors in application order: flow paths, then cut-sets, then
    /// leakage vectors.
    pub fn all_vectors(&self, fpva: &Fpva) -> Vec<TestVector> {
        let mut out = Vec::with_capacity(self.vector_count());
        out.extend(self.flow_paths.iter().map(|p| p.to_vector(fpva)));
        out.extend(self.cut_sets.iter().map(|c| c.to_vector(fpva)));
        out.extend(self.leakage_paths.iter().map(|p| p.to_vector(fpva)));
        out
    }

    /// Builds a simulator [`TestSuite`] (with golden responses) from the
    /// plan.
    pub fn to_suite(&self, fpva: &Fpva) -> TestSuite {
        TestSuite::new(fpva, self.all_vectors(fpva))
    }
}

/// The test generator: configure once, [`Atpg::generate`] per array.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, Default)]
pub struct Atpg {
    config: AtpgConfig,
}

impl Atpg {
    /// A generator with the default configuration (hierarchical paths,
    /// straight-line cuts, leakage vectors on).
    pub fn new() -> Self {
        Atpg::default()
    }

    /// A generator with an explicit configuration.
    pub fn with_config(config: AtpgConfig) -> Self {
        Atpg { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &AtpgConfig {
        &self.config
    }

    fn generate_paths(&self, fpva: &Fpva) -> Result<(PathCover, &'static str), AtpgError> {
        match &self.config.path_engine {
            PathEngine::Hierarchical => {
                let hc = HierarchyConfig {
                    block_size: self.config.block_size,
                    seed: self.config.seed,
                    tries: self.config.tries,
                };
                Ok((hierarchical_cover(fpva, &hc)?, "hierarchical"))
            }
            PathEngine::Greedy => Ok((
                greedy_cover(fpva, self.config.seed, self.config.tries)?,
                "greedy",
            )),
            PathEngine::Ilp(ilp_config) => match min_path_cover_ilp(fpva, ilp_config) {
                Ok(cover) => Ok((cover, "ilp")),
                Err(AtpgError::Solver { .. }) => Ok((
                    greedy_cover(fpva, self.config.seed, self.config.tries)?,
                    "greedy (ilp fallback)",
                )),
                Err(e) => Err(e),
            },
        }
    }

    /// Generates the full test plan for `fpva`.
    ///
    /// # Errors
    ///
    /// * [`AtpgError::MissingPorts`] — the array has no source or no sink;
    /// * [`AtpgError::Solver`] — only if an engine fails without a
    ///   fallback.
    pub fn generate(&self, fpva: &Fpva) -> Result<TestPlan, AtpgError> {
        if fpva.sources().next().is_none() || fpva.sinks().next().is_none() {
            return Err(AtpgError::MissingPorts);
        }
        let mut stats = GenerationStats::default();

        let t0 = Instant::now();
        let (path_cover, engine) = self.generate_paths(fpva)?;
        stats.t_paths = t0.elapsed();
        stats.path_engine_used = engine;

        let t0 = Instant::now();
        debug_assert_eq!(self.config.cut_engine, CutEngine::StraightLines);
        let cut = cut_cover(fpva)?;
        stats.t_cuts = t0.elapsed();

        let leak = if self.config.leakage {
            let t0 = Instant::now();
            let leak = leakage_vectors(
                fpva,
                &path_cover.paths,
                self.config.seed ^ 0x5EAF,
                self.config.tries,
            )?;
            stats.t_leakage = t0.elapsed();
            leak
        } else {
            crate::leakage::LeakageCover {
                paths: Vec::new(),
                uncovered_pairs: Vec::new(),
            }
        };

        Ok(TestPlan {
            flow_paths: path_cover.paths,
            cut_sets: cut.cuts,
            leakage_paths: leak.paths,
            untestable_open: path_cover.uncovered,
            untestable_closed: cut.uncovered,
            untestable_pairs: leak.uncovered_pairs,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilp_model::PathIlpConfig;
    use fpva_grid::layouts;
    use fpva_sim::audit;

    #[test]
    fn default_plan_for_5x5_is_complete() {
        let f = layouts::table1_5x5();
        let plan = Atpg::new().generate(&f).unwrap();
        assert!(plan.untestable_open().is_empty());
        assert!(plan.untestable_closed().is_empty());
        // Only the physically untestable corner-pocket leak pairs remain.
        for &(a, b) in plan.untestable_pairs() {
            assert!(crate::leakage::pair_untestable(&f, a, b));
        }
        assert_eq!(plan.cut_sets().len(), 8, "Table I n_c");
        assert_eq!(
            plan.vector_count(),
            plan.flow_paths().len() + plan.cut_sets().len() + plan.leakage_paths().len()
        );
        // Full single-fault coverage, verified by simulation.
        let suite = plan.to_suite(&f);
        let report = audit::single_fault_coverage(&f, &suite);
        assert!(report.is_complete(), "undetected: {:?}", report.undetected);
    }

    #[test]
    fn plan_is_far_smaller_than_baseline() {
        let f = layouts::table1_10x10();
        let plan = Atpg::new().generate(&f).unwrap();
        assert!(plan.vector_count() < crate::baseline::baseline_vector_count(&f) / 4);
    }

    #[test]
    fn greedy_engine_works() {
        let f = layouts::table1_5x5();
        let config = AtpgConfig {
            path_engine: PathEngine::Greedy,
            ..Default::default()
        };
        let plan = Atpg::with_config(config).generate(&f).unwrap();
        assert!(plan.untestable_open().is_empty());
        assert_eq!(plan.stats().path_engine_used, "greedy");
    }

    #[test]
    fn ilp_engine_on_tiny_array() {
        let f = layouts::full_array(2, 3);
        let config = AtpgConfig {
            path_engine: PathEngine::Ilp(PathIlpConfig::default()),
            leakage: false,
            ..Default::default()
        };
        let plan = Atpg::with_config(config).generate(&f).unwrap();
        assert!(plan.stats().path_engine_used.starts_with("ilp"));
        assert!(plan.untestable_open().is_empty());
    }

    #[test]
    fn missing_ports_rejected() {
        let f = fpva_grid::FpvaBuilder::new(3, 3).build().unwrap();
        assert!(matches!(
            Atpg::new().generate(&f),
            Err(AtpgError::MissingPorts)
        ));
    }

    #[test]
    fn leakage_can_be_disabled() {
        let f = layouts::table1_5x5();
        let config = AtpgConfig {
            leakage: false,
            ..Default::default()
        };
        let plan = Atpg::with_config(config).generate(&f).unwrap();
        assert!(plan.leakage_paths().is_empty());
        assert_eq!(plan.stats().t_leakage, Duration::ZERO);
    }

    #[test]
    fn stats_total_sums_phases() {
        let f = layouts::table1_5x5();
        let plan = Atpg::new().generate(&f).unwrap();
        let s = plan.stats();
        assert_eq!(s.total(), s.t_paths + s.t_cuts + s.t_leakage);
    }
}
