//! Serpentine and greedy flow-path construction.
//!
//! The paper's ILP finds minimum path covers but only scales to small
//! arrays (hence its hierarchical model). This module provides the
//! scalable engines:
//!
//! * [`serpentine_paths`] — the two boustrophedon sweeps (row-wise and
//!   column-wise) that cover a full regular array; the paper's Fig. 8(a)
//!   direct-model result on the 10×10 array has exactly this structure;
//! * [`greedy_cover`] — repeatedly routes a randomized simple path through
//!   an uncovered valve, biased towards other uncovered valves, until all
//!   coverable valves are hit. Works on arbitrary layouts with channels
//!   and obstacles.

use crate::connectivity::{endpoint_ports, path_through_edge, source_cells};
use crate::cover::CoverageTracker;
use crate::error::AtpgError;
use crate::path::FlowPath;
use fpva_grid::{CellId, EdgeKind, Fpva, PortId, ValveId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Result of a path-cover construction.
#[derive(Debug, Clone)]
pub struct PathCover {
    /// The generated flow paths.
    pub paths: Vec<FlowPath>,
    /// Valves no simple source→sink path could be routed through (empty on
    /// the paper's layouts).
    pub uncovered: Vec<ValveId>,
}

impl PathCover {
    /// `true` when every valve is on at least one path.
    pub fn is_complete(&self) -> bool {
        self.uncovered.is_empty()
    }
}

fn first_source(fpva: &Fpva) -> Result<PortId, AtpgError> {
    fpva.sources()
        .next()
        .map(|(id, _)| id)
        .ok_or(AtpgError::MissingPorts)
}

fn first_sink(fpva: &Fpva) -> Result<PortId, AtpgError> {
    fpva.sinks()
        .next()
        .map(|(id, _)| id)
        .ok_or(AtpgError::MissingPorts)
}

/// Builds the row-wise serpentine cell sequence over `rows`, starting at
/// `(row_start, 0)` heading east, for a `rows × cols` region. Ends at the
/// east end when the number of rows is odd, at the west end otherwise.
pub(crate) fn serpentine_cells(row_start: usize, row_end: usize, cols: usize) -> Vec<CellId> {
    let mut cells = Vec::with_capacity((row_end - row_start + 1) * cols);
    for (k, row) in (row_start..=row_end).enumerate() {
        if k % 2 == 0 {
            cells.extend((0..cols).map(|c| CellId::new(row, c)));
        } else {
            cells.extend((0..cols).rev().map(|c| CellId::new(row, c)));
        }
    }
    cells
}

fn transpose(cells: Vec<CellId>) -> Vec<CellId> {
    cells
        .into_iter()
        .map(|c| CellId::new(c.col, c.row))
        .collect()
}

/// The two serpentine sweeps of a **full** array with corner ports: a
/// row-wise sweep covering every horizontal valve and a column-wise sweep
/// covering every vertical valve. Together they cover all valves when both
/// dimensions are odd; for even dimensions the sweeps end at the wrong
/// corner and `greedy_cover` tops up the remainder.
///
/// # Errors
///
/// Returns [`AtpgError::MissingPorts`] when the array lacks ports, or
/// [`AtpgError::InvalidPath`] when a sweep is blocked (e.g. by an obstacle)
/// or does not terminate on the sink cell.
pub fn serpentine_paths(fpva: &Fpva) -> Result<Vec<FlowPath>, AtpgError> {
    let source = first_source(fpva)?;
    let sink = first_sink(fpva)?;
    let row_sweep = serpentine_cells(0, fpva.rows() - 1, fpva.cols());
    let col_sweep = transpose(serpentine_cells(0, fpva.cols() - 1, fpva.rows()));
    Ok(vec![
        FlowPath::new(fpva, source, sink, row_sweep)?,
        FlowPath::new(fpva, source, sink, col_sweep)?,
    ])
}

/// Greedy randomized path cover: while uncovered valves remain, route a
/// simple source→sink path through one of them, preferring steps across
/// other uncovered valves (which makes each path sweep large uncovered
/// regions). `seeds` controls the randomized restarts per valve.
///
/// Valves that resist `tries` routing attempts are reported in
/// [`PathCover::uncovered`] rather than looping forever — on a
/// well-connected lattice this only happens for genuinely uncoverable
/// valves (e.g. behind a single-entry pocket, where a simple path cannot
/// enter and leave).
///
/// # Errors
///
/// Returns [`AtpgError::MissingPorts`] when the array lacks ports.
pub fn greedy_cover(fpva: &Fpva, seed: u64, tries: usize) -> Result<PathCover, AtpgError> {
    if source_cells(fpva).is_empty() {
        return Err(AtpgError::MissingPorts);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tracker = CoverageTracker::new(fpva);
    let mut paths: Vec<FlowPath> = Vec::new();
    let uncovered = cover_remaining(fpva, &mut tracker, &mut paths, &mut rng, tries)?;
    Ok(PathCover { paths, uncovered })
}

/// Routes additional paths until `tracker` is complete or the remaining
/// valves resist `tries` attempts each; shared by the greedy and
/// hierarchical engines.
pub(crate) fn cover_remaining(
    fpva: &Fpva,
    tracker: &mut CoverageTracker,
    paths: &mut Vec<FlowPath>,
    rng: &mut StdRng,
    tries: usize,
) -> Result<Vec<ValveId>, AtpgError> {
    let source = first_source(fpva)?;
    let sink = first_sink(fpva)?;
    let avoid = HashSet::new();
    let mut uncovered_final: Vec<ValveId> = Vec::new();
    loop {
        let candidates = tracker.uncovered();
        let Some(target) = candidates
            .iter()
            .copied()
            .find(|v| !uncovered_final.contains(v))
        else {
            break;
        };
        let edge = fpva.edge_of(target);
        let prefer = |e: fpva_grid::EdgeId| -> bool {
            match fpva.edge_kind(e) {
                EdgeKind::Valve => {
                    !tracker.is_covered(fpva.valve_at(e).expect("valve edge has id"))
                }
                _ => false,
            }
        };
        // The search may route between any source/sink pair; read the
        // ports off the path endpoints rather than assuming the first
        // ports (which silently rejects every path to another sink).
        let found = path_through_edge(fpva, edge, &avoid, &prefer, rng, tries)
            .and_then(|cells| {
                let (src, snk) = endpoint_ports(fpva, &cells)?;
                FlowPath::new(fpva, src, snk, cells).ok()
            })
            .or_else(|| l_path_through(fpva, source, sink, edge));
        let Some(path) = found else {
            uncovered_final.push(target);
            continue;
        };
        tracker.cover_all(path.valves(fpva));
        paths.push(path);
    }
    uncovered_final.sort_unstable();
    Ok(uncovered_final)
}

/// Deterministic fall-back for corner-port arrays: an L/Z-shaped path from
/// the top-left down through the target edge and on to the bottom-right
/// sink. Returns `None` when the shape is blocked (obstacle, wrong ports)
/// or fails validation.
fn l_path_through(
    fpva: &Fpva,
    source: PortId,
    sink: PortId,
    edge: fpva_grid::EdgeId,
) -> Option<FlowPath> {
    let (rows, cols) = (fpva.rows(), fpva.cols());
    let src = fpva.port(source).cell;
    let snk = fpva.port(sink).cell;
    if src != CellId::new(0, 0) || snk != CellId::new(rows - 1, cols - 1) {
        return None;
    }
    let (a, b) = edge.endpoints();
    let mut cells: Vec<CellId> = Vec::new();
    // Row 0 east to a's column, down to a, step across the edge to b,
    // down b's column, east along the bottom row.
    for c in 0..=a.col {
        cells.push(CellId::new(0, c));
    }
    for r in 1..=a.row {
        cells.push(CellId::new(r, a.col));
    }
    if b != *cells.last().expect("non-empty") {
        cells.push(b);
    }
    for r in b.row + 1..rows {
        cells.push(CellId::new(r, b.col));
    }
    for c in b.col + 1..cols {
        cells.push(CellId::new(rows - 1, c));
    }
    // The horizontal-edge variant steps east (a.col + 1 == b.col), which
    // may duplicate row-0 cells when a.row == 0; dedupe consecutive runs
    // cheaply by rejecting through validation.
    FlowPath::new(fpva, source, sink, cells).ok()
}

/// Removes paths whose every valve is also covered by the other paths
/// (scanning newest-first, which tends to keep the large early sweeps).
pub fn prune_redundant(fpva: &Fpva, paths: Vec<FlowPath>) -> Vec<FlowPath> {
    let mut keep: Vec<bool> = vec![true; paths.len()];
    let valve_sets: Vec<Vec<ValveId>> = paths.iter().map(|p| p.valves(fpva)).collect();
    for i in (0..paths.len()).rev() {
        let mut counts = vec![0usize; fpva.valve_count()];
        for (j, set) in valve_sets.iter().enumerate() {
            if j != i && keep[j] {
                for v in set {
                    counts[v.index()] += 1;
                }
            }
        }
        // Path i is redundant when every valve it covers is covered elsewhere
        // — unless it is the last remaining path (keep at least one).
        let redundant =
            !valve_sets[i].is_empty() && valve_sets[i].iter().all(|v| counts[v.index()] > 0);
        if redundant && keep.iter().filter(|&&k| k).count() > 1 {
            keep[i] = false;
        }
    }
    paths
        .into_iter()
        .zip(keep)
        .filter_map(|(p, k)| k.then_some(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpva_grid::layouts;

    #[test]
    fn serpentines_cover_full_odd_array() {
        let f = layouts::full_array(5, 5);
        let paths = serpentine_paths(&f).unwrap();
        assert_eq!(paths.len(), 2);
        let mut tracker = CoverageTracker::new(&f);
        for p in &paths {
            tracker.cover_all(p.valves(&f));
        }
        assert!(tracker.is_complete(), "{} uncovered", tracker.remaining());
    }

    #[test]
    fn serpentine_fails_on_even_dimension() {
        // Even row count: the row sweep ends at the west edge, not the sink.
        let f = layouts::full_array(4, 4);
        assert!(matches!(
            serpentine_paths(&f),
            Err(AtpgError::InvalidPath { .. })
        ));
    }

    #[test]
    fn greedy_covers_full_grids() {
        for (r, c) in [(3, 3), (4, 4), (4, 6), (5, 5)] {
            let f = layouts::full_array(r, c);
            let cover = greedy_cover(&f, 17, 48).unwrap();
            assert!(
                cover.is_complete(),
                "{r}x{c}: uncovered {:?}",
                cover.uncovered
            );
            for p in &cover.paths {
                let unique: std::collections::HashSet<_> = p.cells().iter().collect();
                assert_eq!(unique.len(), p.len(), "path not simple");
            }
        }
    }

    #[test]
    fn greedy_covers_table1_5x5() {
        let f = layouts::table1_5x5();
        let cover = greedy_cover(&f, 23, 48).unwrap();
        assert!(cover.is_complete());
        // Should be a handful of paths, far below the 39-valve upper bound.
        assert!(
            cover.paths.len() <= 12,
            "too many paths: {}",
            cover.paths.len()
        );
    }

    #[test]
    fn greedy_reports_uncoverable_pocket() {
        use fpva_grid::{FpvaBuilder, PortKind, Side};
        // 2x2 with sink on the same cell as source's row: valve V(0,1)
        // leads into the dead-end cell (1,1)->(1,0) pocket... build a 1x2
        // with a stub: the valve into a dead-end cell cannot be on a simple
        // source->sink path that returns.
        let f = FpvaBuilder::new(2, 2)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 1, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        let cover = greedy_cover(&f, 3, 32).unwrap();
        // Paths (0,0)-(0,1) and (0,0)-(1,0)-(1,1)-(0,1) cover everything:
        // the bottom detour is a simple path, so all 4 valves are coverable.
        assert!(cover.is_complete(), "uncovered {:?}", cover.uncovered);
    }

    #[test]
    fn prune_drops_fully_shadowed_paths() {
        let f = layouts::full_array(5, 5);
        let mut paths = serpentine_paths(&f).unwrap();
        // Duplicate the first path: the duplicate is redundant.
        paths.push(paths[0].clone());
        let pruned = prune_redundant(&f, paths);
        assert_eq!(pruned.len(), 2);
    }

    #[test]
    fn greedy_is_deterministic_per_seed() {
        let f = layouts::table1_5x5();
        let a = greedy_cover(&f, 99, 32).unwrap();
        let b = greedy_cover(&f, 99, 32).unwrap();
        assert_eq!(a.paths.len(), b.paths.len());
        for (pa, pb) in a.paths.iter().zip(&b.paths) {
            assert_eq!(pa.cells(), pb.cells());
        }
    }
}
