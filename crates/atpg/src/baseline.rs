//! The naive one-valve-at-a-time baseline the paper compares against.
//!
//! Section IV: *"consider a simple baseline method where only one valve is
//! switched open or closed each time for fault test. The total number of
//! test vectors in this case would be two times of the number of valves"*
//! — a squared blow-up relative to the proposed `N ≈ 2·√n_v`.
//!
//! To make the baseline simulatable (not just countable), each valve gets
//! one *open-test* vector (a dedicated flow path through that valve) and
//! one *close-test* vector (a dedicated cut-set through that valve).

use crate::connectivity::{endpoint_ports, path_through_edge};
use crate::cutset::cut_through_valve;
use crate::error::AtpgError;
use crate::path::FlowPath;
use fpva_grid::{Fpva, TestVector, ValveId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Number of test vectors the naive method needs: `2 · n_v`.
pub fn baseline_vector_count(fpva: &Fpva) -> usize {
    2 * fpva.valve_count()
}

/// Output of [`baseline_vectors`].
#[derive(Debug, Clone)]
pub struct BaselineSuite {
    /// One path vector + one cut vector per valve, interleaved
    /// `[open-test v0, close-test v0, open-test v1, ...]`.
    pub vectors: Vec<TestVector>,
    /// Valves for which no dedicated path or cut could be routed.
    pub skipped: Vec<ValveId>,
}

/// Builds the naive 2·n_v-vector suite.
///
/// # Errors
///
/// Returns [`AtpgError::MissingPorts`] when the array lacks ports.
pub fn baseline_vectors(fpva: &Fpva, seed: u64, tries: usize) -> Result<BaselineSuite, AtpgError> {
    if fpva.sources().next().is_none() || fpva.sinks().next().is_none() {
        return Err(AtpgError::MissingPorts);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vectors = Vec::with_capacity(baseline_vector_count(fpva));
    let mut skipped = Vec::new();
    let avoid = HashSet::new();
    for (v, edge) in fpva.valves() {
        let mut ok = false;
        if let Some(cells) = path_through_edge(fpva, edge, &avoid, &|_| false, &mut rng, tries) {
            // The search may route between any source/sink pair; resolve
            // the ports from the path endpoints.
            let (source, sink) =
                endpoint_ports(fpva, &cells).expect("search endpoints are port cells");
            let path = FlowPath::new(fpva, source, sink, cells)
                .expect("search yields validated simple paths");
            vectors.push(path.to_vector(fpva));
            ok = true;
        }
        if let Some(cut) = cut_through_valve(fpva, v) {
            vectors.push(cut.to_vector(fpva));
        } else {
            ok = false;
        }
        if !ok {
            skipped.push(v);
        }
    }
    Ok(BaselineSuite { vectors, skipped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpva_grid::layouts;
    use fpva_sim::{audit, TestSuite};

    #[test]
    fn baseline_count_is_two_nv() {
        let f = layouts::table1_5x5();
        assert_eq!(baseline_vector_count(&f), 78);
    }

    #[test]
    fn baseline_suite_covers_all_single_faults_on_5x5() {
        let f = layouts::table1_5x5();
        let base = baseline_vectors(&f, 5, 48).unwrap();
        assert!(base.skipped.is_empty(), "skipped: {:?}", base.skipped);
        assert_eq!(base.vectors.len(), 2 * f.valve_count());
        let suite = TestSuite::new(&f, base.vectors);
        let report = audit::single_fault_coverage(&f, &suite);
        assert!(report.is_complete(), "undetected: {:?}", report.undetected);
    }

    #[test]
    fn baseline_is_much_larger_than_proposed() {
        use crate::hierarchy::{hierarchical_cover, HierarchyConfig};
        let f = layouts::table1_10x10();
        let proposed = hierarchical_cover(&f, &HierarchyConfig::default()).unwrap();
        assert!(proposed.paths.len() * 10 < baseline_vector_count(&f));
    }
}
