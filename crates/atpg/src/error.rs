//! Error type of the test generator.

use fpva_grid::{CellId, ValveId};
use std::error::Error;
use std::fmt;

/// Errors reported by the test generators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AtpgError {
    /// The array has no source port or no sink port — test pressure cannot
    /// be applied or observed.
    MissingPorts,
    /// A flow path failed validation.
    InvalidPath {
        /// Human-readable reason.
        reason: String,
    },
    /// A proposed cut-set does not separate the sources from the sinks.
    NotSeparating {
        /// A sink cell still reachable with the cut closed.
        reached_sink: CellId,
    },
    /// Path generation could not cover these valves (disconnected or
    /// dead-end structure).
    UncoverableValves {
        /// The valves no simple source→sink path could reach.
        valves: Vec<ValveId>,
    },
    /// The ILP engine failed (solver limit or internal error).
    Solver {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for AtpgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtpgError::MissingPorts => {
                write!(f, "array needs at least one source and one sink port")
            }
            AtpgError::InvalidPath { reason } => write!(f, "invalid flow path: {reason}"),
            AtpgError::NotSeparating { reached_sink } => {
                write!(
                    f,
                    "cut-set does not separate sources from sink cell {reached_sink}"
                )
            }
            AtpgError::UncoverableValves { valves } => {
                write!(
                    f,
                    "no simple source-to-sink path covers {} valve(s)",
                    valves.len()
                )
            }
            AtpgError::Solver { reason } => write!(f, "ILP engine failed: {reason}"),
        }
    }
}

impl Error for AtpgError {}
