//! Valve coverage bookkeeping shared by the generators.

use fpva_grid::{Fpva, ValveId};

/// Tracks which valves are already covered by generated paths or cuts
/// (the paper's constraint (2): every valve on at least one flow path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageTracker {
    covered: Vec<bool>,
    remaining: usize,
}

impl CoverageTracker {
    /// A tracker with every valve of `fpva` uncovered.
    pub fn new(fpva: &Fpva) -> Self {
        let n = fpva.valve_count();
        CoverageTracker {
            covered: vec![false; n],
            remaining: n,
        }
    }

    /// Marks a valve covered; returns `true` when it was newly covered.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn cover(&mut self, v: ValveId) -> bool {
        let slot = &mut self.covered[v.index()];
        if *slot {
            false
        } else {
            *slot = true;
            self.remaining -= 1;
            true
        }
    }

    /// Marks many valves covered; returns how many were new.
    pub fn cover_all<I: IntoIterator<Item = ValveId>>(&mut self, valves: I) -> usize {
        valves.into_iter().filter(|&v| self.cover(v)).count()
    }

    /// How many valves the given set would newly cover.
    pub fn gain<'a, I: IntoIterator<Item = &'a ValveId>>(&self, valves: I) -> usize {
        valves
            .into_iter()
            .filter(|v| !self.covered[v.index()])
            .count()
    }

    /// `true` when `v` is covered.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn is_covered(&self, v: ValveId) -> bool {
        self.covered[v.index()]
    }

    /// Number of still-uncovered valves.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// `true` when every valve is covered.
    pub fn is_complete(&self) -> bool {
        self.remaining == 0
    }

    /// The uncovered valves, ascending.
    pub fn uncovered(&self) -> Vec<ValveId> {
        self.covered
            .iter()
            .enumerate()
            .filter(|(_, &c)| !c)
            .map(|(i, _)| ValveId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpva_grid::layouts;

    #[test]
    fn cover_and_remaining() {
        let f = layouts::full_array(2, 2);
        let mut t = CoverageTracker::new(&f);
        assert_eq!(t.remaining(), 4);
        assert!(t.cover(ValveId(0)));
        assert!(!t.cover(ValveId(0)), "double-cover is not new");
        assert_eq!(t.remaining(), 3);
        assert_eq!(t.cover_all([ValveId(1), ValveId(2), ValveId(1)]), 2);
        assert_eq!(t.uncovered(), vec![ValveId(3)]);
        assert!(!t.is_complete());
        t.cover(ValveId(3));
        assert!(t.is_complete());
    }

    #[test]
    fn gain_counts_only_new() {
        let f = layouts::full_array(2, 2);
        let mut t = CoverageTracker::new(&f);
        t.cover(ValveId(1));
        let set = [ValveId(0), ValveId(1), ValveId(2)];
        assert_eq!(t.gain(set.iter()), 2);
    }
}
