//! Criterion bench for the campaign engine: the Section IV random-fault
//! experiment on the 30×30 Table I array (1704 valves).
//!
//! Two comparisons, both on byte-identical rows (asserted below):
//!
//! * **kernel**: the scalar per-trial BFS oracle vs the bit-parallel
//!   (64 scenarios per word) kernel, single-threaded, setup excluded via
//!   [`campaign::run_in`] — the headline speedup of the bitset kernel,
//! * **threads**: the bit-parallel kernel across worker counts — the
//!   scoped-pool scaling on top of the word-level parallelism.
//!
//! The printed summary lines record both speedups verbatim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpva_atpg::Atpg;
use fpva_grid::layouts;
use fpva_sim::campaign::{self, CampaignConfig, ChipContext};
use fpva_sim::SimKernel;
use std::hint::black_box;
use std::time::Instant;

fn config(threads: usize, kernel: SimKernel) -> CampaignConfig {
    CampaignConfig {
        trials: 64,
        fault_counts: vec![3],
        threads,
        kernel,
        ..Default::default()
    }
}

fn bench_campaign(c: &mut Criterion) {
    let fpva = layouts::table1_30x30();
    let plan = Atpg::new().generate(&fpva).expect("valid layout");
    let suite = plan.to_suite(&fpva);
    let ctx = ChipContext::build(&fpva);

    // The scalar path is the oracle: every configuration benched below
    // must produce its exact rows.
    let oracle = campaign::run_in(&fpva, &suite, &config(1, SimKernel::Scalar), &ctx).0;

    let mut group = c.benchmark_group("campaign_30x30_64_trials");
    group.sample_size(10);
    for (name, cfg) in [
        ("scalar_1thread", config(1, SimKernel::Scalar)),
        ("bit_1thread", config(1, SimKernel::BitParallel)),
        ("bit_2threads", config(2, SimKernel::BitParallel)),
        ("bit_4threads", config(4, SimKernel::BitParallel)),
        ("bit_8threads", config(8, SimKernel::BitParallel)),
    ] {
        assert_eq!(
            campaign::run_in(&fpva, &suite, &cfg, &ctx).0,
            oracle,
            "campaign rows must not depend on the kernel or thread count"
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| campaign::run_in(black_box(&fpva), &suite, cfg, &ctx));
        });
    }
    group.finish();

    // Explicit best-of-3 measurements, so the speedups the ISSUE asks
    // about land in the bench output verbatim.
    let best = |cfg: &CampaignConfig| {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                black_box(campaign::run_in(&fpva, &suite, cfg, &ctx));
                t0.elapsed()
            })
            .min()
            .expect("three runs")
    };
    let scalar = best(&config(1, SimKernel::Scalar));
    let bit = best(&config(1, SimKernel::BitParallel));
    let pooled = best(&config(4, SimKernel::BitParallel));
    println!(
        "campaign 30x30 (1 thread): scalar {scalar:.2?} vs bit-parallel {bit:.2?} -> {:.2}x speedup",
        scalar.as_secs_f64() / bit.as_secs_f64().max(f64::EPSILON)
    );
    println!(
        "campaign 30x30 (bit-parallel): 1 thread {bit:.2?} vs 4 threads {pooled:.2?} -> {:.2}x speedup",
        bit.as_secs_f64() / pooled.as_secs_f64().max(f64::EPSILON)
    );
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
