//! Criterion bench for the parallel campaign engine: the Section IV
//! random-fault experiment on the 30×30 Table I array (1704 valves), run
//! with the serial engine and with the scoped worker pool. The per-thread
//! timings plus the printed summary line record the serial-vs-parallel
//! speedup; the rows themselves are byte-identical for every thread count
//! (asserted below), so the comparison is apples to apples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpva_atpg::Atpg;
use fpva_grid::layouts;
use fpva_sim::campaign::{self, CampaignConfig};
use std::hint::black_box;
use std::time::Instant;

fn config(threads: usize) -> CampaignConfig {
    CampaignConfig {
        trials: 64,
        fault_counts: vec![3],
        threads,
        ..Default::default()
    }
}

fn bench_campaign_scaling(c: &mut Criterion) {
    let fpva = layouts::table1_30x30();
    let plan = Atpg::new().generate(&fpva).expect("valid layout");
    let suite = plan.to_suite(&fpva);

    let serial_rows = campaign::run(&fpva, &suite, &config(1));
    let mut group = c.benchmark_group("campaign_30x30_64_trials");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let cfg = config(threads);
        assert_eq!(
            campaign::run(&fpva, &suite, &cfg),
            serial_rows,
            "campaign rows must not depend on the thread count"
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads_{threads}")),
            &cfg,
            |b, cfg| {
                b.iter(|| campaign::run(black_box(&fpva), &suite, cfg));
            },
        );
    }
    group.finish();

    // One explicit best-of-3 serial-vs-4-threads measurement, so the
    // speedup the ISSUE asks about lands in the bench output verbatim.
    let best = |threads: usize| {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                black_box(campaign::run(&fpva, &suite, &config(threads)));
                t0.elapsed()
            })
            .min()
            .expect("three runs")
    };
    let serial = best(1);
    let pooled = best(4);
    println!(
        "campaign 30x30: serial {serial:.2?} vs 4 threads {pooled:.2?} -> {:.2}x speedup",
        serial.as_secs_f64() / pooled.as_secs_f64().max(f64::EPSILON)
    );
}

criterion_group!(benches, bench_campaign_scaling);
criterion_main!(benches);
