//! Criterion bench comparing the flow-path engines (the Fig. 8 trade-off):
//! hierarchical band construction vs direct greedy cover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpva_atpg::heuristic::greedy_cover;
use fpva_atpg::hierarchy::{hierarchical_cover, HierarchyConfig};
use fpva_grid::layouts;
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let sizes = [10usize, 15, 20, 30];
    let mut group = c.benchmark_group("path_engines_full_arrays");
    group.sample_size(10);
    for n in sizes {
        let f = layouts::full_array(n, n);
        group.bench_with_input(BenchmarkId::new("hierarchical", n), &f, |b, f| {
            b.iter(|| hierarchical_cover(black_box(f), &HierarchyConfig::default()).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &f, |b, f| {
            b.iter(|| greedy_cover(black_box(f), 7, 64).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
