//! Criterion bench for the Section IV detection experiment: pressure
//! propagation, suite application and a scaled-down random campaign.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpva_atpg::Atpg;
use fpva_grid::{layouts, TestVector};
use fpva_sim::campaign::{self, CampaignConfig};
use fpva_sim::{propagate, FaultSet};
use std::hint::black_box;

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("pressure_propagation_all_open");
    for entry in layouts::table1() {
        let vector = TestVector::all_open(entry.fpva.valve_count());
        group.bench_with_input(
            BenchmarkId::from_parameter(entry.name),
            &entry.fpva,
            |b, f| {
                b.iter(|| propagate(black_box(f), black_box(&vector), &FaultSet::new()));
            },
        );
    }
    group.finish();
}

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_campaign_100_trials");
    group.sample_size(10);
    for entry in layouts::table1().into_iter().take(3) {
        let plan = Atpg::new().generate(&entry.fpva).expect("valid layout");
        let suite = plan.to_suite(&entry.fpva);
        let config = CampaignConfig {
            trials: 100,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(entry.name),
            &(entry.fpva, suite, config),
            |b, (f, suite, config)| {
                b.iter(|| campaign::run(black_box(f), suite, config));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_propagation, bench_campaign);
criterion_main!(benches);
