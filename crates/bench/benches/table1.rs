//! Criterion bench for Table I: end-to-end test-plan generation per array
//! (the paper's `T` column), plus the per-phase generators on the largest
//! array.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpva_atpg::cutset::cut_cover;
use fpva_atpg::hierarchy::{hierarchical_cover, HierarchyConfig};
use fpva_atpg::Atpg;
use fpva_grid::layouts;
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_generation");
    group.sample_size(10);
    for entry in layouts::table1() {
        group.bench_with_input(
            BenchmarkId::from_parameter(entry.name),
            &entry.fpva,
            |b, f| {
                b.iter(|| Atpg::new().generate(black_box(f)).expect("valid layout"));
            },
        );
    }
    group.finish();
}

fn bench_phases(c: &mut Criterion) {
    let f = layouts::table1_30x30();
    let mut group = c.benchmark_group("table1_phases_30x30");
    group.sample_size(10);
    group.bench_function("flow_paths", |b| {
        b.iter(|| hierarchical_cover(black_box(&f), &HierarchyConfig::default()).unwrap());
    });
    group.bench_function("cut_sets", |b| {
        b.iter(|| cut_cover(black_box(&f)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_phases);
criterion_main!(benches);
