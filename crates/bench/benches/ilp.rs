//! Criterion bench for the in-workspace MILP solver: the paper's exact
//! path-cover formulation (constraints (1)–(8)) at subblock scale, plus
//! an LU-focused warm-start chain that times the basis-maintenance path
//! (Forrest–Tomlin updates with policy-driven refactorization) in
//! isolation from branch-and-bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpva_atpg::ilp_model::{cover_model, min_path_cover_ilp, symmetry_generators, PathIlpConfig};
use fpva_grid::layouts;
use fpva_ilp::analyze::{analyze, AnalyzeOptions};
use fpva_ilp::fixtures;
use fpva_ilp::simplex::SparseLp;
use std::hint::black_box;

fn bench_exact_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_exact_path_cover");
    group.sample_size(10);
    for n in [2usize, 3] {
        let f = layouts::full_array(n, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}")),
            &f,
            |b, f| {
                b.iter(|| min_path_cover_ilp(black_box(f), &PathIlpConfig::default()).unwrap());
            },
        );
    }
    group.finish();
}

/// The branch-and-bound access pattern without branch-and-bound: one
/// persistent engine re-solving the shared `fpva_ilp::fixtures`
/// multi-knapsack chain (the exact workload `ilp_differential` verifies
/// against the dense oracle), warm-started from the previous basis every
/// step. Dominated by FTRAN/BTRAN through the LU factors and the
/// Forrest–Tomlin update per pivot — the tentpole's hot path.
fn bench_lu_warm_start_chain(c: &mut Criterion) {
    let p = fixtures::multi_knapsack_lp();
    let prepared = SparseLp::from_problem(&p);

    let mut group = c.benchmark_group("ilp_lu_basis");
    group.bench_function("warm_start_chain/64_resolves", |b| {
        b.iter(|| {
            let mut engine = prepared.engine();
            let mut basis = None;
            for step in 0..64usize {
                let (lower, upper) = fixtures::chain_bounds(step);
                let (sol, nb) = engine.solve(&lower, &upper, None, basis.as_ref());
                black_box(sol.objective);
                if let Some(nb) = nb {
                    basis = Some(nb);
                }
            }
            engine.factor_stats().ft_updates
        });
    });
    group.finish();
}

/// The child-node re-solve pattern in isolation: one cold parent solve,
/// then 64 single-bound-change re-solves warm-started from the parent
/// basis — each should go through the dual simplex (the parent basis
/// stays dual feasible under a bound change), making this the tentpole's
/// benchmark: dual pricing + bound-flipping ratio test + FT update per
/// pivot, no primal phase 1.
fn bench_dual_resolves(c: &mut Criterion) {
    let p = fixtures::multi_knapsack_lp();
    let prepared = SparseLp::from_problem(&p);

    let mut group = c.benchmark_group("ilp_dual_simplex");
    group.bench_function("dual_resolve/64_bound_changes", |b| {
        b.iter(|| {
            let mut engine = prepared.engine();
            let (parent, basis) = engine.solve(&p.lower, &p.upper, None, None);
            black_box(parent.objective);
            let basis = basis.expect("parent solve is optimal");
            for step in 0..64usize {
                let mut lower = p.lower.clone();
                let mut upper = p.upper.clone();
                let j = step % fixtures::CHAIN_VARS;
                if step % 2 == 0 {
                    lower[j] = 2.0;
                } else {
                    upper[j] = 3.0;
                }
                let (sol, _) = engine.solve(&lower, &upper, None, Some(&basis));
                black_box(sol.objective);
            }
            engine.engine_stats().dual_pivots
        });
    });
    group.finish();
}

/// The root static analysis in isolation: conflict graph + probing +
/// orbit construction over the full-array cover models branch-and-bound
/// actually searches. This is a once-per-solve cost, so it only has to
/// stay well under one node LP re-solve to be free in practice.
fn bench_root_analyze(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_analyze");
    group.sample_size(20);
    for n in [4usize, 5] {
        let f = layouts::full_array(n, n);
        let model = cover_model(&f, 2);
        let gens = symmetry_generators(&f, 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}_k2")),
            &(model, gens),
            |b, (model, gens)| {
                b.iter(|| {
                    let a = analyze(black_box(model), gens, &AnalyzeOptions::default());
                    black_box(a.stats.conflict_edges)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_cover,
    bench_lu_warm_start_chain,
    bench_dual_resolves,
    bench_root_analyze
);
criterion_main!(benches);
