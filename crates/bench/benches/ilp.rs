//! Criterion bench for the in-workspace MILP solver on the paper's exact
//! path-cover formulation (constraints (1)–(8)) at subblock scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpva_atpg::ilp_model::{min_path_cover_ilp, PathIlpConfig};
use fpva_grid::layouts;
use std::hint::black_box;

fn bench_exact_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_exact_path_cover");
    group.sample_size(10);
    for n in [2usize, 3] {
        let f = layouts::full_array(n, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}")),
            &f,
            |b, f| {
                b.iter(|| min_path_cover_ilp(black_box(f), &PathIlpConfig::default()).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact_cover);
criterion_main!(benches);
