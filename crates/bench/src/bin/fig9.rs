//! Regenerates **Fig. 9** of the paper: the flow paths covering all 744
//! valves of the 20×20 array with three channels (`~`) and two obstacles
//! (`#`).
//!
//! Run with `cargo run --release -p fpva-bench --bin fig9`. Flags:
//! `--trials N` sweeps N generator seeds and renders the plan with the
//! fewest vectors (default 4; trial 0 is the historical default seed, so
//! the sweep can only improve on the old single-shot output) and
//! `--threads N` spreads the sweep over N workers (default: one per CPU;
//! the rendered figure is identical for every thread count).

use fpva_atpg::{Atpg, AtpgConfig};
use fpva_bench::{render_paths, CliArgs};
use fpva_grid::layouts;
use fpva_sim::exec;

fn main() {
    let args = CliArgs::parse();
    let trials = args.trials.unwrap_or(4).max(1);
    let f = layouts::table1_20x20();
    // Each trial perturbs only the randomized-stage seed (trial 0 is the
    // default configuration); every plan is a pure function of its seed,
    // so the chunked sweep is deterministic for every thread count.
    let per_chunk = exec::run_chunked(args.threads, trials, 1, |range| {
        range
            .map(|trial| {
                let config = AtpgConfig {
                    seed: AtpgConfig::default().seed + trial as u64,
                    ..Default::default()
                };
                Atpg::with_config(config)
                    .generate(&f)
                    .expect("benchmark layout is valid")
            })
            .min_by_key(fpva_atpg::TestPlan::vector_count)
            .expect("chunk is non-empty")
    });
    let plan = per_chunk
        .into_iter()
        .min_by_key(fpva_atpg::TestPlan::vector_count)
        .expect("at least one trial");
    println!(
        "Fig. 9 — 20x20 array with channels and obstacles: {} flow paths cover all {} valves (paper: 16; best of {} seed(s), {} worker(s))",
        plan.flow_paths().len(),
        f.valve_count(),
        trials,
        // run_chunked caps workers at the chunk count (one per trial).
        exec::resolve_threads(args.threads).min(trials)
    );
    assert!(plan.untestable_open().is_empty());
    println!("{}", render_paths(&f, plan.flow_paths()));
    println!("legend: digits/letters = path index, ~ = channel, # = obstacle,");
    println!("        S = pressure source, M = pressure meter");
}
