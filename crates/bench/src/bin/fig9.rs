//! Regenerates **Fig. 9** of the paper: the flow paths covering all 744
//! valves of the 20×20 array with three channels (`~`) and two obstacles
//! (`#`).
//!
//! Run with `cargo run --release -p fpva-bench --bin fig9`.

use fpva_atpg::Atpg;
use fpva_bench::render_paths;
use fpva_grid::layouts;

fn main() {
    let f = layouts::table1_20x20();
    let plan = Atpg::new().generate(&f).expect("benchmark layout is valid");
    println!(
        "Fig. 9 — 20x20 array with channels and obstacles: {} flow paths cover all {} valves (paper: 16)",
        plan.flow_paths().len(),
        f.valve_count()
    );
    assert!(plan.untestable_open().is_empty());
    println!("{}", render_paths(&f, plan.flow_paths()));
    println!("legend: digits/letters = path index, ~ = channel, # = obstacle,");
    println!("        S = pressure source, M = pressure meter");
}
