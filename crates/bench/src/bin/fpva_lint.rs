//! `fpva-lint`: static diagnostics over every benchmark and example chip.
//!
//! Audits the five Table I layouts plus the chips the `examples/` binaries
//! build, both at the chip level (connectivity, dead valves, untestable
//! stuck-at-1 sets, unobservable leaks) and at the cover-model level
//! (constraint-count sanity, coefficient numerics, certified presolve
//! feasibility). Prints one diagnostics table and exits nonzero when any
//! finding has `Error` severity, so CI can gate on it.
//!
//! Run with `cargo run --release -p fpva-bench --bin fpva-lint`.

use fpva_bench::lint::{self, Severity};
use fpva_grid::layouts;

fn main() {
    let mut chips: Vec<(String, fpva_grid::Fpva)> = layouts::table1()
        .into_iter()
        .map(|e| (format!("table1_{}", e.name), e.fpva))
        .collect();
    chips.extend(
        lint::example_chips()
            .into_iter()
            .map(|(n, f)| (n.to_string(), f)),
    );

    println!(
        "{:<16} {:<8} {:<18} message",
        "subject", "severity", "check"
    );
    let mut counts = [0usize; 3];
    let mut worst: Option<Severity> = None;
    for (name, fpva) in &chips {
        let mut diags = lint::lint_chip(name, fpva);
        // Audit the model at the probe loop's starting k — any smaller k is
        // provably infeasible (a path covers at most cell_count+1 valves).
        let k = fpva_atpg::ilp_model::min_cover_paths(fpva);
        diags.extend(lint::lint_model(name, fpva, k));
        if diags.is_empty() {
            println!("{name:<16} {:<8} {:<18} clean", "ok", "-");
            continue;
        }
        for d in &diags {
            println!(
                "{:<16} {:<8} {:<18} {}",
                d.subject,
                d.severity.to_string(),
                d.check,
                d.message
            );
            counts[d.severity as usize] += 1;
            worst = worst.max(Some(d.severity));
        }
    }
    println!(
        "\n{} chip(s) audited: {} error(s), {} warning(s), {} info",
        chips.len(),
        counts[Severity::Error as usize],
        counts[Severity::Warning as usize],
        counts[Severity::Info as usize]
    );
    if worst == Some(Severity::Error) {
        eprintln!("fpva-lint: errors found");
        std::process::exit(1);
    }
}
