//! `fpva-lint`: static diagnostics over every benchmark and example chip.
//!
//! Audits the five Table I layouts plus the chips the `examples/` binaries
//! build, both at the chip level (connectivity, dead valves, untestable
//! stuck-at-1 sets, unobservable leaks, duplicate/dominated candidate
//! paths) and at the cover-model level (constraint-count sanity,
//! coefficient numerics, certified presolve feasibility). Prints one
//! diagnostics table and exits nonzero when any finding has `Error`
//! severity, so CI can gate on it.
//!
//! Flags:
//!
//! * `--certify` — additionally solve each chip's cover probes in
//!   proof-logging mode and re-verify every verdict in exact rational
//!   arithmetic (`fpva_ilp::certify_outcome`). Slower: real MILP solves.
//! * `--deny-warnings` — exit nonzero on `Warning` findings, not just
//!   `Error` (for CI gating).
//! * `--allow <check>` — repeatable; findings of that check still print
//!   but never affect the exit code (waive a known, intended warning
//!   such as `custom_biochip`'s `cut-cover` blind spot).
//! * `--only <check>` — repeatable; keep only findings of the named
//!   check(s). Exit code and counts are computed on the filtered set, so
//!   `--only certify` gates on certification findings alone.
//! * `--json` — machine-readable output: one JSON object with the
//!   diagnostics array, per-severity counts and the exit code.
//!
//! Diagnostics print in a deterministic order: severity (worst first),
//! then subject, then check, then message text — independent of the
//! order the passes ran in.
//!
//! Run with `cargo run --release -p fpva-bench --bin fpva-lint [-- FLAGS]`.

use std::process::ExitCode;
use std::time::Duration;

use fpva_bench::lint::{self, Diagnostic, Severity};
use fpva_grid::layouts;

/// Wall-clock budget per certified solver probe under `--certify`. At
/// most three probes run per chip, so the whole certification pass is
/// bounded at about a minute per chip.
const PROBE_BUDGET: Duration = Duration::from_secs(10);

struct Options {
    certify: bool,
    deny_warnings: bool,
    json: bool,
    allow: Vec<String>,
    only: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        certify: false,
        deny_warnings: false,
        json: false,
        allow: Vec::new(),
        only: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--certify" => opts.certify = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--json" => opts.json = true,
            "--allow" => {
                let check = args
                    .next()
                    .ok_or_else(|| "--allow needs a check name".to_string())?;
                opts.allow.push(check);
            }
            "--only" => {
                let check = args
                    .next()
                    .ok_or_else(|| "--only needs a check name".to_string())?;
                opts.only.push(check);
            }
            "--help" | "-h" => {
                println!(
                    "usage: fpva-lint [--certify] [--deny-warnings] [--allow <check>]... \
                     [--only <check>]... [--json]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(opts)
}

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_json(diags: &[Diagnostic], counts: [usize; 3], chips: usize, exit: u8) {
    println!("{{");
    println!("  \"chips\": {chips},");
    println!("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        let comma = if i + 1 < diags.len() { "," } else { "" };
        println!(
            "    {{\"severity\": \"{}\", \"subject\": \"{}\", \"check\": \"{}\", \
             \"message\": \"{}\"}}{comma}",
            d.severity,
            json_escape(&d.subject),
            json_escape(d.check),
            json_escape(&d.message)
        );
    }
    println!("  ],");
    println!(
        "  \"counts\": {{\"info\": {}, \"warning\": {}, \"error\": {}}},",
        counts[Severity::Info as usize],
        counts[Severity::Warning as usize],
        counts[Severity::Error as usize]
    );
    println!("  \"exit\": {exit}");
    println!("}}");
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("fpva-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut chips: Vec<(String, fpva_grid::Fpva)> = layouts::table1()
        .into_iter()
        .map(|e| (format!("table1_{}", e.name), e.fpva))
        .collect();
    chips.extend(
        lint::example_chips()
            .into_iter()
            .map(|(n, f)| (n.to_string(), f)),
    );

    let mut diags: Vec<Diagnostic> = Vec::new();
    for (name, fpva) in &chips {
        diags.extend(lint::lint_chip(name, fpva));
        diags.extend(lint::lint_paths(name, fpva));
        // Audit the model at the probe loop's starting k — any smaller k is
        // provably infeasible (a single path traverses at most cell_count - 1
        // distinct valve edges, so k paths cover at most k * (cell_count - 1)
        // valves).
        let k = fpva_atpg::ilp_model::min_cover_paths(fpva);
        diags.extend(lint::lint_model(name, fpva, k));
        diags.extend(lint::lint_analysis(name, fpva, k));
        if opts.certify {
            diags.extend(lint::certify_models(name, fpva, PROBE_BUDGET));
        }
    }

    if !opts.only.is_empty() {
        diags.retain(|d| opts.only.iter().any(|o| o == d.check));
    }
    // Deterministic report order: worst severity first, then subject,
    // then check, then message — independent of pass execution order.
    diags.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.subject.cmp(&b.subject))
            .then_with(|| a.check.cmp(b.check))
            .then_with(|| a.message.cmp(&b.message))
    });

    let mut counts = [0usize; 3];
    // Exit severity considers only checks not waived by --allow.
    let mut worst: Option<Severity> = None;
    for d in &diags {
        counts[d.severity as usize] += 1;
        if !opts.allow.iter().any(|a| a == d.check) {
            worst = worst.max(Some(d.severity));
        }
    }
    let deny = if opts.deny_warnings {
        Severity::Warning
    } else {
        Severity::Error
    };
    let exit = u8::from(worst >= Some(deny));

    if opts.json {
        print_json(&diags, counts, chips.len(), exit);
    } else {
        println!(
            "{:<16} {:<8} {:<18} message",
            "subject", "severity", "check"
        );
        for d in &diags {
            println!(
                "{:<16} {:<8} {:<18} {}",
                d.subject,
                d.severity.to_string(),
                d.check,
                d.message
            );
        }
        println!(
            "\n{} chip(s) audited: {} error(s), {} warning(s), {} info",
            chips.len(),
            counts[Severity::Error as usize],
            counts[Severity::Warning as usize],
            counts[Severity::Info as usize]
        );
        if exit != 0 {
            eprintln!("fpva-lint: findings at or above {deny} severity (see table above)");
        }
    }
    ExitCode::from(exit)
}
