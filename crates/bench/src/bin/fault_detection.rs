//! Regenerates the **Section IV fault-detection experiment**: for each
//! Table I array, inject 1–5 random faults, apply the generated vectors,
//! repeat 10 000 times per fault count (the paper reports that all faults
//! were captured).
//!
//! Run with `cargo run --release -p fpva-bench --bin fault_detection`.
//! Pass a trial count to override the default (e.g. `-- 1000` for a quick
//! run).

use fpva_bench::plan_table1;
use fpva_sim::campaign::{self, CampaignConfig};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    println!("Section IV experiment — {trials} random injections per fault count");
    println!(
        "{:<8} {:>6} {:>4} | {:>10} {:>10} {:>10} {:>10} {:>10}",
        "array", "n_v", "N", "1 fault", "2 faults", "3 faults", "4 faults", "5 faults"
    );
    for planned in plan_table1() {
        let e = &planned.entry;
        let suite = planned.plan.to_suite(&e.fpva);
        let config = CampaignConfig {
            trials,
            ..Default::default()
        };
        let rows = campaign::run(&e.fpva, &suite, &config);
        let cells: Vec<String> = rows
            .iter()
            .map(|r| format!("{:>6}/{}", r.detected, r.trials))
            .collect();
        println!(
            "{:<8} {:>6} {:>4} | {}",
            e.name,
            e.fpva.valve_count(),
            suite.len(),
            cells.join(" ")
        );
        for r in &rows {
            if !r.all_detected() {
                println!(
                    "  !! {} escapes at {} faults, e.g. {:?}",
                    r.trials - r.detected,
                    r.fault_count,
                    r.escapes.first()
                );
            }
        }
    }
    println!("\n(paper: all injected faults detected in all 10 000 trials)");
}
