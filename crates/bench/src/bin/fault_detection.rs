//! Regenerates the **Section IV fault-detection experiment**: for each
//! Table I array, inject 1–5 random faults, apply the generated vectors,
//! repeat 10 000 times per fault count (the paper reports that all faults
//! were captured).
//!
//! Run with `cargo run --release -p fpva-bench --bin fault_detection`.
//! Flags: `--trials N` (default 10 000; a bare number also works),
//! `--threads N` (default: one worker per CPU) and `--kernel scalar|bit`
//! (default: bit-parallel). Results are identical for every thread count
//! and kernel choice — only the runtime differs.

use fpva_bench::{percent_or_na, plan_table1_with, CliArgs};
use fpva_sim::campaign::{self, CampaignConfig};
use fpva_sim::exec;

fn main() {
    let args = CliArgs::parse();
    let trials = args.trials.unwrap_or(10_000);
    println!(
        "Section IV experiment — {trials} random injections per fault count, {} worker(s), {:?} kernel",
        exec::resolve_threads(args.threads),
        args.kernel
    );
    println!(
        "{:<8} {:>6} {:>4} | {:>10} {:>10} {:>10} {:>10} {:>10}",
        "array", "n_v", "N", "1 fault", "2 faults", "3 faults", "4 faults", "5 faults"
    );
    for planned in plan_table1_with(args.threads) {
        let e = &planned.entry;
        let suite = planned.plan.to_suite(&e.fpva);
        let config = CampaignConfig {
            trials,
            threads: args.threads,
            kernel: args.kernel,
            ..Default::default()
        };
        let rows = campaign::run(&e.fpva, &suite, &config);
        let cells: Vec<String> = rows
            .iter()
            .map(|r| format!("{:>6}/{}", r.detected, r.trials))
            .collect();
        println!(
            "{:<8} {:>6} {:>4} | {}",
            e.name,
            e.fpva.valve_count(),
            suite.len(),
            cells.join(" ")
        );
        for r in &rows {
            if !r.all_detected() {
                println!(
                    "  !! {} escapes at {} faults (rate {}), e.g. {:?}",
                    r.trials - r.detected,
                    r.fault_count,
                    percent_or_na(r.detection_rate()),
                    r.escapes.first()
                );
            }
        }
    }
    println!("\n(paper: all injected faults detected in all 10 000 trials)");
}
