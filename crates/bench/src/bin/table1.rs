//! Regenerates **Table I** of the paper: test-vector counts and generation
//! runtimes for the five benchmark arrays, next to the paper's reported
//! numbers and the naive 2·n_v baseline.
//!
//! Run with `cargo run --release -p fpva-bench --bin table1`. Pass
//! `--threads N` to generate the five per-array plans on N workers
//! (default: one per CPU; every plan is deterministic per layout, so the
//! table is identical for every thread count). `--trials` is not used by
//! this binary.

use fpva_bench::{plan_table1_with, CliArgs};
use fpva_sim::exec;

fn main() {
    let args = CliArgs::parse();
    // run_chunked caps workers at the chunk count (one chunk per array).
    println!(
        "Table I — test vector generation (paper numbers in parentheses; {} worker(s))",
        exec::resolve_threads(args.threads).min(fpva_grid::layouts::table1().len())
    );
    println!(
        "{:<8} {:>6} | {:>9} {:>9} {:>9} {:>11} | {:>8} {:>8} {:>8} {:>8} | {:>9}",
        "array", "n_v", "n_p", "n_c", "n_l", "N", "t_p(s)", "t_c(s)", "t_l(s)", "T(s)", "baseline"
    );
    for planned in plan_table1_with(args.threads) {
        let e = &planned.entry;
        let p = &planned.plan;
        let s = p.stats();
        let paper_total = e.paper_flow_paths + e.paper_cut_sets + e.paper_leakage;
        println!(
            "{:<8} {:>6} | {:>4} ({:>2}) {:>4} ({:>2}) {:>4} ({:>2}) {:>5} ({:>3}) | {:>8.3} {:>8.3} {:>8.3} {:>8.3} | {:>9}",
            e.name,
            e.fpva.valve_count(),
            p.flow_paths().len(),
            e.paper_flow_paths,
            p.cut_sets().len(),
            e.paper_cut_sets,
            p.leakage_paths().len(),
            e.paper_leakage,
            p.vector_count(),
            paper_total,
            s.t_paths.as_secs_f64(),
            s.t_cuts.as_secs_f64(),
            s.t_leakage.as_secs_f64(),
            s.total().as_secs_f64(),
            fpva_atpg::baseline::baseline_vector_count(&e.fpva),
        );
        assert!(
            p.untestable_open().is_empty() && p.untestable_closed().is_empty(),
            "{}: plan left untestable stuck-at faults",
            e.name
        );
        // The port-less corner cells contribute physically untestable leak
        // pairs; report any pair left without a certificate.
        for &(a, b) in p.untestable_pairs() {
            if !fpva_atpg::leakage::pair_untestable(&e.fpva, a, b) {
                println!(
                    "  !! {}: leak pair ({a}, {b}) uncovered without certificate",
                    e.name
                );
            }
        }
    }
    println!();
    println!("N is roughly 2*sqrt(n_v) for both implementations; the naive");
    println!("baseline needs 2*n_v vectors (squared complexity, Section IV).");
}
