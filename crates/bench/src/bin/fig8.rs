//! Regenerates **Fig. 8** of the paper: flow paths on the full 10×10 array
//! from the direct model vs the hierarchical model (5×5 subblocks).
//!
//! The paper's direct ILP finds 2 paths; our direct engine (greedy with
//! serpentine seeds — the exact ILP is impractical at this size without a
//! commercial solver, see DESIGN.md §4.1) typically needs one or two more.
//! The hierarchical engine reproduces the paper's 4 paths exactly.
//!
//! Run with `cargo run --release -p fpva-bench --bin fig8`. Flags:
//! `--trials N` sets the direct engine's best-of-N seed sweep (default
//! 16) and `--threads N` spreads it over N workers (default: one per
//! CPU; the rendered figure is identical for every thread count).

use fpva_atpg::heuristic::{greedy_cover, prune_redundant};
use fpva_atpg::hierarchy::{hierarchical_cover, HierarchyConfig};
use fpva_bench::{render_paths, CliArgs};
use fpva_grid::layouts;
use fpva_sim::exec;

fn main() {
    let args = CliArgs::parse();
    let seeds = args.trials.unwrap_or(16).max(1);
    let f = layouts::full_array(10, 10);
    // run_chunked caps workers at the chunk count (one chunk per seed).
    println!(
        "Fig. 8 — full 10x10 array, {} valves ({} direct seeds, {} worker(s))\n",
        f.valve_count(),
        seeds,
        exec::resolve_threads(args.threads).min(seeds)
    );

    // Best-of-seeds randomized direct cover (the exact ILP is out of reach
    // for a textbook branch-and-bound at this size). Each seed's cover is
    // a pure function of the seed, so the chunked sweep is deterministic
    // for every thread count: the winner is the first shortest cover in
    // seed order.
    let per_chunk = exec::run_chunked(args.threads, seeds, 1, |range| {
        range
            .map(|seed| {
                let cover =
                    greedy_cover(&f, 0xF18A ^ seed as u64, 96).expect("full array has ports");
                assert!(cover.is_complete(), "direct cover incomplete");
                prune_redundant(&f, cover.paths)
            })
            .min_by_key(Vec::len)
            .expect("chunk is non-empty")
    });
    let direct_paths = per_chunk
        .into_iter()
        .min_by_key(Vec::len)
        .expect("at least one seed");
    println!(
        "(a) direct model: {} paths (paper: 2 via commercial ILP)",
        direct_paths.len()
    );
    println!("{}", render_paths(&f, &direct_paths));

    let hier = hierarchical_cover(&f, &HierarchyConfig::default()).expect("ports exist");
    assert!(hier.is_complete(), "hierarchical cover incomplete");
    println!(
        "(b) hierarchical model (5x5 blocks): {} paths (paper: 4)",
        hier.paths.len()
    );
    println!("{}", render_paths(&f, &hier.paths));
}
