//! Regenerates **Fig. 8** of the paper: flow paths on the full 10×10 array
//! from the direct model vs the hierarchical model (5×5 subblocks).
//!
//! The paper's direct ILP finds 2 paths; our direct engine (greedy with
//! serpentine seeds — the exact ILP is impractical at this size without a
//! commercial solver, see DESIGN.md §4.1) typically needs one or two more.
//! The hierarchical engine reproduces the paper's 4 paths exactly.
//!
//! Run with `cargo run --release -p fpva-bench --bin fig8`.

use fpva_atpg::heuristic::{greedy_cover, prune_redundant};
use fpva_atpg::hierarchy::{hierarchical_cover, HierarchyConfig};
use fpva_bench::render_paths;
use fpva_grid::layouts;

fn main() {
    let f = layouts::full_array(10, 10);
    println!("Fig. 8 — full 10x10 array, {} valves\n", f.valve_count());

    // Best-of-seeds randomized direct cover (the exact ILP is out of reach
    // for a textbook branch-and-bound at this size).
    let direct_paths = (0..16u64)
        .map(|seed| {
            let cover = greedy_cover(&f, 0xF18A ^ seed, 96).expect("full array has ports");
            assert!(cover.is_complete(), "direct cover incomplete");
            prune_redundant(&f, cover.paths)
        })
        .min_by_key(Vec::len)
        .expect("at least one seed");
    println!(
        "(a) direct model: {} paths (paper: 2 via commercial ILP)",
        direct_paths.len()
    );
    println!("{}", render_paths(&f, &direct_paths));

    let hier = hierarchical_cover(&f, &HierarchyConfig::default()).expect("ports exist");
    assert!(hier.is_complete(), "hierarchical cover incomplete");
    println!(
        "(b) hierarchical model (5x5 blocks): {} paths (paper: 4)",
        hier.paths.len()
    );
    println!("{}", render_paths(&f, &hier.paths));
}
