//! Ablation studies on the pipeline's main design choices:
//!
//! 1. **Path engine**: hierarchical (band) vs direct greedy vs exact ILP —
//!    vector counts and runtimes across array sizes (the trade-off behind
//!    the paper's Section III-B-4).
//! 2. **Masking constraint (9)**: pairwise two-fault detection with the
//!    generated cut-sets, exhaustive on the small arrays (the paper's
//!    "guarantee detection of any two faults" claim).
//! 3. **Leakage vectors on/off**: control-leak coverage with and without
//!    the dedicated vectors.
//!
//! Run with `cargo run --release -p fpva-bench --bin ablation`. Pass
//! `--threads N` to spread the pairwise two-fault sweep over N workers
//! (default: one per CPU; the report is identical for every count) and
//! `--kernel scalar|bit` to pick the simulation kernel the coverage
//! audits run on (default: bit-parallel; the reports are identical).

use fpva_atpg::ilp_model::{min_path_cover_ilp_with_stats, PathIlpConfig};
use fpva_atpg::{Atpg, AtpgConfig, PathEngine};
use fpva_bench::{percent_or_na, CliArgs};
use fpva_grid::layouts;
use fpva_sim::audit;
use std::time::Instant;

fn main() {
    let args = CliArgs::parse();
    println!("== Ablation 1: path engine (count, seconds) ==");
    println!(
        "{:<8} | {:>14} | {:>14} | {:>14}",
        "array", "hierarchical", "greedy", "ilp(<=5x5)"
    );
    for entry in layouts::table1() {
        let mut row = format!("{:<8} |", entry.name);
        for engine in ["hier", "greedy", "ilp"] {
            let config = match engine {
                "hier" => AtpgConfig {
                    leakage: false,
                    ..Default::default()
                },
                "greedy" => AtpgConfig {
                    path_engine: PathEngine::Greedy,
                    leakage: false,
                    ..Default::default()
                },
                _ => AtpgConfig {
                    path_engine: PathEngine::Ilp(PathIlpConfig::default()),
                    leakage: false,
                    ..Default::default()
                },
            };
            // The exact ILP is only attempted on the smallest array; the
            // larger ones would just burn the probe time limit.
            if engine == "ilp" && entry.fpva.rows() > 5 {
                row.push_str(&format!(" {:>14} |", "skipped"));
                continue;
            }
            let t0 = Instant::now();
            // The exact ILP may exhaust its per-probe time budget, in which
            // case Atpg::generate silently substitutes the greedy cover
            // (stats record the engine actually used); report that as a
            // limit rather than mislabelling greedy numbers as ILP.
            match Atpg::with_config(config).generate(&entry.fpva) {
                Ok(plan) if engine == "ilp" && plan.stats().path_engine_used != "ilp" => {
                    row.push_str(&format!(" limit {:>6.2}s |", t0.elapsed().as_secs_f64()));
                }
                Ok(plan) => row.push_str(&format!(
                    " {:>3} in {:>6.2}s |",
                    plan.flow_paths().len(),
                    t0.elapsed().as_secs_f64()
                )),
                Err(_) => row.push_str(&format!(" error {:>6.2}s |", t0.elapsed().as_secs_f64())),
            }
        }
        println!("{row}");
    }

    println!("\n== Ablation 1b: exact-ILP subblock scaling (default limits) ==");
    println!(
        "{:<10} | {:>5} | {:>8} | {:>6} | {:>12} | {:>11} | {:>5} | {:>8} | {:>8} | {:>8} | {:>9} | {:>8} | {:>9} | {:>6} | {:>4}",
        "block",
        "paths",
        "seconds",
        "probes",
        "limit-probes",
        "limit-nodes",
        "nodes",
        "pre-rows",
        "pre-cols",
        "refacts",
        "ft-updts",
        "rejected",
        "dual-pivs",
        "warm",
        "cold"
    );
    let channelled = layouts::table1_5x5();
    let blocks: Vec<(String, _)> = (2..=5usize)
        .map(|n| (format!("{n}x{n}"), layouts::full_array(n, n)))
        .chain(std::iter::once(("table1_5x5".to_string(), channelled)))
        .collect();
    let mut analysis_rows = Vec::new();
    for (name, f) in blocks {
        let t0 = Instant::now();
        let (res, stats) = min_path_cover_ilp_with_stats(&f, &PathIlpConfig::default());
        let paths = match &res {
            Ok(cover) => cover.paths.len().to_string(),
            Err(_) => "none".into(),
        };
        println!(
            "{:<10} | {:>5} | {:>7.2}s | {:>6} | {:>12} | {:>11} | {:>5} | {:>8} | {:>8} | {:>8} | {:>9} | {:>8} | {:>9} | {:>6} | {:>4}",
            name,
            paths,
            t0.elapsed().as_secs_f64(),
            stats.probes,
            stats.limit_probes,
            stats.limit_nodes,
            stats.nodes,
            stats.presolve_rows,
            stats.presolve_cols,
            stats.refactorizations,
            stats.ft_updates,
            stats.rejected_updates,
            stats.dual_pivots,
            stats.warm_resolves,
            stats.cold_restarts
        );
        analysis_rows.push((name, stats));
    }

    // The root static analysis of the same probes, reported separately so
    // neither table needs a pager: what the conflict graph, probing and
    // symmetry detection actually found on each block.
    println!("\n== Ablation 1b (analysis): root static analysis per block ==");
    println!(
        "{:<10} | {:>7} | {:>4} | {:>5} | {:>5} | {:>6} | {:>7} | {:>9} | {:>8} | {:>8}",
        "block",
        "a-probe",
        "fix",
        "impl",
        "lift",
        "edges",
        "orbits",
        "orbit-var",
        "sym-fix",
        "cert-fix"
    );
    for (name, stats) in analysis_rows {
        println!(
            "{:<10} | {:>7} | {:>4} | {:>5} | {:>5} | {:>6} | {:>7} | {:>9} | {:>8} | {:>8}",
            name,
            stats.analysis_probes,
            stats.probe_fixings,
            stats.implications,
            stats.lifted_bounds,
            stats.conflict_edges,
            stats.orbit_count,
            stats.orbit_vars,
            stats.orbit_fixings,
            stats.certificate_fixings
        );
    }

    println!("\n== Ablation 2: two-fault detection (stuck-at-0 x stuck-at-1 pairs) ==");
    for entry in layouts::table1().into_iter().take(2) {
        let plan = Atpg::new().generate(&entry.fpva).expect("valid layout");
        let suite = plan.to_suite(&entry.fpva);
        let report = if entry.fpva.valve_count() <= 200 {
            audit::two_fault_audit_with(&entry.fpva, &suite, args.threads, args.kernel)
        } else {
            audit::two_fault_audit_sampled(&entry.fpva, &suite, 20_000, 7)
        };
        println!(
            "{:<8}: {}/{} pairs detected ({})",
            entry.name,
            report.total - report.undetected.len(),
            report.total,
            percent_or_na(report.coverage())
        );
    }

    println!("\n== Ablation 3: control-leak coverage with/without leakage vectors ==");
    for entry in layouts::table1().into_iter().take(2) {
        let with = Atpg::new().generate(&entry.fpva).expect("valid layout");
        let without = Atpg::with_config(AtpgConfig {
            leakage: false,
            ..Default::default()
        })
        .generate(&entry.fpva)
        .expect("valid layout");
        let cov_with =
            audit::leak_coverage_with(&entry.fpva, &with.to_suite(&entry.fpva), args.kernel);
        let cov_without =
            audit::leak_coverage_with(&entry.fpva, &without.to_suite(&entry.fpva), args.kernel);
        println!(
            "{:<8}: with n_l={} -> {} | without -> {}",
            entry.name,
            with.leakage_paths().len(),
            percent_or_na(cov_with.coverage()),
            percent_or_na(cov_without.coverage())
        );
    }
}
