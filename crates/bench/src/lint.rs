//! Static analysis of chips and their ILP cover models (`fpva-lint`).
//!
//! The checks mirror the failure modes the rest of the workspace can only
//! discover dynamically (by running ATPG or the MILP solver): valves that no
//! source→sink flow path can exercise, sinks that are unreachable even with
//! every valve open, valves without a closable cut (untestable stuck-at-1),
//! control-leak pairs with zero pressure observability, and cover models
//! whose constraint count deviates from the closed-form formula or whose
//! coefficients look numerically hostile. Everything here is static: no LP
//! is factorized and no simulation is run — the most expensive ingredient
//! is a breadth-first search or a presolve pass.

use std::collections::HashSet;
use std::fmt;

use fpva_atpg::{connectivity, cutset, ilp_model};
use fpva_grid::layouts;
use fpva_grid::{CellKind, EdgeId, Fpva};
use fpva_ilp::{numerics_report, presolve, PresolveOutcome};
use fpva_sim::ObservableLeaks;

/// How bad a [`Diagnostic`] is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Expected, informational output (e.g. presolve reduction summary).
    Info,
    /// Suspicious but not fatal: the chip works, with blind spots.
    Warning,
    /// The chip or model is broken; `fpva-lint` exits nonzero.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of a lint pass over a chip or a cover model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad the finding is.
    pub severity: Severity,
    /// The chip or model the finding is about (e.g. `"table1_5x5"`).
    pub subject: String,
    /// Short machine-readable check name (e.g. `"cut-cover"`).
    pub check: &'static str,
    /// Human-readable description, with coordinates where applicable.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [{}]: {}",
            self.severity, self.subject, self.check, self.message
        )
    }
}

/// The worst severity in `diags`, or `None` when the slice is empty.
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

/// Formats up to six edges as `(r,c)-(r,c)` coordinates, eliding the rest.
fn edge_list(edges: &[EdgeId]) -> String {
    const CAP: usize = 6;
    let mut parts: Vec<String> = edges
        .iter()
        .take(CAP)
        .map(std::string::ToString::to_string)
        .collect();
    if edges.len() > CAP {
        parts.push(format!("… {} more", edges.len() - CAP));
    }
    parts.join(", ")
}

/// Statically audits one chip.
///
/// Checks, in order: port presence, all-open sink reachability, stranded
/// flow cells, valves on no source→sink flow path, valves with no closable
/// cut (the `untestable_closed` set of a generated plan), and control-leak
/// pairs with zero observability.
pub fn lint_chip(name: &str, fpva: &Fpva) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut push = |severity, check, message: String| {
        out.push(Diagnostic {
            severity,
            subject: name.to_string(),
            check,
            message,
        });
    };

    let sources = connectivity::source_cells(fpva);
    let sinks = connectivity::sink_cells(fpva);
    if sources.is_empty() {
        push(
            Severity::Error,
            "ports",
            "chip has no pressure source port".into(),
        );
    }
    if sinks.is_empty() {
        push(
            Severity::Error,
            "ports",
            "chip has no pressure meter (sink) port".into(),
        );
    }
    if sources.is_empty() || sinks.is_empty() {
        return out;
    }

    // All-open reachability: the weakest possible requirement — if a sink
    // cannot see a source with every valve open, no test vector ever will.
    let open = HashSet::new();
    let from_src = connectivity::reachable_from(fpva, &sources, &open);
    let from_snk = connectivity::reachable_from(fpva, &sinks, &open);
    for (id, port) in fpva.sinks() {
        if !from_src[fpva.cell_index(port.cell)] {
            push(
                Severity::Error,
                "connectivity",
                format!(
                    "sink {id} at {} is unreachable from every source even with all valves open",
                    port.cell
                ),
            );
        }
    }
    let stranded: Vec<_> = fpva
        .cells()
        .filter(|&c| fpva.cell_kind(c) != CellKind::Obstacle && !from_src[fpva.cell_index(c)])
        .collect();
    if !stranded.is_empty() {
        push(
            Severity::Warning,
            "connectivity",
            format!(
                "{} flow cell(s) unreachable from any source, first {}",
                stranded.len(),
                stranded[0]
            ),
        );
    }

    // A valve both of whose endpoints are source- and sink-reachable can sit
    // on some source→sink walk; anything else is dead weight for flow tests.
    let dead: Vec<EdgeId> = fpva
        .valves()
        .filter(|&(_, e)| {
            let (a, b) = e.endpoints();
            ![a, b].into_iter().all(|c| {
                let ix = fpva.cell_index(c);
                from_src[ix] && from_snk[ix]
            })
        })
        .map(|(_, e)| e)
        .collect();
    if !dead.is_empty() {
        push(
            Severity::Warning,
            "flow-paths",
            format!(
                "{} valve(s) lie on no source→sink flow path: {}",
                dead.len(),
                edge_list(&dead)
            ),
        );
    }

    // Valves no source/sink cut can close: the plan generator would report
    // exactly these as `untestable_closed` (stuck-at-1 escapes).
    match cutset::cut_cover(fpva) {
        Ok(cover) if !cover.uncovered.is_empty() => {
            let edges: Vec<EdgeId> = cover.uncovered.iter().map(|&v| fpva.edge_of(v)).collect();
            push(
                Severity::Warning,
                "cut-cover",
                format!(
                    "{} valve(s) have no closable source/sink cut (untestable stuck-at-1): {}",
                    edges.len(),
                    edge_list(&edges)
                ),
            );
        }
        Ok(_) => {}
        Err(e) => push(
            Severity::Error,
            "cut-cover",
            format!("cut-set construction failed: {e}"),
        ),
    }

    // Control leaks the pressure meters can never observe.
    let pairs = ObservableLeaks::build(fpva).unobservable_pairs(fpva);
    if !pairs.is_empty() {
        push(
            Severity::Info,
            "leak-observability",
            format!(
                "{} adjacent valve pair(s) have control leaks with zero pressure observability",
                pairs.len()
            ),
        );
    }

    out
}

/// Statically audits the `k`-path ILP cover model of one chip.
///
/// Checks the generated constraint count against the closed-form formula,
/// flags numerically hostile coefficients, and runs presolve — both as a
/// reduction summary and as a certified feasibility screen (a presolve
/// `Infeasible`/`Unbounded` verdict on a cover model is always a chip bug).
pub fn lint_model(name: &str, fpva: &Fpva, k: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut push = |severity, check, message: String| {
        out.push(Diagnostic {
            severity,
            subject: name.to_string(),
            check,
            message,
        });
    };

    let model = ilp_model::cover_model(fpva, k);
    let expected = ilp_model::expected_constraint_count(fpva, k);
    if model.constraint_count() != expected {
        push(
            Severity::Error,
            "model-shape",
            format!(
                "k={k} cover model has {} constraints, closed-form count predicts {expected}",
                model.constraint_count()
            ),
        );
    }

    let rep = numerics_report(&model);
    if rep.tiny_coeffs > 0 || rep.huge_coeffs > 0 {
        push(
            Severity::Warning,
            "numerics",
            format!(
                "{} coefficient(s) below 1e-7 and {} above 1e7 (range [{:.3e}, {:.3e}])",
                rep.tiny_coeffs, rep.huge_coeffs, rep.min_abs_coeff, rep.max_abs_coeff
            ),
        );
    }

    let pre = presolve(&model);
    match pre.outcome {
        PresolveOutcome::Infeasible { reason } => push(
            Severity::Error,
            "presolve",
            format!("k={k} cover model certified infeasible without factorizing: {reason}"),
        ),
        PresolveOutcome::Unbounded => push(
            Severity::Error,
            "presolve",
            format!("k={k} cover model certified unbounded"),
        ),
        PresolveOutcome::Reduced(_) | PresolveOutcome::Solved(_) => push(
            Severity::Info,
            "presolve",
            format!(
                "k={k}: presolve removed {} of {} rows and {} of {} cols in {} pass(es)",
                pre.stats.rows_removed,
                model.constraint_count(),
                pre.stats.cols_removed,
                model.var_count(),
                pre.stats.passes
            ),
        ),
    }

    out
}

/// The chips exercised by the `examples/` binaries that are not already
/// Table I instances, with stable lint subject names.
pub fn example_chips() -> Vec<(&'static str, Fpva)> {
    vec![
        ("custom_biochip", layouts::custom_biochip()),
        ("full_3x3", layouts::full_array(3, 3)),
        ("full_10x10", layouts::full_array(10, 10)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_chips_lint_without_errors() {
        for entry in layouts::table1() {
            let diags = lint_chip(entry.name, &entry.fpva);
            assert!(
                max_severity(&diags) < Some(Severity::Error),
                "{}: unexpected lint error: {diags:?}",
                entry.name
            );
        }
    }

    #[test]
    fn custom_biochip_untestable_closed_flagged_with_coordinates() {
        let f = layouts::custom_biochip();
        let diags = lint_chip("custom_biochip", &f);
        let cut = diags
            .iter()
            .find(|d| d.check == "cut-cover")
            .expect("custom_biochip must trigger the cut-cover lint");
        assert_eq!(cut.severity, Severity::Warning);
        // The diagnostic must carry valve coordinates in `(r,c)-(r,c)` form.
        let uncovered = cutset::cut_cover(&f).unwrap().uncovered;
        assert!(!uncovered.is_empty());
        let first = f.edge_of(uncovered[0]).to_string();
        assert!(
            cut.message.contains(&first),
            "message {:?} lacks coordinate {first}",
            cut.message
        );
    }

    #[test]
    fn model_lint_is_clean_on_5x5() {
        let diags = lint_model("table1_5x5", &layouts::table1_5x5(), 2);
        assert!(
            max_severity(&diags) < Some(Severity::Error),
            "unexpected model lint error: {diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.check == "presolve" && d.severity == Severity::Info),
            "presolve summary missing: {diags:?}"
        );
    }

    #[test]
    fn chip_without_ports_is_an_error() {
        let f = fpva_grid::FpvaBuilder::new(3, 3).build().unwrap();
        let diags = lint_chip("portless", &f);
        assert_eq!(max_severity(&diags), Some(Severity::Error));
    }

    #[test]
    fn severity_orders_and_prints() {
        assert!(Severity::Info < Severity::Warning && Severity::Warning < Severity::Error);
        assert_eq!(Severity::Warning.to_string(), "warning");
        assert_eq!(max_severity(&[]), None);
    }
}
