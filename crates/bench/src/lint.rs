//! Static analysis of chips and their ILP cover models (`fpva-lint`).
//!
//! The checks mirror the failure modes the rest of the workspace can only
//! discover dynamically (by running ATPG or the MILP solver): valves that no
//! source→sink flow path can exercise, sinks that are unreachable even with
//! every valve open, valves without a closable cut (untestable stuck-at-1),
//! control-leak pairs with zero pressure observability, and cover models
//! whose constraint count deviates from the closed-form formula or whose
//! coefficients look numerically hostile. Everything here is static: no LP
//! is factorized and no simulation is run — the most expensive ingredient
//! is a breadth-first search or a presolve pass.

use std::collections::HashSet;
use std::fmt;
use std::time::Duration;

use fpva_atpg::{connectivity, cutset, ilp_model};
use fpva_grid::layouts;
use fpva_grid::{CellId, CellKind, EdgeId, Fpva};
use fpva_ilp::{
    certify_outcome, numerics_report, presolve, MilpOptions, MilpSolver, PresolveOutcome,
    SolveStatus,
};
use fpva_sim::ObservableLeaks;

/// How bad a [`Diagnostic`] is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Expected, informational output (e.g. presolve reduction summary).
    Info,
    /// Suspicious but not fatal: the chip works, with blind spots.
    Warning,
    /// The chip or model is broken; `fpva-lint` exits nonzero.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of a lint pass over a chip or a cover model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad the finding is.
    pub severity: Severity,
    /// The chip or model the finding is about (e.g. `"table1_5x5"`).
    pub subject: String,
    /// Short machine-readable check name (e.g. `"cut-cover"`).
    pub check: &'static str,
    /// Human-readable description, with coordinates where applicable.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [{}]: {}",
            self.severity, self.subject, self.check, self.message
        )
    }
}

/// The worst severity in `diags`, or `None` when the slice is empty.
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

/// Formats up to six edges as `(r,c)-(r,c)` coordinates, eliding the rest.
fn edge_list(edges: &[EdgeId]) -> String {
    const CAP: usize = 6;
    let mut parts: Vec<String> = edges
        .iter()
        .take(CAP)
        .map(std::string::ToString::to_string)
        .collect();
    if edges.len() > CAP {
        parts.push(format!("… {} more", edges.len() - CAP));
    }
    parts.join(", ")
}

/// Statically audits one chip.
///
/// Checks, in order: port presence, all-open sink reachability, stranded
/// flow cells, valves on no source→sink flow path, valves with no closable
/// cut (the `untestable_closed` set of a generated plan), and control-leak
/// pairs with zero observability.
pub fn lint_chip(name: &str, fpva: &Fpva) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut push = |severity, check, message: String| {
        out.push(Diagnostic {
            severity,
            subject: name.to_string(),
            check,
            message,
        });
    };

    let sources = connectivity::source_cells(fpva);
    let sinks = connectivity::sink_cells(fpva);
    if sources.is_empty() {
        push(
            Severity::Error,
            "ports",
            "chip has no pressure source port".into(),
        );
    }
    if sinks.is_empty() {
        push(
            Severity::Error,
            "ports",
            "chip has no pressure meter (sink) port".into(),
        );
    }
    if sources.is_empty() || sinks.is_empty() {
        return out;
    }

    // All-open reachability: the weakest possible requirement — if a sink
    // cannot see a source with every valve open, no test vector ever will.
    let open = HashSet::new();
    let from_src = connectivity::reachable_from(fpva, &sources, &open);
    let from_snk = connectivity::reachable_from(fpva, &sinks, &open);
    for (id, port) in fpva.sinks() {
        if !from_src[fpva.cell_index(port.cell)] {
            push(
                Severity::Error,
                "connectivity",
                format!(
                    "sink {id} at {} is unreachable from every source even with all valves open",
                    port.cell
                ),
            );
        }
    }
    let stranded: Vec<_> = fpva
        .cells()
        .filter(|&c| fpva.cell_kind(c) != CellKind::Obstacle && !from_src[fpva.cell_index(c)])
        .collect();
    if !stranded.is_empty() {
        push(
            Severity::Warning,
            "connectivity",
            format!(
                "{} flow cell(s) unreachable from any source, first {}",
                stranded.len(),
                stranded[0]
            ),
        );
    }

    // A valve both of whose endpoints are source- and sink-reachable can sit
    // on some source→sink walk; anything else is dead weight for flow tests.
    let dead: Vec<EdgeId> = fpva
        .valves()
        .filter(|&(_, e)| {
            let (a, b) = e.endpoints();
            ![a, b].into_iter().all(|c| {
                let ix = fpva.cell_index(c);
                from_src[ix] && from_snk[ix]
            })
        })
        .map(|(_, e)| e)
        .collect();
    if !dead.is_empty() {
        push(
            Severity::Warning,
            "flow-paths",
            format!(
                "{} valve(s) lie on no source→sink flow path: {}",
                dead.len(),
                edge_list(&dead)
            ),
        );
    }

    // Valves no source/sink cut can close: the plan generator would report
    // exactly these as `untestable_closed` (stuck-at-1 escapes).
    match cutset::cut_cover(fpva) {
        Ok(cover) if !cover.uncovered.is_empty() => {
            let edges: Vec<EdgeId> = cover.uncovered.iter().map(|&v| fpva.edge_of(v)).collect();
            push(
                Severity::Warning,
                "cut-cover",
                format!(
                    "{} valve(s) have no closable source/sink cut (untestable stuck-at-1): {}",
                    edges.len(),
                    edge_list(&edges)
                ),
            );
        }
        Ok(_) => {}
        Err(e) => push(
            Severity::Error,
            "cut-cover",
            format!("cut-set construction failed: {e}"),
        ),
    }

    // Control leaks the pressure meters can never observe.
    let pairs = ObservableLeaks::build(fpva).unobservable_pairs(fpva);
    if !pairs.is_empty() {
        push(
            Severity::Info,
            "leak-observability",
            format!(
                "{} adjacent valve pair(s) have control leaks with zero pressure observability",
                pairs.len()
            ),
        );
    }

    out
}

/// Statically audits the `k`-path ILP cover model of one chip.
///
/// Checks the generated constraint count against the closed-form formula,
/// flags numerically hostile coefficients, and runs presolve — both as a
/// reduction summary and as a certified feasibility screen (a presolve
/// `Infeasible`/`Unbounded` verdict on a cover model is always a chip bug).
pub fn lint_model(name: &str, fpva: &Fpva, k: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut push = |severity, check, message: String| {
        out.push(Diagnostic {
            severity,
            subject: name.to_string(),
            check,
            message,
        });
    };

    let model = ilp_model::cover_model(fpva, k);
    let expected = ilp_model::expected_constraint_count(fpva, k);
    if model.constraint_count() != expected {
        push(
            Severity::Error,
            "model-shape",
            format!(
                "k={k} cover model has {} constraints, closed-form count predicts {expected}",
                model.constraint_count()
            ),
        );
    }

    let rep = numerics_report(&model);
    if rep.tiny_coeffs > 0 || rep.huge_coeffs > 0 {
        push(
            Severity::Warning,
            "numerics",
            format!(
                "{} coefficient(s) below 1e-7 and {} above 1e7 (range [{:.3e}, {:.3e}])",
                rep.tiny_coeffs, rep.huge_coeffs, rep.min_abs_coeff, rep.max_abs_coeff
            ),
        );
    }

    let pre = presolve(&model);
    match pre.outcome {
        PresolveOutcome::Infeasible { reason } => push(
            Severity::Error,
            "presolve",
            format!("k={k} cover model certified infeasible without factorizing: {reason}"),
        ),
        PresolveOutcome::Unbounded => push(
            Severity::Error,
            "presolve",
            format!("k={k} cover model certified unbounded"),
        ),
        PresolveOutcome::Reduced(_) | PresolveOutcome::Solved(_) => push(
            Severity::Info,
            "presolve",
            format!(
                "k={k}: presolve removed {} of {} rows and {} of {} cols in {} pass(es)",
                pre.stats.rows_removed,
                model.constraint_count(),
                pre.stats.cols_removed,
                model.var_count(),
                pre.stats.passes
            ),
        ),
    }

    out
}

/// Statically audits the root-analysis surface of the `k`-path cover
/// model: conflict-graph density and symmetry-orbit structure.
///
/// Both checks are **structural only** — probing is disabled
/// (`probe_cap = 0`), so the pass stays cheap even on the 30×30 Table I
/// chip. `conflict-density` summarises the set-packing shape the solver's
/// clique table will see. `symmetry` runs the grid-automorphism survey:
/// every dihedral map compatible with the chip is lifted to a signed
/// variable permutation and *verified structurally* on the model — a
/// chip-compatible candidate the model rejects is a warning, because the
/// cover model then breaks a symmetry the chip itself appears to have
/// (usually a modelling bug, and always a lost pruning opportunity).
pub fn lint_analysis(name: &str, fpva: &Fpva, k: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut push = |severity, check, message: String| {
        out.push(Diagnostic {
            severity,
            subject: name.to_string(),
            check,
            message,
        });
    };

    let model = ilp_model::cover_model(fpva, k);
    let analysis = fpva_ilp::analyze::analyze(
        &model,
        &[],
        &fpva_ilp::AnalyzeOptions {
            certify: false,
            probe_cap: 0,
        },
    );
    let s = analysis.stats;
    let possible = s.binaries.saturating_mul(s.binaries.saturating_sub(1)) / 2;
    let density = if possible == 0 {
        0.0
    } else {
        s.conflict_edges as f64 / possible as f64
    };
    push(
        Severity::Info,
        "conflict-density",
        format!(
            "k={k}: {} binaries, {} structural conflict edge(s) (density {:.2e}), \
             {} clique(s), largest {}",
            s.binaries, s.conflict_edges, density, s.cliques, s.max_clique
        ),
    );

    let rep = ilp_model::symmetry_report(fpva, k);
    if rep.rejected > 0 {
        push(
            Severity::Warning,
            "symmetry",
            format!(
                "k={k}: {} of {} chip-compatible grid map(s) failed structural \
                 verification on the cover model (the model breaks a symmetry \
                 the chip has)",
                rep.rejected,
                rep.rejected + rep.verified
            ),
        );
    }
    push(
        Severity::Info,
        "symmetry",
        format!(
            "k={k}: {} dihedral candidate(s), {} verified generator(s); \
             {} orbit(s) covering {} of {} binaries",
            rep.candidates, rep.verified, rep.orbit_count, rep.orbit_vars, rep.binaries
        ),
    );

    out
}

/// Ceiling on candidate paths enumerated by [`lint_paths`]; past it the
/// dominance check reports itself as partial instead of truncating
/// silently.
const PATH_ENUM_CAP: usize = 128;

/// Ceiling on DFS edge expansions of [`lint_paths`], a safety valve for
/// chips whose path space is huge but sink-sparse.
const PATH_STEP_CAP: usize = 200_000;

/// Branch-and-bound node budget per certified probe of
/// [`certify_models`] — bounds the proof tree the exact-arithmetic audit
/// must replay, since auditing costs roughly nodes × rows big-rational
/// operations.
const CERTIFY_NODE_BUDGET: usize = 2_000;

/// Depth-first enumeration of simple source→sink paths, recorded as
/// sorted edge lists. Returns `true` while under both caps.
fn enumerate_paths(
    fpva: &Fpva,
    cell: CellId,
    sinks: &HashSet<CellId>,
    visited: &mut [bool],
    edges: &mut Vec<EdgeId>,
    paths: &mut Vec<Vec<EdgeId>>,
    steps: &mut usize,
) -> bool {
    if sinks.contains(&cell) && !edges.is_empty() {
        if paths.len() == PATH_ENUM_CAP {
            return false;
        }
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        paths.push(sorted);
    }
    for (edge, next) in fpva.neighbors(cell) {
        if !connectivity::edge_passable(fpva, edge)
            || fpva.cell_kind(next) == CellKind::Obstacle
            || visited[fpva.cell_index(next)]
        {
            continue;
        }
        *steps += 1;
        if *steps > PATH_STEP_CAP {
            return false;
        }
        visited[fpva.cell_index(next)] = true;
        edges.push(edge);
        let under_cap = enumerate_paths(fpva, next, sinks, visited, edges, paths, steps);
        edges.pop();
        visited[fpva.cell_index(next)] = false;
        if !under_cap {
            return false;
        }
    }
    true
}

/// `true` when sorted slice `a` is a subset of sorted slice `b`.
fn is_subset(a: &[EdgeId], b: &[EdgeId]) -> bool {
    let mut it = b.iter();
    a.iter().all(|x| it.any(|y| y == x))
}

/// Detects duplicate and dominated candidate paths of the cover model.
///
/// Enumerates simple source→sink paths (the walks the k-path ILP chooses
/// among) and compares their edge sets pairwise: two candidates with
/// *identical* edge sets are duplicates (distinct port pairs routing the
/// same channel run), and a candidate whose edge set is a *strict subset*
/// of another's is dominated — every valve it can exercise, the superset
/// path exercises too, so it can only enlarge the search space, never the
/// cover. Both are warnings with `(r,c)-(r,c)` coordinates. Enumeration
/// is capped (`PATH_ENUM_CAP` paths / `PATH_STEP_CAP` expansions);
/// past a cap an info diagnostic marks the check as partial.
pub fn lint_paths(name: &str, fpva: &Fpva) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut push = |severity, check, message: String| {
        out.push(Diagnostic {
            severity,
            subject: name.to_string(),
            check,
            message,
        });
    };

    let sources = connectivity::source_cells(fpva);
    let sinks: HashSet<CellId> = connectivity::sink_cells(fpva).into_iter().collect();
    let mut paths: Vec<Vec<EdgeId>> = Vec::new();
    let mut steps = 0usize;
    let mut complete = true;
    let mut seen_starts: HashSet<CellId> = HashSet::new();
    for &start in &sources {
        if !seen_starts.insert(start) || fpva.cell_kind(start) == CellKind::Obstacle {
            continue;
        }
        let mut visited = vec![false; fpva.cell_count()];
        visited[fpva.cell_index(start)] = true;
        let mut edges = Vec::new();
        if !enumerate_paths(
            fpva,
            start,
            &sinks,
            &mut visited,
            &mut edges,
            &mut paths,
            &mut steps,
        ) {
            complete = false;
            break;
        }
    }
    if !complete {
        push(
            Severity::Info,
            "path-dominance",
            format!(
                "path enumeration truncated at {} path(s) / {steps} expansion(s); \
                 the dominance check is partial",
                paths.len()
            ),
        );
    }

    const REPORT_CAP: usize = 4;
    let mut flagged = vec![false; paths.len()];
    let mut extra = 0usize;
    for i in 0..paths.len() {
        for j in i + 1..paths.len() {
            let (kind, victim) = if paths[i] == paths[j] {
                ("duplicate of", j)
            } else if is_subset(&paths[i], &paths[j]) {
                ("dominated by", i)
            } else if is_subset(&paths[j], &paths[i]) {
                ("dominated by", j)
            } else {
                continue;
            };
            if flagged[victim] {
                continue;
            }
            flagged[victim] = true;
            if flagged.iter().filter(|&&f| f).count() > REPORT_CAP {
                extra += 1;
                continue;
            }
            let other = i + j - victim;
            push(
                Severity::Warning,
                "path-dominance",
                format!(
                    "candidate path {} is {kind} a {}-edge candidate {}",
                    edge_list(&paths[victim]),
                    paths[other].len(),
                    edge_list(&paths[other]),
                ),
            );
        }
    }
    if extra > 0 {
        push(
            Severity::Warning,
            "path-dominance",
            format!("{extra} further duplicate/dominated candidate path(s) elided"),
        );
    }
    out
}

/// Solves the chip's path-cover probes in proof-logging mode and audits
/// every returned certificate in exact rational arithmetic
/// ([`fpva_ilp::certify_outcome`]).
///
/// Up to three solves run per chip: one at `k = lb − 1`, *below* the
/// structural lower bound [`ilp_model::min_cover_paths`] — the verdict
/// must be `Infeasible` and its branch-and-bound proof must re-verify —
/// and the probe sequence at `k = lb` and `lb + 1`, whose
/// optimal/feasible/infeasible verdicts must carry certificates that
/// re-verify. A rejected
/// certificate is always an error (the solver asserted something it
/// cannot prove); a probe that exhausts `probe_budget` without a verdict
/// is only informational.
///
/// Certified solves additionally run under `CERTIFY_NODE_BUDGET`: a
/// proof tree is re-verified leaf by leaf in exact rational arithmetic,
/// so its audit cost scales with nodes × rows — a tree that outgrows the
/// budget would take longer to audit than to find. Probes that hit the
/// node budget return unproven verdicts (`Feasible`/`Unknown`), whose
/// incumbents are still audited exactly.
pub fn certify_models(name: &str, fpva: &Fpva, probe_budget: Duration) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut push = |severity, check, message: String| {
        out.push(Diagnostic {
            severity,
            subject: name.to_string(),
            check,
            message,
        });
    };

    let lb = ilp_model::min_cover_paths(fpva);
    if lb >= 2 {
        let k = lb - 1;
        let model = ilp_model::cover_model(fpva, k);
        let solver = MilpSolver::with_options(MilpOptions {
            time_limit: Some(probe_budget),
            node_limit: Some(CERTIFY_NODE_BUDGET),
            certificate: true,
            ..MilpOptions::default()
        });
        match solver.solve(&model) {
            Ok(outcome) => match outcome.status {
                SolveStatus::Infeasible => match certify_outcome(&model, &outcome) {
                    Ok(summary) => push(
                        Severity::Info,
                        "certify",
                        format!(
                            "k={k} (below the structural lower bound {lb}) proven \
                             infeasible; proof re-verified exactly ({} leaves, \
                             {} presolve action(s))",
                            summary.leaves, summary.actions
                        ),
                    ),
                    Err(e) => push(
                        Severity::Error,
                        "certify",
                        format!("k={k} infeasibility certificate rejected: {e}"),
                    ),
                },
                SolveStatus::Unknown => push(
                    Severity::Info,
                    "certify",
                    format!("k={k} infeasibility not proven within the probe budget"),
                ),
                other => push(
                    Severity::Error,
                    "certify",
                    format!(
                        "k={k} is below the structural lower bound {lb} yet the \
                         solver returned {other:?}"
                    ),
                ),
            },
            Err(e) => push(
                Severity::Error,
                "certify",
                format!("k={k} solve failed: {e}"),
            ),
        }
    }

    // Probe only k = lb and lb + 1: exact covers on the direct (flat)
    // formulation are open-ended — the paper's hierarchical flow exists
    // precisely because large direct models outgrow any solver budget —
    // so the audit pins its cost at two certified solves and reports
    // anything beyond as unprobed.
    let config = ilp_model::PathIlpConfig {
        certify: true,
        time_limit: probe_budget,
        node_limit: CERTIFY_NODE_BUDGET,
        max_paths: lb + 1,
    };
    let (cover, stats) = ilp_model::min_path_cover_ilp_with_stats(fpva, &config);
    if stats.certificate_failures > 0 {
        push(
            Severity::Error,
            "certify",
            format!(
                "{} of {} probe certificate(s) failed exact re-verification",
                stats.certificate_failures, stats.probes
            ),
        );
    } else if stats.certified_probes > 0 {
        push(
            Severity::Info,
            "certify",
            format!(
                "{} probe(s) certified exactly: {} branch-and-bound leaves re-proved, \
                 {} presolve action(s) audited",
                stats.certified_probes, stats.certificate_leaves, stats.certificate_actions
            ),
        );
    }
    match cover {
        Ok(c) => push(
            Severity::Info,
            "certify",
            format!("minimum certified cover uses {} path(s)", c.paths.len()),
        ),
        // Inconclusive, not wrong: either the budget ran out, or every
        // probed k was proven coverless — larger k are simply unprobed.
        Err(e) => push(
            Severity::Info,
            "certify",
            format!("no certified cover with at most {} path(s): {e}", lb + 1),
        ),
    }
    out
}

/// The chips exercised by the `examples/` binaries that are not already
/// Table I instances, with stable lint subject names.
pub fn example_chips() -> Vec<(&'static str, Fpva)> {
    vec![
        ("custom_biochip", layouts::custom_biochip()),
        ("full_3x3", layouts::full_array(3, 3)),
        ("full_10x10", layouts::full_array(10, 10)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_chips_lint_without_errors() {
        for entry in layouts::table1() {
            let diags = lint_chip(entry.name, &entry.fpva);
            assert!(
                max_severity(&diags) < Some(Severity::Error),
                "{}: unexpected lint error: {diags:?}",
                entry.name
            );
        }
    }

    #[test]
    fn custom_biochip_untestable_closed_flagged_with_coordinates() {
        let f = layouts::custom_biochip();
        let diags = lint_chip("custom_biochip", &f);
        let cut = diags
            .iter()
            .find(|d| d.check == "cut-cover")
            .expect("custom_biochip must trigger the cut-cover lint");
        assert_eq!(cut.severity, Severity::Warning);
        // The diagnostic must carry valve coordinates in `(r,c)-(r,c)` form.
        let uncovered = cutset::cut_cover(&f).unwrap().uncovered;
        assert!(!uncovered.is_empty());
        let first = f.edge_of(uncovered[0]).to_string();
        assert!(
            cut.message.contains(&first),
            "message {:?} lacks coordinate {first}",
            cut.message
        );
    }

    #[test]
    fn model_lint_is_clean_on_5x5() {
        let diags = lint_model("table1_5x5", &layouts::table1_5x5(), 2);
        assert!(
            max_severity(&diags) < Some(Severity::Error),
            "unexpected model lint error: {diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.check == "presolve" && d.severity == Severity::Info),
            "presolve summary missing: {diags:?}"
        );
    }

    #[test]
    fn chip_without_ports_is_an_error() {
        let f = fpva_grid::FpvaBuilder::new(3, 3).build().unwrap();
        let diags = lint_chip("portless", &f);
        assert_eq!(max_severity(&diags), Some(Severity::Error));
    }

    #[test]
    fn dominated_candidate_paths_flagged_with_coordinates() {
        use fpva_grid::{FpvaBuilder, PortKind, Side};
        // Source at the west end, sinks midway and at the east end: the
        // short candidate's edge set is a strict subset of the long one's.
        let f = FpvaBuilder::new(1, 4)
            .port(0, 0, Side::West, PortKind::Source)
            .port(0, 2, Side::North, PortKind::Sink)
            .port(0, 3, Side::East, PortKind::Sink)
            .build()
            .unwrap();
        let diags = lint_paths("dominated", &f);
        let dom = diags
            .iter()
            .find(|d| d.check == "path-dominance" && d.severity == Severity::Warning)
            .expect("the midway-sink path must be flagged as dominated");
        assert!(
            dom.message.contains("dominated by") && dom.message.contains("(0,1)-(0,2)"),
            "message lacks verdict or coordinates: {:?}",
            dom.message
        );
    }

    #[test]
    fn full_arrays_have_no_dominated_candidates() {
        // Single source, single sink: two simple paths with the same
        // endpoints can never have nested edge sets.
        let diags = lint_paths("full_3x3", &layouts::full_array(3, 3));
        assert!(
            diags
                .iter()
                .all(|d| d.check != "path-dominance" || d.severity < Severity::Warning),
            "unexpected dominance warning: {diags:?}"
        );
    }

    #[test]
    fn certify_lint_proves_and_audits_two_by_two() {
        // 2×2 needs two paths: the probe sequence proves k=1 infeasible,
        // then k=2 optimal — both verdicts must re-verify exactly.
        let diags = certify_models(
            "full_2x2",
            &layouts::full_array(2, 2),
            Duration::from_secs(60),
        );
        assert!(
            max_severity(&diags) < Some(Severity::Error),
            "certificate audit failed: {diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.check == "certify" && d.message.contains("certified exactly")),
            "no certified probe reported: {diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("cover uses 2 path(s)")),
            "expected a two-path certified cover: {diags:?}"
        );
    }

    #[test]
    fn severity_orders_and_prints() {
        assert!(Severity::Info < Severity::Warning && Severity::Warning < Severity::Error);
        assert_eq!(Severity::Warning.to_string(), "warning");
        assert_eq!(max_severity(&[]), None);
    }
}
