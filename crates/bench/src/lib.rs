//! Shared helpers for the benchmark binaries and Criterion benches that
//! regenerate the tables and figures of the paper.

use fpva_atpg::{Atpg, TestPlan};
use fpva_grid::layouts::Table1Entry;
use fpva_grid::Fpva;

/// A generated plan next to its Table I reference row.
pub struct PlannedEntry {
    /// The benchmark instance with the paper's reported numbers.
    pub entry: Table1Entry,
    /// Our generated plan.
    pub plan: TestPlan,
}

/// Generates plans for every Table I array with the default configuration.
///
/// # Panics
///
/// Panics if generation fails on a benchmark layout (they are validated by
/// the test suite, so this indicates a build problem).
pub fn plan_table1() -> Vec<PlannedEntry> {
    fpva_grid::layouts::table1()
        .into_iter()
        .map(|entry| {
            let plan = Atpg::new()
                .generate(&entry.fpva)
                .unwrap_or_else(|e| panic!("plan generation failed for {}: {e}", entry.name));
            PlannedEntry { entry, plan }
        })
        .collect()
}

/// Renders an array with its flow paths overlaid, one digit/letter per
/// path (`1`–`9`, then `a`–`z`), for the Fig. 8/9 reproductions.
pub fn render_paths(fpva: &Fpva, paths: &[fpva_atpg::FlowPath]) -> String {
    let mut decor = fpva_grid::render::Decor::new();
    for (i, path) in paths.iter().enumerate() {
        let mark = path_mark(i);
        for pair in path.cells().windows(2) {
            if let Some(edge) = fpva.edge_between(pair[0], pair[1]) {
                decor.mark_edge(edge, mark);
            }
        }
        for &cell in path.cells() {
            decor.mark_cell(cell, mark);
        }
    }
    fpva_grid::render::render_with(fpva, &decor)
}

/// Digit/letter label for the `i`-th path.
pub fn path_mark(i: usize) -> char {
    match i {
        0..=8 => char::from(b'1' + i as u8),
        _ => char::from(b'a' + ((i - 9) % 26) as u8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_marks_cycle() {
        assert_eq!(path_mark(0), '1');
        assert_eq!(path_mark(8), '9');
        assert_eq!(path_mark(9), 'a');
        assert_eq!(path_mark(10), 'b');
    }

    #[test]
    fn render_paths_marks_edges() {
        let f = fpva_grid::layouts::full_array(3, 3);
        let plan = Atpg::new().generate(&f).unwrap();
        let art = render_paths(&f, plan.flow_paths());
        assert!(art.contains('1'));
    }
}
