//! Shared helpers for the benchmark binaries and Criterion benches that
//! regenerate the tables and figures of the paper.

use fpva_atpg::{Atpg, TestPlan};
use fpva_grid::layouts::Table1Entry;
use fpva_grid::Fpva;
use fpva_sim::SimKernel;

pub mod lint;

/// A generated plan next to its Table I reference row.
#[derive(Debug)]
pub struct PlannedEntry {
    /// The benchmark instance with the paper's reported numbers.
    pub entry: Table1Entry,
    /// Our generated plan.
    pub plan: TestPlan,
}

/// Generates plans for every Table I array with the default configuration,
/// serially (see [`plan_table1_with`] for the parallel variant).
///
/// # Panics
///
/// Panics if generation fails on a benchmark layout (they are validated by
/// the test suite, so this indicates a build problem).
pub fn plan_table1() -> Vec<PlannedEntry> {
    plan_table1_with(1)
}

/// Like [`plan_table1`], but generates the per-array plans on up to
/// `threads` workers (`0` = one per CPU). Each plan is a deterministic
/// function of its layout alone, so the result is identical for every
/// thread count — the rows come back in Table I order regardless.
///
/// # Panics
///
/// Panics if generation fails on a benchmark layout.
pub fn plan_table1_with(threads: usize) -> Vec<PlannedEntry> {
    let entries = fpva_grid::layouts::table1();
    fpva_sim::exec::run_chunked(threads, entries.len(), 1, |range| {
        let entry = entries[range.start].clone();
        let plan = Atpg::new()
            .generate(&entry.fpva)
            .unwrap_or_else(|e| panic!("plan generation failed for {}: {e}", entry.name));
        PlannedEntry { entry, plan }
    })
}

/// Renders an array with its flow paths overlaid, one digit/letter per
/// path (`1`–`9`, then `a`–`z`), for the Fig. 8/9 reproductions.
pub fn render_paths(fpva: &Fpva, paths: &[fpva_atpg::FlowPath]) -> String {
    let mut decor = fpva_grid::render::Decor::new();
    for (i, path) in paths.iter().enumerate() {
        let mark = path_mark(i);
        for pair in path.cells().windows(2) {
            if let Some(edge) = fpva.edge_between(pair[0], pair[1]) {
                decor.mark_edge(edge, mark);
            }
        }
        for &cell in path.cells() {
            decor.mark_cell(cell, mark);
        }
    }
    fpva_grid::render::render_with(fpva, &decor)
}

/// Digit/letter label for the `i`-th path.
pub fn path_mark(i: usize) -> char {
    match i {
        0..=8 => char::from(b'1' + i as u8),
        _ => char::from(b'a' + ((i - 9) % 26) as u8),
    }
}

/// Command-line knobs shared by the benchmark binaries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CliArgs {
    /// `--trials N` (or a bare positional number, kept for backwards
    /// compatibility with the original `fault_detection` invocation).
    pub trials: Option<usize>,
    /// `--threads N`; `0` (the default) means one worker per CPU.
    pub threads: usize,
    /// `--kernel scalar|bit`; selects the simulation kernel (default:
    /// the bit-parallel one). Results are identical either way — the
    /// flag exists for timing comparisons against the scalar oracle.
    pub kernel: SimKernel,
}

impl CliArgs {
    /// Parses an argument list (without the program name). Supports
    /// `--flag N` and `--flag=N`; anything unrecognised or malformed is an
    /// error — a long benchmark run must not silently execute with
    /// parameters the user did not ask for.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on an unknown flag or an
    /// unparsable value.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = CliArgs::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((flag, v)) => (flag, Some(v)),
                None => (arg.as_str(), None),
            };
            match flag {
                "--trials" | "--threads" => {
                    let raw = match inline {
                        Some(v) => v.to_string(),
                        None => args
                            .next()
                            .ok_or_else(|| format!("{flag} expects a value"))?,
                    };
                    let n: usize = raw
                        .parse()
                        .map_err(|_| format!("{flag} expects a number, got `{raw}`"))?;
                    match flag {
                        "--trials" => out.trials = Some(n),
                        _ => out.threads = n,
                    }
                }
                "--kernel" => {
                    let raw = match inline {
                        Some(v) => v.to_string(),
                        None => args
                            .next()
                            .ok_or_else(|| format!("{flag} expects a value"))?,
                    };
                    out.kernel = match raw.as_str() {
                        "scalar" => SimKernel::Scalar,
                        "bit" | "bit-parallel" => SimKernel::BitParallel,
                        _ => return Err(format!("{flag} expects `scalar` or `bit`, got `{raw}`")),
                    };
                }
                other => match other.parse() {
                    // Bare positional number: the original `fault_detection`
                    // trial-count invocation, kept for compatibility.
                    Ok(n) if inline.is_none() => out.trials = Some(n),
                    _ => return Err(format!("unrecognised argument `{arg}`")),
                },
            }
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with usage on a bad command
    /// line.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1)).unwrap_or_else(|msg| {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: [--trials N] [--threads N] [--kernel scalar|bit]   \
                 (N numeric; --threads 0 = all CPUs)"
            );
            std::process::exit(2);
        })
    }
}

/// Renders an optional rate in `[0, 1]` as a percentage, or `"n/a"` when
/// the underlying universe was empty (zero trials / zero faults swept).
/// Four decimals, so one escape in a quadratic pair universe (say 1 of
/// 22 350) never rounds up to a flat "100%" next to the counts that
/// contradict it.
pub fn percent_or_na(rate: Option<f64>) -> String {
    match rate {
        Some(rate) => format!("{:.4}%", 100.0 * rate),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_marks_cycle() {
        assert_eq!(path_mark(0), '1');
        assert_eq!(path_mark(8), '9');
        assert_eq!(path_mark(9), 'a');
        assert_eq!(path_mark(10), 'b');
    }

    #[test]
    fn cli_args_accept_flags_and_positional_trials() {
        let args =
            |list: &[&str]| CliArgs::parse_from(list.iter().map(std::string::ToString::to_string));
        assert_eq!(
            args(&["--trials", "500", "--threads", "4"]),
            Ok(CliArgs {
                trials: Some(500),
                threads: 4,
                ..Default::default()
            })
        );
        assert_eq!(
            args(&["--trials=500", "--threads=4"]),
            Ok(CliArgs {
                trials: Some(500),
                threads: 4,
                ..Default::default()
            })
        );
        assert_eq!(
            args(&["1000"]),
            Ok(CliArgs {
                trials: Some(1000),
                ..Default::default()
            })
        );
        assert_eq!(args(&[]), Ok(CliArgs::default()));
    }

    #[test]
    fn cli_args_select_the_kernel() {
        let args =
            |list: &[&str]| CliArgs::parse_from(list.iter().map(std::string::ToString::to_string));
        assert_eq!(args(&[]).unwrap().kernel, SimKernel::BitParallel);
        assert_eq!(
            args(&["--kernel", "scalar"]).unwrap().kernel,
            SimKernel::Scalar
        );
        assert_eq!(
            args(&["--kernel=bit"]).unwrap().kernel,
            SimKernel::BitParallel
        );
        assert!(args(&["--kernel", "simd"]).is_err());
        assert!(args(&["--kernel"]).is_err());
    }

    #[test]
    fn cli_args_reject_typos_instead_of_guessing() {
        let args =
            |list: &[&str]| CliArgs::parse_from(list.iter().map(std::string::ToString::to_string));
        assert!(args(&["--threads", "bogus"]).is_err());
        assert!(args(&["--threads"]).is_err());
        assert!(args(&["--seed", "5"]).is_err());
        assert!(args(&["--trails=500"]).is_err());
    }

    #[test]
    fn percent_formatting_handles_empty_universe() {
        assert_eq!(percent_or_na(Some(0.5)), "50.0000%");
        // One escape in a large pair universe must not print as 100%.
        assert_eq!(percent_or_na(Some(22_349.0 / 22_350.0)), "99.9955%");
        assert_eq!(percent_or_na(None), "n/a");
    }

    #[test]
    fn render_paths_marks_edges() {
        let f = fpva_grid::layouts::full_array(3, 3);
        let plan = Atpg::new().generate(&f).unwrap();
        let art = render_paths(&f, plan.flow_paths());
        assert!(art.contains('1'));
    }
}
