//! Offline stand-in for `proptest` covering the surface the fpva
//! workspace uses: range / tuple / mapped strategies, `any::<T>()`,
//! `proptest::collection::vec`, the `proptest!` runner macro and the
//! `prop_assert!` family. Cases are generated from a deterministic
//! seeded RNG; there is no shrinking — a failing case reports the seed
//! and case index instead.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Outcome of a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property does not hold.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not count.
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure with a rendered message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    /// Construct a rejection with a rendered reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type the `proptest!`-generated closure returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only the knobs the workspace touches.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before the run aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

impl ProptestConfig {
    /// A default configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// A generator of values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value from `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Strategy producing `f(value)` for each generated `value`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(usize, u64, u32, u16, u8, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "generate any value" strategy.
pub trait Arbitrary: Sized {
    /// Strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy yielding uniformly random values of a primitive type.
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy(core::marker::PhantomData)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(core::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `Vec` strategy: each element from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-test runner used by the `proptest!` macro.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    // Deterministic seed derived from the test name (FNV-1a) so each
    // property gets its own reproducible stream.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }

    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut index = 0u64;
    while accepted < config.cases {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(index));
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest `{name}`: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case #{index} \
                     (seed {seed:#x} + {index}): {msg}"
                );
            }
        }
        index += 1;
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Assert a boolean property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Define property tests. Supports the subset of upstream syntax the
/// workspace uses: an optional `#![proptest_config(..)]` header followed
/// by `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            #[test]
            fn $name:ident($($binding:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(stringify!($name), &config, |proptest_rng| {
                    $(
                        let $binding = $crate::Strategy::generate(&($strategy), proptest_rng);
                    )*
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, bool)> {
        (1usize..10, any::<bool>()).prop_map(|(n, b)| (n * 2, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn mapped_pairs_are_even(pair in arb_pair()) {
            prop_assert_eq!(pair.0 % 2, 0);
            prop_assert!(pair.0 >= 2, "lower bound preserved, got {}", pair.0);
        }

        #[test]
        fn vectors_respect_length_bounds(
            v in collection::vec(0usize..5, 0..20),
            extra in 0usize..100,
        ) {
            prop_assume!(extra < 100);
            prop_assert!(v.len() < 20);
            for e in v {
                prop_assert!(e < 5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_seed() {
        run_property("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            prop_assert!(false);
            Ok(())
        });
    }

    use crate::{run_property, ProptestConfig};
}
