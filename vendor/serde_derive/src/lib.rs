//! No-op `Serialize` / `Deserialize` derives for the offline serde stub.
//!
//! The stub's traits are empty markers, so the derive has nothing to
//! implement; it only needs to exist so `#[derive(Serialize, Deserialize)]`
//! parses. `#[serde(...)]` helper attributes are accepted and ignored.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` request.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` request.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
