//! Offline stand-in for `criterion` covering the harness surface the
//! fpva benches use: `criterion_group!` / `criterion_main!`, benchmark
//! groups, `BenchmarkId`, `Bencher::iter` and `black_box`. Instead of
//! statistical sampling it runs a short calibrated wall-clock loop and
//! prints mean time per iteration — enough to compare hot paths offline.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to every bench function.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10, measurement_time }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_bench(&id.to_string(), self.measurement_time, &mut f);
    }
}

/// A named benchmark identifier (`group/function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    #[allow(dead_code)]
    sample_size: usize,
    // Per-group, like upstream criterion: a group's override must not
    // leak into later groups of the same binary.
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Criterion-compatible knob; the stub keeps it only for API parity.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Criterion-compatible knob; applied to this group only.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Run `f` as a benchmark named by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let name = format!("{}/{}", self.name, id);
        run_bench(&name, self.measurement_time, &mut f);
    }

    /// Run `f` with a borrowed input as a benchmark named by `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let name = format!("{}/{}", self.name, id);
        run_bench(&name, self.measurement_time, &mut |b: &mut Bencher| f(b, input));
    }

    /// Finish the group (prints nothing extra in the stub).
    pub fn finish(self) {}
}

/// Timing loop handle handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, target: Duration, f: &mut F) {
    // Calibrate: time one iteration, scale the count to fill ~target.
    let mut probe = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut bencher);
    let mean = bencher.elapsed / (bencher.iters.max(1) as u32);
    println!("bench: {name:<48} {mean:>12.3?}/iter ({iters} iters)");
}

/// Group bench functions under one entry point, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10).measurement_time(Duration::from_millis(5));
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(benches, trivial_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
