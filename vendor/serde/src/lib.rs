//! Offline stand-in for `serde`: marker traits plus no-op derives.
//!
//! The workspace only derives `Serialize` / `Deserialize` on plain data
//! types and never serializes through a format crate, so empty marker
//! traits are sufficient. Swap back to real serde when a registry is
//! available (see vendor/README.md).

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (lifetime elided — the stub
/// never borrows from an input).
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
